//! Scenario: **FOCES against the per-flow and per-port baselines** — a
//! quantitative rendition of the paper's related-work comparison (§VII).
//!
//! Injects a batch of path deviations and early drops on BCube(1,4) and
//! scores three detectors on the same counter data:
//!
//! * FOCES (network-wide, zero dedicated rules);
//! * a FADE-style per-flow monitor (dedicated rules; only monitored flows);
//! * a FlowMon-style per-port checker (no rules; per-switch totals only).
//!
//! ```sh
//! cargo run --release --example baseline_comparison
//! ```

use foces::{Detector, Fcm};
use foces_baselines::{FadeMonitor, FlowMonChecker};
use foces_controlplane::{provision, uniform_flows, RuleGranularity};
use foces_dataplane::{inject_random_anomaly, Action, AnomalyKind, LossModel};
use foces_net::generators::bcube;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trials = 40;
    // FADE monitors only 10% of flows — the realistic budget when every
    // monitored flow costs one TCAM entry per hop.
    let monitored_fraction = 0.10;

    let mut rng = StdRng::seed_from_u64(5);
    let mut foces_hits = 0;
    let mut fade_hits = 0;
    let mut flowmon_hits = 0;
    let mut fade_overhead = 0;

    for trial in 0..trials {
        let topo = bcube(1, 4);
        let flows = uniform_flows(&topo, 240_000.0);
        let mut dep = provision(topo, &flows, RuleGranularity::PerFlowPair)?;
        let fcm = Fcm::from_view(&dep.view);

        let monitored: Vec<usize> = (0..dep.flows.len())
            .filter(|i| i % ((1.0 / monitored_fraction) as usize) == 0)
            .collect();
        let fade = FadeMonitor::install(&mut dep, &monitored, 0.06);
        fade_overhead = fade.rule_overhead();

        let kind = if trial % 2 == 0 {
            AnomalyKind::PathDeviation
        } else {
            AnomalyKind::EarlyDrop
        };
        let applied =
            inject_random_anomaly(&mut dep.dataplane, kind, &mut rng, &[]).expect("rules exist");

        let mut loss = LossModel::sampled(0.02, trial as u64);
        dep.replay_traffic(&mut loss);
        // FADE's dedicated rules were installed after the FCM was built, so
        // collect exactly the FCM's own rule counters.
        let counters = fcm.counters_from(&dep.dataplane);

        if Detector::default().detect(&fcm, &counters)?.anomalous {
            foces_hits += 1;
        }
        if !fade.check(&dep.dataplane).is_empty() {
            fade_hits += 1;
        }
        if !FlowMonChecker::new(0.05).check(&dep.dataplane).is_empty() {
            flowmon_hits += 1;
        }
        let _ = applied.modified_action == Action::Drop;
    }

    println!("detector        detected   dedicated rules");
    println!("FOCES           {foces_hits:>3}/{trials}       0 (uses forwarding-rule counters)");
    println!("FADE (10% mon.) {fade_hits:>3}/{trials}     {fade_overhead} extra TCAM entries");
    println!("FlowMon         {flowmon_hits:>3}/{trials}       0 (port stats only)");
    println!();
    println!(
        "FOCES checks every flow at once; FADE sees only its monitored slice; \
         FlowMon misses re-routing deviations entirely."
    );
    assert!(foces_hits > fade_hits);
    assert!(foces_hits > flowmon_hits);
    Ok(())
}
