//! Scenario: a **firewall waypoint bypass** — the motivating attack from
//! the paper's introduction ("the control plane policy may require a
//! specific flow go through a firewall, and forwarding anomaly can cause
//! all packets of this flow bypass the firewall").
//!
//! The operator's policy routes guest traffic through a firewall switch
//! even though a shorter physical path exists. A compromised edge switch
//! silently rewrites its forwarding rule to take the short cut. Flow-table
//! dumps look clean (the adversary forges them); only the counters tell —
//! and FOCES reads exactly those.
//!
//! ```sh
//! cargo run --release --example waypoint_bypass
//! ```

use foces::{Detector, Fcm};
use foces_controlplane::ControllerView;
use foces_dataplane::{dst_match, Action, DataPlane, FlowTable, LossModel, Rule, RuleRef};
use foces_net::{Node, Topology};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Topology:   guest h0 ── s0 ──── s1(firewall) ──── s2 ──── s3 ── h1 server
    //                          └───────── bypass ────────┘
    let mut topo = Topology::new();
    let s0 = topo.add_switch("edge-guest");
    let s1 = topo.add_switch("firewall");
    let s2 = topo.add_switch("core");
    let s3 = topo.add_switch("edge-server");
    let h0 = topo.add_host(); // guest
    let h1 = topo.add_host(); // server
    topo.connect(Node::Switch(s0), Node::Switch(s1))?; // s0 port 0
    topo.connect(Node::Switch(s0), Node::Switch(s2))?; // s0 port 1: the bypass link
    topo.connect(Node::Switch(s1), Node::Switch(s2))?; // s1 port 1
    topo.connect(Node::Switch(s2), Node::Switch(s3))?; // s2 port 2
    topo.connect(Node::Host(h0), Node::Switch(s0))?; // s0 port 2
    topo.connect(Node::Host(h1), Node::Switch(s3))?; // s3 port 1

    // Policy routing (NOT shortest path): guest -> server must transit the
    // firewall. Hand-build the tables the controller installs.
    let p01 = topo
        .port_towards(Node::Switch(s0), Node::Switch(s1))
        .unwrap();
    let p02 = topo
        .port_towards(Node::Switch(s0), Node::Switch(s2))
        .unwrap();
    let p10 = topo
        .port_towards(Node::Switch(s1), Node::Switch(s0))
        .unwrap();
    let p12 = topo
        .port_towards(Node::Switch(s1), Node::Switch(s2))
        .unwrap();
    let p21 = topo
        .port_towards(Node::Switch(s2), Node::Switch(s1))
        .unwrap();
    let p23 = topo
        .port_towards(Node::Switch(s2), Node::Switch(s3))
        .unwrap();
    let p32 = topo
        .port_towards(Node::Switch(s3), Node::Switch(s2))
        .unwrap();
    let p3h = topo.port_towards(Node::Switch(s3), Node::Host(h1)).unwrap();
    let p0h = topo.port_towards(Node::Switch(s0), Node::Host(h0)).unwrap();
    // Both directions transit the firewall (a typical stateful-FW policy).
    let mut t0 = FlowTable::new();
    t0.push(Rule::new(dst_match(h1), 5, Action::Forward(p01))); // via firewall!
    t0.push(Rule::new(dst_match(h0), 5, Action::Forward(p0h)));
    let mut t1 = FlowTable::new();
    t1.push(Rule::new(dst_match(h1), 5, Action::Forward(p12)));
    t1.push(Rule::new(dst_match(h0), 5, Action::Forward(p10)));
    let mut t2 = FlowTable::new();
    t2.push(Rule::new(dst_match(h1), 5, Action::Forward(p23)));
    t2.push(Rule::new(dst_match(h0), 5, Action::Forward(p21)));
    let mut t3 = FlowTable::new();
    t3.push(Rule::new(dst_match(h1), 5, Action::Forward(p3h)));
    t3.push(Rule::new(dst_match(h0), 5, Action::Forward(p32)));
    let tables = vec![t0, t1, t2, t3];

    let view = ControllerView::from_parts(topo.clone(), tables.clone());
    let fcm = Fcm::from_view(&view);
    println!("policy path for guest->server: {:?}", fcm.flows()[0].path);
    assert!(
        fcm.flows()[0].path.contains(&s1),
        "policy transits firewall"
    );

    // Deploy, then compromise s0: skip the firewall via the bypass link.
    let mut dp = DataPlane::new(topo);
    for (sw, table) in view.topology().switches().zip(&tables) {
        for (_, rule) in table.iter() {
            dp.install(sw, rule.clone());
        }
    }
    let guest_rule = RuleRef {
        switch: s0,
        index: 0,
    };
    dp.modify_rule_action(guest_rule, Action::Forward(p02))?;
    println!("adversary at s0 rewired the guest rule onto the bypass link");

    // One interval of traffic in both directions, then detection.
    let header = foces_dataplane::pair_header(h0, h1);
    let report = dp.inject(h0, header, 10_000.0, &mut LossModel::none());
    dp.inject(
        h1,
        foces_dataplane::pair_header(h1, h0),
        10_000.0,
        &mut LossModel::none(),
    );
    println!(
        "packets still delivered to the server: {:?} (the bypass is silent!)",
        report.delivered_to == Some(h1)
    );
    let verdict = Detector::default().detect(&fcm, &dp.collect_counters())?;
    println!("FOCES verdict: {verdict}");
    assert!(verdict.anomalous, "bypass must be detected");
    let worst = verdict.worst_rule.expect("anomalous verdicts localize");
    println!(
        "largest residual at rule {worst} — the firewall's starved counter (s{} = firewall)",
        s1.0
    );
    assert_eq!(worst.switch, s1);
    Ok(())
}
