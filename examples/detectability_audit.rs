//! Scenario: a **detectability audit** of a data-center fabric — the
//! measurement half of the paper's future work #2 ("study how to install
//! rules which meet the detection conditions of FOCES, such that all
//! possible forwarding anomalies can be detected").
//!
//! Enumerates every single-hop deviation an adversary could apply on a
//! FatTree(4) deployment, classifies each against the Theorem-1 rank
//! oracle, and reports coverage — for both rule-compilation granularities,
//! showing how rule design changes the detector's blind spots.
//!
//! ```sh
//! cargo run --release --example detectability_audit
//! ```

use foces::{audit_deviations, harden, rbg_loop_exists, Fcm};
use foces_controlplane::{provision, uniform_flows, RuleGranularity};
use foces_net::generators::fattree;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for granularity in [
        RuleGranularity::PerFlowPair,
        RuleGranularity::PerDestination,
    ] {
        let topo = fattree(4);
        let flows = uniform_flows(&topo, 240_000.0);
        let dep = provision(topo, &flows, granularity)?;
        let fcm = Fcm::from_view(&dep.view);
        let audit = audit_deviations(&dep.view, &fcm, usize::MAX);
        println!(
            "granularity {granularity:?}: {} candidate deviations, \
             {} detectable, {} blind spots ({:.1}% coverage)",
            audit.total(),
            audit.detectable.len(),
            audit.undetectable.len(),
            100.0 * audit.coverage()
        );
        // Show a blind spot, if any, with its Theorem-2 analysis.
        if let Some(c) = audit.undetectable.first() {
            let flow = &fcm.flows()[c.flow];
            println!(
                "  example blind spot: flow h{}->h{} deviated at s{} toward s{} \
                 (still delivered: {})",
                flow.ingress.0, flow.egress.0, c.at_switch.0, c.redirected_to.0, c.still_delivered
            );
            // Theorem 2's necessary condition must agree: undetectable
            // deviations always show a loop in some switch's RBG.
            assert!(rbg_loop_exists(&fcm, &c.deviated_history));
            println!("  (confirmed: a rule-bipartite-graph loop exists — Theorem 2)");
        }
        // Deviations that still deliver to the right host are the sneakiest;
        // count how many of those are nevertheless detectable.
        let delivered_detectable = audit
            .detectable
            .iter()
            .filter(|c| c.still_delivered)
            .count();
        println!(
            "  deviations that still deliver correctly but get caught anyway: {}",
            delivered_detectable
        );
        // Close the blind spots (future work #2, constructive half): split
        // the implicated flows onto dedicated rules until fully covered.
        if !audit.undetectable.is_empty() {
            let outcome = harden(&dep.view, 5000, usize::MAX);
            println!(
                "  hardening: {} extra rules across {} flows lift coverage \
                 {:.1}% -> {:.1}%",
                outcome.installed.len(),
                outcome.flows_split,
                100.0 * outcome.coverage_before,
                100.0 * outcome.coverage_after
            );
        }
        println!();
    }
    Ok(())
}
