//! Scenario: **continuous monitoring** of a production fabric — the
//! paper's Fig. 7 functional test, driven through the `Monitor` runtime
//! with alarm hysteresis and cross-round localization instead of a human
//! reading a chart.
//!
//! A DCell(1,4) fabric runs 36 five-second collection rounds at 5 % link
//! loss. At t = 60 s a switch is compromised; at t = 120 s it is repaired.
//! The monitor raises one alarm, names the culprit's vicinity, and clears.
//!
//! ```sh
//! cargo run --release --example continuous_monitoring
//! ```

use foces::{AlarmState, Fcm, Monitor, MonitorConfig};
use foces_controlplane::{provision, uniform_flows, RuleGranularity};
use foces_dataplane::{inject_random_anomaly, AnomalyKind, CollectionNoise, LossModel};
use foces_net::generators::dcell;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topo = dcell(1, 4);
    let flows = uniform_flows(&topo, 380_000.0);
    let mut dep = provision(topo, &flows, RuleGranularity::PerFlowPair)?;
    let fcm = Fcm::from_view(&dep.view);
    let mut monitor = Monitor::new(fcm, MonitorConfig::default());
    let noise = CollectionNoise::default();

    let mut applied = None;
    let mut rng = StdRng::seed_from_u64(42);
    for round in 0..36u64 {
        let t = (round + 1) * 5;
        if t == 60 {
            applied = inject_random_anomaly(
                &mut dep.dataplane,
                AnomalyKind::PathDeviation,
                &mut rng,
                &[],
            );
            let a = applied.as_ref().unwrap();
            println!("-- t={t:>3}s  [adversary compromises s{}]", a.rule.switch.0);
        }
        if t == 120 {
            if let Some(a) = applied.take() {
                a.revert(&mut dep.dataplane)?;
                println!("-- t={t:>3}s  [operator repairs s{}]", a.rule.switch.0);
            }
        }
        // One collection interval.
        dep.dataplane.reset_counters();
        let mut loss = LossModel::sampled(0.05, round);
        dep.replay_traffic(&mut loss);
        let mut nrng = StdRng::seed_from_u64(round ^ 0xF00D);
        let counters = dep.dataplane.collect_counters_realistic(&noise, &mut nrng);

        let report = monitor.ingest(&counters)?;
        if report.alarm_raised {
            let suspects: Vec<String> = report
                .suspects
                .iter()
                .take(2)
                .map(|s| format!("s{}", s.switch.0))
                .collect();
            println!(
                "!! t={t:>3}s  ALARM raised (AI {:.1}); prime suspects: {}",
                report.verdict.anomaly_index.min(9999.0),
                suspects.join(", ")
            );
        } else if report.alarm_cleared {
            println!("ok t={t:>3}s  alarm cleared, network healthy again");
        } else if round % 6 == 5 {
            println!(
                "   t={t:>3}s  {} (AI {:.2})",
                report.state,
                report.verdict.anomaly_index.min(9999.0)
            );
        }
    }
    assert_eq!(monitor.state(), AlarmState::Normal);
    println!("\n36 rounds complete; final state: {}", monitor.state());
    Ok(())
}
