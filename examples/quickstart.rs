//! Quickstart: detect a forwarding anomaly end to end in ~40 lines.
//!
//! Builds the paper's BCube(1,4) testbed, provisions all-pairs traffic,
//! compromises one random switch rule, and runs one FOCES detection round.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use foces::{localize, Detector, Fcm, SlicedFcm};
use foces_controlplane::{provision, uniform_flows, RuleGranularity};
use foces_dataplane::{inject_random_anomaly, AnomalyKind, LossModel};
use foces_net::generators::bcube;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Topology + workload: BCube(1,4), one flow per ordered host pair.
    let topo = bcube(1, 4);
    let flows = uniform_flows(&topo, 240_000.0);
    let mut dep = provision(topo, &flows, RuleGranularity::PerFlowPair)?;
    println!(
        "provisioned {} flows over {} rules on {} switches",
        dep.flows.len(),
        dep.view.rule_count(),
        dep.view.topology().switch_count()
    );

    // 2. Build the flow-counter matrix from the controller's view.
    let fcm = Fcm::from_view(&dep.view);
    let sliced = SlicedFcm::from_fcm(&fcm);
    println!("{fcm}");

    // 3. Compromise a random switch rule (path deviation).
    let mut rng = StdRng::seed_from_u64(2024);
    let attack = inject_random_anomaly(
        &mut dep.dataplane,
        AnomalyKind::PathDeviation,
        &mut rng,
        &[],
    )
    .expect("network has forwarding rules");
    println!(
        "adversary rewrote {} from {} to {}",
        attack.rule, attack.original_action, attack.modified_action
    );

    // 4. One collection interval of traffic with 5% packet loss.
    let mut loss = LossModel::sampled(0.05, 7);
    dep.replay_traffic(&mut loss);
    let counters = dep.dataplane.collect_counters();

    // 5. Detect (Algorithm 1) and localize via slicing (Algorithm 2).
    let verdict = Detector::default().detect(&fcm, &counters)?;
    println!("baseline verdict: {verdict}");
    assert!(verdict.anomalous, "the deviation must be flagged");

    let sliced_verdict = sliced.detect(&Detector::default(), &counters)?;
    let ranking = localize(&sliced_verdict);
    println!("most suspicious switches:");
    for suspicion in ranking.iter().take(3) {
        println!("  {suspicion}");
    }
    println!(
        "(actual culprit: s{} — the flagged slice is where the deviated \
         traffic physically broke conservation, i.e. the culprit or the \
         switch it redirected onto)",
        attack.rule.switch.0
    );
    Ok(())
}
