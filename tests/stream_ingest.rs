//! Acceptance tests for the event-driven ingest pipeline on a FatTree(4)
//! fabric — the stream-mode analogue of `churn_robustness.rs`.
//!
//! The two halves of the PR's acceptance criteria:
//! * **Out-of-order ingestion never false-alarms**: with reply
//!   reordering, jitter, and a rolling-reroute schedule, stale
//!   generation-stamped replies must be reconciled against the update
//!   journal — zero alarm raises over the whole run, and the stream's
//!   final per-shard verdicts must agree with ground truth.
//! * **No blindness either**: a switch that silently drops packets must
//!   still raise the alarm, within the hysteresis bound (`raise_k`
//!   anomalous shard rounds at the poll cadence ceiling) — reconciliation
//!   absorbs updates and reordering, not attacks.

use foces_channel::FaultProfile;
use foces_controlplane::{provision, uniform_flows, Deployment, RuleGranularity};
use foces_dataplane::AnomalyKind;
use foces_ingest::{CadenceConfig, StreamAction, StreamConfig, StreamDriver};
use foces_net::generators::fattree;
use foces_runtime::HysteresisConfig;

fn testbed() -> Deployment {
    let topo = fattree(4);
    let flows = uniform_flows(&topo, 240_000.0);
    provision(topo, &flows, RuleGranularity::PerFlowPair).expect("provision fattree(4)")
}

/// A FatTree(4) stream over a messy channel: jitter and a 10% chance any
/// reply is a stale reordered one. Four regions, so three quiet shards
/// interleave with any suspicious one — the alarm window must span a full
/// sweep of shards, not just two rounds.
fn messy_config() -> StreamConfig {
    StreamConfig {
        duration_ms: 700.0,
        regions: 4,
        cadence: CadenceConfig {
            min_ms: 20.0,
            max_ms: 80.0,
            backoff: 1.5,
            quiet_threshold: 3,
        },
        hysteresis: HysteresisConfig {
            window: 8,
            raise_k: 2,
            clear_after: 4,
            churn_suppress: 2,
            churn_penalty: 1,
        },
        profile: FaultProfile {
            latency_ms: 2.0,
            jitter_ms: 3.0,
            drop_prob: 0.0,
            reorder_prob: 0.10,
            offline: Vec::new(),
        },
        settle_ms: 60.0,
        seed: 5,
        churn_seed: 21,
        anomaly_seed: 11,
        ..StreamConfig::default()
    }
}

#[test]
fn reordered_replies_under_rolling_reroutes_never_false_alarm() {
    let script = vec![
        (120.0, StreamAction::Churn),
        (260.0, StreamAction::Churn),
        (400.0, StreamAction::Churn),
    ];
    let mut driver = StreamDriver::new(testbed(), messy_config(), script);
    let report = driver.run().expect("stream must complete");
    let m = report.metrics;

    // The mess actually happened: replies really were reordered mid-run,
    // and counters really did mix rule generations.
    assert!(m.stale_replies > 0, "reordering never bit: {m:?}");
    assert!(
        m.reconciled_rounds > 0,
        "churn must be reconciled, not ignored: {m:?}"
    );
    assert!(m.fcm_rebuilds >= 3, "each settled churn rebuilds: {m:?}");

    // And none of it raised an alarm.
    assert_eq!(m.alarms_raised, 0, "false alarm under churn: {m:?}");
    assert_eq!(
        report.alarm_state,
        foces::AlarmState::Normal,
        "stream must end quiet"
    );
    assert!(
        report.verdict_parity(),
        "final stream verdicts must match ground truth: {:?}",
        report.stream_verdicts
    );
}

#[test]
fn a_dropper_still_alarms_within_the_hysteresis_bound() {
    let config = messy_config();
    let raise_k = config.hysteresis.raise_k as f64;
    let ceiling = config.cadence.max_ms;
    let script = vec![(200.0, StreamAction::Inject(AnomalyKind::EarlyDrop))];
    let mut driver = StreamDriver::new(testbed(), config, script);
    let report = driver.run().expect("stream must complete");
    let m = report.metrics;

    assert!(m.anomalous_rounds > 0, "dropper never scored: {m:?}");
    assert!(m.alarms_raised >= 1, "dropper must raise the alarm: {m:?}");
    assert_ne!(
        report.alarm_state,
        foces::AlarmState::Normal,
        "unrepaired dropper must leave the stream alarmed"
    );

    // Hysteresis bound: `raise_k` anomalous shard rounds at the cadence
    // ceiling (plus one sweep of slack for the fire that's already in
    // flight when the anomaly lands).
    let latency = m
        .alarm_latency_ms
        .expect("raise must stamp its latency milestone");
    let bound = (raise_k + 1.0) * ceiling;
    assert!(
        latency <= bound,
        "alarm took {latency:.1} ms, bound {bound:.1} ms: {m:?}"
    );
}
