//! The full threat-model pipeline over the control channel (paper §II-B):
//! the adversary rewrites forwarding, forges its table dumps, and forges
//! its own counters — dump auditing passes, yet FOCES detects from the
//! (partially forged) counter vector, because the adversary cannot forge
//! *other* switches' counters.

use foces::{Detector, Fcm};
use foces_channel::{honest_collector, ForgingAgent};
use foces_controlplane::{provision, uniform_flows, Deployment, RuleGranularity};
use foces_dataplane::{Action, LossModel, Rule, RuleRef};
use foces_net::generators::bcube;
use foces_net::SwitchId;

fn deployment() -> Deployment {
    let topo = bcube(1, 4);
    let flows = uniform_flows(&topo, 240_000.0);
    provision(topo, &flows, RuleGranularity::PerFlowPair).unwrap()
}

/// Picks a rule whose egress is another switch (not a last-hop rule) and
/// returns it with its switch's pre-compromise table snapshot.
fn pick_victim(dep: &Deployment) -> (RuleRef, Vec<Rule>) {
    for r in dep.view.rule_refs() {
        let rule = dep.view.rule(r).unwrap();
        if let Action::Forward(port) = rule.action() {
            let adj = &dep.view.topology().adj(foces_net::Node::Switch(r.switch))[port.0];
            if matches!(adj.neighbor, foces_net::Node::Switch(_)) {
                let snapshot = dep
                    .view
                    .table(r.switch)
                    .iter()
                    .map(|(_, rr)| rr.clone())
                    .collect();
                return (r, snapshot);
            }
        }
    }
    panic!("no eligible rule");
}

#[test]
fn full_adversary_defeats_dump_audit_but_not_foces() {
    let mut dep = deployment();
    let fcm = Fcm::from_view(&dep.view);
    let (victim, original_table) = pick_victim(&dep);

    // The adversary: drop traffic at the victim rule...
    dep.dataplane
        .modify_rule_action(victim, Action::Drop)
        .unwrap();
    // ...and take over the switch's channel agent: forge dumps with the
    // original table, and forge the victim counter to the value the
    // controller expects (the true matched volume — which, in our counter
    // semantics, the compromised switch indeed observes).
    let mut dep_replayed = dep.clone();
    dep_replayed.replay_traffic(&mut LossModel::none());
    let expected_victim_counter = dep_replayed.dataplane.counter(victim.switch, victim.index);

    let mut collector = honest_collector(&dep.view);
    let mut agent = ForgingAgent::new(victim.switch, original_table);
    agent.forge_counter(victim.index, expected_victim_counter);
    collector.replace_agent(Box::new(agent));

    // 1. Dump audit: every switch, including the compromised one, passes.
    let audits = collector
        .audit_dumps(&dep_replayed.dataplane, &dep.view)
        .unwrap();
    assert!(
        audits.iter().all(|a| a.consistent),
        "forged dumps defeat table auditing"
    );

    // 2. FOCES over the channel-collected (forged) counters: detected
    //    anyway — the starved downstream rules are on switches the
    //    adversary does not control.
    let counters = collector.collect_counters(&dep_replayed.dataplane).unwrap();
    let verdict = Detector::default().detect(&fcm, &counters).unwrap();
    assert!(verdict.anomalous, "{verdict}");
    // The adversary can forge its own counters but not its neighbours':
    // substantial residuals must exist on switches it does not control.
    // (The single largest residual may well sit on the victim switch — the
    // least-squares fit splits the flow's missing volume across its whole
    // path — so the robust claim is about off-switch evidence, not argmax.)
    let off_switch_residual = fcm
        .rules()
        .iter()
        .zip(&verdict.solve.residual)
        .filter(|(r, _)| r.switch != victim.switch)
        .map(|(_, d)| *d)
        .fold(0.0_f64, f64::max);
    assert!(
        off_switch_residual > 100.0,
        "uncompromised switches carry the evidence: {off_switch_residual}"
    );
}

#[test]
fn channel_counters_equal_direct_collection_with_honest_agents() {
    let mut dep = deployment();
    let mut loss = LossModel::sampled(0.03, 5);
    dep.replay_traffic(&mut loss);
    let collector = honest_collector(&dep.view);
    assert_eq!(
        collector.collect_counters(&dep.dataplane).unwrap(),
        dep.dataplane.collect_counters()
    );
}

#[test]
fn forging_other_switches_counters_is_out_of_reach() {
    // The adversary owns ONE switch; rewriting its reported counters does
    // not touch the canonical positions of other switches' counters.
    let mut dep = deployment();
    dep.replay_traffic(&mut LossModel::none());
    let truth = dep.dataplane.collect_counters();
    let sw = SwitchId(3);
    let snapshot: Vec<Rule> = dep.view.table(sw).iter().map(|(_, r)| r.clone()).collect();
    let table_len = snapshot.len();
    let mut collector = honest_collector(&dep.view);
    let mut agent = ForgingAgent::new(sw, snapshot);
    for i in 0..table_len {
        agent.forge_counter(i, 0.0);
    }
    collector.replace_agent(Box::new(agent));
    let forged = collector.collect_counters(&dep.dataplane).unwrap();
    // Positions outside s3's block are untouched.
    let fcm = Fcm::from_view(&dep.view);
    for (i, r) in fcm.rules().iter().enumerate() {
        if r.switch == sw {
            assert_eq!(forged[i], 0.0);
        } else {
            assert_eq!(forged[i], truth[i]);
        }
    }
}
