//! Churn-robustness acceptance test: the runtime service driven on a
//! FatTree(4) fabric while the controller performs rolling reroutes every
//! few epochs, so counters regularly mix rule-table generations.
//!
//! The two halves of the PR's acceptance criteria:
//! * **No false alarms under churn**: a healthy network with a rolling
//!   update schedule must finish a 30-epoch run with zero alarm raises —
//!   every churn epoch is *reconciled* (journaled rows masked, updated
//!   flows quarantined), never scored as an anomaly, and the FCM is
//!   rebuilt once the view moves on.
//! * **No blindness either**: the same schedule with a packet-dropping
//!   compromised switch must still raise the alarm, within the hysteresis
//!   bound (`raise_after` anomalous rounds) plus the churn-suppression
//!   slack — quarantine absorbs updates, not attacks.

use foces_controlplane::{provision, uniform_flows, Deployment, RuleGranularity};
use foces_dataplane::AnomalyKind;
use foces_net::generators::fattree;
use foces_runtime::{FaultScenario, RuntimeConfig, ScenarioDriver};

const EPOCHS: u64 = 30;
const CHURN_PERIOD: u64 = 3;
const ATTACK_AT: u64 = 10;

fn testbed() -> Deployment {
    let topo = fattree(4);
    let flows = uniform_flows(&topo, 240_000.0);
    provision(topo, &flows, RuleGranularity::PerFlowPair).expect("provision fattree(4)")
}

fn rolling_update_scenario() -> FaultScenario {
    FaultScenario {
        epochs: EPOCHS,
        loss: 0.0,
        drop_prob: 0.0,
        latency_ms: 2.0,
        jitter_ms: 0.0,
        reorder_prob: 0.0,
        offline: None,
        anomaly_window: None,
        anomaly_kind: AnomalyKind::EarlyDrop,
        seed: 5,
        anomaly_seed: 11,
        churn_period: Some(CHURN_PERIOD),
        churn_seed: 21,
        ..FaultScenario::default()
    }
}

#[test]
fn rolling_reroutes_alone_never_alarm() {
    let mut driver = ScenarioDriver::new(
        testbed(),
        rolling_update_scenario(),
        RuntimeConfig::default(),
    );
    let reports = driver.run().expect("no round may fail outright");
    assert_eq!(reports.len(), EPOCHS as usize);

    let m = *driver.service().metrics();
    assert!(
        driver.churn_events() > 0,
        "the schedule must actually churn"
    );
    assert!(
        m.reconciled_rounds >= driver.churn_events(),
        "every churn epoch reconciles: {} reconciled < {} churn events",
        m.reconciled_rounds,
        driver.churn_events()
    );
    assert!(m.stale_generation_replies > 0, "stamps must flag the churn");
    assert!(m.quarantined_flows > 0, "updated flows must be quarantined");
    assert!(m.fcm_rebuilds > 0, "the FCM must follow the view");
    assert_eq!(m.blind_rounds, 0, "churn never blinds a perfect channel");

    // The whole point: zero raises across the run, and every round —
    // reconciled or full — scores normal.
    assert_eq!(m.alarms_raised, 0, "rule churn is not an anomaly");
    for r in &reports {
        assert!(
            !r.anomalous(),
            "epoch {}: healthy churned round scored anomalous ({:?})",
            r.epoch,
            r.mode
        );
        assert_eq!(r.churn, driver.churn_due_at(r.epoch), "epoch {}", r.epoch);
        assert_eq!(
            r.mode.is_reconciled(),
            driver.churn_due_at(r.epoch),
            "epoch {}: mode {:?}",
            r.epoch,
            r.mode
        );
    }
    assert_eq!(driver.service().state(), foces::AlarmState::Normal);
}

#[test]
fn packet_dropper_is_still_caught_under_the_same_churn() {
    let mut scenario = rolling_update_scenario();
    scenario.anomaly_window = Some((ATTACK_AT, EPOCHS));
    let config = RuntimeConfig::default();
    // Worst-case raise latency: `raise_after` consecutive anomalous
    // rounds, stretched by the churn-suppression penalty for every churn
    // epoch that can land inside the confirmation window.
    let bound = ATTACK_AT
        + u64::from(config.raise_after)
        + u64::from(config.churn_suppress + config.churn_penalty)
        + EPOCHS / CHURN_PERIOD / 2;

    let mut driver = ScenarioDriver::new(testbed(), scenario, config);
    let reports = driver.run().expect("no round may fail outright");

    let m = *driver.service().metrics();
    assert!(
        m.reconciled_rounds > 0,
        "churn keeps rolling during the attack"
    );
    let raised: Vec<u64> = reports
        .iter()
        .filter(|r| r.alarm_raised)
        .map(|r| r.epoch)
        .collect();
    assert!(
        !raised.is_empty(),
        "quarantine absorbed the attack: no alarm in {EPOCHS} epochs"
    );
    let first = raised[0];
    assert!(first >= ATTACK_AT, "alarm at {first} predates the attack");
    assert!(
        first <= bound,
        "alarm at {first} outran the hysteresis bound {bound}"
    );
    // The dropper stays active to the end of the run, so the alarm must
    // still be standing when the run ends.
    assert_eq!(driver.service().state(), foces::AlarmState::Alarmed);
}
