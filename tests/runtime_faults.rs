//! Cross-crate fault-tolerance test: the full runtime service driven for
//! dozens of epochs on the paper's BCube(1,4) testbed over a lossy,
//! jittery control channel, with one switch crashed for part of the run
//! and a forwarding anomaly injected in a known window.
//!
//! What must hold (the PR's acceptance criteria):
//! * no epoch ever panics or aborts — unresponsive switches degrade rounds;
//! * every missing-row round is labelled `Degraded` and carries the
//!   masked-system detectability-oracle coverage (≤ the full coverage);
//! * retries, drops, offline polls and degraded rounds all show up in
//!   `RuntimeMetrics`;
//! * the alarm is raised only inside the injected anomaly window;
//! * the parallel slice solve returns verdicts identical to the
//!   sequential path.

use foces::{Detector, Fcm, SlicedFcm};
use foces_controlplane::{provision, uniform_flows, Deployment, RuleGranularity};
use foces_dataplane::{AnomalyKind, LossModel};
use foces_net::generators::bcube;
use foces_net::SwitchId;
use foces_runtime::{detect_parallel, DetectionMode, FaultScenario, RuntimeConfig, ScenarioDriver};

const EPOCHS: u64 = 36;
const OFFLINE: (u64, u64) = (8, 16);
const ANOMALY: (u64, u64) = (20, 28);
const VICTIM: SwitchId = SwitchId(0);

fn testbed() -> Deployment {
    let topo = bcube(1, 4);
    let flows = uniform_flows(&topo, 240_000.0);
    provision(topo, &flows, RuleGranularity::PerFlowPair).expect("provision bcube(1,4)")
}

fn scenario() -> FaultScenario {
    FaultScenario {
        epochs: EPOCHS,
        loss: 0.03,
        drop_prob: 0.10,
        latency_ms: 5.0,
        jitter_ms: 3.0,
        reorder_prob: 0.0,
        offline: Some((VICTIM, OFFLINE.0, OFFLINE.1)),
        anomaly_window: Some(ANOMALY),
        anomaly_kind: AnomalyKind::PathDeviation,
        seed: 12,
        anomaly_seed: 4,
        churn_period: None,
        churn_seed: 7,
        ..FaultScenario::default()
    }
}

#[test]
fn service_survives_faults_and_alarms_only_in_the_anomaly_window() {
    let mut driver = ScenarioDriver::new(testbed(), scenario(), RuntimeConfig::default());
    let full_coverage = driver.service().pipeline().full_coverage();
    assert!(driver.service().pipeline().candidate_count() > 0);
    assert!(full_coverage > 0.0 && full_coverage <= 1.0);

    // Every epoch completes: a Result-returning step, never a panic.
    let reports = driver.run().expect("no round may fail outright");
    assert_eq!(reports.len(), EPOCHS as usize);

    // -- Degraded labelling: exactly the offline window (plus any epochs
    // where the 10% drop rate happened to silence a switch entirely).
    for r in &reports {
        let in_window = (OFFLINE.0..OFFLINE.1).contains(&r.epoch);
        if in_window {
            let DetectionMode::Degraded {
                missing,
                masked_rows,
                coverage,
                ..
            } = &r.mode
            else {
                panic!("epoch {}: victim offline but mode {:?}", r.epoch, r.mode);
            };
            assert!(missing.contains(&VICTIM), "epoch {}", r.epoch);
            assert!(*masked_rows > 0);
            // The oracle was consulted on the masked system, and masking
            // can only lose detectability.
            assert!(*coverage > 0.0, "masked bcube is not blind");
            assert!(
                *coverage <= full_coverage + 1e-12,
                "epoch {}: masked coverage {} > full {}",
                r.epoch,
                coverage,
                full_coverage
            );
        } else if let DetectionMode::Degraded { missing, .. } = &r.mode {
            // Outside the window only random total-drop streaks may
            // degrade a round — never the (healthy again) victim alone
            // unless drops silenced it, and never a blind round.
            assert!(!missing.is_empty(), "epoch {}", r.epoch);
        }
        assert!(!r.mode.is_blind(), "epoch {} went blind", r.epoch);
        if !r.mode.is_degraded() {
            assert!(
                r.sliced.is_some(),
                "full rounds carry the parallel sliced verdicts"
            );
        }
    }

    // -- Metrics: the channel faults are all accounted for.
    let m = driver.service().metrics();
    assert_eq!(m.epochs, EPOCHS);
    assert_eq!(m.polls, EPOCHS * 24, "BCube(1,4) has 24 switches");
    assert!(m.retries > 0, "10% drop must force retries");
    assert!(m.drops > 0);
    assert!(m.offline_polls >= OFFLINE.1 - OFFLINE.0);
    assert!(m.unresponsive >= OFFLINE.1 - OFFLINE.0);
    assert!(m.degraded_rounds >= OFFLINE.1 - OFFLINE.0);
    assert_eq!(
        m.full_rounds + m.degraded_rounds + m.blind_rounds,
        EPOCHS,
        "every round is labelled"
    );
    assert!(m.sim_channel_ms > 0.0, "latency+jitter accumulate");
    assert_eq!(m.epochs as usize, driver.service().log().lines().len());

    // -- Alarm discipline: raised only inside the anomaly window, cleared
    // after the repair, and quiet the rest of the run.
    let raised: Vec<u64> = reports
        .iter()
        .filter(|r| r.alarm_raised)
        .map(|r| r.epoch)
        .collect();
    assert!(
        !raised.is_empty(),
        "the injected anomaly must raise the alarm"
    );
    for &e in &raised {
        assert!(
            (ANOMALY.0..ANOMALY.1).contains(&e),
            "alarm raised at epoch {e}, outside the anomaly window {ANOMALY:?}"
        );
    }
    let cleared: Vec<u64> = reports
        .iter()
        .filter(|r| r.alarm_cleared)
        .map(|r| r.epoch)
        .collect();
    assert!(
        cleared.iter().all(|&e| e >= ANOMALY.1),
        "alarm can only clear after the repair: {cleared:?}"
    );
    assert_eq!(
        driver.service().state(),
        foces::AlarmState::Normal,
        "repaired network ends the run quiet"
    );
    assert_eq!(m.alarms_raised, raised.len() as u64);

    // The anomaly really was active (and detected) inside its window.
    let anomalous_in_window = reports
        .iter()
        .filter(|r| (ANOMALY.0..ANOMALY.1).contains(&r.epoch) && r.anomalous())
        .count();
    assert!(
        anomalous_in_window >= (ANOMALY.1 - ANOMALY.0) as usize / 2,
        "only {anomalous_in_window} anomalous rounds inside the window"
    );
}

#[test]
fn parallel_slice_solving_matches_sequential_exactly() {
    let mut dep = testbed();
    let fcm = Fcm::from_view(&dep.view);
    let sliced = SlicedFcm::from_fcm(&fcm);
    let detector = Detector::default();
    for seed in [1u64, 2, 3] {
        dep.dataplane.reset_counters();
        dep.replay_traffic(&mut LossModel::sampled(0.03, seed));
        let counters = dep.dataplane.collect_counters();
        let sequential = sliced.detect(&detector, &counters).expect("sequential");
        for workers in [2usize, 4, 8] {
            let parallel =
                detect_parallel(&sliced, &detector, &counters, workers).expect("parallel");
            assert_eq!(
                parallel, sequential,
                "seed {seed}, workers {workers}: parallel and sequential verdicts diverge"
            );
        }
    }
}

#[test]
fn deterministic_replay_of_the_whole_scenario() {
    // Process-level gauges (peak_rss_bytes reads live VmHWM) are scrubbed;
    // every behavioral field must still reproduce bit for bit.
    let run = || {
        let mut driver = ScenarioDriver::new(testbed(), scenario(), RuntimeConfig::default());
        driver.run().expect("scenario");
        driver
            .service()
            .log()
            .lines()
            .iter()
            .map(|l| foces_runtime::scrub_gauges(l))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run(), "same seeds, same event log, bit for bit");
}
