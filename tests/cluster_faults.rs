//! Cross-crate cluster fault-isolation test: BCube(1,4) cut into 4 region
//! shards, driven for 30 epochs with one shard's worker killed mid-run
//! and a forwarding anomaly injected afterwards in a *different* shard.
//!
//! What must hold (the PR's acceptance criteria):
//! * the killed worker degrades exactly its own shard — every other shard
//!   keeps solving (warm) and the coordinator keeps producing verdicts;
//! * the degraded shard produces **zero false alarms**: before the attack
//!   no epoch is anomalous and the alarm machine never leaves `Normal`,
//!   dead shard or not;
//! * once the anomaly lands, detection latency stays within the
//!   hysteresis bound (`raise_k` epochs of the attack);
//! * the detectability report quantifies the blind spot every degraded
//!   epoch (row coverage strictly between 0 and 1) without ever blinding
//!   the healthy regions.

use foces::{AlarmState, Fcm};
use foces_cluster::{ClusterConfig, ClusterService, DegradeReason, ShardFault, ShardHealth};
use foces_controlplane::{provision, uniform_flows, Deployment, RuleGranularity};
use foces_dataplane::{inject_random_anomaly, AnomalyKind, LossModel};
use foces_net::generators::bcube;
use foces_net::{partition, PartitionSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

const EPOCHS: u64 = 30;
const KILL_AT: u64 = 10;
const ATTACK_AT: u64 = 18;
const DEAD_REGION: usize = 0;

fn testbed() -> Deployment {
    let topo = bcube(1, 4);
    let flows = uniform_flows(&topo, topo.host_count() as f64 * 15_000.0);
    provision(topo, &flows, RuleGranularity::PerDestination).expect("bcube(1,4) provisions")
}

fn counters(dep: &mut Deployment) -> Vec<f64> {
    dep.dataplane.reset_counters();
    dep.replay_traffic(&mut LossModel::none());
    dep.dataplane.collect_counters()
}

#[test]
fn killed_shard_never_false_alarms_and_detection_stays_fast() {
    let spec = PartitionSpec::EdgeCut { k: 4 };
    let mut dep = testbed();
    let part = partition(dep.view.topology(), spec);
    assert_eq!(part.region_count(), 4);
    let exclude: Vec<_> = part.region(DEAD_REGION).to_vec();

    let fcm = Fcm::from_view(&dep.view);
    let config = ClusterConfig {
        spec,
        ..ClusterConfig::default()
    };
    let raise_k = u64::from(config.hysteresis.raise_k);
    let mut svc = ClusterService::new(fcm, dep.view.topology(), config).unwrap();

    let mut first_alarm_epoch: Option<u64> = None;
    for epoch in 0..EPOCHS {
        if epoch == KILL_AT {
            svc.inject_fault(DEAD_REGION, ShardFault::Panic);
        }
        if epoch == ATTACK_AT {
            let mut rng = StdRng::seed_from_u64(9);
            inject_random_anomaly(
                &mut dep.dataplane,
                AnomalyKind::PathDeviation,
                &mut rng,
                &exclude,
            )
            .expect("an eligible rule outside the dead region exists");
        }

        let y = counters(&mut dep);
        let r = svc.run_epoch(&y).unwrap();

        // Fault isolation: before the kill nothing is degraded; after it,
        // exactly the dead region is, and only by the injected panic.
        let degraded: Vec<_> = r.shards.iter().filter(|s| !s.health.is_healthy()).collect();
        if epoch < KILL_AT {
            assert!(degraded.is_empty(), "epoch {epoch}: {degraded:?}");
            assert_eq!(r.detectability.row_coverage, 1.0);
        } else {
            assert_eq!(degraded.len(), 1, "epoch {epoch}: {degraded:?}");
            assert_eq!(degraded[0].region, DEAD_REGION);
            assert!(matches!(
                degraded[0].health,
                ShardHealth::Degraded(DegradeReason::Panic(_))
            ));
            assert!(r.detectability.row_coverage < 1.0, "epoch {epoch}");
            assert!(r.detectability.row_coverage > 0.0, "epoch {epoch}");
            assert_eq!(r.detectability.degraded_regions, vec![DEAD_REGION]);
        }

        // Zero false alarms: lossless benign epochs stay quiet, with or
        // without the dead shard.
        if epoch < ATTACK_AT {
            assert!(
                !r.anomalous,
                "epoch {epoch}: false positive (AI {:.2}, regions {:?})",
                r.max_anomaly_index,
                r.flagged_regions()
            );
            assert_eq!(r.alarm_state, AlarmState::Normal, "epoch {epoch}");
        } else {
            assert!(
                r.anomalous,
                "epoch {epoch}: standing anomaly not flagged (coverage {:.2})",
                r.detectability.row_coverage
            );
            // The dead region cannot vouch for anything: flagged regions
            // are healthy ones.
            assert!(
                !r.flagged_regions().contains(&DEAD_REGION),
                "epoch {epoch}: degraded shard contributed a verdict"
            );
            if first_alarm_epoch.is_none() && r.alarm_state == AlarmState::Alarmed {
                first_alarm_epoch = Some(epoch);
            }
        }

        // Healthy shards stay warm from epoch 1 on, across the fault.
        if epoch > 0 {
            for s in r.shards.iter().filter(|s| s.health.is_healthy()) {
                assert!(
                    s.solve_path.is_some_and(|p| p.is_warm()),
                    "epoch {epoch} region {} went cold: {:?}",
                    s.region,
                    s.solve_path
                );
            }
        }
    }

    // Detection latency: the alarm must be up within the hysteresis bound
    // of the attack epoch (raise_k anomalous epochs to reach quorum).
    let raised_at = first_alarm_epoch.expect("alarm never raised after the attack");
    assert!(
        raised_at < ATTACK_AT + raise_k,
        "alarm raised at epoch {raised_at}, outside the hysteresis bound \
         (attack at {ATTACK_AT}, raise_k {raise_k})"
    );

    let m = svc.metrics();
    assert_eq!(m.epochs, EPOCHS);
    assert_eq!(m.shard_panics, EPOCHS - KILL_AT);
    assert_eq!(m.degraded_shard_epochs, EPOCHS - KILL_AT);
    assert_eq!(m.alarms_raised, 1);
    assert_eq!(m.alarms_cleared, 0);
    assert!(m.worst_row_coverage < 1.0);
    assert_eq!(svc.log_lines().len() as u64, EPOCHS);
}
