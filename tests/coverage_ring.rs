//! Ring-absorption regression golden: the static coverage analyzer's
//! row-share/absorption WARN on the small ring is tied to *real* detector
//! behavior — a naive uniform counter forgery on the flagged switch is
//! genuinely absorbed by the least-squares solve, while the same forgery
//! on a FatTree (which the analyzer scores clean) is caught.

use foces::{
    analyze_coverage, CoverageConfig, CoverageKind, CoverageSeverity, Detector, Fcm, LooClass,
};
use foces_controlplane::{provision, uniform_flows, Deployment, RuleGranularity};
use foces_dataplane::LossModel;
use foces_net::generators::{fattree, ring};
use foces_net::SwitchId;

fn ring_deployment() -> Deployment {
    let topo = ring(4);
    let flows = uniform_flows(&topo, 12_000.0);
    provision(topo, &flows, RuleGranularity::PerFlowPair).unwrap()
}

fn counters(dep: &mut Deployment) -> Vec<f64> {
    dep.dataplane.reset_counters();
    dep.replay_traffic(&mut LossModel::none());
    dep.dataplane.collect_counters()
}

/// The switch with the largest row share, per the analyzer.
fn dominant_switch(fcm: &Fcm) -> SwitchId {
    let report = analyze_coverage(fcm, &CoverageConfig::default()).unwrap();
    report
        .switches
        .iter()
        .max_by(|a, b| a.row_share.total_cmp(&b.row_share))
        .expect("ring has row-owning switches")
        .switch
}

#[test]
fn ring_dominant_switch_warns_with_a_concrete_certificate() {
    let dep = ring_deployment();
    let fcm = Fcm::from_view(&dep.view);
    let report = analyze_coverage(&fcm, &CoverageConfig::default()).unwrap();
    assert!(!report.is_clean(), "{}", report.summary());

    let dominant = dominant_switch(&fcm);
    let warn = report
        .findings
        .iter()
        .find(|f| {
            f.kind == CoverageKind::RowShareAbsorption
                && f.severity == CoverageSeverity::Warn
                && f.switch == Some(dominant)
        })
        .unwrap_or_else(|| panic!("dominant s{} must WARN: {}", dominant.0, report.summary()));
    let cert = warn
        .certificate
        .as_ref()
        .expect("every row-share WARN carries its absorbing combination");
    assert!(!cert.terms.is_empty(), "certificate names real columns");
    assert!(
        cert.residual < 0.87,
        "absorption >= 0.5 means relative residual < sqrt(1 - 0.25): {}",
        cert.residual
    );
    for &(col, _) in &cert.terms {
        assert!(col < fcm.flow_count(), "certificate column out of range");
    }
}

#[test]
fn naive_forgery_on_the_warned_ring_switch_is_absorbed() {
    let mut dep = ring_deployment();
    let fcm = Fcm::from_view(&dep.view);
    let dominant = dominant_switch(&fcm);
    let truth = counters(&mut dep);
    let detector = Detector::default();
    assert!(
        !detector.detect(&fcm, &truth).unwrap().anomalous,
        "honest counters are consistent"
    );

    // The naive forgery the WARN predicts is invisible: a uniform bump on
    // every one of the dominant switch's counters (the u_s direction whose
    // projection the certificate spells out).
    let bump = truth.iter().copied().fold(0.0_f64, f64::max);
    let mut forged = truth.clone();
    for (row, rule) in fcm.rules().iter().enumerate() {
        if rule.switch == dominant {
            forged[row] += bump;
        }
    }
    let verdict = detector.detect(&fcm, &forged).unwrap();
    assert!(
        !verdict.anomalous,
        "the analyzer's WARN must correspond to a real evasion: AI {}",
        verdict.anomaly_index
    );
}

#[test]
fn fattree_is_clean_and_a_misaligned_forgery_is_caught() {
    let topo = fattree(4);
    let flows = uniform_flows(&topo, 1_000.0);
    let mut dep = provision(topo, &flows, RuleGranularity::PerFlowPair).unwrap();
    let fcm = Fcm::from_view(&dep.view);
    let report = analyze_coverage(&fcm, &CoverageConfig::default()).unwrap();
    assert!(report.is_clean(), "{}", report.summary());
    assert_eq!(
        report.class_count(LooClass::Localizable),
        report.switches.iter().filter(|s| s.rows > 0).count(),
        "every row-owning fattree switch is localizable"
    );

    // The ring evasion works because the uniform direction u_s lies in the
    // span of a *dominant* switch's absorbing combination. A forgery that
    // does not align with any column combination — a single rule counter
    // bumped on its own — leaves a residual least squares cannot spread,
    // and the detector catches it.
    let truth = counters(&mut dep);
    let detector = Detector::default();
    assert!(!detector.detect(&fcm, &truth).unwrap().anomalous);
    let bump = truth.iter().copied().fold(0.0_f64, f64::max);
    // Pick the row on the *least*-absorbing switch (a core switch: every
    // flow through it is multi-hop, so no column can soak the bump alone).
    let victim = report
        .switches
        .iter()
        .filter(|s| s.rows > 0)
        .min_by(|a, b| a.absorption.total_cmp(&b.absorption))
        .unwrap()
        .switch;
    let row = fcm
        .rules()
        .iter()
        .position(|r| r.switch == victim)
        .expect("victim owns rows");
    let mut forged = truth.clone();
    forged[row] += bump;
    let verdict = detector.detect(&fcm, &forged).unwrap();
    assert!(
        verdict.anomalous,
        "a single-row forgery is outside every absorbing combination: AI {}",
        verdict.anomaly_index
    );
}
