//! The security-analysis cases of paper §V, constructed explicitly:
//! switch bypass, path detour, and early drop, each on a hand-built
//! topology where the expected counter signature can be asserted exactly.

use foces::{Detector, Fcm};
use foces_baselines::FlowMonChecker;
use foces_controlplane::ControllerView;
use foces_dataplane::{
    dst_match, pair_header, Action, DataPlane, FlowTable, LossModel, Rule, RuleRef,
};
use foces_net::{HostId, Node, SwitchId, Topology};

/// Line path s0-s1-s2-s3 with a bypass link s1-s3 and a stub switch d
/// hanging off s1 (for the detour case). One host at each end, plus a host
/// on d so the stub carries its own (benign) traffic.
struct Scenario {
    dp: DataPlane,
    fcm: Fcm,
    s: Vec<SwitchId>,
    d: SwitchId,
    h: Vec<HostId>,
    rules_main: Vec<RuleRef>, // dst-h1 rules at s0..s3
}

fn build() -> Scenario {
    let mut topo = Topology::new();
    let s: Vec<SwitchId> = (0..4).map(|i| topo.add_switch(format!("s{i}"))).collect();
    let d = topo.add_switch("detour-stub");
    let h0 = topo.add_host();
    let h1 = topo.add_host();
    let hd = topo.add_host();
    topo.connect(Node::Switch(s[0]), Node::Switch(s[1]))
        .unwrap();
    topo.connect(Node::Switch(s[1]), Node::Switch(s[2]))
        .unwrap();
    topo.connect(Node::Switch(s[2]), Node::Switch(s[3]))
        .unwrap();
    topo.connect(Node::Switch(s[1]), Node::Switch(s[3]))
        .unwrap(); // bypass link
    topo.connect(Node::Switch(s[1]), Node::Switch(d)).unwrap(); // stub link
    topo.connect(Node::Host(h0), Node::Switch(s[0])).unwrap();
    topo.connect(Node::Host(h1), Node::Switch(s[3])).unwrap();
    topo.connect(Node::Host(hd), Node::Switch(d)).unwrap();

    let port =
        |a: SwitchId, b: SwitchId| topo.port_towards(Node::Switch(a), Node::Switch(b)).unwrap();
    let hport =
        |a: SwitchId, hh: HostId| topo.port_towards(Node::Switch(a), Node::Host(hh)).unwrap();

    // Policy: h0 -> h1 along s0-s1-s2-s3; hd -> h1 via d-s1-s2-s3; and
    // h0 -> hd via s0-s1-d (so d has benign rules of its own). Reverse
    // paths give the detector the unaffected-rule majority its anomaly
    // index relies on ("majority good" assumption, §IV-A).
    let mut tables = vec![FlowTable::new(); topo.switch_count()];
    // dst h1 rules.
    tables[s[0].0].push(Rule::new(
        dst_match(h1),
        5,
        Action::Forward(port(s[0], s[1])),
    ));
    tables[s[1].0].push(Rule::new(
        dst_match(h1),
        5,
        Action::Forward(port(s[1], s[2])),
    ));
    tables[s[2].0].push(Rule::new(
        dst_match(h1),
        5,
        Action::Forward(port(s[2], s[3])),
    ));
    tables[s[3].0].push(Rule::new(
        dst_match(h1),
        5,
        Action::Forward(hport(s[3], h1)),
    ));
    tables[d.0].push(Rule::new(dst_match(h1), 5, Action::Forward(port(d, s[1]))));
    // dst hd rules.
    tables[s[0].0].push(Rule::new(
        dst_match(hd),
        5,
        Action::Forward(port(s[0], s[1])),
    ));
    tables[s[1].0].push(Rule::new(dst_match(hd), 5, Action::Forward(port(s[1], d))));
    tables[d.0].push(Rule::new(dst_match(hd), 5, Action::Forward(hport(d, hd))));
    // dst h0 rules (reverse direction).
    tables[s[3].0].push(Rule::new(
        dst_match(h0),
        5,
        Action::Forward(port(s[3], s[2])),
    ));
    tables[s[2].0].push(Rule::new(
        dst_match(h0),
        5,
        Action::Forward(port(s[2], s[1])),
    ));
    tables[s[1].0].push(Rule::new(
        dst_match(h0),
        5,
        Action::Forward(port(s[1], s[0])),
    ));
    tables[s[0].0].push(Rule::new(
        dst_match(h0),
        5,
        Action::Forward(hport(s[0], h0)),
    ));
    tables[d.0].push(Rule::new(dst_match(h0), 5, Action::Forward(port(d, s[1]))));

    let view = ControllerView::from_parts(topo.clone(), tables.clone());
    let fcm = Fcm::from_view(&view);
    let mut dp = DataPlane::new(topo);
    for (sw_idx, table) in tables.iter().enumerate() {
        for (_, rule) in table.iter() {
            dp.install(SwitchId(sw_idx), rule.clone());
        }
    }
    let rules_main = (0..4)
        .map(|i| RuleRef {
            switch: s[i],
            index: 0,
        })
        .collect();
    Scenario {
        dp,
        fcm,
        s,
        d,
        h: vec![h0, h1, hd],
        rules_main,
    }
}

fn replay(sc: &mut Scenario) {
    let v = 1000.0;
    let mut loss = LossModel::none();
    let (h0, h1, hd) = (sc.h[0], sc.h[1], sc.h[2]);
    sc.dp.inject(h0, pair_header(h0, h1), v, &mut loss);
    sc.dp.inject(hd, pair_header(hd, h1), v, &mut loss);
    sc.dp.inject(h0, pair_header(h0, hd), v, &mut loss);
    // Reverse-direction background traffic.
    sc.dp.inject(h1, pair_header(h1, h0), v, &mut loss);
    sc.dp.inject(hd, pair_header(hd, h0), v, &mut loss);
}

fn detect(sc: &Scenario) -> foces::Verdict {
    Detector::default()
        .detect(&sc.fcm, &sc.fcm.counters_from(&sc.dp))
        .expect("solve")
}

#[test]
fn baseline_scenario_is_healthy() {
    let mut sc = build();
    replay(&mut sc);
    let v = detect(&sc);
    assert!(!v.anomalous, "{v}");
}

#[test]
fn switch_bypass_is_detected() {
    // §V Switch Bypass: s1 forwards h0->h1 traffic straight to s3 over the
    // bypass link, skipping s2. s1's and s3's counters stay consistent;
    // s2's rule is starved — exactly the paper's signature.
    let mut sc = build();
    let p13 = sc
        .dp
        .topology()
        .port_towards(Node::Switch(sc.s[1]), Node::Switch(sc.s[3]))
        .unwrap();
    sc.dp
        .modify_rule_action(sc.rules_main[1], Action::Forward(p13))
        .unwrap();
    replay(&mut sc);
    // Packets still delivered (the bypass is silent at the endpoints).
    assert_eq!(sc.dp.counter(sc.s[3], 0), 2000.0); // both h1-bound flows
    assert_eq!(sc.dp.counter(sc.s[2], 0), 0.0); // starved skipped switch
    let v = detect(&sc);
    assert!(v.anomalous, "{v}");
    assert_eq!(
        v.worst_rule.unwrap().switch,
        sc.s[2],
        "largest residual at the skipped switch"
    );
}

#[test]
fn path_detour_is_detected_and_inflates_detour_counters() {
    // §V Path Detour: s1 sends h0->h1 traffic to the stub d. d's own route
    // for h1 points back to s1, whose (modified) rule sends it to d again:
    // the volume ping-pongs until the hop budget kills it. The counters at
    // d (and s1) inflate far beyond any benign explanation while s2/s3
    // starve — FOCES flags it immediately.
    let mut sc = build();
    let p1d = sc
        .dp
        .topology()
        .port_towards(Node::Switch(sc.s[1]), Node::Switch(sc.d))
        .unwrap();
    sc.dp
        .modify_rule_action(sc.rules_main[1], Action::Forward(p1d))
        .unwrap();
    replay(&mut sc);
    // d's dst-h1 rule sees the looping volume many times over.
    let d_counter = sc.dp.counter(sc.d, 0);
    assert!(d_counter > 10_000.0, "detour counter inflated: {d_counter}");
    assert_eq!(sc.dp.counter(sc.s[2], 0), 0.0);
    let v = detect(&sc);
    assert!(v.anomalous, "{v}");
}

#[test]
fn early_drop_is_detected() {
    // §V Early Drop: s1 silently drops instead of forwarding; downstream
    // counters starve while s1's own counter still looks plausible.
    let mut sc = build();
    sc.dp
        .modify_rule_action(sc.rules_main[1], Action::Drop)
        .unwrap();
    replay(&mut sc);
    // Both h1-bound flows (from h0 and hd) hit s1's rule before the drop.
    assert_eq!(sc.dp.counter(sc.s[1], 0), 2000.0); // adversary counts "normally"
    assert_eq!(sc.dp.counter(sc.s[2], 0), 0.0);
    let v = detect(&sc);
    assert!(v.anomalous, "{v}");
}

#[test]
fn flowmon_contrast_bypass_is_invisible_to_port_stats() {
    // The same switch bypass that FOCES flags keeps every switch's port
    // totals balanced (nothing is dropped), so the per-port baseline sees
    // nothing — the paper's detection-scope argument, executable.
    let mut sc = build();
    let p13 = sc
        .dp
        .topology()
        .port_towards(Node::Switch(sc.s[1]), Node::Switch(sc.s[3]))
        .unwrap();
    sc.dp
        .modify_rule_action(sc.rules_main[1], Action::Forward(p13))
        .unwrap();
    replay(&mut sc);
    assert!(detect(&sc).anomalous);
    assert!(
        FlowMonChecker::new(0.001).check(&sc.dp).is_empty(),
        "port statistics balance everywhere under a pure re-route"
    );
}

#[test]
fn adversary_counter_faking_does_not_help() {
    // The threat model lets the compromised switch report any counters for
    // its own rules. Even if s1 forges its counter to the expected value
    // after an early drop, the downstream starvation still betrays it.
    let mut sc = build();
    sc.dp
        .modify_rule_action(sc.rules_main[1], Action::Drop)
        .unwrap();
    replay(&mut sc);
    let mut counters = sc.fcm.counters_from(&sc.dp);
    // Forge s1's dst-h1 counter to exactly what the controller expects.
    let row = sc.fcm.rule_row(sc.rules_main[1]).unwrap();
    counters[row] = 2000.0;
    let v = Detector::default().detect(&sc.fcm, &counters).unwrap();
    assert!(
        v.anomalous,
        "forged local counters cannot hide starvation: {v}"
    );
}
