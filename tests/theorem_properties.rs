//! Property-based tests of the paper's theorems, exercised on both random
//! small networks and the real evaluation topologies.
//!
//! * **Theorem 1** — in a noiseless network, Algorithm 1 flags an injected
//!   single-flow deviation *iff* the deviated column leaves the FCM's
//!   column span (the rank oracle).
//! * **Theorem 2 (necessary direction)** — every rank-undetectable
//!   deviation exhibits a loop in some switch's rule bipartite graph.
//! * **Theorem 3** — whatever the baseline detects, slicing detects.

use foces::{
    audit_deviations, is_detectable, rbg_loop_exists, undetectable_by_rank, Detector, Fcm,
    SlicedFcm,
};
use foces_controlplane::{provision, uniform_flows, RuleGranularity};
use foces_dataplane::{
    inject_random_anomaly, pair_header, Action, AnomalyKind, DataPlane, LossModel, RuleRef,
};
use foces_net::generators::{bcube, dcell, fattree};
use foces_net::Node;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Traces a concrete header through the **live** data plane, returning the
/// matched rules and whether the walk ended at the intended host without
/// exceeding the hop budget.
fn trace_live(dp: &DataPlane, src: foces_net::HostId, header: u64) -> (Vec<RuleRef>, bool, bool) {
    let topo = dp.topology();
    let (mut current, _) = topo.host_attachment(src).expect("attached");
    let mut history = Vec::new();
    for _ in 0..64 {
        let Some((idx, rule)) = dp.table(current).lookup(header) else {
            return (history, false, false);
        };
        history.push(RuleRef {
            switch: current,
            index: idx,
        });
        match rule.action() {
            Action::Drop => return (history, false, false),
            Action::Forward(port) => match topo.adj(Node::Switch(current)).get(port.0) {
                None => return (history, false, false),
                Some(adj) => match adj.neighbor {
                    Node::Host(_) => return (history, true, false),
                    Node::Switch(s) => current = s,
                },
            },
        }
    }
    (history, false, true) // ttl exceeded (forwarding loop)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem 1 as an executable equivalence: noiseless detector verdict
    /// == rank-oracle detectability of the actually-realized deviation.
    #[test]
    fn theorem1_detector_matches_rank_oracle(
        n in 4usize..8,
        chords in 0usize..4,
        topo_seed in 0u64..1000,
        seed in 0u64..500,
    ) {
        let topo = foces_net::generators::random_connected(n, chords, topo_seed);
        let flows = uniform_flows(&topo, topo.host_count() as f64 * 1000.0);
        let mut dep = provision(topo, &flows, RuleGranularity::PerFlowPair).unwrap();
        let fcm = Fcm::from_view(&dep.view);
        let mut rng = StdRng::seed_from_u64(seed);
        let Some(applied) = inject_random_anomaly(
            &mut dep.dataplane,
            AnomalyKind::PathDeviation,
            &mut rng,
            &[],
        ) else {
            return Ok(()); // tiny network without eligible rules
        };
        // Identify the (single, per-pair granularity) flow whose rule was
        // modified, and its realized deviated history.
        let victim = fcm
            .flows()
            .iter()
            .find(|f| f.rules.contains(&applied.rule))
            .expect("per-pair rules belong to exactly one flow");
        let (deviated, _delivered, looped) =
            trace_live(&dep.dataplane, victim.ingress, pair_header(victim.ingress, victim.egress));
        if looped {
            // Forwarding loops break the 0/1-column model (counters see the
            // volume repeatedly); the equivalence is only claimed loop-free.
            return Ok(());
        }
        dep.replay_traffic(&mut LossModel::none());
        let verdict = Detector::default()
            .detect(&fcm, &dep.dataplane.collect_counters())
            .unwrap();
        let mut canon = deviated.clone();
        canon.sort_unstable();
        canon.dedup();
        let oracle_detectable = is_detectable(&fcm, &canon).unwrap();
        prop_assert_eq!(
            verdict.anomalous,
            oracle_detectable,
            "verdict {} vs oracle {} (deviated {:?})",
            verdict.anomalous,
            oracle_detectable,
            canon
        );
    }

    /// Theorem 3: the sliced detector flags whenever the baseline does
    /// (noiseless), on random networks.
    #[test]
    fn theorem3_slicing_dominates_baseline(
        n in 4usize..8,
        chords in 0usize..4,
        topo_seed in 0u64..1000,
        seed in 0u64..500,
    ) {
        let topo = foces_net::generators::random_connected(n, chords, topo_seed);
        let flows = uniform_flows(&topo, topo.host_count() as f64 * 1000.0);
        let mut dep = provision(topo, &flows, RuleGranularity::PerFlowPair).unwrap();
        let fcm = Fcm::from_view(&dep.view);
        let sliced = SlicedFcm::from_fcm(&fcm);
        let mut rng = StdRng::seed_from_u64(seed);
        if inject_random_anomaly(
            &mut dep.dataplane,
            AnomalyKind::PathDeviation,
            &mut rng,
            &[],
        )
        .is_none()
        {
            return Ok(());
        }
        dep.replay_traffic(&mut LossModel::none());
        let counters = dep.dataplane.collect_counters();
        let base = Detector::default().detect(&fcm, &counters).unwrap();
        let sl = sliced.detect(&Detector::default(), &counters).unwrap();
        if base.anomalous {
            prop_assert!(sl.anomalous, "baseline flagged but slicing missed");
        }
    }
}

#[test]
fn theorem2_undetectable_implies_rbg_loop_on_paper_topologies() {
    // Exhaustively audit single-hop deviations (capped) on the evaluation
    // topologies with aggregated rules (where undetectable cases exist) and
    // check the necessary direction of Theorem 2 for every blind spot.
    for topo in [fattree(4), bcube(1, 4), dcell(1, 4)] {
        let flows = uniform_flows(&topo, 1000.0);
        let dep = provision(topo, &flows, RuleGranularity::PerDestination).unwrap();
        let fcm = Fcm::from_view(&dep.view);
        let audit = audit_deviations(&dep.view, &fcm, 400);
        for c in &audit.undetectable {
            assert!(undetectable_by_rank(&fcm, &c.deviated_history).unwrap());
            assert!(
                rbg_loop_exists(&fcm, &c.deviated_history),
                "undetectable deviation without an RBG loop: {c:?}"
            );
        }
    }
}

#[test]
fn per_pair_rules_leave_no_blind_spots_on_paper_topologies() {
    // With per-flow rules every deviated history hits rules of *other*
    // flows or misses entirely — the audit should find full coverage.
    for topo in [fattree(4), bcube(1, 4)] {
        let flows = uniform_flows(&topo, 1000.0);
        let dep = provision(topo, &flows, RuleGranularity::PerFlowPair).unwrap();
        let fcm = Fcm::from_view(&dep.view);
        let audit = audit_deviations(&dep.view, &fcm, 600);
        assert_eq!(
            audit.undetectable.len(),
            0,
            "per-pair compilation should be fully auditable"
        );
    }
}
