//! Incremental (reactive) operation: flows arrive and depart at runtime,
//! the controller installs rules on demand, and the FCM is maintained
//! in place — detection must behave exactly as if everything had been
//! provisioned up front.

use foces::{Detector, Fcm};
use foces_controlplane::{provision, uniform_flows, RuleGranularity};
use foces_dataplane::{inject_random_anomaly, AnomalyKind, LossModel};
use foces_net::generators::bcube;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn incremental_fcm_equals_full_rebuild() {
    let topo = bcube(1, 4);
    let all = uniform_flows(&topo, 240_000.0);
    let (first, rest) = all.split_at(all.len() / 2);

    // Incremental: provision half, build FCM, then add flows one by one.
    let mut dep = provision(topo, first, RuleGranularity::PerFlowPair).unwrap();
    let mut fcm = Fcm::from_view(&dep.view);
    for f in rest {
        let (new_rules, _path) = dep.add_flow(*f).unwrap();
        fcm.extend_rules(&new_rules);
        // Retrace just the new flow from the updated view.
        let flows = foces_atpg::trace_flows(&dep.view);
        let lf = flows
            .into_iter()
            .find(|lf| lf.ingress == f.src && lf.egress == f.dst)
            .expect("new flow is traceable");
        fcm.add_flows(vec![lf]);
    }

    // Full rebuild from the final view.
    let rebuilt = Fcm::from_view(&dep.view);
    assert_eq!(fcm.rule_count(), rebuilt.rule_count());
    assert_eq!(fcm.flow_count(), rebuilt.flow_count());

    // Same detection outcome on identical traffic (column order differs,
    // so compare verdicts, not matrices).
    dep.replay_traffic(&mut LossModel::none());
    let detector = Detector::default();
    let v_inc = detector
        .detect(&fcm, &fcm.counters_from(&dep.dataplane))
        .unwrap();
    let v_full = detector
        .detect(&rebuilt, &rebuilt.counters_from(&dep.dataplane))
        .unwrap();
    assert_eq!(v_inc.anomalous, v_full.anomalous);
    assert!(!v_inc.anomalous);
    assert!((v_inc.err_max - v_full.err_max).abs() < 1e-6);
}

#[test]
fn incremental_fcm_detects_anomalies() {
    let topo = bcube(1, 4);
    let all = uniform_flows(&topo, 240_000.0);
    let mut dep = provision(topo, &all[..60], RuleGranularity::PerFlowPair).unwrap();
    let mut fcm = Fcm::from_view(&dep.view);
    for f in &all[60..120] {
        let (new_rules, _) = dep.add_flow(*f).unwrap();
        fcm.extend_rules(&new_rules);
        let flows = foces_atpg::trace_flows(&dep.view);
        let lf = flows
            .into_iter()
            .find(|lf| lf.ingress == f.src && lf.egress == f.dst)
            .unwrap();
        fcm.add_flows(vec![lf]);
    }
    let mut rng = StdRng::seed_from_u64(6);
    inject_random_anomaly(
        &mut dep.dataplane,
        AnomalyKind::PathDeviation,
        &mut rng,
        &[],
    )
    .unwrap();
    dep.replay_traffic(&mut LossModel::none());
    let v = Detector::default()
        .detect(&fcm, &fcm.counters_from(&dep.dataplane))
        .unwrap();
    assert!(v.anomalous, "{v}");
}

#[test]
fn removed_flows_stop_contributing() {
    let topo = bcube(1, 4);
    let all = uniform_flows(&topo, 240_000.0);
    let dep = provision(topo, &all, RuleGranularity::PerFlowPair).unwrap();
    let mut fcm = Fcm::from_view(&dep.view);
    let before = fcm.flow_count();
    let removed = fcm.remove_flows(&[0, 5, 7]);
    assert_eq!(removed.len(), 3);
    assert_eq!(fcm.flow_count(), before - 3);
    assert_eq!(fcm.rule_count(), dep.view.rule_count(), "rules stay");
    // The removed flows' dedicated rules now expect zero traffic: if the
    // flows KEEP sending (e.g. stale senders), FOCES flags the mismatch.
    let mut dp = dep.dataplane.clone();
    for f in &dep.flows {
        dp.inject(
            f.src,
            foces_dataplane::pair_header(f.src, f.dst),
            f.rate,
            &mut LossModel::none(),
        );
    }
    let v = Detector::default()
        .detect(&fcm, &fcm.counters_from(&dp))
        .unwrap();
    assert!(
        v.anomalous,
        "traffic on de-provisioned flows is itself an anomaly: {v}"
    );
    // Whereas replaying only the remaining flows is clean.
    let mut dp2 = dep.dataplane.clone();
    for (i, f) in dep.flows.iter().enumerate() {
        if [0usize, 5, 7].contains(&i) {
            continue;
        }
        dp2.inject(
            f.src,
            foces_dataplane::pair_header(f.src, f.dst),
            f.rate,
            &mut LossModel::none(),
        );
    }
    let v2 = Detector::default()
        .detect(&fcm, &fcm.counters_from(&dp2))
        .unwrap();
    assert!(!v2.anomalous, "{v2}");
}

#[test]
fn extend_rules_preserves_row_alignment() {
    let topo = bcube(1, 4);
    let all = uniform_flows(&topo, 240_000.0);
    let mut dep = provision(topo, &all[..20], RuleGranularity::PerFlowPair).unwrap();
    let mut fcm = Fcm::from_view(&dep.view);
    let old_rules = fcm.rules().to_vec();
    let (new_rules, _) = dep.add_flow(all[20]).unwrap();
    fcm.extend_rules(&new_rules);
    // Old rows unchanged, new rows appended.
    assert_eq!(&fcm.rules()[..old_rules.len()], old_rules.as_slice());
    for (i, r) in new_rules.iter().enumerate() {
        assert_eq!(fcm.rules()[old_rules.len() + i], *r);
    }
}
