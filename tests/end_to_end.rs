//! End-to-end pipeline tests: topology → controller → data plane → ATPG →
//! FCM → detection, across all four paper topologies, both rule
//! granularities, and both anomaly kinds.

use foces::{Detector, Fcm, SlicedFcm};
use foces_controlplane::{provision, uniform_flows, Deployment, RuleGranularity};
use foces_dataplane::{inject_random_anomaly, AnomalyKind, LossModel};
use foces_net::generators::{bcube, dcell, fattree, stanford};
use foces_net::Topology;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn topologies() -> Vec<(&'static str, Topology)> {
    vec![
        ("stanford", stanford()),
        ("fattree4", fattree(4)),
        ("bcube14", bcube(1, 4)),
        ("dcell14", dcell(1, 4)),
    ]
}

fn deploy(topo: Topology, g: RuleGranularity) -> (Deployment, Fcm) {
    let flows = uniform_flows(&topo, topo.host_count() as f64 * 10_000.0);
    let dep = provision(topo, &flows, g).expect("provision");
    let fcm = Fcm::from_view(&dep.view);
    (dep, fcm)
}

#[test]
fn healthy_networks_pass_everywhere() {
    for (name, topo) in topologies() {
        for g in [
            RuleGranularity::PerFlowPair,
            RuleGranularity::PerDestination,
        ] {
            let (mut dep, fcm) = deploy(topo.clone(), g);
            dep.replay_traffic(&mut LossModel::none());
            let verdict = Detector::default()
                .detect(&fcm, &dep.dataplane.collect_counters())
                .expect("solve");
            assert!(!verdict.anomalous, "{name} {g:?}: {verdict}");
        }
    }
}

#[test]
fn deviations_detected_on_every_topology() {
    for (name, topo) in topologies() {
        let (mut dep, fcm) = deploy(topo, RuleGranularity::PerFlowPair);
        let mut rng = StdRng::seed_from_u64(11);
        inject_random_anomaly(
            &mut dep.dataplane,
            AnomalyKind::PathDeviation,
            &mut rng,
            &[],
        )
        .expect("rules exist");
        dep.replay_traffic(&mut LossModel::none());
        let verdict = Detector::default()
            .detect(&fcm, &dep.dataplane.collect_counters())
            .expect("solve");
        assert!(verdict.anomalous, "{name}: deviation missed: {verdict}");
    }
}

#[test]
fn early_drops_detected_on_every_topology() {
    for (name, topo) in topologies() {
        let (mut dep, fcm) = deploy(topo, RuleGranularity::PerFlowPair);
        let mut rng = StdRng::seed_from_u64(13);
        inject_random_anomaly(&mut dep.dataplane, AnomalyKind::EarlyDrop, &mut rng, &[])
            .expect("rules exist");
        dep.replay_traffic(&mut LossModel::none());
        let verdict = Detector::default()
            .detect(&fcm, &dep.dataplane.collect_counters())
            .expect("solve");
        assert!(verdict.anomalous, "{name}: early drop missed: {verdict}");
    }
}

#[test]
fn sliced_detection_agrees_on_anomalies() {
    for (name, topo) in topologies() {
        let (mut dep, fcm) = deploy(topo, RuleGranularity::PerFlowPair);
        let sliced = SlicedFcm::from_fcm(&fcm);
        let mut rng = StdRng::seed_from_u64(17);
        inject_random_anomaly(
            &mut dep.dataplane,
            AnomalyKind::PathDeviation,
            &mut rng,
            &[],
        )
        .expect("rules exist");
        dep.replay_traffic(&mut LossModel::none());
        let counters = dep.dataplane.collect_counters();
        let base = Detector::default().detect(&fcm, &counters).expect("solve");
        let sl = sliced
            .detect(&Detector::default(), &counters)
            .expect("solve");
        if base.anomalous {
            assert!(sl.anomalous, "{name}: Theorem 3 violated");
        }
    }
}

#[test]
fn attack_repair_cycle_restores_normalcy() {
    let (mut dep, fcm) = deploy(dcell(1, 4), RuleGranularity::PerFlowPair);
    let detector = Detector::default();
    let mut rng = StdRng::seed_from_u64(23);
    for round in 0..3 {
        // Healthy round.
        dep.dataplane.reset_counters();
        dep.replay_traffic(&mut LossModel::none());
        assert!(
            !detector
                .detect(&fcm, &dep.dataplane.collect_counters())
                .unwrap()
                .anomalous,
            "round {round}: healthy phase flagged"
        );
        // Attack round.
        let applied = inject_random_anomaly(
            &mut dep.dataplane,
            AnomalyKind::PathDeviation,
            &mut rng,
            &[],
        )
        .unwrap();
        dep.dataplane.reset_counters();
        dep.replay_traffic(&mut LossModel::none());
        assert!(
            detector
                .detect(&fcm, &dep.dataplane.collect_counters())
                .unwrap()
                .anomalous,
            "round {round}: attack missed"
        );
        // Repair.
        applied.revert(&mut dep.dataplane).unwrap();
    }
}

#[test]
fn fcm_matches_live_counters_exactly_when_healthy() {
    // The FCM's prediction H·X must equal the collected counters in a
    // lossless, healthy network — across the whole pipeline.
    for (name, topo) in topologies() {
        let (mut dep, fcm) = deploy(topo, RuleGranularity::PerFlowPair);
        dep.replay_traffic(&mut LossModel::none());
        let observed = dep.dataplane.collect_counters();
        // Volumes in FCM column order: match flows by (ingress, egress).
        let volumes: Vec<f64> = fcm
            .flows()
            .iter()
            .map(|lf| {
                dep.flows
                    .iter()
                    .find(|f| f.src == lf.ingress && f.dst == lf.egress)
                    .map(|f| f.rate)
                    .expect("every class corresponds to a provisioned flow")
            })
            .collect();
        let predicted = fcm.expected_counters(&volumes);
        for (i, (p, o)) in predicted.iter().zip(&observed).enumerate() {
            assert!(
                (p - o).abs() < 1e-6,
                "{name}: rule {i} predicted {p} observed {o}"
            );
        }
    }
}

#[test]
fn noisy_healthy_rounds_stay_below_default_threshold() {
    // 5% loss + per-pair rules: healthy AI must stay below 4.5 (the paper's
    // folded-normal derivation) across many rounds.
    let (dep, fcm) = deploy(bcube(1, 4), RuleGranularity::PerFlowPair);
    let detector = Detector::default();
    for seed in 0..20 {
        let mut dp = dep.dataplane.clone();
        dp.reset_counters();
        let mut loss = LossModel::sampled(0.05, seed);
        for f in &dep.flows {
            let header = foces_dataplane::pair_header(f.src, f.dst);
            dp.inject(f.src, header, f.rate, &mut loss);
        }
        let v = detector.detect(&fcm, &dp.collect_counters()).unwrap();
        assert!(!v.anomalous, "seed {seed}: {v}");
    }
}
