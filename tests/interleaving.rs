//! Update/collection interleaving test (ROADMAP item 5b, grounded in
//! Tracer's observation — arXiv:2410.23763 — that consistency checking
//! must tolerate rule updates landing *during* telemetry collection).
//!
//! One multi-rule update (a flow reroute through a waypoint: old-path
//! rules drained, new-path rules installed, all journaled under one
//! generation) is scheduled against the counter-collection epoch at
//! every split fraction `f` — `f` of the epoch's traffic runs under the
//! old rules, the update commits, and the remaining `1 − f` runs under
//! the new rules. `f = 0` and `f = 1` are the degenerate schedules
//! (update strictly before / strictly after the traffic but inside the
//! same collection window).
//!
//! What must hold for **every** interleaving:
//! * the PR-2 reconciliation (journaled rows masked, rerouted flows
//!   quarantined, FCM rebuilt at the boundary) scores the mixed epoch —
//!   and every epoch after it — as normal: no false alarm;
//! * a true packet dropper on a switch the update never touches is still
//!   caught within the hysteresis-plus-churn-suppression bound: masking
//!   absorbs the update, not the attack.

use foces::AlarmState;
use foces_controlplane::{provision, uniform_flows, Deployment, RuleGranularity};
use foces_dataplane::{inject_random_anomaly, AnomalyKind, LossModel};
use foces_net::generators::fattree;
use foces_net::SwitchId;
use foces_runtime::{FaultProfile, RuntimeConfig, RuntimeService, SimTransport};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The enumerated schedules: what fraction of the epoch's traffic the
/// update lands after.
const SPLITS: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];
const UPDATE_AT: u64 = 2;

fn testbed() -> Deployment {
    let topo = fattree(4);
    let flows = uniform_flows(&topo, 240_000.0);
    provision(topo, &flows, RuleGranularity::PerFlowPair).expect("provision fattree(4)")
}

fn quiet_transport() -> SimTransport {
    SimTransport::new(
        7,
        FaultProfile {
            latency_ms: 1.0,
            jitter_ms: 0.0,
            drop_prob: 0.0,
            reorder_prob: 0.0,
            offline: Vec::new(),
        },
    )
}

/// Picks a flow and a waypoint that reroute it onto a different simple
/// path, and returns them with every switch on the old *or* new path
/// (the update's whole blast radius — where a dropper must not be
/// placed for the "never touched by the update" variant to be
/// meaningful). Same-edge-switch pairs have no reroute, so the search
/// spans flows.
fn planned_update(dep: &Deployment) -> (usize, SwitchId, Vec<SwitchId>) {
    for flow in 0..dep.flows.len() {
        let old_path = &dep.expected_paths[flow];
        if old_path.len() < 2 {
            continue;
        }
        for w in dep.dataplane.topology().switches() {
            if old_path.contains(&w) {
                continue;
            }
            let mut probe = dep.clone();
            if probe.reroute_flow_via(flow, &[w]).is_ok() {
                let mut blast = old_path.clone();
                blast.extend_from_slice(&probe.expected_paths[flow]);
                blast.sort_unstable();
                blast.dedup();
                return (flow, w, blast);
            }
        }
    }
    panic!("no waypoint reroutes any flow on this fabric");
}

/// Replays one epoch's traffic with the reroute committed after fraction
/// `split` of it, then scores the epoch.
fn interleaved_epoch(
    dep: &mut Deployment,
    service: &mut RuntimeService,
    flow: usize,
    waypoint: SwitchId,
    split: f64,
) -> foces_runtime::EpochReport {
    let mut loss = LossModel::none();
    dep.dataplane.reset_counters();
    dep.replay_traffic_scaled(&mut loss, split);
    dep.reroute_flow_via(flow, &[waypoint])
        .expect("planned reroute must apply");
    dep.replay_traffic_scaled(&mut loss, 1.0 - split);
    service
        .run_epoch(&dep.dataplane, &dep.view)
        .expect("mixed-generation epochs reconcile, never fail")
}

fn clean_epoch(dep: &mut Deployment, service: &mut RuntimeService) -> foces_runtime::EpochReport {
    let mut loss = LossModel::none();
    dep.dataplane.reset_counters();
    dep.replay_traffic(&mut loss);
    service
        .run_epoch(&dep.dataplane, &dep.view)
        .expect("clean epochs never fail")
}

#[test]
fn every_interleaving_of_update_and_collection_reconciles_without_alarm() {
    for &split in &SPLITS {
        let mut dep = testbed();
        let (flow, waypoint, _) = planned_update(&dep);
        let mut service = RuntimeService::with_sim_transport(
            &dep.view,
            quiet_transport(),
            RuntimeConfig::default(),
        );

        for epoch in 0..6u64 {
            let r = if epoch == UPDATE_AT {
                interleaved_epoch(&mut dep, &mut service, flow, waypoint, split)
            } else {
                clean_epoch(&mut dep, &mut service)
            };
            assert!(
                !r.anomalous(),
                "split {split}: healthy epoch {epoch} scored anomalous ({:?})",
                r.mode
            );
            assert!(
                !r.alarm_raised,
                "split {split}: false alarm at epoch {epoch}"
            );
            if epoch == UPDATE_AT {
                assert!(r.churn, "split {split}: the update epoch must flag churn");
                assert!(
                    r.mode.is_reconciled(),
                    "split {split}: update epoch mode {:?}, want reconciled",
                    r.mode
                );
            }
        }
        let m = *service.metrics();
        assert_eq!(m.alarms_raised, 0, "split {split}");
        assert!(
            m.fcm_rebuilds > 0,
            "split {split}: the FCM must follow the view"
        );
        assert_eq!(service.state(), AlarmState::Normal, "split {split}");
    }
}

#[test]
fn a_true_dropper_is_caught_under_every_interleaving() {
    let config = RuntimeConfig::default();
    // The dropper activates on the update epoch itself (the adversary's
    // best moment): `raise_after` anomalous rounds, stretched by the
    // churn-suppression slack the reconciled epoch arms.
    let bound = UPDATE_AT
        + u64::from(config.raise_after)
        + u64::from(config.churn_suppress + config.churn_penalty)
        + 1;
    let epochs = bound + 3;

    for &split in &SPLITS {
        let mut dep = testbed();
        let (flow, waypoint, blast) = planned_update(&dep);
        let mut service = RuntimeService::with_sim_transport(&dep.view, quiet_transport(), config);

        let mut first_raise = None;
        for epoch in 0..epochs {
            let r = if epoch == UPDATE_AT {
                // The dropper activates entering the update epoch itself
                // (the adversary's best moment to hide), on a switch the
                // update never touches.
                let mut rng = StdRng::seed_from_u64(41);
                let applied = inject_random_anomaly(
                    &mut dep.dataplane,
                    AnomalyKind::EarlyDrop,
                    &mut rng,
                    &blast,
                )
                .expect("an eligible rule off the update's paths must exist");
                assert!(
                    !blast.contains(&applied.rule.switch),
                    "dropper landed on a switch the update touches"
                );
                interleaved_epoch(&mut dep, &mut service, flow, waypoint, split)
            } else {
                clean_epoch(&mut dep, &mut service)
            };
            if r.alarm_raised && first_raise.is_none() {
                first_raise = Some(epoch);
            }
        }
        let first = first_raise
            .unwrap_or_else(|| panic!("split {split}: reconciliation swallowed the dropper"));
        assert!(
            first >= UPDATE_AT,
            "split {split}: alarm at {first} predates the dropper"
        );
        assert!(
            first <= bound,
            "split {split}: alarm at {first} outran the bound {bound}"
        );
        assert_eq!(
            service.state(),
            AlarmState::Alarmed,
            "split {split}: the dropper never stops, the alarm must stand"
        );
    }
}
