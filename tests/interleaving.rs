//! Update/collection interleaving conformance (ROADMAP item 5b, grounded
//! in Tracer's observation — arXiv:2410.23763 — that consistency checking
//! must tolerate rule updates landing *during* telemetry collection).
//!
//! Since PR 9 this suite drives the `foces-sched` schedule-enumeration
//! harness instead of hand-rolled split loops:
//!
//! * the original two single-update tests are the trivial N=1 case —
//!   [`ScheduleSet::Uniform`] with 4 segments reproduces exactly the old
//!   global split fractions {0, ¼, ½, ¾, 1};
//! * two *overlapping* reroutes commit switch-by-switch in sampled
//!   interleavings, and must still reconcile (and still not mask a true
//!   dropper outside both blast radii);
//! * commits race the §13 shard fan-out: shard rounds fired at slot
//!   boundaries — including with stale-generation members — must score
//!   reconciled or blind, never anomalous.
//!
//! The exhaustive enumeration (every non-equivalent schedule for two
//! concurrent updates on FatTree(4)) runs in CI via `foces interleave`;
//! these tier-1 tests keep to bounded samples so debug runs stay fast.

use foces_controlplane::testkit::plan_reroutes;
use foces_controlplane::{provision, uniform_flows, Deployment, FlowSpec, RuleGranularity};
use foces_net::generators::fattree;
use foces_runtime::RuntimeConfig;
use foces_sched::{
    run_interleave, run_interleave_with_plans, HarnessConfig, InterleaveConfig, ScheduleSet,
};

const UPDATE_AT: u64 = 2;

fn testbed() -> Deployment {
    let topo = fattree(4);
    let flows = uniform_flows(&topo, 240_000.0);
    provision(topo, &flows, RuleGranularity::PerFlowPair).expect("provision fattree(4)")
}

/// A smaller flow set for the multi-update tests: every third all-pairs
/// flow keeps per-schedule service builds cheap without losing
/// reroutability or FCM rank.
fn sampled_testbed() -> Deployment {
    let topo = fattree(4);
    let flows: Vec<FlowSpec> = uniform_flows(&topo, 240_000.0)
        .into_iter()
        .step_by(3)
        .collect();
    provision(topo, &flows, RuleGranularity::PerFlowPair).expect("provision fattree(4)")
}

fn harness(update_at: u64, epochs_after: u64) -> HarnessConfig {
    HarnessConfig {
        runtime: RuntimeConfig::default(),
        update_at,
        epochs_after,
        transport_seed: 7,
    }
}

#[test]
fn every_global_split_of_one_update_reconciles_without_alarm() {
    // The pre-harness test enumerated one update at splits {0,.25,.5,.75,1}:
    // exactly the uniform schedules of a 4-segment window, N=1.
    let dep = testbed();
    let cfg = InterleaveConfig {
        updates: 1,
        segments: 4,
        mode: ScheduleSet::Uniform,
        harness: harness(UPDATE_AT, 3),
        check_dropper: false,
        fanout_shards: None,
        ..InterleaveConfig::default()
    };
    let report = run_interleave(&dep, &cfg).expect("harness runs");
    assert_eq!(report.explored, 5, "five global splits");
    assert!(
        report.ok(),
        "healthy schedules must reconcile: {:?}",
        report.minimal_failing
    );
    for o in &report.outcomes {
        assert!(o.schedule.is_uniform());
        assert_eq!(o.update_mode, "Reconciled");
        assert_eq!(o.alarms, 0);
    }
}

#[test]
fn a_true_dropper_is_caught_under_every_global_split() {
    let dep = testbed();
    let runtime = RuntimeConfig::default();
    let bound = UPDATE_AT + runtime.churn_raise_bound();
    let cfg = InterleaveConfig {
        updates: 1,
        segments: 4,
        mode: ScheduleSet::Uniform,
        harness: harness(UPDATE_AT, bound - UPDATE_AT + 2),
        check_dropper: true,
        dropper_seed: 41,
        fanout_shards: None,
        ..InterleaveConfig::default()
    };
    let report = run_interleave(&dep, &cfg).expect("harness runs");
    assert!(
        report.ok(),
        "dropper must be caught in bound on every split: {:?}",
        report.minimal_failing
    );
    for o in &report.outcomes {
        let first = o
            .dropper_first_raise
            .expect("reconciliation must not swallow the dropper");
        assert!(
            (UPDATE_AT..=bound).contains(&first),
            "split {}: alarm at {first} outside [{UPDATE_AT}, {bound}]",
            o.schedule.label()
        );
    }
}

#[test]
fn overlapping_reroutes_with_interleaved_per_switch_commits_reconcile() {
    let dep = sampled_testbed();
    // Pick two reroutes whose blast radii genuinely intersect — the case
    // where per-switch FIFO ordering and journal masking interact.
    let candidates = plan_reroutes(&dep, 16);
    let (a, b) = candidates
        .iter()
        .enumerate()
        .find_map(|(i, p)| {
            candidates[i + 1..]
                .iter()
                .find(|q| {
                    let pb = p.blast_radius();
                    q.blast_radius().iter().any(|s| pb.contains(s))
                })
                .map(|q| (p.clone(), q.clone()))
        })
        .expect("fattree(4) offers overlapping reroutes");
    assert_ne!(a.flow, b.flow, "distinct flows");
    let cfg = InterleaveConfig {
        segments: 2,
        mode: ScheduleSet::Sample { count: 5, seed: 7 },
        harness: harness(1, 2),
        check_dropper: true,
        dropper_seed: 41,
        fanout_shards: None,
        ..InterleaveConfig::default()
    };
    let report = run_interleave_with_plans(&dep, vec![a, b], &cfg).expect("harness runs");
    assert_eq!(report.explored, 5);
    assert!(
        report.ok(),
        "interleaved overlapping commits must reconcile and not mask the dropper: {:?}",
        report.minimal_failing
    );
}

#[test]
fn commits_racing_the_shard_fanout_stay_reconciled() {
    let dep = sampled_testbed();
    let cfg = InterleaveConfig {
        updates: 2,
        segments: 2,
        mode: ScheduleSet::Sample { count: 3, seed: 11 },
        harness: harness(1, 1),
        check_dropper: false,
        fanout_shards: Some(2),
        ..InterleaveConfig::default()
    };
    let report = run_interleave(&dep, &cfg).expect("harness runs");
    assert!(
        report.ok(),
        "every shard round fired mid-commit must be reconciled or blind: {:?}",
        report.minimal_failing
    );
    // The race actually happened: some round saw a member whose table
    // already stamped a generation the shard FCM has never seen.
    let stale: u64 = report
        .outcomes
        .iter()
        .filter_map(|o| o.fanout.as_ref())
        .map(|f| f.stale_rounds)
        .sum();
    assert!(stale > 0, "stale-generation shard members must occur");
    let reconciled: u64 = report
        .outcomes
        .iter()
        .filter_map(|o| o.fanout.as_ref())
        .map(|f| f.reconciled)
        .sum();
    assert!(reconciled > 0, "reconciled shard rounds must occur");
}
