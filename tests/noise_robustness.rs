//! Noise-robustness integration tests: packet loss and counter-polling
//! skew must not trip the threshold detector in healthy networks (the
//! false-positive half of §IV-A), while anomalies must stay visible at the
//! paper's moderate loss rates (the true-positive half of §VI-C/D).

use foces::{threshold, Detector, Fcm};
use foces_controlplane::{provision, uniform_flows, Deployment, RuleGranularity};
use foces_dataplane::{inject_random_anomaly, AnomalyKind, LossModel};
use foces_net::generators::{bcube, stanford};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn testbed(topo: foces_net::Topology) -> (Deployment, Fcm) {
    let flows = uniform_flows(&topo, topo.host_count() as f64 * 15_000.0);
    let dep = provision(topo, &flows, RuleGranularity::PerFlowPair).unwrap();
    let fcm = Fcm::from_view(&dep.view);
    (dep, fcm)
}

fn round(dep: &Deployment, loss: f64, skew: f64, seed: u64) -> Vec<f64> {
    let mut dp = dep.dataplane.clone();
    let mut lm = if loss > 0.0 {
        LossModel::sampled(loss, seed)
    } else {
        LossModel::none()
    };
    for f in &dep.flows {
        dp.inject(
            f.src,
            foces_dataplane::pair_header(f.src, f.dst),
            f.rate,
            &mut lm,
        );
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
    dp.collect_counters_skewed(skew, &mut rng)
}

#[test]
fn healthy_false_positive_rate_is_low_at_moderate_loss() {
    let (dep, fcm) = testbed(bcube(1, 4));
    let detector = Detector::default();
    for loss in [0.02, 0.05, 0.10] {
        let mut fps = 0;
        let rounds = 25;
        for seed in 0..rounds {
            let counters = round(&dep, loss, 0.02, seed);
            if detector.detect(&fcm, &counters).unwrap().anomalous {
                fps += 1;
            }
        }
        // The ratio statistic has a genuine ~10% FP floor at the default
        // threshold (the paper's ROC shows nonzero FP too); bound it at 20%.
        assert!(
            fps <= rounds / 5,
            "loss {loss}: {fps}/{rounds} false positives"
        );
    }
}

#[test]
fn anomalies_remain_visible_through_ten_percent_loss() {
    let (dep, fcm) = testbed(bcube(1, 4));
    let detector = Detector::default();
    let mut detected = 0;
    let rounds = 20;
    for seed in 0..rounds {
        let mut dp = dep.dataplane.clone();
        let mut rng = StdRng::seed_from_u64(seed);
        inject_random_anomaly(&mut dp, AnomalyKind::PathDeviation, &mut rng, &[]).unwrap();
        let mut lm = LossModel::sampled(0.10, seed + 500);
        for f in &dep.flows {
            dp.inject(
                f.src,
                foces_dataplane::pair_header(f.src, f.dst),
                f.rate,
                &mut lm,
            );
        }
        let mut srng = StdRng::seed_from_u64(seed ^ 0xBEEF);
        let counters = dp.collect_counters_skewed(0.02, &mut srng);
        if detector.detect(&fcm, &counters).unwrap().anomalous {
            detected += 1;
        }
    }
    assert!(
        detected >= rounds * 9 / 10,
        "only {detected}/{rounds} anomalies detected at 10% loss"
    );
}

#[test]
fn anomaly_index_gap_narrows_with_loss() {
    // Fig. 7's qualitative claim: the normal/anomaly separation shrinks as
    // loss grows (but persists at 10%).
    let (dep, fcm) = testbed(bcube(1, 4));
    let detector = Detector::default();
    let mut gaps = Vec::new();
    for loss in [0.0, 0.05, 0.10] {
        let normal_ai = detector
            .detect(&fcm, &round(&dep, loss, 0.02, 77))
            .unwrap()
            .anomaly_index;
        let mut dp = dep.dataplane.clone();
        let mut rng = StdRng::seed_from_u64(3);
        inject_random_anomaly(&mut dp, AnomalyKind::PathDeviation, &mut rng, &[]).unwrap();
        let mut lm = if loss > 0.0 {
            LossModel::sampled(loss, 77)
        } else {
            LossModel::none()
        };
        for f in &dep.flows {
            dp.inject(
                f.src,
                foces_dataplane::pair_header(f.src, f.dst),
                f.rate,
                &mut lm,
            );
        }
        let mut srng = StdRng::seed_from_u64(99);
        let bad_ai = detector
            .detect(&fcm, &dp.collect_counters_skewed(0.02, &mut srng))
            .unwrap()
            .anomaly_index;
        assert!(bad_ai > normal_ai, "loss {loss}: no separation");
        gaps.push(bad_ai.min(1e9) - normal_ai);
    }
    assert!(
        gaps[0] > gaps[1] && gaps[1] > gaps[2],
        "gap must narrow with loss: {gaps:?}"
    );
}

#[test]
fn stanford_tolerates_polling_skew_alone() {
    // Polling skew alone occasionally nudges the index just over 4.5 (the
    // statistic is a ratio of extremes); require the flag rate to stay low
    // and the indices to stay near the threshold rather than exploding.
    let (dep, fcm) = testbed(stanford());
    let detector = Detector::default();
    let mut flagged = 0;
    for seed in 0..15 {
        let counters = round(&dep, 0.0, 0.03, seed);
        let v = detector.detect(&fcm, &counters).unwrap();
        if v.anomalous {
            flagged += 1;
            assert!(v.anomaly_index < 8.0, "seed {seed}: runaway index {v}");
        }
    }
    assert!(flagged <= 3, "{flagged}/15 skew-only rounds flagged");
}

#[test]
fn threshold_derivation_matches_observed_noise_quantiles() {
    // The folded-normal analysis says healthy residual max/median stays
    // below ≈ 3σ / 0.675σ ≈ 4.4 with high probability. Check empirically:
    // healthy anomaly indices under pure Gaussian-ish noise stay below the
    // derived threshold in the vast majority of rounds.
    let derived = threshold::derive_threshold(3.0);
    assert!((derived - 4.45).abs() < 0.05);
    let (dep, fcm) = testbed(bcube(1, 4));
    let detector = Detector::with_threshold(derived);
    let mut below = 0;
    let rounds = 30;
    for seed in 100..100 + rounds {
        let counters = round(&dep, 0.03, 0.02, seed);
        if !detector.detect(&fcm, &counters).unwrap().anomalous {
            below += 1;
        }
    }
    assert!(
        below as f64 >= rounds as f64 * 0.9,
        "{below}/{rounds} healthy rounds under the derived threshold"
    );
}

#[test]
fn deterministic_loss_is_reproducible_and_sampled_loss_converges() {
    let (dep, fcm) = testbed(bcube(1, 4));
    let detector = Detector::default();
    // Deterministic (expected-value) loss: two runs give identical verdicts.
    let run = |seed| {
        let mut dp = dep.dataplane.clone();
        let mut lm = LossModel::deterministic(0.08);
        for f in &dep.flows {
            dp.inject(
                f.src,
                foces_dataplane::pair_header(f.src, f.dst),
                f.rate,
                &mut lm,
            );
        }
        let _ = seed;
        detector.detect(&fcm, &dp.collect_counters()).unwrap()
    };
    let a = run(1);
    let b = run(2);
    assert_eq!(a.anomaly_index.to_bits(), b.anomaly_index.to_bits());
    // Deterministic loss along every hop is *structured* noise; the index
    // must still stay below threshold in the healthy network.
    assert!(!a.anomalous, "{a}");
}
