//! Byzantine-resilience acceptance test: a counter-forging switch on the
//! paper's FatTree(4) fabric must be *localized* — not just detected —
//! and its counters quarantined, without ever implicating an honest
//! switch.
//!
//! The two halves of the PR's acceptance criteria:
//! * **Localization within the hysteresis bound**: a single naive liar
//!   compromised at a known epoch is localized by the leave-one-out
//!   cross-validation no later than `fake_at + raise_after + 1`, the
//!   localized switch is exactly the compromised one, and no honest
//!   switch is ever quarantined at any point of the run. After the liar
//!   confesses, the quarantine is released and the alarm clears.
//! * **No paranoia**: a fully honest run under rolling rule churn with
//!   the Byzantine layer armed ends with zero localizations, zero
//!   quarantines and zero unresolved-Byzantine epochs.

use foces::AlarmState;
use foces_controlplane::{provision, uniform_flows, Deployment, RuleGranularity};
use foces_net::generators::fattree;
use foces_runtime::{ByzantineConfig, FaultScenario, RuntimeConfig, ScenarioDriver};

const EPOCHS: u64 = 14;
const FAKE_AT: u64 = 2;
const CONFESS_AT: u64 = 9;

fn testbed() -> Deployment {
    let topo = fattree(4);
    let flows = uniform_flows(&topo, 240_000.0);
    provision(topo, &flows, RuleGranularity::PerFlowPair).expect("provision fattree(4)")
}

/// A quiet control channel: the test isolates the Byzantine machinery
/// from transport noise (the noisy-channel interplay is covered by the
/// proptest battery in `crates/runtime/tests/byzantine_props.rs`).
fn quiet_scenario(epochs: u64) -> FaultScenario {
    FaultScenario {
        epochs,
        loss: 0.0,
        drop_prob: 0.0,
        latency_ms: 1.0,
        jitter_ms: 0.0,
        reorder_prob: 0.0,
        anomaly_window: None,
        seed: 3,
        ..FaultScenario::default()
    }
}

fn byzantine_config() -> RuntimeConfig {
    RuntimeConfig {
        byzantine: ByzantineConfig {
            enabled: true,
            ..ByzantineConfig::default()
        },
        ..RuntimeConfig::default()
    }
}

#[test]
fn single_liar_is_localized_within_the_hysteresis_bound() {
    let scenario = FaultScenario {
        liars: 1,
        fake_window: Some((FAKE_AT, CONFESS_AT)),
        liar_seed: 11,
        ..quiet_scenario(EPOCHS)
    };
    let config = byzantine_config();
    // Localization can only follow the alarm, and the alarm needs
    // `raise_after` anomalous rounds starting at `fake_at`; the LOO pass
    // gets one more epoch of slack to converge on the culprit.
    let bound = FAKE_AT + u64::from(config.raise_after) + 1;

    let mut driver = ScenarioDriver::new(testbed(), scenario, config);
    // Step manually: `liar_switches()` is only populated while the fake
    // window is open, so the culprit's identity is captured mid-run.
    let mut reports = Vec::new();
    let mut liars = Vec::new();
    for _ in 0..EPOCHS {
        reports.push(driver.step().expect("no round may fail outright"));
        if !driver.liar_switches().is_empty() {
            liars = driver.liar_switches().to_vec();
        }
    }
    assert_eq!(reports.len(), EPOCHS as usize);
    assert_eq!(
        liars.len(),
        1,
        "the scenario compromises exactly one switch"
    );
    let liar = liars[0];

    // The liar is localized, exactly once, within the bound.
    let localized: Vec<(u64, _)> = reports
        .iter()
        .filter_map(|r| r.localized_liar.map(|s| (r.epoch, s)))
        .collect();
    assert_eq!(
        localized.len(),
        1,
        "exactly one localization event, got {localized:?}"
    );
    let (when, who) = localized[0];
    assert_eq!(
        who, liar,
        "localized s{} but the liar is s{}",
        who.0, liar.0
    );
    assert!(
        when >= FAKE_AT,
        "localization at {when} predates the compromise"
    );
    assert!(
        when <= bound,
        "localization at {when} outran the hysteresis bound {bound}"
    );

    // Quarantine discipline: only the liar is ever quarantined, and the
    // quarantine is live for every epoch between localization and release.
    let mut released = None;
    for r in &reports {
        for q in &r.quarantined_switches {
            assert_eq!(
                *q, liar,
                "epoch {}: honest switch s{} quarantined",
                r.epoch, q.0
            );
        }
        if let Some(s) = r.quarantine_released {
            assert_eq!(s, liar);
            released = Some(r.epoch);
        }
        if r.epoch > when && released.is_none() {
            assert_eq!(
                r.quarantined_switches,
                vec![liar],
                "epoch {}: quarantine dropped before the re-probe released it",
                r.epoch
            );
        }
    }
    let released = released.expect("the confessed liar's quarantine must be released");
    assert!(
        released >= CONFESS_AT,
        "release at {released} predates the confession at {CONFESS_AT}"
    );

    // The run resolves: alarm cleared, nobody quarantined, books balanced.
    let m = *driver.service().metrics();
    assert_eq!(m.liars_localized, 1);
    assert_eq!(m.switch_quarantines, 1);
    assert_eq!(m.quarantine_releases, 1);
    assert!(
        m.loo_solves > 0,
        "localization must go through the leave-one-out pass"
    );
    assert!(
        m.loo_downdates > 0,
        "LOO must reuse the cached factor via downdates, not refactorize"
    );
    assert_eq!(driver.service().state(), AlarmState::Normal);
    assert!(driver.service().quarantined_switches().is_empty());
    assert!(!driver.service().byzantine_unresolved());
}

#[test]
fn honest_churning_network_is_never_quarantined() {
    let scenario = FaultScenario {
        epochs: 30,
        churn_period: Some(3),
        churn_seed: 21,
        ..quiet_scenario(30)
    };
    let mut driver = ScenarioDriver::new(testbed(), scenario, byzantine_config());
    let reports = driver.run().expect("no round may fail outright");

    assert!(
        driver.churn_events() > 0,
        "the schedule must actually churn"
    );
    let m = *driver.service().metrics();
    assert_eq!(m.alarms_raised, 0, "honest churn is not an anomaly");
    assert_eq!(m.liars_localized, 0);
    assert_eq!(
        m.switch_quarantines, 0,
        "no honest switch may be quarantined"
    );
    assert_eq!(m.unresolved_byzantine, 0);
    for r in &reports {
        assert!(
            r.localized_liar.is_none() && r.quarantined_switches.is_empty(),
            "epoch {}: spurious Byzantine verdict on an honest network",
            r.epoch
        );
    }
    assert_eq!(
        driver.service().suspicion().max_score(),
        0.0,
        "a clean channel accumulates zero suspicion"
    );
    assert_eq!(driver.service().state(), AlarmState::Normal);
}
