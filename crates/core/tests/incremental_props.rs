//! Equivalence property tests for the incremental (warm) solver.
//!
//! The contract under test: applying a random journal of controller
//! updates (reroutes and granularity refinements) and solving **warm** —
//! through [`IncrementalSolver`]'s patched cached factorization — yields
//! the same residual vector, within solver tolerance, as rebuilding the
//! FCM and solving **cold**. Since verdicts are a function of the residual
//! vector, the incremental path can never change a detection verdict.
//!
//! 256 cases, per the regression battery's acceptance bar.

use foces::{Detector, EquationSystem, Fcm, FcmDelta, IncrementalSolver, SolverKind};
use foces_controlplane::{provision, uniform_flows, Deployment, RuleGranularity};
use foces_dataplane::LossModel;
use foces_net::generators::ring;
use foces_net::SwitchId;
use proptest::prelude::*;

/// One journaled controller update, derived from raw strategy seeds.
#[derive(Debug, Clone, Copy)]
struct Op {
    flow_seed: usize,
    waypoint_seed: usize,
    /// 0 = reroute via a random off-path waypoint, 1 = refine granularity.
    kind: u8,
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (0usize..10_000, 0usize..10_000, 0u8..2).prop_map(|(flow_seed, waypoint_seed, kind)| Op {
            flow_seed,
            waypoint_seed,
            kind,
        }),
        1..6,
    )
}

fn deployment() -> Deployment {
    let topo = ring(5);
    let flows = uniform_flows(&topo, 20_000.0);
    provision(topo, &flows, RuleGranularity::PerDestination).expect("ring(5) provisions")
}

/// Applies one journal op; falls back to a refinement when the reroute
/// has no admissible waypoint.
fn apply_op(dep: &mut Deployment, op: Op) {
    let flow = op.flow_seed % dep.flows.len();
    let rerouted = if op.kind == 0 {
        let path = dep.expected_paths[flow].clone();
        let candidates: Vec<SwitchId> = dep
            .view
            .topology()
            .switches()
            .filter(|s| !path.contains(s))
            .collect();
        if candidates.is_empty() {
            false
        } else {
            let w = candidates[op.waypoint_seed % candidates.len()];
            dep.reroute_flow_via(flow, &[w]).is_ok()
        }
    } else {
        false
    };
    if !rerouted && op.kind != 0 {
        let _ = dep.refine_flow(flow);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Warm-after-journal residuals equal cold-rebuild residuals.
    #[test]
    fn warm_solve_matches_cold_rebuild(
        ops in ops_strategy(),
        perturb_row in 0usize..10_000,
        perturb in 0.0f64..2_000.0,
    ) {
        let mut dep = deployment();
        let fcm0 = Fcm::from_view(&dep.view);
        let generation0 = dep.view.generation();

        // Epoch 0: warm the cache on the pre-churn system.
        dep.replay_traffic(&mut LossModel::none());
        let counters0 = fcm0.counters_from(&dep.dataplane);
        let mut warm = IncrementalSolver::default();
        let (_, path0) = warm.solve(&fcm0, &counters0).unwrap();
        prop_assert!(!path0.is_warm(), "first solve must be cold");

        // Apply the journal.
        for &op in &ops {
            apply_op(&mut dep, op);
        }

        // Rebuild the FCM from the post-churn view and sanity-check the
        // delta against the journal.
        let fcm1 = Fcm::from_view(&dep.view);
        let delta = FcmDelta::from_journal(&fcm0, &fcm1, &dep.view, generation0);
        if dep.view.generation() == generation0 {
            prop_assert!(delta.is_empty(), "no update committed but delta {delta}");
        } else {
            prop_assert!(
                !delta.is_empty(),
                "journal advanced {} -> {} but delta is empty",
                generation0,
                dep.view.generation()
            );
        }

        // Epoch 1: fresh traffic under the new rules, optionally with a
        // counter perturbation so anomalous verdicts are exercised too.
        dep.dataplane.reset_counters();
        dep.replay_traffic(&mut LossModel::none());
        let mut counters1 = fcm1.counters_from(&dep.dataplane);
        if perturb > 1_000.0 {
            let i = perturb_row % counters1.len();
            counters1[i] += perturb;
        }

        let cold = EquationSystem::new(SolverKind::DirectDense)
            .solve(&fcm1, &counters1)
            .unwrap();
        let (warm_out, _) = warm.solve(&fcm1, &counters1).unwrap();

        let scale = counters1.iter().fold(1.0_f64, |m, v| m.max(v.abs()));
        let tol = 1e-6 * scale;
        prop_assert_eq!(warm_out.residual.len(), cold.residual.len());
        for (i, (a, b)) in warm_out.residual.iter().zip(&cold.residual).enumerate() {
            prop_assert!(
                (a - b).abs() <= tol,
                "residual[{}] warm {} vs cold {} (tol {})",
                i, a, b, tol
            );
        }

        // Verdicts are a function of the residual vector: they must agree.
        let det = Detector::default();
        let v_cold = det.detect(&fcm1, &counters1).unwrap();
        let (v_warm, _) = det.detect_warm(&fcm1, &counters1, &mut warm).unwrap();
        prop_assert_eq!(v_warm.anomalous, v_cold.anomalous);
        prop_assert!(
            (v_warm.anomaly_index - v_cold.anomaly_index).abs() <= 1e-3
                || (v_warm.anomaly_index.is_infinite() && v_cold.anomaly_index.is_infinite()),
            "anomaly index warm {} vs cold {}",
            v_warm.anomaly_index,
            v_cold.anomaly_index
        );
    }

    /// Consecutive no-churn epochs always take the warm path and still
    /// match the cold solver exactly.
    #[test]
    fn steady_state_is_warm_and_equivalent(noise_seed in 0u64..1_000) {
        let mut dep = deployment();
        let fcm = Fcm::from_view(&dep.view);
        let mut warm = IncrementalSolver::default();

        dep.replay_traffic(&mut LossModel::none());
        let counters = fcm.counters_from(&dep.dataplane);
        warm.solve(&fcm, &counters).unwrap();

        for epoch in 0..3u64 {
            dep.dataplane.reset_counters();
            let mut loss = LossModel::sampled(0.02, noise_seed.wrapping_add(epoch));
            dep.replay_traffic(&mut loss);
            let counters = fcm.counters_from(&dep.dataplane);
            let (warm_out, path) = warm.solve(&fcm, &counters).unwrap();
            prop_assert!(path.is_warm(), "steady state fell cold at epoch {}", epoch);
            let cold = EquationSystem::new(SolverKind::DirectDense)
                .solve(&fcm, &counters)
                .unwrap();
            let scale = counters.iter().fold(1.0_f64, |m, v| m.max(v.abs()));
            for (a, b) in warm_out.residual.iter().zip(&cold.residual) {
                prop_assert!((a - b).abs() <= 1e-6 * scale);
            }
        }
    }
}

/// Deterministic companion: a single reroute is small enough for the rank
/// budget, so the post-churn solve must take the warm path (with actual
/// patching work) and still match the cold rebuild.
#[test]
fn single_reroute_stays_warm() {
    let mut dep = deployment();
    let fcm0 = Fcm::from_view(&dep.view);
    let generation0 = dep.view.generation();
    dep.replay_traffic(&mut LossModel::none());
    let counters0 = fcm0.counters_from(&dep.dataplane);
    let mut warm = IncrementalSolver::default();
    warm.solve(&fcm0, &counters0).unwrap();

    // Reroute some flow through some off-path switch — not every
    // (flow, waypoint) pair admits a simple path on a ring, so scan for
    // the first that does.
    let mut rerouted = false;
    'scan: for flow in 0..dep.flows.len() {
        let path = dep.expected_paths[flow].clone();
        let candidates: Vec<_> = dep
            .view
            .topology()
            .switches()
            .filter(|s| !path.contains(s))
            .collect();
        for w in candidates {
            if dep.reroute_flow_via(flow, &[w]).is_ok() {
                rerouted = true;
                break 'scan;
            }
        }
    }
    assert!(rerouted, "no admissible reroute found on ring(5)");

    let fcm1 = Fcm::from_view(&dep.view);
    let delta = FcmDelta::from_journal(&fcm0, &fcm1, &dep.view, generation0);
    assert!(
        delta.cols_retouched >= 1 || delta.rows_added >= 1,
        "delta {delta}"
    );

    dep.dataplane.reset_counters();
    dep.replay_traffic(&mut LossModel::none());
    let counters1 = fcm1.counters_from(&dep.dataplane);
    let (warm_out, path_taken) = warm.solve(&fcm1, &counters1).unwrap();
    assert!(
        path_taken.is_warm(),
        "one reroute must fit the rank budget, got {path_taken}"
    );
    let cold = EquationSystem::new(SolverKind::DirectDense)
        .solve(&fcm1, &counters1)
        .unwrap();
    let scale = counters1.iter().fold(1.0_f64, |m, v| m.max(v.abs()));
    for (a, b) in warm_out.residual.iter().zip(&cold.residual) {
        assert!((a - b).abs() <= 1e-6 * scale, "warm {a} vs cold {b}");
    }
}
