//! Property tests for the masked/quarantined FCM: projecting a full
//! expected-counter vector through a [`MaskedFcm`] must agree with the
//! masked sub-FCM's own expected counters — for arbitrary observed-row
//! patterns, and for arbitrary column quarantines once the quarantined
//! volumes are zeroed. The churn-closure property at the end is the
//! soundness argument the runtime's reconciliation path relies on: after
//! masking updated rules, quarantining the flows through them, and
//! masking the rows those flows still traverse, the remaining sub-system
//! is consistent for *arbitrary* benign volumes — no zeroing needed.

use foces::Fcm;
use foces_controlplane::{provision, uniform_flows, RuleGranularity};
use foces_net::generators::fattree;
use proptest::prelude::*;
use std::sync::OnceLock;

/// One shared FCM — construction runs provisioning + ATPG tracing, far
/// too slow to repeat per proptest case.
fn fcm() -> &'static Fcm {
    static FCM: OnceLock<Fcm> = OnceLock::new();
    FCM.get_or_init(|| {
        let topo = fattree(4);
        let flows = uniform_flows(&topo, 1000.0);
        let dep = provision(topo, &flows, RuleGranularity::PerDestination).unwrap();
        Fcm::from_view(&dep.view)
    })
}

/// Cycles a short generated pattern out to length `n`, so strategies stay
/// small while still exercising every index of the real FCM.
fn cycle<T: Copy>(pattern: &[T], n: usize) -> Vec<T> {
    (0..n).map(|i| pattern[i % pattern.len()]).collect()
}

fn assert_close(a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        let tol = 1e-9 + x.abs().max(y.abs()) * 1e-12;
        assert!((x - y).abs() <= tol, "row {i}: {x} vs {y}");
    }
}

proptest! {
    /// Row masking alone: `project(H·X)` equals the masked sub-FCM's own
    /// `H'·X'` for every observed-row pattern and every volume vector —
    /// dropped flows contribute nothing to observed rows, so no volume
    /// adjustment is needed.
    #[test]
    fn mask_rows_project_round_trips(
        obs_pat in proptest::collection::vec(any::<bool>(), 1..64),
        vol_pat in proptest::collection::vec(0.0f64..1e6, 1..64),
    ) {
        let fcm = fcm();
        let observed = cycle(&obs_pat, fcm.rule_count());
        let volumes = cycle(&vol_pat, fcm.flow_count());
        let masked = fcm.mask_rows(&observed);
        let projected = masked.project(&fcm.expected_counters(&volumes));
        let kept_vol: Vec<f64> = masked
            .parent_columns()
            .iter()
            .map(|&j| volumes[j])
            .collect();
        let direct = masked.fcm().expected_counters(&kept_vol);
        assert_close(&projected, &direct);
    }

    /// Column quarantine obeys the same invariant once the quarantined
    /// flows' volumes are zeroed in the full system: their columns are
    /// gone from the sub-FCM, so the projection only matches when they
    /// carry no traffic.
    #[test]
    fn quarantine_project_round_trips_with_zeroed_volumes(
        obs_pat in proptest::collection::vec(any::<bool>(), 1..64),
        quar_pat in proptest::collection::vec(any::<bool>(), 1..64),
        vol_pat in proptest::collection::vec(0.0f64..1e6, 1..64),
    ) {
        let fcm = fcm();
        let observed = cycle(&obs_pat, fcm.rule_count());
        let quarantined = cycle(&quar_pat, fcm.flow_count());
        let mut volumes = cycle(&vol_pat, fcm.flow_count());
        for (v, &q) in volumes.iter_mut().zip(&quarantined) {
            if q {
                *v = 0.0;
            }
        }
        let masked = fcm.quarantine(&observed, &quarantined);
        let projected = masked.project(&fcm.expected_counters(&volumes));
        let kept_vol: Vec<f64> = masked
            .parent_columns()
            .iter()
            .map(|&j| volumes[j])
            .collect();
        let direct = masked.fcm().expected_counters(&kept_vol);
        assert_close(&projected, &direct);
    }

    /// Flow accounting: kept + dropped + quarantined columns partition
    /// the parent flows, quarantine takes precedence over dropping, and
    /// the parent row/column maps are strictly increasing and land on
    /// unmasked/unquarantined parents.
    #[test]
    fn quarantine_partitions_the_parent_flows(
        obs_pat in proptest::collection::vec(any::<bool>(), 1..64),
        quar_pat in proptest::collection::vec(any::<bool>(), 1..64),
    ) {
        let fcm = fcm();
        let observed = cycle(&obs_pat, fcm.rule_count());
        let quarantined = cycle(&quar_pat, fcm.flow_count());
        let masked = fcm.quarantine(&observed, &quarantined);
        prop_assert_eq!(
            masked.fcm().flow_count() + masked.dropped_flows() + masked.quarantined_flows(),
            fcm.flow_count()
        );
        prop_assert_eq!(
            masked.quarantined_flows(),
            quarantined.iter().filter(|&&q| q).count()
        );
        prop_assert_eq!(masked.parent_columns().len(), masked.fcm().flow_count());
        for w in masked.parent_columns().windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        for &j in masked.parent_columns() {
            prop_assert!(!quarantined[j]);
        }
        for w in masked.parent_rows().windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        for &i in masked.parent_rows() {
            prop_assert!(observed[i]);
        }
    }

    /// The churn-closure soundness property: mask an arbitrary set of
    /// "updated" rules, quarantine every flow through them, and also mask
    /// the rows quarantined flows still traverse. The remaining
    /// sub-system then satisfies `project(H·X) = H'·X'` for **arbitrary**
    /// volumes — quarantined traffic cannot reach any surviving row, so
    /// benign traffic never inflates residuals on the reconciled system.
    #[test]
    fn churn_closure_is_consistent_for_arbitrary_volumes(
        touched_pat in proptest::collection::vec(any::<bool>(), 1..48),
        vol_pat in proptest::collection::vec(0.0f64..1e6, 1..64),
    ) {
        let fcm = fcm();
        let touched = cycle(&touched_pat, fcm.rule_count());
        let volumes = cycle(&vol_pat, fcm.flow_count());
        let touched_rules: Vec<_> = fcm
            .rules()
            .iter()
            .zip(&touched)
            .filter(|(_, &t)| t)
            .map(|(&r, _)| r)
            .collect();
        let quarantined = fcm.columns_touching(&touched_rules);
        let closure = fcm.rows_touching(&quarantined);
        let observed: Vec<bool> = touched
            .iter()
            .zip(&closure)
            .map(|(&t, &c)| !t && !c)
            .collect();
        let masked = fcm.quarantine(&observed, &quarantined);
        let projected = masked.project(&fcm.expected_counters(&volumes));
        let kept_vol: Vec<f64> = masked
            .parent_columns()
            .iter()
            .map(|&j| volumes[j])
            .collect();
        let direct = masked.fcm().expected_counters(&kept_vol);
        assert_close(&projected, &direct);
    }
}
