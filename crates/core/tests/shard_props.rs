//! Property suite pinning the sharded detector to the global one.
//!
//! The contract: a shard's system is the exact row-projection of the
//! global system (every flow touching a retained row is a column of the
//! shard), so on a consistent network every shard is consistent, and any
//! inconsistent shard certifies global inconsistency. Concretely, over
//! random topologies, shard counts, and anomaly injections:
//!
//! * on a benign noiseless network, the shard union and the global
//!   detector both report normal;
//! * whenever the global detector flags, the shard union flags too
//!   (the paper's Theorem 3 direction — slicing never loses a detection);
//! * every boundary flow is carried by at least two shards, and each
//!   holder re-checks it (the columns really are present in both);
//! * the trivial per-switch partition reproduces [`SlicedFcm`]'s
//!   verdicts exactly, slice for slice.
//!
//! 256 cases, per the regression battery's acceptance bar.

use foces::{Detector, Fcm, ShardedFcm, SlicedFcm};
use foces_controlplane::{provision, uniform_flows, Deployment, RuleGranularity};
use foces_dataplane::{inject_random_anomaly, AnomalyKind, LossModel};
use foces_net::generators::{bcube, linear, ring};
use foces_net::{partition, PartitionSpec, Topology};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Raw strategy seeds for one randomized network.
#[derive(Debug, Clone, Copy)]
struct Case {
    /// 0 = ring, 1 = linear, 2 = bcube(1,4).
    family: u8,
    size: usize,
    k: usize,
    granularity: u8,
    inject: bool,
    anomaly_seed: u64,
}

fn case_strategy() -> impl Strategy<Value = Case> {
    (
        0u8..3,
        3usize..9,
        1usize..6,
        0u8..2,
        any::<bool>(),
        any::<u64>(),
    )
        .prop_map(
            |(family, size, k, granularity, inject, anomaly_seed)| Case {
                family,
                size,
                k,
                granularity,
                inject,
                anomaly_seed,
            },
        )
}

fn build(case: Case) -> (Topology, Deployment) {
    let topo = match case.family {
        0 => ring(case.size.max(4)),
        1 => linear(case.size),
        _ => bcube(1, 4),
    };
    let flows = uniform_flows(&topo, topo.host_count() as f64 * 10_000.0);
    let granularity = if case.granularity == 0 {
        RuleGranularity::PerDestination
    } else {
        RuleGranularity::PerFlowPair
    };
    let dep = provision(topo.clone(), &flows, granularity).expect("generator topologies provision");
    (topo, dep)
}

fn benign_counters(dep: &mut Deployment) -> Vec<f64> {
    dep.dataplane.reset_counters();
    dep.replay_traffic(&mut LossModel::none());
    dep.dataplane.collect_counters()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Shard-union vs global detection over random topologies, shard
    /// counts, and anomalies, plus the boundary double-check.
    #[test]
    fn shard_union_matches_global_detection(case in case_strategy()) {
        let (topo, mut dep) = build(case);
        let fcm = Fcm::from_view(&dep.view);
        let part = partition(&topo, PartitionSpec::EdgeCut { k: case.k });
        let sharded = ShardedFcm::from_fcm(&fcm, &part);

        // Structural reconciliation always holds for controller-built FCMs.
        sharded.reconcile_boundaries(&fcm, &part).expect("boundary reconciliation");

        // Every boundary flow is held — column present — by >= 2 shards.
        let views = sharded.shard_views();
        for &flow in sharded.boundary_flows() {
            let holders = views
                .iter()
                .filter(|v| v.parent_columns.binary_search(&flow).is_ok())
                .count();
            prop_assert!(holders >= 2, "boundary flow {flow} held by {holders} shard(s)");
        }

        let detector = Detector::default();

        // Benign noiseless network: both detectors agree on "normal".
        let y = benign_counters(&mut dep);
        let global = detector.detect(&fcm, &y).unwrap();
        let union = sharded.detect(&detector, &y).unwrap();
        prop_assert!(!global.anomalous, "benign noiseless flagged globally");
        prop_assert!(
            !union.anomalous,
            "benign noiseless flagged by shards {:?}",
            union.flagged_regions()
        );

        if case.inject {
            let mut rng = StdRng::seed_from_u64(case.anomaly_seed);
            if inject_random_anomaly(
                &mut dep.dataplane,
                AnomalyKind::PathDeviation,
                &mut rng,
                &[],
            )
            .is_some()
            {
                let y = benign_counters(&mut dep);
                let global = detector.detect(&fcm, &y).unwrap();
                let union = sharded.detect(&detector, &y).unwrap();
                // Theorem-3 direction: sharding never loses a detection.
                prop_assert!(
                    !global.anomalous || union.anomalous,
                    "global flagged (AI {:.2}) but shard union stayed quiet (max AI {:.2})",
                    global.anomaly_index,
                    union.max_anomaly_index()
                );
            }
        }
    }

    /// The per-switch partition is the identity refactor: its shard
    /// verdicts equal [`SlicedFcm`]'s slice verdicts exactly, benign or
    /// attacked.
    #[test]
    fn per_switch_partition_equals_slicing(case in case_strategy()) {
        let (topo, mut dep) = build(case);
        if case.inject {
            let mut rng = StdRng::seed_from_u64(case.anomaly_seed);
            let _ = inject_random_anomaly(
                &mut dep.dataplane,
                AnomalyKind::PathDeviation,
                &mut rng,
                &[],
            );
        }
        let fcm = Fcm::from_view(&dep.view);
        let part = partition(&topo, PartitionSpec::PerSwitch);
        let sharded = ShardedFcm::from_fcm(&fcm, &part);
        let sliced = SlicedFcm::from_fcm(&fcm);
        let detector = Detector::default();
        let y = benign_counters(&mut dep);

        let union = sharded.detect(&detector, &y).unwrap();
        let sliced_verdict = sliced.detect(&detector, &y).unwrap();
        prop_assert_eq!(union.anomalous, sliced_verdict.anomalous);
        let shard_verdicts: Vec<_> = union.per_shard.iter().map(|(_, v)| v).collect();
        let slice_verdicts: Vec<_> = sliced_verdict.per_switch.iter().map(|(_, v)| v).collect();
        prop_assert_eq!(shard_verdicts, slice_verdicts);
    }
}
