//! Cross-backend equivalence battery for the sparse solve engine.
//!
//! The contract under test: selecting [`BackendKind::Sparse`] changes how
//! the normal equations are solved (AMD-ordered sparse Cholesky, or
//! preconditioned CGLS past the direct-size limit) but never what is
//! concluded. Verdicts, residual vectors, and per-switch localization
//! scores must match the dense backend to 1e-9 of the counter scale —
//! on healthy, anomalous, churned, degraded-mask, and Byzantine
//! resilience-probe rounds alike.
//!
//! 256 cases, per the regression battery's acceptance bar.

use foces::{
    k_resilient_verdict, localize, BackendKind, Detector, EquationSystem, Fcm, SolverKind,
};
use foces_controlplane::{provision, uniform_flows, Deployment, RuleGranularity};
use foces_dataplane::LossModel;
use foces_net::generators::{bcube, fattree, ring};
use foces_net::SwitchId;
use proptest::prelude::*;
use std::collections::BTreeMap;

fn deployment(topo_pick: u8) -> Deployment {
    let topo = match topo_pick % 3 {
        0 => fattree(4),
        1 => ring(6),
        _ => bcube(1, 4),
    };
    let flows = uniform_flows(&topo, 240_000.0);
    provision(topo, &flows, RuleGranularity::PerDestination).expect("testbed provisions")
}

fn dense_system() -> EquationSystem {
    EquationSystem::new(SolverKind::DirectDense).with_backend(BackendKind::Dense)
}

fn sparse_system() -> EquationSystem {
    EquationSystem::new(SolverKind::DirectDense).with_backend(BackendKind::Sparse)
}

/// Per-switch localization scores from a sliced detection pass under the
/// given backend, keyed by switch so tie-order differences cannot fail
/// the comparison.
fn suspicion_scores(fcm: &Fcm, counters: &[f64], backend: BackendKind) -> BTreeMap<SwitchId, f64> {
    let detector = Detector::new(
        foces::DEFAULT_THRESHOLD,
        EquationSystem::new(SolverKind::DirectDense).with_backend(backend),
    );
    let sliced = foces::SlicedFcm::from_fcm(fcm);
    let sv = sliced.detect(&detector, counters).expect("sliced solve");
    localize(&sv)
        .into_iter()
        .map(|s| (s.switch, s.anomaly_index))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Whole-network, churned, degraded-mask, and resilience-probe rounds
    /// conclude identically on both backends.
    #[test]
    fn sparse_backend_matches_dense(
        topo_pick in 0u8..3,
        churn_flow in 0usize..10_000,
        churn in proptest::bool::ANY,
        perturb_row in 0usize..10_000,
        perturb in 0.0f64..2_000.0,
        masked_switch in 0usize..10_000,
        loss_seed in 0u64..1_000,
    ) {
        let mut dep = deployment(topo_pick);
        if churn {
            // A churned round: refine one flow's rules so the FCM under
            // test is a post-update rebuild, not the pristine provision.
            let _ = dep.refine_flow(churn_flow % dep.flows.len());
        }
        let fcm = Fcm::from_view(&dep.view);
        let mut loss = if loss_seed % 2 == 0 {
            LossModel::none()
        } else {
            LossModel::sampled(0.01, loss_seed)
        };
        dep.replay_traffic(&mut loss);
        let mut counters = fcm.counters_from(&dep.dataplane);
        if perturb > 1_000.0 {
            let i = perturb_row % counters.len();
            counters[i] += perturb;
        }
        let scale = counters.iter().fold(1.0_f64, |m, v| m.max(v.abs()));
        let tol = 1e-9 * scale;

        // -- Full round: residuals and verdicts --------------------------
        let dense = dense_system().solve(&fcm, &counters).unwrap();
        let sparse = sparse_system().solve(&fcm, &counters).unwrap();
        prop_assert_eq!(dense.residual.len(), sparse.residual.len());
        for (i, (a, b)) in dense.residual.iter().zip(&sparse.residual).enumerate() {
            prop_assert!(
                (a - b).abs() <= tol,
                "residual[{}] dense {} vs sparse {} (tol {})", i, a, b, tol
            );
        }
        let det_dense = Detector::new(foces::DEFAULT_THRESHOLD, dense_system());
        let det_sparse = Detector::new(foces::DEFAULT_THRESHOLD, sparse_system());
        let v_dense = det_dense.detect(&fcm, &counters).unwrap();
        let v_sparse = det_sparse.detect(&fcm, &counters).unwrap();
        prop_assert_eq!(v_dense.anomalous, v_sparse.anomalous);
        prop_assert!(
            (v_dense.anomaly_index - v_sparse.anomaly_index).abs()
                <= 1e-9 * v_dense.anomaly_index.abs().max(1.0)
                || (v_dense.anomaly_index.is_infinite()
                    && v_sparse.anomaly_index.is_infinite()),
            "anomaly index dense {} vs sparse {}",
            v_dense.anomaly_index, v_sparse.anomaly_index
        );

        // -- Localization: per-switch scores -----------------------------
        let loc_dense = suspicion_scores(&fcm, &counters, BackendKind::Dense);
        let loc_sparse = suspicion_scores(&fcm, &counters, BackendKind::Sparse);
        prop_assert_eq!(loc_dense.len(), loc_sparse.len());
        for (sw, score) in &loc_dense {
            let other = loc_sparse.get(sw).copied().unwrap_or(f64::NAN);
            prop_assert!(
                (score - other).abs() <= 1e-9 * score.abs().max(1.0)
                    || (score.is_infinite() && other.is_infinite()
                        && score.signum() == other.signum()),
                "localization score for {:?}: dense {} vs sparse {}", sw, score, other
            );
        }

        // -- Degraded-mask round: one switch never reported --------------
        let switches: Vec<SwitchId> = dep.view.topology().switches().collect();
        let missing = switches[masked_switch % switches.len()];
        let observed: Vec<bool> = fcm.rules().iter().map(|r| r.switch != missing).collect();
        if observed.iter().any(|&o| o) {
            let md = dense_system().solve_masked(&fcm, &counters, &observed);
            let ms = sparse_system().solve_masked(&fcm, &counters, &observed);
            match (md, ms) {
                (Ok((_, md)), Ok((_, ms))) => {
                    for (i, (a, b)) in md.residual.iter().zip(&ms.residual).enumerate() {
                        prop_assert!(
                            (a - b).abs() <= tol,
                            "masked residual[{}] dense {} vs sparse {}", i, a, b
                        );
                    }
                }
                (Err(_), Err(_)) => {} // both refuse the blind round alike
                (d, s) => prop_assert!(
                    false,
                    "masked solve disagreed: dense {:?} vs sparse {:?}",
                    d.is_ok(), s.is_ok()
                ),
            }

            // -- Byzantine resilience probe (leave-suspects-out) ---------
            let ranked: Vec<SwitchId> = loc_dense.keys().copied().take(2).collect();
            if !ranked.is_empty() {
                let rd = k_resilient_verdict(&det_dense, &fcm, &counters, &observed, &ranked, 2);
                let rs = k_resilient_verdict(&det_sparse, &fcm, &counters, &observed, &ranked, 2);
                match (rd, rs) {
                    (Ok(rd), Ok(rs)) => {
                        prop_assert_eq!(rd.base_anomalous, rs.base_anomalous);
                        prop_assert_eq!(rd.survives, rs.survives);
                        prop_assert_eq!(rd.flips_at, rs.flips_at);
                        prop_assert_eq!(rd.steps.len(), rs.steps.len());
                    }
                    (Err(_), Err(_)) => {}
                    (d, s) => prop_assert!(
                        false,
                        "resilience probe disagreed: dense {:?} vs sparse {:?}",
                        d.is_ok(), s.is_ok()
                    ),
                }
            }
        }
    }
}

/// Satellite regression: on the FatTree(4) all-pairs testbed, the sparse
/// Gram (`gram_csr`) agrees entrywise with the dense Gram (`gram_dense`)
/// to 1e-9 — the two code paths the backends factor must describe the
/// same normal equations.
#[test]
fn fattree4_gram_csr_matches_gram_dense() {
    let dep = deployment(0);
    let fcm = Fcm::from_view(&dep.view);
    let basis = fcm.sparse().select_columns(&fcm.unique_column_basis());
    let gram_sparse = basis.gram_csr();
    let gram_dense = basis
        .gram_dense()
        .expect("FatTree(4) basis fits the dense cap");
    let n = basis.cols();
    let mut dense_of = vec![0.0f64; n * n];
    for i in 0..n {
        dense_of[i * n..(i + 1) * n].copy_from_slice(&gram_dense.row(i));
    }
    let mut checked = 0usize;
    let indptr = gram_sparse.indptr();
    for i in 0..n {
        for p in indptr[i]..indptr[i + 1] {
            let j = gram_sparse.indices()[p];
            let v = gram_sparse.values()[p];
            assert!(
                (v - dense_of[i * n + j]).abs() <= 1e-9 * v.abs().max(1.0),
                "gram[{i}][{j}]: csr {} vs dense {}",
                v,
                dense_of[i * n + j]
            );
            dense_of[i * n + j] = 0.0;
            checked += 1;
        }
    }
    assert!(checked > n, "gram has off-diagonal structure");
    // Every dense entry not present in the CSR pattern must be zero.
    for (k, v) in dense_of.iter().enumerate() {
        assert!(
            v.abs() <= 1e-12,
            "dense gram[{}][{}] = {} missing from the sparse pattern",
            k / n,
            k % n,
            v
        );
    }
}
