//! Property battery tying the *static* coverage classifier to the *live*
//! leave-one-out localizer — the whole point of pre-flight analysis is
//! that its verdicts predict runtime behavior without running an epoch.
//!
//! Two contracts, each checked against the real solvers rather than a
//! re-derivation of the same linear algebra:
//!
//! * **Refusal prediction.** Over a family of small topologies and rule
//!   granularities, a switch the analyzer classes
//!   [`LooClass::RankLost`] is exactly a switch the live
//!   [`LooSolver::leave_out`] refuses with [`LooStatus::RankLost`] —
//!   both directions, every row-owning switch, every sampled plane.
//! * **Localization precision.** On FatTree(4) — which the analyzer
//!   scores all-[`LooClass::Localizable`] with zero warnings — a naive
//!   whole-switch counter forgery (affine scale + jittered offset, so it
//!   cannot hide along a single absorbed direction) is localized by
//!   [`cross_validate`] to exactly the forging switch: precision 1.0,
//!   never ambiguous, for every victim and every sampled magnitude.

use foces::{
    analyze_coverage, cross_validate, CoverageConfig, CoverageReport, Fcm, LooClass, LooSolver,
    LooStatus, DEFAULT_THRESHOLD,
};
use foces_controlplane::{provision, uniform_flows, RuleGranularity};
use foces_dataplane::LossModel;
use foces_net::generators::{fattree, linear, ring};
use foces_net::{SwitchId, Topology};
use proptest::prelude::*;
use std::sync::OnceLock;

/// Replays honest traffic and returns the plane's FCM + ground-truth
/// counters.
fn plane(topo: Topology, volume: f64, granularity: RuleGranularity) -> (Fcm, Vec<f64>) {
    let flows = uniform_flows(&topo, volume);
    let mut dep = provision(topo, &flows, granularity).unwrap();
    dep.dataplane.reset_counters();
    dep.replay_traffic(&mut LossModel::none());
    let truth = dep.dataplane.collect_counters();
    let fcm = Fcm::from_view(&dep.view);
    (fcm, truth)
}

struct Fixture {
    fcm: Fcm,
    truth: Vec<f64>,
    report: CoverageReport,
    candidates: Vec<SwitchId>,
}

/// FatTree(4), per-flow-pair rules, built once: the clean end of the
/// coverage spectrum (13 row-owning switches, all Localizable, 0 WARNs).
fn fattree_fixture() -> &'static Fixture {
    static F: OnceLock<Fixture> = OnceLock::new();
    F.get_or_init(|| {
        let (fcm, truth) = plane(fattree(4), 1_000.0, RuleGranularity::PerFlowPair);
        let report = analyze_coverage(&fcm, &CoverageConfig::default()).unwrap();
        let candidates: Vec<SwitchId> = report
            .switches
            .iter()
            .filter(|s| s.rows > 0)
            .map(|s| s.switch)
            .collect();
        Fixture {
            fcm,
            truth,
            report,
            candidates,
        }
    })
}

/// The topology/granularity family for the refusal-prediction property.
/// Index 1 (linear-3, per-destination) and 5 (ring-4, per-destination)
/// contain genuinely RankLost switches, so the property is not vacuous
/// (`rank_lost_specimens_exist` pins that below).
fn family(pick: u8) -> (Topology, RuleGranularity) {
    match pick {
        0 => (linear(2), RuleGranularity::PerDestination),
        1 => (linear(3), RuleGranularity::PerDestination),
        2 => (linear(3), RuleGranularity::PerFlowPair),
        3 => (ring(3), RuleGranularity::PerDestination),
        4 => (ring(3), RuleGranularity::PerFlowPair),
        5 => (ring(4), RuleGranularity::PerDestination),
        6 => (ring(5), RuleGranularity::PerFlowPair),
        _ => (linear(4), RuleGranularity::PerDestination),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// RankLost is a *prediction*: the static class must equal the live
    /// solver's refusal, switch for switch, on every sampled plane.
    #[test]
    fn rank_lost_class_predicts_the_live_solver_refusal(
        pick in 0u8..8,
        volume in 2_000.0f64..40_000.0,
    ) {
        let (topo, granularity) = family(pick);
        let (fcm, truth) = plane(topo, volume, granularity);
        let report = analyze_coverage(&fcm, &CoverageConfig::default()).unwrap();
        let mut solver = LooSolver::build(&fcm, &truth, DEFAULT_THRESHOLD).unwrap();
        for sc in report.switches.iter().filter(|s| s.rows > 0) {
            let outcome = solver.leave_out(sc.switch).unwrap();
            let refused = outcome.status == LooStatus::RankLost;
            prop_assert_eq!(
                sc.loo == LooClass::RankLost,
                refused,
                "s{}: static class {:?} vs live status {:?}",
                sc.switch.0, sc.loo, outcome.status
            );
        }
    }

    /// On the all-Localizable FatTree, a naive whole-switch forgery is
    /// localized to exactly the victim — precision 1.0, no ambiguity —
    /// for every victim switch and every sampled magnitude.
    #[test]
    fn localizable_forgery_is_localized_with_precision_one(
        victim_ix in 0usize..13,
        scale in 1.3f64..3.0,
        offset in 800.0f64..6_000.0,
    ) {
        let fx = fattree_fixture();
        let victim = fx.candidates[victim_ix % fx.candidates.len()];
        let class = fx
            .report
            .switches
            .iter()
            .find(|s| s.switch == victim)
            .unwrap()
            .loo;
        prop_assert_eq!(class, LooClass::Localizable);

        // Affine scale plus a row-dependent jitter: a *uniform* offset can
        // fall on the absorbed direction (AI pinned at 4.0 on FatTree), and
        // the coverage contract never promised to catch that — only that
        // LOO localization is well-posed. The jitter keeps the forgery off
        // that single absorbed ray, which is what any real mix of lies
        // looks like.
        let mut forged = fx.truth.clone();
        for (row, rule) in fx.fcm.rules().iter().enumerate() {
            if rule.switch == victim {
                let jitter = 1.0 + (row.wrapping_mul(2_654_435_761) % 97) as f64 / 97.0;
                forged[row] = fx.truth[row] * scale + offset * jitter;
            }
        }
        let rep = cross_validate(&fx.fcm, &forged, DEFAULT_THRESHOLD, &fx.candidates).unwrap();
        prop_assert!(rep.base_anomalous, "forgery on s{} must trip detection", victim.0);
        prop_assert!(!rep.ambiguous, "s{}: localization must be unambiguous", victim.0);
        prop_assert_eq!(
            rep.localized,
            Some(victim),
            "precision 1.0: the one Consistent leave-out is the victim"
        );
    }
}

/// Vacuity guard for the refusal property: the sampled family really does
/// contain RankLost switches, and the live solver really does refuse them.
#[test]
fn rank_lost_specimens_exist() {
    let (fcm, truth) = plane(ring(4), 12_000.0, RuleGranularity::PerDestination);
    let report = analyze_coverage(&fcm, &CoverageConfig::default()).unwrap();
    let rank_lost: Vec<SwitchId> = report
        .switches
        .iter()
        .filter(|s| s.rows > 0 && s.loo == LooClass::RankLost)
        .map(|s| s.switch)
        .collect();
    assert!(
        !rank_lost.is_empty(),
        "ring-4 per-destination must contain RankLost switches: {}",
        report.summary()
    );
    let mut solver = LooSolver::build(&fcm, &truth, DEFAULT_THRESHOLD).unwrap();
    for s in rank_lost {
        assert_eq!(
            solver.leave_out(s).unwrap().status,
            LooStatus::RankLost,
            "live solver must refuse s{}",
            s.0
        );
    }
}

/// Honest counters never get a liar pinned on them: the base system is
/// consistent and `cross_validate` localizes nothing.
#[test]
fn honest_counters_localize_nobody() {
    let fx = fattree_fixture();
    let rep = cross_validate(&fx.fcm, &fx.truth, DEFAULT_THRESHOLD, &fx.candidates).unwrap();
    assert!(!rep.base_anomalous);
    assert_eq!(rep.localized, None);
}
