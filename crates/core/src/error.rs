use foces_dataplane::RuleRef;
use foces_linalg::LinalgError;
use std::error::Error;
use std::fmt;

/// Errors surfaced by the FOCES detector.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FocesError {
    /// The counter vector's length does not match the FCM's rule count.
    CounterLengthMismatch {
        /// Number of counters supplied.
        got: usize,
        /// Number of rules (FCM rows) expected.
        expected: usize,
    },
    /// The FCM has no flows (nothing to check).
    EmptyFcm,
    /// A rule history referenced a rule outside the FCM's rule universe —
    /// the FCM is stale relative to the control plane it was built from.
    UnknownRule(RuleRef),
    /// The underlying linear solve failed beyond all fallbacks.
    Solver(LinalgError),
    /// A sharded FCM failed its boundary-flow reconciliation check: a flow
    /// crossing regions is not represented consistently across the shards
    /// it traverses.
    ShardReconciliation {
        /// Parent column index of the offending flow.
        flow: usize,
        /// Region of the shard where the inconsistency was found
        /// (`usize::MAX` when no single shard is to blame).
        region: usize,
        /// What went wrong.
        detail: &'static str,
    },
}

impl fmt::Display for FocesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FocesError::CounterLengthMismatch { got, expected } => write!(
                f,
                "counter vector has {got} entries but the FCM has {expected} rules"
            ),
            FocesError::EmptyFcm => write!(f, "flow-counter matrix has no flows"),
            FocesError::UnknownRule(r) => write!(
                f,
                "history references unknown rule {r}: the FCM is stale relative to the plane"
            ),
            FocesError::Solver(e) => write!(f, "equation system solve failed: {e}"),
            FocesError::ShardReconciliation {
                flow,
                region,
                detail,
            } => {
                if *region == usize::MAX {
                    write!(f, "shard reconciliation failed for flow {flow}: {detail}")
                } else {
                    write!(
                        f,
                        "shard reconciliation failed for flow {flow} in region {region}: {detail}"
                    )
                }
            }
        }
    }
}

impl Error for FocesError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FocesError::Solver(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for FocesError {
    fn from(e: LinalgError) -> Self {
        FocesError::Solver(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = FocesError::CounterLengthMismatch {
            got: 3,
            expected: 5,
        };
        assert!(e.to_string().contains("3"));
        assert!(e.source().is_none());

        let inner = LinalgError::DimensionMismatch("x".into());
        let e = FocesError::from(inner.clone());
        assert_eq!(e, FocesError::Solver(inner));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FocesError>();
    }
}
