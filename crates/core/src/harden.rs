//! Rule-set hardening — the constructive half of the paper's future work
//! #2: *"studying how to install rules which meet the detection conditions
//! of FOCES, such that all possible forwarding anomalies can be detected."*
//!
//! [`crate::audit_deviations`] finds the blind spots: single-hop deviations
//! whose deviated column stays inside the FCM's column span (Theorem 1).
//! Blind spots exist because aggregated rules make different flows share
//! matrix structure. The fix is **selective de-aggregation**: install a
//! higher-priority exact-match rule for an implicated flow along its path,
//! which gives that flow its own counters and pulls its column (and any
//! deviation of it) out of the shared span.
//!
//! [`harden`] runs the greedy loop: audit → split every implicated flow
//! the budget allows (most-implicated first) → re-audit, until full
//! coverage or the TCAM budget is spent. The cost-coverage trade-off is
//! exactly what an operator would tune.

use crate::{audit_deviations, Fcm};
use foces_controlplane::ControllerView;
use foces_dataplane::{Action, Rule, RuleRef, HEADER_WIDTH};
use foces_headerspace::Wildcard;
use std::collections::HashMap;

/// Priority for hardening rules: above both control-plane granularities
/// (5 and 10) so the split flow really moves onto its own counters.
const HARDEN_PRIORITY: u16 = 15;

/// Result of a [`harden`] run.
#[derive(Debug, Clone)]
pub struct HardeningOutcome {
    /// The refined controller view (install these rules on the data plane
    /// at the same indices to deploy).
    pub view: ControllerView,
    /// Rules added, in installation order.
    pub installed: Vec<RuleRef>,
    /// Audit coverage before hardening (fraction of candidate deviations
    /// that were detectable).
    pub coverage_before: f64,
    /// Audit coverage after hardening.
    pub coverage_after: f64,
    /// Greedy iterations performed (flows split out).
    pub flows_split: usize,
}

/// Greedily refines `view`'s rule set until every audited single-hop
/// deviation is detectable, or until `budget_rules` extra rules have been
/// spent. `audit_cap` bounds each audit pass (pass `usize::MAX` for an
/// exhaustive audit; the loop re-audits after each batch of splits).
///
/// Splitting is idempotent per flow, so the loop always terminates: each
/// iteration either improves coverage, consumes budget, or stops because
/// no implicated flow can be split further.
///
/// # Example
///
/// ```no_run
/// use foces::harden;
/// use foces_controlplane::{provision, uniform_flows, RuleGranularity};
/// use foces_net::generators::fattree;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let topo = fattree(4);
/// let flows = uniform_flows(&topo, 240_000.0);
/// let dep = provision(topo, &flows, RuleGranularity::PerDestination)?;
/// let outcome = harden(&dep.view, 500, usize::MAX);
/// assert!(outcome.coverage_after >= outcome.coverage_before);
/// # Ok(())
/// # }
/// ```
pub fn harden(view: &ControllerView, budget_rules: usize, audit_cap: usize) -> HardeningOutcome {
    let mut working = view.clone();
    let mut installed = Vec::new();
    let mut split_flows: Vec<(foces_net::HostId, foces_net::HostId)> = Vec::new();
    let mut coverage_before = None;
    let mut flows_split = 0;

    loop {
        let fcm = Fcm::from_view(&working);
        let audit = audit_deviations(&working, &fcm, audit_cap);
        let coverage = audit.coverage();
        if coverage_before.is_none() {
            coverage_before = Some(coverage);
        }
        if audit.undetectable.is_empty() {
            return HardeningOutcome {
                view: working,
                installed,
                coverage_before: coverage_before.unwrap_or(1.0),
                coverage_after: coverage,
                flows_split,
            };
        }
        // Rank victim flows by how many blind spots implicate them.
        let mut counts: HashMap<usize, usize> = HashMap::new();
        for c in &audit.undetectable {
            *counts.entry(c.flow).or_insert(0) += 1;
        }
        let mut ranked: Vec<(usize, usize)> = counts.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

        // Split every implicated flow we can afford (most-implicated
        // first), then re-audit once — re-auditing per split would make
        // the loop quadratic in blind spots for no coverage benefit.
        let mut progressed = false;
        for (flow_idx, _) in ranked {
            let flow = &fcm.flows()[flow_idx];
            let key = (flow.ingress, flow.egress);
            if split_flows.contains(&key) {
                continue;
            }
            if installed.len() + flow.path.len() > budget_rules {
                continue;
            }
            let header = flow.concrete_header();
            for &sw in &flow.path {
                let action = working
                    .table(sw)
                    .lookup(header)
                    .map(|(_, r)| r.action())
                    .unwrap_or(Action::Drop);
                let mut exact = Wildcard::any(HEADER_WIDTH);
                for pos in 0..HEADER_WIDTH {
                    exact.set_bit(pos, Some((header >> (HEADER_WIDTH - 1 - pos)) & 1 == 1));
                }
                let r = working.install(sw, Rule::new(exact, HARDEN_PRIORITY, action));
                installed.push(r);
            }
            split_flows.push(key);
            flows_split += 1;
            progressed = true;
        }
        if !progressed {
            // Budget exhausted or every implicated flow already split.
            return HardeningOutcome {
                view: working,
                installed,
                coverage_before: coverage_before.unwrap_or(1.0),
                coverage_after: coverage,
                flows_split,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foces_atpg::trace_flows;
    use foces_controlplane::{provision, uniform_flows, RuleGranularity};
    use foces_net::generators::{bcube, fattree};

    fn per_dst_view(topo: foces_net::Topology) -> ControllerView {
        let flows = uniform_flows(&topo, 1000.0);
        provision(topo, &flows, RuleGranularity::PerDestination)
            .unwrap()
            .view
    }

    #[test]
    fn hardening_reaches_full_coverage_on_fattree() {
        let view = per_dst_view(fattree(4));
        let outcome = harden(&view, 5000, usize::MAX);
        assert!(outcome.coverage_before < 1.0, "per-dst has blind spots");
        assert_eq!(outcome.coverage_after, 1.0, "hardening closes them");
        assert!(!outcome.installed.is_empty());
        assert!(outcome.flows_split > 0);
    }

    #[test]
    fn hardening_preserves_forwarding_semantics() {
        // Every logical flow must still reach the same egress after
        // hardening — splits only refine counters, never routes.
        let view = per_dst_view(bcube(1, 4));
        let before = trace_flows(&view);
        let outcome = harden(&view, 5000, 400);
        let after = trace_flows(&outcome.view);
        assert_eq!(before.len(), after.len());
        for b in &before {
            let a = after
                .iter()
                .find(|a| a.ingress == b.ingress && a.egress == b.egress)
                .expect("flow survived hardening");
            assert_eq!(a.path, b.path, "route unchanged for {:?}", b.ingress);
        }
    }

    #[test]
    fn budget_is_respected() {
        let view = per_dst_view(fattree(4));
        let outcome = harden(&view, 6, usize::MAX);
        assert!(outcome.installed.len() <= 6);
        // Tiny budget cannot reach full coverage here.
        assert!(outcome.coverage_after < 1.0);
    }

    #[test]
    fn already_covered_view_is_untouched() {
        // Per-pair rules audit at 100%: hardening is a no-op.
        let topo = bcube(1, 4);
        let flows = uniform_flows(&topo, 1000.0);
        let view = provision(topo, &flows, RuleGranularity::PerFlowPair)
            .unwrap()
            .view;
        let outcome = harden(&view, 5000, 600);
        assert!(outcome.installed.is_empty());
        assert_eq!(outcome.coverage_before, 1.0);
        assert_eq!(outcome.coverage_after, 1.0);
    }

    #[test]
    fn coverage_is_monotone_in_budget() {
        let view = per_dst_view(fattree(4));
        let small = harden(&view, 20, 300);
        let large = harden(&view, 2000, 300);
        assert!(large.coverage_after >= small.coverage_after);
    }
}
