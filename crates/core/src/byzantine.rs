//! Byzantine-resilient detection: suspicion scoring, leave-one-switch-out
//! cross-validation, and k-resilient verdicts (ROADMAP item 5a).
//!
//! The paper's threat model (§II-B) lets a compromised switch *forge* its
//! counter reports to hide an anomaly. Nothing in Algorithm 1 assumes the
//! reports are honest — it only checks whether `H·X = Y'` is consistent —
//! but the FCM is heavily over-determined (many more rules than flows), and
//! that redundancy is exactly what catches a liar:
//!
//! 1. **Suspicion scoring** ([`SuspicionTracker`]): after each anomalous
//!    round, the residual mass is attributed to the switches that reported
//!    the offending rows. Honest rounds *never* add suspicion (quiet rounds
//!    decay it), so an honest network provably accumulates zero.
//! 2. **Leave-one-switch-out cross-validation** ([`LooSolver`]): for a
//!    suspect switch `s`, re-solve the system with `s`'s equations removed.
//!    If the remainder is consistent (anomaly index back under the
//!    threshold), every conflict involved `s`'s reports — `s` is the liar.
//!    The re-solve reuses the cached Cholesky factor of the normal
//!    equations via rank-one **downdates** (one per removed row), never
//!    refactorizing from cold: `O(rows(s)·n²)` instead of `O(n³)` per
//!    candidate.
//! 3. **k-resilient verdicts** ([`k_resilient_verdict`]): quarantine the
//!    top-j suspects (j = 1..k) through the row-mask machinery and report
//!    whether the verdict survives — a verdict that flips when one suspect
//!    is silenced was resting entirely on that suspect's reports.
//!
//! ## Soundness of leave-one-out
//!
//! Removing the rows `R_s` of switch `s` changes the basis Gram matrix by
//! `−Σ_{r∈R_s} h_r·h_rᵀ` (where `h_r` is row `r` restricted to the column
//! basis) — precisely a sequence of rank-one downdates. Flows whose entire
//! support lies on `s` become unidentifiable and are excised from the
//! factor first ([`FactorCache::remove_batch`]); if a downdate still drives
//! the factor singular, the removal destroys identifiability of some
//! remaining flow and the outcome is [`LooStatus::RankLost`] — the solver
//! refuses to certify rather than report a spurious "consistent".
//! A *pure* counter-fake liar (forwarding untouched) is the only switch
//! whose removal restores consistency, because the true flow volumes
//! satisfy every honest row exactly. A liar *covering for* a real
//! forwarding anomaly leaves honest upstream/downstream rows inconsistent,
//! so removal does not clear the alarm — that distinction is what the
//! runtime reports as an *unresolved Byzantine alarm*.

use crate::{Detector, Fcm, FocesError};
use foces_dataplane::RuleRef;
use foces_linalg::{CsrMatrix, FactorCache, LinalgError};
use foces_net::SwitchId;
use std::collections::BTreeMap;

/// Tuning for [`SuspicionTracker`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuspicionConfig {
    /// Multiplicative decay applied to every score on a quiet round.
    pub decay: f64,
    /// Cumulative score at which a switch is implicated (and becomes a
    /// candidate for leave-one-out cross-validation). Each anomalous round
    /// distributes exactly 1.0 of suspicion across all switches, and the
    /// projector spreads a lie's residual onto honest neighbors (a liar
    /// typically holds a 20–30% share), so the default of 1.0 implicates
    /// the dominant switch after a handful of anomalous rounds. Implication
    /// is deliberately loose — it only *nominates* candidates; the precise
    /// test is leave-one-out cross-validation ([`cross_validate`]).
    pub implicate_at: f64,
    /// Scores below this are pruned after decay (bookkeeping hygiene).
    pub floor: f64,
}

impl Default for SuspicionConfig {
    fn default() -> Self {
        SuspicionConfig {
            decay: 0.5,
            implicate_at: 1.0,
            floor: 1e-3,
        }
    }
}

/// Per-switch suspicion accumulator (tentpole part 1).
///
/// Feed it one observation per detection round: the rules actually solved
/// (full or masked row order) with their residuals, and whether the round's
/// verdict was anomalous. On an anomalous round each switch gains its
/// *share* of the residual mass (shares sum to 1.0); on a quiet round all
/// scores decay. **Honest invariant**: a network whose rounds are never
/// anomalous accumulates exactly zero suspicion — scores are only ever
/// added under an anomalous verdict.
#[derive(Debug, Clone, Default)]
pub struct SuspicionTracker {
    config: SuspicionConfig,
    scores: BTreeMap<SwitchId, f64>,
    anomalous_rounds: u64,
}

impl SuspicionTracker {
    /// Creates a tracker with the given tuning.
    pub fn new(config: SuspicionConfig) -> Self {
        SuspicionTracker {
            config,
            scores: BTreeMap::new(),
            anomalous_rounds: 0,
        }
    }

    /// The tracker's tuning.
    pub fn config(&self) -> SuspicionConfig {
        self.config
    }

    /// Ingests one round. `rules[i]` is the rule whose residual is
    /// `residual[i]` — pass the masked rule list for degraded rounds so the
    /// attribution stays aligned. Rounds whose residuals are poisoned by
    /// in-flight churn should simply not be fed.
    ///
    /// # Panics
    ///
    /// Panics if `rules.len() != residual.len()`.
    pub fn observe(&mut self, rules: &[RuleRef], residual: &[f64], anomalous: bool) {
        assert_eq!(
            rules.len(),
            residual.len(),
            "one residual per solved rule row"
        );
        if !anomalous {
            // Quiet round: decay and prune. No additions, ever.
            let floor = self.config.floor;
            let decay = self.config.decay;
            self.scores.retain(|_, v| {
                *v *= decay;
                *v >= floor
            });
            return;
        }
        self.anomalous_rounds += 1;
        let total: f64 = residual.iter().sum();
        if total <= 0.0 {
            return;
        }
        let mut mass: BTreeMap<SwitchId, f64> = BTreeMap::new();
        for (r, &d) in rules.iter().zip(residual) {
            *mass.entry(r.switch).or_insert(0.0) += d;
        }
        for (s, m) in mass {
            *self.scores.entry(s).or_insert(0.0) += m / total;
        }
    }

    /// Current score for one switch (0 if never charged).
    pub fn score(&self, s: SwitchId) -> f64 {
        self.scores.get(&s).copied().unwrap_or(0.0)
    }

    /// The largest current score (0 when empty).
    pub fn max_score(&self) -> f64 {
        self.scores.values().fold(0.0_f64, |m, &v| m.max(v))
    }

    /// All switches with nonzero suspicion, most suspicious first. Ties
    /// break on switch id so the ranking is deterministic.
    pub fn ranked(&self) -> Vec<(SwitchId, f64)> {
        let mut v: Vec<(SwitchId, f64)> = self.scores.iter().map(|(&s, &x)| (s, x)).collect();
        v.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("scores are finite")
                .then(a.0.cmp(&b.0))
        });
        v
    }

    /// Switches whose score has crossed [`SuspicionConfig::implicate_at`],
    /// most suspicious first.
    pub fn implicated(&self) -> Vec<SwitchId> {
        self.ranked()
            .into_iter()
            .filter(|&(_, x)| x >= self.config.implicate_at)
            .map(|(s, _)| s)
            .collect()
    }

    /// Rounds that contributed suspicion so far.
    pub fn anomalous_rounds(&self) -> u64 {
        self.anomalous_rounds
    }

    /// Forgets one switch (e.g. after it confessed and was verified clean).
    pub fn clear(&mut self, s: SwitchId) {
        self.scores.remove(&s);
    }

    /// Forgets everything (e.g. after an FCM rebuild re-keys the rows).
    pub fn reset(&mut self) {
        self.scores.clear();
    }
}

/// What removing one switch's equations did to the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LooStatus {
    /// The remainder is consistent: every conflict involved this switch's
    /// reports. The switch is a localized liar candidate.
    Consistent,
    /// The remainder is still anomalous: honest rows still conflict, so
    /// this switch alone does not explain the alarm.
    StillAnomalous,
    /// Removing the switch destroys identifiability of some remaining flow
    /// (the downdated factor went singular): consistency cannot be
    /// certified either way.
    RankLost,
}

/// One leave-one-switch-out evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct LooOutcome {
    /// The switch whose equations were removed.
    pub switch: SwitchId,
    /// How many of its rows were removed.
    pub rows_removed: usize,
    /// Flows excised because their entire support lay on this switch.
    pub flows_dropped: usize,
    /// Anomaly index of the remaining system (`NaN` when
    /// [`LooStatus::RankLost`]).
    pub anomaly_index_without: f64,
    /// Largest remaining residual (`NaN` when [`LooStatus::RankLost`]).
    pub err_max_without: f64,
    /// The verdict on the remainder.
    pub status: LooStatus,
}

/// Leave-one-switch-out solver (tentpole part 2).
///
/// Built once per counter snapshot: factors the basis Gram matrix a single
/// time, then answers "is the system consistent *without* switch `s`?" for
/// any number of candidates by cloning the cached factor and downdating out
/// `s`'s rows — no cold refactorization per candidate
/// ([`LooSolver::cold_factorizations`] stays at 1, asserted by the redteam
/// bench).
#[derive(Debug, Clone)]
pub struct LooSolver {
    basis: CsrMatrix,
    cache: FactorCache,
    rhs: Vec<f64>,
    counters: Vec<f64>,
    rules: Vec<RuleRef>,
    rows_of: BTreeMap<SwitchId, Vec<usize>>,
    /// Nonzero-row count per basis column (support size).
    col_rows: Vec<usize>,
    threshold: f64,
    base_index: f64,
    base_err_med: f64,
    cold_factorizations: usize,
    downdates: usize,
}

impl LooSolver {
    /// Factors the system once and computes the base anomaly index.
    ///
    /// # Errors
    ///
    /// * [`FocesError::EmptyFcm`] / [`FocesError::CounterLengthMismatch`]
    ///   as for [`crate::EquationSystem::solve`];
    /// * [`FocesError::Solver`] if the base factorization fails (rank
    ///   deficiency beyond duplicate columns — fall back to the ordinary
    ///   detector in that case).
    pub fn build(fcm: &Fcm, counters: &[f64], threshold: f64) -> Result<Self, FocesError> {
        if fcm.flow_count() == 0 {
            return Err(FocesError::EmptyFcm);
        }
        if counters.len() != fcm.rule_count() {
            return Err(FocesError::CounterLengthMismatch {
                got: counters.len(),
                expected: fcm.rule_count(),
            });
        }
        let groups = fcm.column_groups();
        let basis = fcm.sparse().select_columns(&groups.basis);
        let cache = basis
            .gram_dense()
            .and_then(FactorCache::factor_lean)
            .map_err(FocesError::from)?;
        let rhs = basis.transpose_matvec(counters).map_err(FocesError::from)?;
        let mut rows_of: BTreeMap<SwitchId, Vec<usize>> = BTreeMap::new();
        for (i, r) in fcm.rules().iter().enumerate() {
            rows_of.entry(r.switch).or_default().push(i);
        }
        let mut col_rows = vec![0usize; basis.cols()];
        for i in 0..basis.rows() {
            for (j, _) in basis.row_iter(i) {
                col_rows[j] += 1;
            }
        }
        // Base solve off the same factor: one triangular solve, no extra
        // factorization.
        let x = cache.solve(&rhs).map_err(FocesError::from)?;
        let fitted = basis.matvec(&x).map_err(FocesError::from)?;
        let residual: Vec<f64> = counters
            .iter()
            .zip(&fitted)
            .map(|(y, yh)| (y - yh).abs())
            .collect();
        let base_index = anomaly_index(&residual, counters);
        let base_err_med = crate::detector::median(&residual);
        Ok(LooSolver {
            basis,
            cache,
            rhs,
            counters: counters.to_vec(),
            rules: fcm.rules().to_vec(),
            rows_of,
            col_rows,
            threshold,
            base_index,
            base_err_med,
            cold_factorizations: 1,
            downdates: 0,
        })
    }

    /// Anomaly index of the *full* system (all switches included).
    pub fn base_index(&self) -> f64 {
        self.base_index
    }

    /// Whether the full system is anomalous at the configured threshold.
    pub fn base_anomalous(&self) -> bool {
        self.base_index > self.threshold
    }

    /// Cold factorizations performed over this solver's lifetime — stays at
    /// 1 no matter how many candidates are evaluated.
    pub fn cold_factorizations(&self) -> usize {
        self.cold_factorizations
    }

    /// Rank-one downdates performed so far.
    pub fn downdates(&self) -> usize {
        self.downdates
    }

    /// Evaluates the system with `s`'s equations removed.
    ///
    /// # Errors
    ///
    /// [`FocesError::Solver`] only on unexpected numerical failure —
    /// expected singularity surfaces as [`LooStatus::RankLost`], not an
    /// error.
    pub fn leave_out(&mut self, s: SwitchId) -> Result<LooOutcome, FocesError> {
        let rows = self.rows_of.get(&s).cloned().unwrap_or_default();
        if rows.is_empty() {
            // No equations to remove: the "remainder" is the full system.
            return Ok(LooOutcome {
                switch: s,
                rows_removed: 0,
                flows_dropped: 0,
                anomaly_index_without: self.base_index,
                err_max_without: f64::NAN,
                status: if self.base_index > self.threshold {
                    LooStatus::StillAnomalous
                } else {
                    LooStatus::Consistent
                },
            });
        }
        // Basis columns whose entire support lies on s's rows become
        // unidentifiable once s is removed: excise them from the factor
        // first (Givens removal), so the downdates below never aim at an
        // exactly-singular target.
        let ncols = self.basis.cols();
        let mut local = vec![0usize; ncols];
        for &r in &rows {
            for (j, _) in self.basis.row_iter(r) {
                local[j] += 1;
            }
        }
        let drop_cols: Vec<usize> = (0..ncols)
            .filter(|&j| self.col_rows[j] > 0 && local[j] == self.col_rows[j])
            .collect();
        let mut new_pos = vec![usize::MAX; ncols];
        let mut kept = 0usize;
        for (j, pos) in new_pos.iter_mut().enumerate() {
            if drop_cols.binary_search(&j).is_err() {
                *pos = kept;
                kept += 1;
            }
        }
        let rank_lost = |rows_removed: usize| LooOutcome {
            switch: s,
            rows_removed,
            flows_dropped: drop_cols.len(),
            anomaly_index_without: f64::NAN,
            err_max_without: f64::NAN,
            status: LooStatus::RankLost,
        };
        if kept == 0 {
            // Every flow ran exclusively through s: nothing left to check.
            return Ok(rank_lost(rows.len()));
        }
        let mut cache = self.cache.clone();
        cache.remove_batch(&drop_cols);
        let mut rhs: Vec<f64> = (0..ncols)
            .filter(|&j| new_pos[j] != usize::MAX)
            .map(|j| self.rhs[j])
            .collect();
        for &r in &rows {
            let mut v = vec![0.0; kept];
            let mut any = false;
            for (j, val) in self.basis.row_iter(r) {
                if new_pos[j] != usize::MAX {
                    v[new_pos[j]] = val;
                    any = true;
                }
            }
            if !any {
                // Row supported only the excised columns — its Gram
                // contribution left with them.
                continue;
            }
            match cache.downdate(&v) {
                Ok(()) => self.downdates += 1,
                Err(LinalgError::NotPositiveDefinite { .. }) => {
                    return Ok(rank_lost(rows.len()));
                }
                Err(e) => return Err(e.into()),
            }
            for (j, val) in self.basis.row_iter(r) {
                if new_pos[j] != usize::MAX {
                    rhs[new_pos[j]] -= self.counters[r] * val;
                }
            }
        }
        let x = match cache.solve(&rhs) {
            Ok(x) => x,
            Err(
                LinalgError::NotPositiveDefinite { .. } | LinalgError::SingularTriangular { .. },
            ) => return Ok(rank_lost(rows.len())),
            Err(e) => return Err(e.into()),
        };
        // Residuals over the rows that remain.
        let mut residual = Vec::with_capacity(self.rules.len() - rows.len());
        let mut kept_counters = Vec::with_capacity(residual.capacity());
        for i in 0..self.rules.len() {
            if self.rules[i].switch == s {
                continue;
            }
            let mut fit = 0.0;
            for (j, val) in self.basis.row_iter(i) {
                if new_pos[j] != usize::MAX {
                    fit += x[new_pos[j]] * val;
                }
            }
            residual.push((self.counters[i] - fit).abs());
            kept_counters.push(self.counters[i]);
        }
        let ai = anomaly_index(&residual, &kept_counters);
        let err_max = residual.iter().cloned().fold(0.0_f64, f64::max);
        // Consistency is judged in *absolute* terms, anchored to the base
        // round's noise envelope: the AI is a ratio, and removing an
        // *accomplice-looking* honest switch can spread a still-large
        // residual evenly enough to push the ratio under the threshold.
        // A genuine explanation pulls the worst residual down to where the
        // base round's median noise sits.
        let scale = kept_counters.iter().fold(1.0_f64, |m, v| m.max(v.abs()));
        let floor = f64::max(1e-7 * scale, self.threshold * self.base_err_med);
        Ok(LooOutcome {
            switch: s,
            rows_removed: rows.len(),
            flows_dropped: drop_cols.len(),
            anomaly_index_without: ai,
            err_max_without: err_max,
            status: if ai <= self.threshold && err_max <= floor {
                LooStatus::Consistent
            } else {
                LooStatus::StillAnomalous
            },
        })
    }
}

/// `AI = Err_max / Err_med` with the same numerical noise floor as
/// [`Detector`]'s judge: residuals at solver round-off level count as zero.
fn anomaly_index(residual: &[f64], counters: &[f64]) -> f64 {
    let err_max = residual.iter().cloned().fold(0.0_f64, f64::max);
    let err_med = crate::detector::median(residual);
    let scale = counters.iter().fold(1.0_f64, |m, v| m.max(v.abs()));
    let eps = 1e-7 * scale;
    if err_max <= eps {
        0.0
    } else if err_med <= eps {
        f64::INFINITY
    } else {
        err_max / err_med
    }
}

/// Verdict of a full cross-validation sweep over candidate switches.
#[derive(Debug, Clone, PartialEq)]
pub struct ByzantineReport {
    /// Anomaly index of the full system.
    pub base_index: f64,
    /// Whether the full system was anomalous to begin with.
    pub base_anomalous: bool,
    /// One outcome per candidate, in candidate order.
    pub outcomes: Vec<LooOutcome>,
    /// The liar, when exactly one candidate's removal restores consistency.
    pub localized: Option<SwitchId>,
    /// More than one candidate's removal restores consistency — the
    /// evidence cannot distinguish them (e.g. colluding cover-ups).
    pub ambiguous: bool,
    /// Cold factorizations spent (always 1 — asserted by the bench).
    pub cold_factorizations: usize,
    /// Rank-one downdates spent across all candidates.
    pub downdates: usize,
}

/// Runs leave-one-out over `candidates` and localizes the liar if exactly
/// one removal restores consistency (tentpole part 2, entry point).
///
/// # Errors
///
/// As for [`LooSolver::build`] / [`LooSolver::leave_out`].
pub fn cross_validate(
    fcm: &Fcm,
    counters: &[f64],
    threshold: f64,
    candidates: &[SwitchId],
) -> Result<ByzantineReport, FocesError> {
    let mut solver = LooSolver::build(fcm, counters, threshold)?;
    let mut outcomes = Vec::with_capacity(candidates.len());
    for &s in candidates {
        outcomes.push(solver.leave_out(s)?);
    }
    let consistent: Vec<SwitchId> = outcomes
        .iter()
        .filter(|o| o.status == LooStatus::Consistent && o.rows_removed > 0)
        .map(|o| o.switch)
        .collect();
    let base_anomalous = solver.base_anomalous();
    Ok(ByzantineReport {
        base_index: solver.base_index(),
        base_anomalous,
        localized: if base_anomalous && consistent.len() == 1 {
            Some(consistent[0])
        } else {
            None
        },
        ambiguous: base_anomalous && consistent.len() > 1,
        outcomes,
        cold_factorizations: solver.cold_factorizations(),
        downdates: solver.downdates(),
    })
}

/// One quarantine step of a k-resilience probe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResilienceStep {
    /// How many top suspects were quarantined for this step.
    pub quarantined: usize,
    /// The masked verdict with those suspects silenced.
    pub anomalous: bool,
    /// The masked anomaly index.
    pub anomaly_index: f64,
}

/// Whether a verdict survives silencing up to k suspects.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceReport {
    /// The k that was probed.
    pub k: usize,
    /// The unquarantined (base) verdict.
    pub base_anomalous: bool,
    /// Steps actually evaluated (may stop early if quarantining leaves no
    /// solvable system).
    pub steps: Vec<ResilienceStep>,
    /// `true` iff every evaluated step agrees with the base verdict.
    pub survives: bool,
    /// The first quarantine depth at which the verdict flipped.
    pub flips_at: Option<usize>,
}

/// Probes verdict stability under up to `k` quarantined liars (tentpole
/// part 3): for `j = 1..=k`, silence the top-`j` switches of `ranked` via
/// the row mask and re-run Algorithm 1 on the remainder. A verdict that
/// needs a particular suspect's reports to stay anomalous (or to stay
/// quiet) is not `j`-resilient.
///
/// `observed` is the round's row mask (all-`true` for a full round);
/// quarantined switches are removed *on top of* it. Evaluation stops early
/// if quarantining empties the system.
///
/// # Errors
///
/// Propagates solver failures from the base (unquarantined) detection.
pub fn k_resilient_verdict(
    detector: &Detector,
    fcm: &Fcm,
    counters: &[f64],
    observed: &[bool],
    ranked: &[SwitchId],
    k: usize,
) -> Result<ResilienceReport, FocesError> {
    let base = detector.detect_masked(&fcm.mask_rows(observed), counters)?;
    let depth = k.min(ranked.len());
    let mut steps = Vec::with_capacity(depth);
    let mut flips_at = None;
    for j in 1..=depth {
        let silenced = &ranked[..j];
        let obs: Vec<bool> = fcm
            .rules()
            .iter()
            .zip(observed)
            .map(|(r, &o)| o && !silenced.contains(&r.switch))
            .collect();
        let verdict = match detector.detect_masked(&fcm.mask_rows(&obs), counters) {
            Ok(v) => v,
            // Quarantine ate the whole system: nothing left to certify.
            Err(FocesError::EmptyFcm) => break,
            Err(e) => return Err(e),
        };
        if verdict.anomalous != base.anomalous && flips_at.is_none() {
            flips_at = Some(j);
        }
        steps.push(ResilienceStep {
            quarantined: j,
            anomalous: verdict.anomalous,
            anomaly_index: verdict.anomaly_index,
        });
    }
    Ok(ResilienceReport {
        k,
        base_anomalous: base.anomalous,
        survives: flips_at.is_none(),
        flips_at,
        steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use foces_controlplane::{provision, uniform_flows, RuleGranularity};
    use foces_dataplane::{inject_counter_fake, LossModel};
    use foces_net::generators::fattree;

    /// Rules on `s` that are not the unique support of any flow column
    /// (such a row's lie is absorbed by the free flow volume and is
    /// undetectable by rank — Theorem 1's blind spot).
    fn detectable_fake_targets(fcm: &Fcm, s: SwitchId) -> Vec<RuleRef> {
        let h = fcm.sparse();
        let mut support = vec![0usize; h.cols()];
        for i in 0..h.rows() {
            for (j, _) in h.row_iter(i) {
                support[j] += 1;
            }
        }
        (0..h.rows())
            .filter(|&i| fcm.rules()[i].switch == s && h.row_iter(i).all(|(j, _)| support[j] > 1))
            .map(|i| fcm.rules()[i])
            .collect()
    }

    fn liar_setup() -> (Fcm, Vec<f64>, SwitchId, Vec<SwitchId>) {
        let topo = fattree(4);
        let all: Vec<SwitchId> = (0..topo.switch_count()).map(SwitchId).collect();
        let flows = uniform_flows(&topo, 240_000.0);
        let mut dep = provision(topo, &flows, RuleGranularity::PerDestination).unwrap();
        let fcm = Fcm::from_view(&dep.view);
        dep.replay_traffic(&mut LossModel::none());
        // A naive liar forges *all* of its (detectable) counters: lies
        // touching several destinations are what pin the ambiguity down to
        // a unique switch — a single faked rule is indistinguishable from
        // the destination-side edge lying about the same flows.
        let liar = all[all.len() - 1];
        for victim in detectable_fake_targets(&fcm, liar) {
            let truth = dep.dataplane.true_counter(victim.switch, victim.index);
            inject_counter_fake(&mut dep.dataplane, victim, truth * 2.0 + 3000.0).unwrap();
        }
        let counters = dep.dataplane.collect_counters();
        (fcm, counters, liar, all)
    }

    #[test]
    fn single_liar_is_localized() {
        let (fcm, counters, liar, all) = liar_setup();
        let report = cross_validate(&fcm, &counters, 4.5, &all).unwrap();
        assert!(report.base_anomalous, "the lie must trip the detector");
        assert_eq!(report.localized, Some(liar));
        assert!(!report.ambiguous);
        // The whole sweep spent exactly one cold factorization.
        assert_eq!(report.cold_factorizations, 1);
        assert!(report.downdates > 0, "removals must go through downdates");
    }

    #[test]
    fn honest_system_localizes_nothing() {
        let topo = fattree(4);
        let all: Vec<SwitchId> = (0..topo.switch_count()).map(SwitchId).collect();
        let flows = uniform_flows(&topo, 240_000.0);
        let mut dep = provision(topo, &flows, RuleGranularity::PerDestination).unwrap();
        let fcm = Fcm::from_view(&dep.view);
        dep.replay_traffic(&mut LossModel::none());
        let counters = dep.dataplane.collect_counters();
        let report = cross_validate(&fcm, &counters, 4.5, &all).unwrap();
        assert!(!report.base_anomalous);
        assert_eq!(report.localized, None);
    }

    #[test]
    fn suspicion_only_accumulates_on_anomalous_rounds() {
        let (fcm, counters, liar, _) = liar_setup();
        let out = crate::EquationSystem::default()
            .solve(&fcm, &counters)
            .unwrap();
        let mut tracker = SuspicionTracker::default();
        // Honest rounds: zero, forever.
        for _ in 0..10 {
            tracker.observe(fcm.rules(), &out.residual, false);
        }
        assert_eq!(tracker.max_score(), 0.0);
        // Anomalous rounds: the liar dominates the residual mass. Suspicion
        // keeps accruing while the alarm persists (one unit per round), so
        // a sustained lie crosses the implication threshold within a few
        // rounds even though the projector spreads part of the residual
        // onto honest neighbors.
        for _ in 0..5 {
            tracker.observe(fcm.rules(), &out.residual, true);
        }
        let ranked = tracker.ranked();
        assert_eq!(ranked[0].0, liar, "ranking: {ranked:?}");
        assert!(tracker.implicated().contains(&liar));
        // Decay pulls it back down on quiet rounds.
        for _ in 0..20 {
            tracker.observe(fcm.rules(), &out.residual, false);
        }
        assert_eq!(tracker.max_score(), 0.0);
    }

    #[test]
    fn quarantining_the_liar_clears_the_verdict() {
        let (fcm, counters, liar, _) = liar_setup();
        let observed = vec![true; fcm.rule_count()];
        let det = Detector::default();
        let report = k_resilient_verdict(&det, &fcm, &counters, &observed, &[liar], 1).unwrap();
        assert!(report.base_anomalous);
        assert!(!report.survives, "silencing the liar must flip the verdict");
        assert_eq!(report.flips_at, Some(1));
        assert!(!report.steps[0].anomalous);
    }

    #[test]
    fn honest_verdict_survives_quarantine_probes() {
        let topo = fattree(4);
        let flows = uniform_flows(&topo, 240_000.0);
        let mut dep = provision(topo, &flows, RuleGranularity::PerDestination).unwrap();
        let fcm = Fcm::from_view(&dep.view);
        dep.replay_traffic(&mut LossModel::none());
        let counters = dep.dataplane.collect_counters();
        let observed = vec![true; fcm.rule_count()];
        let ranked: Vec<SwitchId> = (0..3).map(SwitchId).collect();
        let report =
            k_resilient_verdict(&Detector::default(), &fcm, &counters, &observed, &ranked, 3)
                .unwrap();
        assert!(!report.base_anomalous);
        assert!(report.survives, "steps: {:?}", report.steps);
    }

    #[test]
    fn leave_out_unknown_switch_is_a_noop() {
        let (fcm, counters, _, _) = liar_setup();
        let mut solver = LooSolver::build(&fcm, &counters, 4.5).unwrap();
        let out = solver.leave_out(SwitchId(9999)).unwrap();
        assert_eq!(out.rows_removed, 0);
        assert_eq!(out.status, LooStatus::StillAnomalous);
        assert_eq!(solver.downdates(), 0);
    }
}
