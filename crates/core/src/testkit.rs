//! Utilities for building synthetic FCMs in tests, examples, and benches.
//!
//! The paper's worked examples (Fig. 2 / Eq. 6, Fig. 3 / Eq. 8) are given
//! directly as 0/1 matrices; these helpers lift such a matrix into a full
//! [`Fcm`] by fabricating one single-rule switch per row and one logical
//! flow per column.

use crate::Fcm;
use foces_atpg::LogicalFlow;
use foces_dataplane::{RuleRef, HEADER_WIDTH};
use foces_headerspace::Wildcard;
use foces_linalg::DenseMatrix;
use foces_net::{HostId, SwitchId};

/// Builds an [`Fcm`] whose dense matrix equals `h` (entries must be 0/1).
///
/// Row `i` becomes rule `s_i#r0`; column `j` becomes a logical flow from
/// host `j` to host `j` + #cols whose rule history is the rows where the
/// column has a 1, in row order.
///
/// # Panics
///
/// Panics if `h` contains entries other than 0.0 and 1.0.
///
/// # Example
///
/// ```
/// use foces_linalg::DenseMatrix;
///
/// let h = DenseMatrix::from_rows(&[&[1., 0.], &[1., 1.]]).unwrap();
/// let fcm = foces::testkit::fcm_from_dense(&h);
/// assert_eq!(fcm.rule_count(), 2);
/// assert_eq!(fcm.flow_count(), 2);
/// assert!(fcm.dense().approx_eq(&h, 0.0));
/// ```
pub fn fcm_from_dense(h: &DenseMatrix) -> Fcm {
    let rules: Vec<RuleRef> = (0..h.rows())
        .map(|i| RuleRef {
            switch: SwitchId(i),
            index: 0,
        })
        .collect();
    let flows: Vec<LogicalFlow> = (0..h.cols())
        .map(|j| {
            let mut flow_rules = Vec::new();
            let mut path = Vec::new();
            for (i, &rule) in rules.iter().enumerate() {
                let v = h.get(i, j);
                assert!(
                    v == 0.0 || v == 1.0,
                    "fcm_from_dense requires 0/1 entries, found {v} at ({i},{j})"
                );
                if v == 1.0 {
                    flow_rules.push(rule);
                    path.push(SwitchId(i));
                }
            }
            LogicalFlow {
                ingress: HostId(j),
                egress: HostId(j + h.cols()),
                header: Wildcard::exact(HEADER_WIDTH, ((j as u64) << 16) | (j + h.cols()) as u64),
                rules: flow_rules,
                path,
            }
        })
        .collect();
    Fcm::from_parts(rules, flows)
}

/// The paper's Fig. 2 / Eq. (6) FCM: 6 rules, 3 flows — the running example
/// where a deviation of the first flow *is* detectable.
pub fn paper_fig2_fcm() -> Fcm {
    let h = DenseMatrix::from_rows(&[
        &[1., 0., 0.],
        &[1., 0., 0.],
        &[1., 1., 0.],
        &[0., 0., 0.],
        &[0., 0., 1.],
        &[1., 1., 1.],
    ])
    .expect("static matrix");
    fcm_from_dense(&h)
}

/// The paper's Fig. 3 / Eq. (8) FCM: the counterexample where a deviation
/// is *undetectable* (the deviated column stays in the column span).
pub fn paper_fig3_fcm() -> Fcm {
    let h = DenseMatrix::from_rows(&[
        &[1., 0., 0.],
        &[1., 0., 0.],
        &[1., 1., 0.],
        &[0., 0., 1.],
        &[0., 0., 1.],
        &[1., 1., 1.],
    ])
    .expect("static matrix");
    fcm_from_dense(&h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_matrix() {
        let fcm = paper_fig2_fcm();
        assert_eq!(fcm.rule_count(), 6);
        assert_eq!(fcm.flow_count(), 3);
        assert_eq!(fcm.dense().get(2, 1), 1.0);
        assert_eq!(fcm.dense().get(3, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "0/1 entries")]
    fn rejects_non_binary() {
        let h = DenseMatrix::from_rows(&[&[0.5]]).unwrap();
        fcm_from_dense(&h);
    }

    #[test]
    fn flows_have_distinct_headers() {
        let fcm = paper_fig3_fcm();
        let mut headers: Vec<u64> = fcm.flows().iter().map(|f| f.concrete_header()).collect();
        headers.sort_unstable();
        headers.dedup();
        assert_eq!(headers.len(), 3);
    }
}
