use crate::SlicedVerdict;
use foces_net::SwitchId;
use std::fmt;

/// A switch ranked by how suspicious its slice looked in one detection
/// round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchSuspicion {
    /// The switch.
    pub switch: SwitchId,
    /// Its slice's anomaly index.
    pub anomaly_index: f64,
    /// Whether the slice exceeded the detection threshold.
    pub flagged: bool,
}

impl fmt::Display for SwitchSuspicion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "s{} (AI = {:.2}{})",
            self.switch.0,
            self.anomaly_index,
            if self.flagged { ", flagged" } else { "" }
        )
    }
}

/// Ranks switches by per-slice anomaly index, most suspicious first.
///
/// This implements the paper's future-work extension (§IV-B, end): "if the
/// anomaly index for one switch is high, then it is possible that this
/// switch or its last hop is responsible for the forwarding anomalies."
/// A slice flags when the anomaly disturbs counters *inside that slice* —
/// i.e. at the compromised switch itself or its immediate neighborhood —
/// so the top-ranked switches form a small candidate set containing the
/// culprit's vicinity.
///
/// Infinite anomaly indices (noiseless detections) sort above all finite
/// ones; ties keep slice order (ascending switch id).
///
/// # Example
///
/// ```
/// use foces::{localize, Detector, Fcm, SlicedFcm};
/// use foces_controlplane::{provision, uniform_flows, RuleGranularity};
/// use foces_dataplane::{inject_random_anomaly, AnomalyKind, LossModel};
/// use foces_net::generators::bcube;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let topo = bcube(1, 4);
/// let flows = uniform_flows(&topo, 240_000.0);
/// let mut dep = provision(topo, &flows, RuleGranularity::PerDestination)?;
/// let sliced = SlicedFcm::from_fcm(&Fcm::from_view(&dep.view));
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// inject_random_anomaly(&mut dep.dataplane, AnomalyKind::PathDeviation, &mut rng, &[]);
/// dep.replay_traffic(&mut LossModel::none());
/// let verdict = sliced.detect(&Detector::default(), &dep.dataplane.collect_counters())?;
/// let ranking = localize(&verdict);
/// assert!(ranking[0].flagged);
/// # Ok(())
/// # }
/// ```
pub fn localize(verdict: &SlicedVerdict) -> Vec<SwitchSuspicion> {
    let mut ranking: Vec<SwitchSuspicion> = verdict
        .per_switch
        .iter()
        .map(|(switch, v)| SwitchSuspicion {
            switch: *switch,
            anomaly_index: v.anomaly_index,
            flagged: v.anomalous,
        })
        .collect();
    // Stable sort: equal indices keep ascending-switch order.
    ranking.sort_by(|a, b| {
        b.anomaly_index
            .partial_cmp(&a.anomaly_index)
            .expect("anomaly indices are never NaN")
    });
    ranking
}

/// Per-flow **differential localization**: for every flow whose counters
/// break conservation, find the first hop where the observed volume jumps,
/// and charge the switch *upstream* of the jump.
///
/// Rationale: under a path deviation or early drop at switch `S`, the
/// flow's counters read normally up to and including `S` (the adversary's
/// own counter still increments) and collapse from the next intended hop
/// onward — so the last rule with a healthy counter sits **on the culprit**.
/// Counter inflation (detours) is charged the same way, to the switch
/// upstream of the first inflated rule.
///
/// This complements [`localize`] (slice ranking): slices name the
/// *vicinity* where conservation physically broke (often the redirection
/// target); the differential walk names the hop that *caused* it. It is
/// sharpest with per-flow rules, where each rule's counter isolates one
/// flow; with aggregated rules the per-rule expectation mixes flows and the
/// signal blurs.
///
/// `rel_tol` is the relative discrepancy treated as a jump (e.g. `0.1`
/// to tolerate 10 % loss-and-noise drift per hop). Returns switches scored
/// by total discrepancy volume charged to them, highest first.
///
/// # Example
///
/// ```
/// use foces::{localize_differential, Fcm};
/// use foces_controlplane::{provision, uniform_flows, RuleGranularity};
/// use foces_dataplane::{inject_random_anomaly, AnomalyKind, LossModel};
/// use foces_net::generators::bcube;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let topo = bcube(1, 4);
/// let flows = uniform_flows(&topo, 240_000.0);
/// let mut dep = provision(topo, &flows, RuleGranularity::PerFlowPair)?;
/// let fcm = Fcm::from_view(&dep.view);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let attack =
///     inject_random_anomaly(&mut dep.dataplane, AnomalyKind::PathDeviation, &mut rng, &[])
///         .unwrap();
/// dep.replay_traffic(&mut LossModel::none());
/// let ranking = localize_differential(&fcm, &dep.dataplane.collect_counters(), 0.1);
/// assert_eq!(ranking[0].switch, attack.rule.switch); // names the culprit
/// # Ok(())
/// # }
/// ```
pub fn localize_differential(
    fcm: &crate::Fcm,
    counters: &[f64],
    rel_tol: f64,
) -> Vec<SwitchSuspicion> {
    assert_eq!(
        counters.len(),
        fcm.rule_count(),
        "counter vector must match the FCM"
    );
    let mut charge: std::collections::HashMap<SwitchId, f64> = std::collections::HashMap::new();
    for flow in fcm.flows() {
        // Walk the flow's rules in path order, comparing consecutive
        // counters. (Aggregated rules mix flows; the walk still works but
        // the discrepancy estimate is an upper bound.)
        //
        // Volume-LOSS jumps dominate: a deviating/dropping switch keeps its
        // own counter plausible and starves its intended successor, so the
        // upstream side of the first loss is the culprit. This holds even
        // when the deviation creates a forwarding loop — looped volume
        // inflates counters *upstream* of the culprit, but the culprit's
        // intended successor still reads ~0, and that loss boundary wins.
        // Only when a flow shows no loss anywhere (pure inflation) is the
        // first inflated rule's switch charged instead.
        let mut first_loss: Option<(SwitchId, f64)> = None;
        let mut first_inflation: Option<(SwitchId, f64)> = None;
        for pair in flow.rules.windows(2) {
            let up = counters[fcm.rule_row(pair[0]).expect("flow rules are in the FCM")];
            let down = counters[fcm.rule_row(pair[1]).expect("flow rules are in the FCM")];
            if up - down > rel_tol * up.max(1.0) {
                first_loss = Some((pair[0].switch, up - down));
                break; // everything after a loss is collateral
            }
            if first_inflation.is_none() && down - up > rel_tol * up.max(1.0) {
                first_inflation = Some((pair[1].switch, down - up));
            }
        }
        if let Some((switch, jump)) = first_loss.or(first_inflation) {
            *charge.entry(switch).or_insert(0.0) += jump;
        }
    }
    let mut ranking: Vec<SwitchSuspicion> = charge
        .into_iter()
        .map(|(switch, volume)| SwitchSuspicion {
            switch,
            anomaly_index: volume,
            flagged: true,
        })
        .collect();
    ranking.sort_by(|a, b| {
        b.anomaly_index
            .partial_cmp(&a.anomaly_index)
            .expect("charges are never NaN")
    });
    ranking
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::localize_differential;
    use crate::{Detector, Fcm, SlicedFcm};
    use foces_controlplane::{provision, uniform_flows, RuleGranularity};
    use foces_dataplane::{inject_random_anomaly, AnomalyKind, LossModel};
    use foces_net::generators::bcube;
    use foces_net::Node;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn culprit_neighborhood_is_top_ranked() {
        // Over several seeds, the compromised switch (or a direct neighbor,
        // where the counter discrepancy physically appears) must rank in
        // the top three suspicions.
        let mut hits = 0;
        let total = 8;
        for seed in 0..total {
            let topo = bcube(1, 4);
            let flows = uniform_flows(&topo, 240_000.0);
            let mut dep = provision(topo, &flows, RuleGranularity::PerDestination).unwrap();
            let sliced = SlicedFcm::from_fcm(&Fcm::from_view(&dep.view));
            let mut rng = StdRng::seed_from_u64(seed);
            let applied = inject_random_anomaly(
                &mut dep.dataplane,
                AnomalyKind::PathDeviation,
                &mut rng,
                &[],
            )
            .unwrap();
            dep.replay_traffic(&mut LossModel::none());
            let verdict = sliced
                .detect(&Detector::default(), &dep.dataplane.collect_counters())
                .unwrap();
            if !verdict.anomalous {
                continue; // undetectable deviation; nothing to localize
            }
            let ranking = localize(&verdict);
            let culprit = applied.rule.switch;
            let neighbors: Vec<foces_net::SwitchId> = dep
                .view
                .topology()
                .adj(Node::Switch(culprit))
                .iter()
                .filter_map(|a| match a.neighbor {
                    Node::Switch(s) => Some(s),
                    Node::Host(_) => None,
                })
                .collect();
            let top3: Vec<foces_net::SwitchId> = ranking.iter().take(3).map(|s| s.switch).collect();
            if top3.contains(&culprit) || top3.iter().any(|s| neighbors.contains(s)) {
                hits += 1;
            }
        }
        assert!(hits >= total - 2, "localization hit only {hits}/{total}");
    }

    #[test]
    fn ranking_is_sorted_descending() {
        let topo = bcube(1, 4);
        let flows = uniform_flows(&topo, 240_000.0);
        let mut dep = provision(topo, &flows, RuleGranularity::PerDestination).unwrap();
        let sliced = SlicedFcm::from_fcm(&Fcm::from_view(&dep.view));
        let mut loss = LossModel::sampled(0.05, 9);
        dep.replay_traffic(&mut loss);
        let verdict = sliced
            .detect(&Detector::default(), &dep.dataplane.collect_counters())
            .unwrap();
        let ranking = localize(&verdict);
        for w in ranking.windows(2) {
            assert!(w[0].anomaly_index >= w[1].anomaly_index);
        }
        assert_eq!(ranking.len(), sliced.slice_count());
    }

    #[test]
    fn differential_localization_names_the_culprit() {
        // Over many seeds and both anomaly kinds, the differential walk
        // must put the compromised switch at rank 1 (lossless, per-pair
        // rules: the jump is exact).
        for kind in [AnomalyKind::PathDeviation, AnomalyKind::EarlyDrop] {
            for seed in 0..8 {
                let topo = bcube(1, 4);
                let flows = uniform_flows(&topo, 240_000.0);
                let mut dep = provision(topo, &flows, RuleGranularity::PerFlowPair).unwrap();
                let fcm = Fcm::from_view(&dep.view);
                let mut rng = StdRng::seed_from_u64(seed);
                let attack =
                    inject_random_anomaly(&mut dep.dataplane, kind, &mut rng, &[]).unwrap();
                dep.replay_traffic(&mut LossModel::none());
                let ranking = localize_differential(&fcm, &dep.dataplane.collect_counters(), 0.1);
                assert_eq!(
                    ranking.first().map(|s| s.switch),
                    Some(attack.rule.switch),
                    "{kind} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn differential_localization_survives_moderate_loss() {
        let topo = bcube(1, 4);
        let flows = uniform_flows(&topo, 240_000.0);
        let mut dep = provision(topo, &flows, RuleGranularity::PerFlowPair).unwrap();
        let fcm = Fcm::from_view(&dep.view);
        let mut rng = StdRng::seed_from_u64(5);
        let attack = inject_random_anomaly(
            &mut dep.dataplane,
            AnomalyKind::PathDeviation,
            &mut rng,
            &[],
        )
        .unwrap();
        let mut loss = LossModel::sampled(0.05, 9);
        dep.replay_traffic(&mut loss);
        // 5% per-hop loss needs a tolerance above it; 10% works.
        let ranking = localize_differential(&fcm, &dep.dataplane.collect_counters(), 0.10);
        assert_eq!(ranking.first().map(|s| s.switch), Some(attack.rule.switch));
    }

    #[test]
    fn differential_localization_quiet_on_healthy_network() {
        let topo = bcube(1, 4);
        let flows = uniform_flows(&topo, 240_000.0);
        let mut dep = provision(topo, &flows, RuleGranularity::PerFlowPair).unwrap();
        let fcm = Fcm::from_view(&dep.view);
        let mut loss = LossModel::sampled(0.03, 2);
        dep.replay_traffic(&mut loss);
        let ranking = localize_differential(&fcm, &dep.dataplane.collect_counters(), 0.10);
        assert!(
            ranking.is_empty(),
            "no flow should jump past tolerance: {ranking:?}"
        );
    }

    #[test]
    fn suspicion_display() {
        let s = SwitchSuspicion {
            switch: foces_net::SwitchId(4),
            anomaly_index: 7.25,
            flagged: true,
        };
        let txt = s.to_string();
        assert!(txt.contains("s4"));
        assert!(txt.contains("flagged"));
    }
}
