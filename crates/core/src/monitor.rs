//! Continuous monitoring runtime — the operational loop around the
//! one-shot [`Detector`].
//!
//! The paper's functional test (Fig. 7) runs FOCES "every 5 seconds" and
//! reads the verdict stream by eye. This module packages that loop for
//! production use: a [`Monitor`] consumes one counter snapshot per
//! collection interval, keeps a bounded verdict history, and applies
//! **hysteresis** — an alarm is raised only after `raise_after` consecutive
//! anomalous rounds and cleared only after `clear_after` consecutive normal
//! rounds — so a single noise spike (the ratio statistic has a genuine
//! false-positive floor) does not page an operator, while a real
//! compromise, which perturbs *every* round, alarms within a couple of
//! intervals.
//!
//! When slicing is enabled the monitor also accumulates per-switch
//! suspicion across the alarm window, giving a more stable localization
//! than any single round.

use crate::{localize, Detector, Fcm, FocesError, SlicedFcm, SwitchSuspicion, Verdict};
use foces_net::SwitchId;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::fmt;

/// Alarm state of a [`Monitor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AlarmState {
    /// No anomaly suspected.
    #[default]
    Normal,
    /// Some anomalous rounds observed, but fewer than the raise threshold.
    Suspected,
    /// The alarm is raised.
    Alarmed,
}

impl fmt::Display for AlarmState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlarmState::Normal => write!(f, "normal"),
            AlarmState::Suspected => write!(f, "suspected"),
            AlarmState::Alarmed => write!(f, "ALARMED"),
        }
    }
}

/// What the monitor reports after ingesting one counter snapshot.
#[derive(Debug, Clone)]
pub struct MonitorReport {
    /// Round number (0-based count of snapshots ingested).
    pub round: u64,
    /// The raw per-round verdict.
    pub verdict: Verdict,
    /// Alarm state after applying hysteresis.
    pub state: AlarmState,
    /// `true` exactly on the round the alarm transitions into
    /// [`AlarmState::Alarmed`].
    pub alarm_raised: bool,
    /// `true` exactly on the round the alarm clears back to normal.
    pub alarm_cleared: bool,
    /// Accumulated per-switch suspicion (only when slicing is enabled and
    /// the state is not normal), most suspicious first.
    pub suspects: Vec<SwitchSuspicion>,
}

/// Configuration for [`Monitor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonitorConfig {
    /// Consecutive anomalous rounds before raising the alarm.
    pub raise_after: usize,
    /// Consecutive normal rounds before clearing a raised alarm.
    pub clear_after: usize,
    /// Verdict history length to retain (for operator dashboards).
    pub history: usize,
    /// Whether to run the sliced detector each round for localization.
    pub localize: bool,
}

impl Default for MonitorConfig {
    /// Raise after 2 consecutive anomalous rounds, clear after 2 normal
    /// ones, keep 64 rounds of history, localize.
    fn default() -> Self {
        MonitorConfig {
            raise_after: 2,
            clear_after: 2,
            history: 64,
            localize: true,
        }
    }
}

/// The continuous monitor: detector + FCM (+ optional slices) + hysteresis
/// state.
///
/// # Example
///
/// ```
/// use foces::{Fcm, Monitor, MonitorConfig};
/// use foces_controlplane::{provision, uniform_flows, RuleGranularity};
/// use foces_dataplane::LossModel;
/// use foces_net::generators::bcube;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let topo = bcube(1, 4);
/// let flows = uniform_flows(&topo, 240_000.0);
/// let mut dep = provision(topo, &flows, RuleGranularity::PerFlowPair)?;
/// let fcm = Fcm::from_view(&dep.view);
/// let mut monitor = Monitor::new(fcm, MonitorConfig::default());
/// for _ in 0..3 {
///     dep.dataplane.reset_counters();
///     dep.replay_traffic(&mut LossModel::none());
///     let report = monitor.ingest(&dep.dataplane.collect_counters())?;
///     assert_eq!(report.state, foces::AlarmState::Normal);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Monitor {
    detector: Detector,
    fcm: Fcm,
    sliced: Option<SlicedFcm>,
    config: MonitorConfig,
    state: AlarmState,
    round: u64,
    consecutive_anomalous: usize,
    consecutive_normal: usize,
    history: VecDeque<Verdict>,
    /// Per-switch suspicion accumulated since the last fully-normal state.
    suspicion: HashMap<SwitchId, f64>,
}

impl Monitor {
    /// Creates a monitor with the default [`Detector`].
    pub fn new(fcm: Fcm, config: MonitorConfig) -> Self {
        Monitor::with_detector(fcm, config, Detector::default())
    }

    /// Creates a monitor with an explicit detector (custom threshold or
    /// solver).
    pub fn with_detector(fcm: Fcm, config: MonitorConfig, detector: Detector) -> Self {
        let sliced = config.localize.then(|| SlicedFcm::from_fcm(&fcm));
        Monitor {
            detector,
            fcm,
            sliced,
            config,
            state: AlarmState::Normal,
            round: 0,
            consecutive_anomalous: 0,
            consecutive_normal: 0,
            history: VecDeque::new(),
            suspicion: HashMap::new(),
        }
    }

    /// Current alarm state.
    pub fn state(&self) -> AlarmState {
        self.state
    }

    /// Rounds ingested so far.
    pub fn rounds(&self) -> u64 {
        self.round
    }

    /// The retained verdict history, oldest first.
    pub fn history(&self) -> impl Iterator<Item = &Verdict> {
        self.history.iter()
    }

    /// Swaps in a new FCM (reactive flows arrived or departed, or the
    /// configuration was hardened) without losing alarm state. The verdict
    /// history is kept; slices are rebuilt if localization is enabled.
    /// Remember that the counter-vector layout follows the new FCM's rule
    /// universe from the next [`Monitor::ingest`] on.
    pub fn replace_fcm(&mut self, fcm: Fcm) {
        self.sliced = self.config.localize.then(|| SlicedFcm::from_fcm(&fcm));
        self.fcm = fcm;
    }

    /// Ingests one counter snapshot and advances the state machine.
    ///
    /// # Errors
    ///
    /// Propagates [`FocesError`] from the underlying solves (length
    /// mismatch, solver failure).
    pub fn ingest(&mut self, counters: &[f64]) -> Result<MonitorReport, FocesError> {
        let verdict = self.detector.detect(&self.fcm, counters)?;
        let round = self.round;
        self.round += 1;

        if verdict.anomalous {
            self.consecutive_anomalous += 1;
            self.consecutive_normal = 0;
        } else {
            self.consecutive_normal += 1;
            self.consecutive_anomalous = 0;
        }

        // Localize while anything is suspicious.
        if let (Some(sliced), true) = (&self.sliced, verdict.anomalous) {
            let sv = sliced.detect(&self.detector, counters)?;
            for s in localize(&sv) {
                if s.anomaly_index.is_finite() {
                    *self.suspicion.entry(s.switch).or_insert(0.0) += s.anomaly_index;
                } else {
                    *self.suspicion.entry(s.switch).or_insert(0.0) += 1e6;
                }
            }
        }

        let previous = self.state;
        self.state = match previous {
            AlarmState::Normal | AlarmState::Suspected => {
                if self.consecutive_anomalous >= self.config.raise_after {
                    AlarmState::Alarmed
                } else if self.consecutive_anomalous > 0 {
                    AlarmState::Suspected
                } else {
                    AlarmState::Normal
                }
            }
            AlarmState::Alarmed => {
                if self.consecutive_normal >= self.config.clear_after {
                    AlarmState::Normal
                } else {
                    AlarmState::Alarmed
                }
            }
        };
        let alarm_raised = previous != AlarmState::Alarmed && self.state == AlarmState::Alarmed;
        let alarm_cleared = previous == AlarmState::Alarmed && self.state == AlarmState::Normal;
        if self.state == AlarmState::Normal && previous != AlarmState::Normal {
            self.suspicion.clear();
        }

        let mut suspects: Vec<SwitchSuspicion> = self
            .suspicion
            .iter()
            .map(|(&switch, &anomaly_index)| SwitchSuspicion {
                switch,
                anomaly_index,
                flagged: true,
            })
            .collect();
        suspects.sort_by(|a, b| {
            b.anomaly_index
                .partial_cmp(&a.anomaly_index)
                .expect("suspicion sums are never NaN")
        });
        suspects.truncate(5);

        self.history.push_back(verdict.clone());
        while self.history.len() > self.config.history {
            self.history.pop_front();
        }

        Ok(MonitorReport {
            round,
            verdict,
            state: self.state,
            alarm_raised,
            alarm_cleared,
            suspects,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foces_controlplane::{provision, uniform_flows, RuleGranularity};
    use foces_dataplane::{inject_random_anomaly, AnomalyKind, LossModel};
    use foces_net::generators::bcube;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (foces_controlplane::Deployment, Fcm) {
        let topo = bcube(1, 4);
        let flows = uniform_flows(&topo, 240_000.0);
        let dep = provision(topo, &flows, RuleGranularity::PerFlowPair).unwrap();
        let fcm = Fcm::from_view(&dep.view);
        (dep, fcm)
    }

    fn healthy_round(dep: &mut foces_controlplane::Deployment, seed: u64) -> Vec<f64> {
        dep.dataplane.reset_counters();
        let mut loss = LossModel::sampled(0.03, seed);
        dep.replay_traffic(&mut loss);
        dep.dataplane.collect_counters()
    }

    #[test]
    fn stays_normal_on_healthy_rounds() {
        let (mut dep, fcm) = setup();
        let mut m = Monitor::new(fcm, MonitorConfig::default());
        for seed in 0..10 {
            let r = m.ingest(&healthy_round(&mut dep, seed)).unwrap();
            assert!(!r.alarm_raised);
        }
        assert_eq!(m.state(), AlarmState::Normal);
        assert_eq!(m.rounds(), 10);
    }

    #[test]
    fn alarm_raises_after_consecutive_anomalies_and_clears_on_repair() {
        let (mut dep, fcm) = setup();
        let mut m = Monitor::new(fcm, MonitorConfig::default());
        // Two healthy rounds.
        for seed in 0..2 {
            m.ingest(&healthy_round(&mut dep, seed)).unwrap();
        }
        // Compromise.
        let mut rng = StdRng::seed_from_u64(4);
        let applied = inject_random_anomaly(
            &mut dep.dataplane,
            AnomalyKind::PathDeviation,
            &mut rng,
            &[],
        )
        .unwrap();
        let r1 = m.ingest(&healthy_round(&mut dep, 10)).unwrap();
        assert_eq!(r1.state, AlarmState::Suspected);
        assert!(!r1.alarm_raised);
        let r2 = m.ingest(&healthy_round(&mut dep, 11)).unwrap();
        assert_eq!(r2.state, AlarmState::Alarmed);
        assert!(r2.alarm_raised);
        assert!(!r2.suspects.is_empty(), "localization accumulates");
        // Repair; alarm clears after clear_after normal rounds.
        applied.revert(&mut dep.dataplane).unwrap();
        let r3 = m.ingest(&healthy_round(&mut dep, 12)).unwrap();
        assert_eq!(r3.state, AlarmState::Alarmed, "hysteresis holds");
        let r4 = m.ingest(&healthy_round(&mut dep, 13)).unwrap();
        assert_eq!(r4.state, AlarmState::Normal);
        assert!(r4.alarm_cleared);
    }

    #[test]
    fn single_spike_does_not_alarm() {
        let (mut dep, fcm) = setup();
        let mut m = Monitor::new(fcm, MonitorConfig::default());
        m.ingest(&healthy_round(&mut dep, 0)).unwrap();
        // One anomalous round (inject, then immediately repair).
        let mut rng = StdRng::seed_from_u64(9);
        let applied = inject_random_anomaly(
            &mut dep.dataplane,
            AnomalyKind::PathDeviation,
            &mut rng,
            &[],
        )
        .unwrap();
        let spike = m.ingest(&healthy_round(&mut dep, 1)).unwrap();
        assert_eq!(spike.state, AlarmState::Suspected);
        applied.revert(&mut dep.dataplane).unwrap();
        let after = m.ingest(&healthy_round(&mut dep, 2)).unwrap();
        assert_eq!(after.state, AlarmState::Normal);
        assert!(!after.alarm_cleared, "alarm never raised, nothing to clear");
    }

    #[test]
    fn history_is_bounded() {
        let (mut dep, fcm) = setup();
        let mut m = Monitor::new(
            fcm,
            MonitorConfig {
                history: 3,
                ..MonitorConfig::default()
            },
        );
        for seed in 0..6 {
            m.ingest(&healthy_round(&mut dep, seed)).unwrap();
        }
        assert_eq!(m.history().count(), 3);
    }

    #[test]
    fn localization_can_be_disabled() {
        let (mut dep, fcm) = setup();
        let mut m = Monitor::new(
            fcm,
            MonitorConfig {
                localize: false,
                ..MonitorConfig::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(3);
        inject_random_anomaly(&mut dep.dataplane, AnomalyKind::EarlyDrop, &mut rng, &[]).unwrap();
        let r = m.ingest(&healthy_round(&mut dep, 0)).unwrap();
        assert!(r.suspects.is_empty());
    }

    #[test]
    fn replace_fcm_keeps_alarm_state() {
        let (mut dep, fcm) = setup();
        let mut m = Monitor::new(fcm, MonitorConfig::default());
        m.ingest(&healthy_round(&mut dep, 0)).unwrap();
        // Reactively add a flow; rebuild and swap the FCM.
        let extra = foces_controlplane::FlowSpec {
            src: foces_net::HostId(0),
            dst: foces_net::HostId(9),
            rate: 1000.0,
        };
        // The pair may exist already in all-pairs; remove it first from the
        // monitor's perspective by just re-adding (idempotent rules).
        let _ = dep.add_flow(extra);
        let new_fcm = Fcm::from_view(&dep.view);
        let expected_len = new_fcm.rule_count();
        m.replace_fcm(new_fcm);
        assert_eq!(m.state(), AlarmState::Normal);
        assert_eq!(m.rounds(), 1, "history preserved");
        // Next ingest must use the new layout.
        dep.dataplane.reset_counters();
        dep.replay_traffic(&mut LossModel::none());
        let counters = dep.dataplane.collect_counters();
        assert_eq!(counters.len(), expected_len);
        let r = m.ingest(&counters).unwrap();
        assert!(!r.verdict.anomalous);
    }

    #[test]
    fn state_display() {
        assert_eq!(AlarmState::Normal.to_string(), "normal");
        assert_eq!(AlarmState::Alarmed.to_string(), "ALARMED");
        assert_eq!(AlarmState::Suspected.to_string(), "suspected");
    }

    #[test]
    fn counter_length_errors_propagate() {
        let (_, fcm) = setup();
        let mut m = Monitor::new(fcm, MonitorConfig::default());
        assert!(m.ingest(&[1.0, 2.0]).is_err());
    }
}
