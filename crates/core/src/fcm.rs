use foces_atpg::{trace_flows, LogicalFlow};
use foces_controlplane::ControllerView;
use foces_dataplane::RuleRef;
use foces_linalg::{CsrMatrix, DenseMatrix, Triplet};
use std::collections::HashMap;
use std::fmt;

/// The Flow-Counter Matrix (paper Eq. 1): `H[i][j] = 1` iff logical flow
/// `j` traverses rule `i`.
///
/// Rows are indexed by [`RuleRef`] in canonical (switch-major, table-index)
/// order — the same order [`foces_dataplane::DataPlane::collect_counters`]
/// reports counters in, so a collected counter vector lines up with the FCM
/// rows with no further bookkeeping.
///
/// The matrix is stored in CSR form — real FCMs are enormous but have one
/// nonzero per hop per flow, far below 1 % density — and densified only on
/// demand ([`Fcm::dense`]) for the detectability oracle and small test
/// instances. Construction from a controller view runs the ATPG tracer
/// ([`foces_atpg::trace_flows`]) to enumerate logical flows.
///
/// # Example
///
/// ```
/// use foces::Fcm;
/// use foces_controlplane::{provision, uniform_flows, RuleGranularity};
/// use foces_net::generators::fattree;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let topo = fattree(4);
/// let flows = uniform_flows(&topo, 240.0);
/// let dep = provision(topo, &flows, RuleGranularity::PerDestination)?;
/// let fcm = Fcm::from_view(&dep.view);
/// assert_eq!(fcm.flow_count(), 240);
/// assert_eq!(fcm.rule_count(), dep.view.rule_count());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Fcm {
    rules: Vec<RuleRef>,
    rule_index: HashMap<RuleRef, usize>,
    flows: Vec<LogicalFlow>,
    sparse: CsrMatrix,
}

impl Fcm {
    /// Builds the FCM for a controller view: enumerates the view's logical
    /// flows via ATPG symbolic traversal and populates one column per flow.
    pub fn from_view(view: &ControllerView) -> Self {
        let rules: Vec<RuleRef> = view.rule_refs().collect();
        let flows = trace_flows(view);
        Fcm::from_parts(rules, flows)
    }

    /// Builds the FCM from explicit parts: a rule universe (row order) and
    /// the logical flows (columns). Exposed for tests and for callers that
    /// already traced flows.
    ///
    /// # Panics
    ///
    /// Panics if a flow references a rule not present in `rules` — flows
    /// must come from the same view as the rule universe.
    pub fn from_parts(rules: Vec<RuleRef>, flows: Vec<LogicalFlow>) -> Self {
        let rule_index: HashMap<RuleRef, usize> =
            rules.iter().enumerate().map(|(i, &r)| (r, i)).collect();
        let m = rules.len();
        let n = flows.len();
        let mut triplets = Vec::new();
        for (j, f) in flows.iter().enumerate() {
            for r in &f.rules {
                let i = *rule_index
                    .get(r)
                    .unwrap_or_else(|| panic!("flow references unknown rule {r}"));
                triplets.push(Triplet {
                    row: i,
                    col: j,
                    value: 1.0,
                });
            }
        }
        let sparse =
            CsrMatrix::from_triplets(m, n, &triplets).expect("indices bounded by construction");
        Fcm {
            rules,
            rule_index,
            flows,
            sparse,
        }
    }

    /// Number of rules (rows).
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Number of logical flows (columns).
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// The rule universe in row order.
    pub fn rules(&self) -> &[RuleRef] {
        &self.rules
    }

    /// The logical flows in column order.
    pub fn flows(&self) -> &[LogicalFlow] {
        &self.flows
    }

    /// Row index of a rule, if it is part of this FCM.
    pub fn rule_row(&self, r: RuleRef) -> Option<usize> {
        self.rule_index.get(&r).copied()
    }

    /// Materializes the FCM densely (rules × flows). The matrix is kept in
    /// CSR form internally — real FCMs are huge but sparse — so this is an
    /// O(rules·flows) conversion intended for the detectability oracle and
    /// for small/test instances, not for the per-round solver path.
    pub fn dense(&self) -> DenseMatrix {
        self.sparse.to_dense()
    }

    /// The sparse (CSR) matrix.
    pub fn sparse(&self) -> &CsrMatrix {
        &self.sparse
    }

    /// The column of flow `j` as a dense vector.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn column(&self, j: usize) -> Vec<f64> {
        let mut col = vec![0.0; self.rule_count()];
        for r in &self.flows[j].rules {
            col[self.rule_index[r]] = 1.0;
        }
        col
    }

    /// Indices of columns forming a **deduplicated column basis**: the first
    /// occurrence of every distinct column. With per-destination rule
    /// aggregation, two hosts on the same edge switch sending to the same
    /// destination traverse identical rule sets, giving identical FCM
    /// columns; the least-squares projection only depends on the column
    /// *space*, so the solver works on this basis (see
    /// [`crate::EquationSystem`]).
    pub fn unique_column_basis(&self) -> Vec<usize> {
        let mut seen: HashMap<Vec<usize>, usize> = HashMap::new();
        let mut basis = Vec::new();
        for (j, f) in self.flows.iter().enumerate() {
            let mut key: Vec<usize> = f.rules.iter().map(|r| self.rule_index[r]).collect();
            key.sort_unstable();
            if seen.insert(key, j).is_none() {
                basis.push(j);
            }
        }
        basis
    }

    /// Groups columns by identical rule sets: `basis[g]` is the first
    /// column of group `g`, and `group_of[j]` maps every column to its
    /// group. Used by the solver to work on a duplicate-free column basis.
    pub fn column_groups(&self) -> ColumnGroups {
        let mut seen: HashMap<Vec<usize>, usize> = HashMap::new();
        let mut basis = Vec::new();
        let mut group_of = Vec::with_capacity(self.flows.len());
        for (j, f) in self.flows.iter().enumerate() {
            let mut key: Vec<usize> = f.rules.iter().map(|r| self.rule_index[r]).collect();
            key.sort_unstable();
            let g = *seen.entry(key).or_insert_with(|| {
                basis.push(j);
                basis.len() - 1
            });
            group_of.push(g);
        }
        ColumnGroups { basis, group_of }
    }

    /// Expected counter vector `Y₀ = H·X` for given flow volumes.
    ///
    /// # Panics
    ///
    /// Panics if `volumes.len() != flow_count()`.
    pub fn expected_counters(&self, volumes: &[f64]) -> Vec<f64> {
        self.sparse
            .matvec(volumes)
            .expect("volume vector length checked by caller")
    }

    /// The number of nonzero entries (total rule traversals).
    pub fn nnz(&self) -> usize {
        self.sparse.nnz()
    }

    /// Appends logical flows as new columns — the incremental path for
    /// reactive rule installation (paper §II-A: "rules can also be
    /// installed reactively when a new flow comes into the network").
    /// Rebuilds the sparse form once, so batch additions where possible.
    ///
    /// # Panics
    ///
    /// Panics if a flow references a rule outside the universe; call
    /// [`Fcm::extend_rules`] first for rules the controller just installed.
    pub fn add_flows(&mut self, flows: Vec<LogicalFlow>) {
        for f in &flows {
            for r in &f.rules {
                assert!(
                    self.rule_index.contains_key(r),
                    "flow references unknown rule {r}; extend_rules first"
                );
            }
        }
        self.flows.extend(flows);
        self.rebuild_sparse();
    }

    /// Removes the flows at the given column indices (e.g. reactive flows
    /// that timed out), returning them in the order given. Remaining
    /// columns keep their relative order; installed rules stay in the
    /// universe (their counters simply go quiet).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range or repeated.
    pub fn remove_flows(&mut self, indices: &[usize]) -> Vec<LogicalFlow> {
        let mut marked = vec![false; self.flows.len()];
        for &i in indices {
            assert!(i < self.flows.len(), "flow index {i} out of range");
            assert!(!marked[i], "flow index {i} repeated");
            marked[i] = true;
        }
        let mut removed = Vec::with_capacity(indices.len());
        for &i in indices {
            removed.push(self.flows[i].clone());
        }
        let mut keep = Vec::with_capacity(self.flows.len() - indices.len());
        for (i, f) in self.flows.drain(..).enumerate() {
            if !marked[i] {
                keep.push(f);
            }
        }
        self.flows = keep;
        self.rebuild_sparse();
        removed
    }

    /// Extends the rule universe with newly installed rules (new rows,
    /// all-zero until some flow traverses them). Existing row indices are
    /// preserved, so previously collected counter vectors stay aligned
    /// after appending the new rules' counters.
    ///
    /// # Panics
    ///
    /// Panics if a rule is already in the universe.
    pub fn extend_rules(&mut self, new_rules: &[RuleRef]) {
        for &r in new_rules {
            let idx = self.rules.len();
            let prev = self.rule_index.insert(r, idx);
            assert!(prev.is_none(), "rule {r} already in the FCM universe");
            self.rules.push(r);
        }
        self.rebuild_sparse();
    }

    fn rebuild_sparse(&mut self) {
        let mut triplets = Vec::new();
        for (j, f) in self.flows.iter().enumerate() {
            for r in &f.rules {
                triplets.push(Triplet {
                    row: self.rule_index[r],
                    col: j,
                    value: 1.0,
                });
            }
        }
        self.sparse = CsrMatrix::from_triplets(self.rules.len(), self.flows.len(), &triplets)
            .expect("indices bounded by construction");
    }

    /// Restricts the FCM to the **observed** rows — the degraded-detection
    /// path for rounds where some switches never answered the statistics
    /// poll (timed out, crashed, or partitioned off the control channel).
    ///
    /// `observed[i]` says whether row `i`'s counter was collected. The
    /// masked system keeps only observed rules; every flow's column is
    /// restricted to those rules, and flows that lose *all* their rules are
    /// dropped (they constrain nothing observable — their count is reported
    /// in [`MaskedFcm::dropped_flows`]). Least-squares detection on the
    /// masked system is exactly detection on the sub-rows of `H·X = Y'`,
    /// so verdicts remain sound; they are merely *weaker* (anything a
    /// benign network could explain using the unobserved rows is now
    /// unfalsifiable — quantify with the detectability oracle on the
    /// masked FCM).
    ///
    /// # Panics
    ///
    /// Panics if `observed.len() != rule_count()`.
    pub fn mask_rows(&self, observed: &[bool]) -> MaskedFcm {
        self.quarantine(observed, &vec![false; self.flow_count()])
    }

    /// Restricts the FCM to the observed rows **and** evicts quarantined
    /// flows — the churn-reconciliation path. During a mid-epoch rule
    /// update (reroute, granularity refinement, hardening install), the
    /// counters of the touched rules mix traffic routed under two
    /// different generations, and the flows through those rules no longer
    /// satisfy either generation's equation system. Masking the touched
    /// *rows* removes the inconsistent equations; quarantining the
    /// affected *columns* removes the unknowns whose coefficients changed
    /// mid-epoch, so the remaining sub-system is consistent for benign
    /// traffic and verdicts on it stay sound.
    ///
    /// `observed[i]` says whether row `i` is kept; `quarantined[j]` says
    /// whether flow `j` is evicted regardless of its surviving rules.
    /// Quarantine takes precedence: a quarantined flow counts toward
    /// [`MaskedFcm::quarantined_flows`] even if every one of its rules
    /// was also masked. Non-quarantined flows that lose all their rules
    /// are dropped as in [`Fcm::mask_rows`].
    ///
    /// # Panics
    ///
    /// Panics if `observed.len() != rule_count()` or
    /// `quarantined.len() != flow_count()`.
    pub fn quarantine(&self, observed: &[bool], quarantined: &[bool]) -> MaskedFcm {
        assert_eq!(
            observed.len(),
            self.rule_count(),
            "observed mask must have one entry per rule"
        );
        assert_eq!(
            quarantined.len(),
            self.flow_count(),
            "quarantine mask must have one entry per flow"
        );
        let kept_rules: Vec<RuleRef> = self
            .rules
            .iter()
            .zip(observed)
            .filter(|(_, &o)| o)
            .map(|(&r, _)| r)
            .collect();
        let parent_rows: Vec<usize> = (0..self.rule_count()).filter(|&i| observed[i]).collect();
        let keep = |r: &RuleRef| observed[self.rule_index[r]];
        let mut dropped_flows = 0usize;
        let mut quarantined_flows = 0usize;
        let mut parent_columns = Vec::new();
        let mut sub_flows = Vec::new();
        for (j, f) in self.flows.iter().enumerate() {
            if quarantined[j] {
                quarantined_flows += 1;
                continue;
            }
            let mut g = f.clone();
            g.rules.retain(|r| keep(r));
            if g.rules.is_empty() {
                dropped_flows += 1;
                continue;
            }
            g.path.retain(|s| g.rules.iter().any(|r| r.switch == *s));
            parent_columns.push(j);
            sub_flows.push(g);
        }
        MaskedFcm {
            fcm: Fcm::from_parts(kept_rules, sub_flows),
            parent_rule_count: self.rule_count(),
            parent_rows,
            parent_columns,
            dropped_flows,
            quarantined_flows,
        }
    }

    /// Flow mask marking every column that traverses at least one of the
    /// given rules — the columns a rule-update journal quarantines.
    /// Rules outside this FCM's universe (e.g. installed after the FCM
    /// was built) touch no column and are ignored.
    pub fn columns_touching(&self, rules: &[RuleRef]) -> Vec<bool> {
        let touched: std::collections::HashSet<RuleRef> = rules.iter().copied().collect();
        self.flows
            .iter()
            .map(|f| f.rules.iter().any(|r| touched.contains(r)))
            .collect()
    }

    /// Row mask marking every rule traversed by at least one of the marked
    /// flows — the closure step of churn reconciliation. Quarantining the
    /// flows through updated rules is not enough on its own: a quarantined
    /// flow still contributes traffic to the *untouched* rules on its
    /// path, so those counters mix explained and unexplained volume.
    /// Masking this closure as well leaves a sub-system whose remaining
    /// counters are sums over remaining columns only, hence consistent
    /// for benign traffic. One step suffices — removing extra rows never
    /// creates new mixed counters.
    ///
    /// # Panics
    ///
    /// Panics if `flows.len() != flow_count()`.
    pub fn rows_touching(&self, flows: &[bool]) -> Vec<bool> {
        assert_eq!(
            flows.len(),
            self.flow_count(),
            "flow mask must have one entry per flow"
        );
        let mut mask = vec![false; self.rule_count()];
        for (j, f) in self.flows.iter().enumerate() {
            if flows[j] {
                for r in &f.rules {
                    mask[self.rule_index[r]] = true;
                }
            }
        }
        mask
    }

    /// Collects this FCM's counter vector from a data plane, in row order.
    /// Unlike [`foces_dataplane::DataPlane::collect_counters`] this ignores
    /// rules outside the FCM's universe — e.g. dedicated measurement rules
    /// another tool installed after the FCM was built.
    ///
    /// # Panics
    ///
    /// Panics if a rule of the FCM no longer exists on the data plane.
    pub fn counters_from(&self, dp: &foces_dataplane::DataPlane) -> Vec<f64> {
        self.rules
            .iter()
            .map(|r| dp.counter(r.switch, r.index))
            .collect()
    }
}

/// A row-masked, optionally column-quarantined FCM (see [`Fcm::mask_rows`]
/// and [`Fcm::quarantine`]): the equation system restricted to the rows
/// whose counters were actually observed this round, minus any flows
/// evicted because a mid-epoch rule update made their equations
/// inconsistent.
#[derive(Debug, Clone)]
pub struct MaskedFcm {
    fcm: Fcm,
    parent_rule_count: usize,
    parent_rows: Vec<usize>,
    parent_columns: Vec<usize>,
    dropped_flows: usize,
    quarantined_flows: usize,
}

impl MaskedFcm {
    /// The masked sub-FCM (observed rules only).
    pub fn fcm(&self) -> &Fcm {
        &self.fcm
    }

    /// For each masked row, its row index in the parent FCM.
    pub fn parent_rows(&self) -> &[usize] {
        &self.parent_rows
    }

    /// For each kept column, its flow index in the parent FCM.
    pub fn parent_columns(&self) -> &[usize] {
        &self.parent_columns
    }

    /// Parent flows dropped because every one of their rules was masked.
    pub fn dropped_flows(&self) -> usize {
        self.dropped_flows
    }

    /// Parent flows evicted by the quarantine mask (mid-epoch rule churn
    /// made their equations mix generations). Disjoint from
    /// [`MaskedFcm::dropped_flows`]: quarantine takes precedence.
    pub fn quarantined_flows(&self) -> usize {
        self.quarantined_flows
    }

    /// The parent FCM's rule count (the expected length of a full counter
    /// vector handed to [`MaskedFcm::project`]).
    pub fn parent_rule_count(&self) -> usize {
        self.parent_rule_count
    }

    /// Number of parent rows that were masked away.
    pub fn masked_row_count(&self) -> usize {
        self.parent_rule_count - self.parent_rows.len()
    }

    /// Extracts the masked counter vector (observed rows, in masked row
    /// order) from a full-length counter vector. Unobserved entries of
    /// `full` are ignored — pass any placeholder (e.g. `0.0`).
    ///
    /// # Panics
    ///
    /// Panics if `full.len() != parent_rule_count()`.
    pub fn project(&self, full: &[f64]) -> Vec<f64> {
        assert_eq!(
            full.len(),
            self.parent_rule_count,
            "full counter vector must match the parent FCM"
        );
        self.parent_rows.iter().map(|&i| full[i]).collect()
    }
}

/// Column grouping by identical rule sets (see [`Fcm::column_groups`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnGroups {
    /// First column index of each group, in first-appearance order.
    pub basis: Vec<usize>,
    /// `group_of[j]` = group index of column `j`.
    pub group_of: Vec<usize>,
}

impl ColumnGroups {
    /// Number of members in group `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range (callers iterate over valid groups).
    pub fn group_size(&self, g: usize) -> usize {
        assert!(g < self.basis.len(), "group {g} out of range");
        self.group_of.iter().filter(|&&x| x == g).count()
    }
}

impl fmt::Display for Fcm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FCM: {} rules x {} flows ({} nonzeros, density {:.4}%)",
            self.rule_count(),
            self.flow_count(),
            self.nnz(),
            100.0 * self.nnz() as f64
                / (self.rule_count().max(1) * self.flow_count().max(1)) as f64
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foces_controlplane::{provision, uniform_flows, RuleGranularity};
    use foces_net::generators::{fattree, stanford};

    fn fcm_for(topo: foces_net::Topology, g: RuleGranularity) -> Fcm {
        let flows = uniform_flows(&topo, 1000.0);
        let dep = provision(topo, &flows, g).unwrap();
        Fcm::from_view(&dep.view)
    }

    #[test]
    fn dimensions_match_view() {
        let fcm = fcm_for(fattree(4), RuleGranularity::PerDestination);
        assert_eq!(fcm.flow_count(), 240);
        assert!(fcm.rule_count() > 0);
        assert_eq!(fcm.dense().rows(), fcm.rule_count());
        assert_eq!(fcm.dense().cols(), fcm.flow_count());
        assert_eq!(fcm.sparse().rows(), fcm.rule_count());
        assert_eq!(fcm.sparse().nnz(), fcm.nnz());
    }

    #[test]
    fn dense_and_sparse_agree() {
        let fcm = fcm_for(stanford(), RuleGranularity::PerDestination);
        assert!(fcm.sparse().to_dense().approx_eq(&fcm.dense(), 0.0));
    }

    #[test]
    fn column_entries_match_flow_rules() {
        let fcm = fcm_for(fattree(4), RuleGranularity::PerDestination);
        for (j, flow) in fcm.flows().iter().enumerate().take(20) {
            let col = fcm.column(j);
            let ones: usize = col.iter().filter(|&&v| v == 1.0).count();
            assert_eq!(ones, flow.rules.len());
            for r in &flow.rules {
                assert_eq!(col[fcm.rule_row(*r).unwrap()], 1.0);
            }
        }
    }

    #[test]
    fn per_pair_columns_are_all_unique() {
        let fcm = fcm_for(fattree(4), RuleGranularity::PerFlowPair);
        assert_eq!(fcm.unique_column_basis().len(), fcm.flow_count());
    }

    #[test]
    fn per_destination_fattree_has_duplicate_columns() {
        // Two hosts on one edge switch sending to the same destination share
        // every rule, so their columns coincide.
        let fcm = fcm_for(fattree(4), RuleGranularity::PerDestination);
        let basis = fcm.unique_column_basis();
        assert!(basis.len() < fcm.flow_count());
        assert!(basis.len() >= fcm.flow_count() / 2);
    }

    #[test]
    fn stanford_per_destination_columns_unique() {
        // One host per switch: every (src, dst) pair takes a distinct path.
        let fcm = fcm_for(stanford(), RuleGranularity::PerDestination);
        assert_eq!(fcm.unique_column_basis().len(), fcm.flow_count());
    }

    #[test]
    fn expected_counters_are_flow_sums() {
        let fcm = fcm_for(fattree(4), RuleGranularity::PerDestination);
        let volumes = vec![1.0; fcm.flow_count()];
        let y = fcm.expected_counters(&volumes);
        // Each rule's expected counter = number of flows traversing it ≥ 1.
        assert!(y.iter().all(|&v| v >= 1.0));
        let total: f64 = y.iter().sum();
        assert_eq!(total as usize, fcm.nnz());
    }

    #[test]
    fn display_reports_shape() {
        let fcm = fcm_for(fattree(4), RuleGranularity::PerDestination);
        let s = fcm.to_string();
        assert!(s.contains("240 flows"));
    }

    #[test]
    fn mask_rows_all_observed_is_identity() {
        let fcm = fcm_for(fattree(4), RuleGranularity::PerDestination);
        let masked = fcm.mask_rows(&vec![true; fcm.rule_count()]);
        assert_eq!(masked.fcm().rule_count(), fcm.rule_count());
        assert_eq!(masked.fcm().flow_count(), fcm.flow_count());
        assert_eq!(masked.dropped_flows(), 0);
        assert_eq!(masked.masked_row_count(), 0);
        let full: Vec<f64> = (0..fcm.rule_count()).map(|i| i as f64).collect();
        assert_eq!(masked.project(&full), full);
    }

    #[test]
    fn mask_rows_drops_one_switch() {
        let fcm = fcm_for(fattree(4), RuleGranularity::PerFlowPair);
        let victim = fcm.rules()[0].switch;
        let observed: Vec<bool> = fcm.rules().iter().map(|r| r.switch != victim).collect();
        let hidden = observed.iter().filter(|&&o| !o).count();
        assert!(hidden > 0);
        let masked = fcm.mask_rows(&observed);
        assert_eq!(masked.fcm().rule_count(), fcm.rule_count() - hidden);
        assert_eq!(masked.masked_row_count(), hidden);
        assert_eq!(masked.parent_rule_count(), fcm.rule_count());
        // Every surviving row maps back to an observed parent row, in order.
        assert_eq!(masked.parent_rows().len(), masked.fcm().rule_count());
        for (&p, w) in masked
            .parent_rows()
            .iter()
            .zip(masked.parent_rows().iter().skip(1))
        {
            assert!(p < *w);
        }
        for (&p, r) in masked.parent_rows().iter().zip(masked.fcm().rules()) {
            assert_eq!(fcm.rules()[p], *r);
            assert!(observed[p]);
        }
        // No surviving flow references the hidden switch, and flow counts
        // add up: kept + dropped = parent.
        assert!(masked
            .fcm()
            .flows()
            .iter()
            .all(|f| f.rules.iter().all(|r| r.switch != victim)));
        assert_eq!(
            masked.fcm().flow_count() + masked.dropped_flows(),
            fcm.flow_count()
        );
    }

    #[test]
    fn mask_rows_project_selects_observed_counters() {
        let fcm = fcm_for(fattree(4), RuleGranularity::PerDestination);
        let observed: Vec<bool> = (0..fcm.rule_count()).map(|i| i % 3 != 1).collect();
        let masked = fcm.mask_rows(&observed);
        let full: Vec<f64> = (0..fcm.rule_count()).map(|i| 10.0 + i as f64).collect();
        let sub = masked.project(&full);
        assert_eq!(sub.len(), masked.fcm().rule_count());
        for (k, &p) in masked.parent_rows().iter().enumerate() {
            assert_eq!(sub[k], full[p]);
        }
    }

    #[test]
    fn quarantine_evicts_exactly_the_marked_columns() {
        let fcm = fcm_for(fattree(4), RuleGranularity::PerFlowPair);
        let observed = vec![true; fcm.rule_count()];
        let quarantined: Vec<bool> = (0..fcm.flow_count()).map(|j| j % 5 == 0).collect();
        let evicted = quarantined.iter().filter(|&&q| q).count();
        let masked = fcm.quarantine(&observed, &quarantined);
        assert_eq!(masked.quarantined_flows(), evicted);
        assert_eq!(masked.dropped_flows(), 0);
        assert_eq!(masked.fcm().flow_count(), fcm.flow_count() - evicted);
        // parent_columns maps kept columns to the non-quarantined parents,
        // in order.
        let expected: Vec<usize> = (0..fcm.flow_count()).filter(|&j| j % 5 != 0).collect();
        assert_eq!(masked.parent_columns(), expected.as_slice());
        for (k, &j) in masked.parent_columns().iter().enumerate() {
            assert_eq!(masked.fcm().flows()[k].rules, fcm.flows()[j].rules);
        }
    }

    #[test]
    fn quarantine_takes_precedence_over_dropping() {
        // Hide an entire switch AND quarantine every flow through it: the
        // flows that would have been dropped count as quarantined instead.
        let fcm = fcm_for(fattree(4), RuleGranularity::PerFlowPair);
        let victim = fcm.rules()[0].switch;
        let observed: Vec<bool> = fcm.rules().iter().map(|r| r.switch != victim).collect();
        let via_victim: Vec<bool> = fcm
            .flows()
            .iter()
            .map(|f| f.rules.iter().any(|r| r.switch == victim))
            .collect();
        let evicted = via_victim.iter().filter(|&&q| q).count();
        assert!(evicted > 0);
        let masked = fcm.quarantine(&observed, &via_victim);
        assert_eq!(masked.quarantined_flows(), evicted);
        assert_eq!(
            masked.fcm().flow_count() + masked.dropped_flows() + masked.quarantined_flows(),
            fcm.flow_count()
        );
    }

    #[test]
    fn mask_rows_is_quarantine_with_no_columns_marked() {
        let fcm = fcm_for(fattree(4), RuleGranularity::PerDestination);
        let observed: Vec<bool> = (0..fcm.rule_count()).map(|i| i % 4 != 2).collect();
        let a = fcm.mask_rows(&observed);
        let b = fcm.quarantine(&observed, &vec![false; fcm.flow_count()]);
        assert_eq!(a.quarantined_flows(), 0);
        assert_eq!(a.parent_rows(), b.parent_rows());
        assert_eq!(a.parent_columns(), b.parent_columns());
        assert_eq!(a.dropped_flows(), b.dropped_flows());
        assert_eq!(a.fcm().flow_count(), b.fcm().flow_count());
    }

    #[test]
    fn columns_touching_marks_exactly_the_traversing_flows() {
        let fcm = fcm_for(fattree(4), RuleGranularity::PerFlowPair);
        let probe = fcm.flows()[3].rules[1];
        let mask = fcm.columns_touching(&[probe]);
        assert_eq!(mask.len(), fcm.flow_count());
        for (j, f) in fcm.flows().iter().enumerate() {
            assert_eq!(mask[j], f.rules.contains(&probe), "flow {j}");
        }
        assert!(mask[3]);
        // Rules outside the universe touch nothing.
        let foreign = RuleRef {
            switch: foces_net::SwitchId(999),
            index: 7,
        };
        assert!(fcm.columns_touching(&[foreign]).iter().all(|&b| !b));
    }

    #[test]
    fn rows_touching_marks_exactly_the_traversed_rules() {
        let fcm = fcm_for(fattree(4), RuleGranularity::PerFlowPair);
        let mut flows = vec![false; fcm.flow_count()];
        flows[0] = true;
        flows[7] = true;
        let mask = fcm.rows_touching(&flows);
        let expected: std::collections::HashSet<usize> = fcm.flows()[0]
            .rules
            .iter()
            .chain(&fcm.flows()[7].rules)
            .map(|&r| fcm.rule_row(r).unwrap())
            .collect();
        for (i, &m) in mask.iter().enumerate() {
            assert_eq!(m, expected.contains(&i), "row {i}");
        }
    }

    #[test]
    #[should_panic(expected = "quarantine mask must have one entry per flow")]
    fn quarantine_rejects_wrong_flow_mask_length() {
        let fcm = fcm_for(fattree(4), RuleGranularity::PerDestination);
        fcm.quarantine(
            &vec![true; fcm.rule_count()],
            &vec![false; fcm.flow_count() - 1],
        );
    }

    #[test]
    #[should_panic(expected = "observed mask must have one entry per rule")]
    fn mask_rows_rejects_wrong_mask_length() {
        let fcm = fcm_for(fattree(4), RuleGranularity::PerDestination);
        fcm.mask_rows(&vec![true; fcm.rule_count() - 1]);
    }

    #[test]
    #[should_panic(expected = "unknown rule")]
    fn from_parts_rejects_foreign_rules() {
        let fcm = fcm_for(fattree(4), RuleGranularity::PerDestination);
        let mut flows = fcm.flows().to_vec();
        flows[0].rules.push(RuleRef {
            switch: foces_net::SwitchId(999),
            index: 0,
        });
        Fcm::from_parts(fcm.rules().to_vec(), flows);
    }
}
