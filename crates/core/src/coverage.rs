//! Static detectability & localization-coverage analysis.
//!
//! FOCES's Theorem 1/2 oracles ([`crate::undetectable_by_rank`],
//! [`crate::rbg_loop_exists`]) answer "is *this one* anomaly detectable?".
//! PR 7's redteam sweep showed that the more dangerous question is
//! structural: are there switches whose *position in the FCM* lets a whole
//! family of forgeries hide? On ring-like topologies one switch can own a
//! dominant share of the FCM rows, and least squares then simply absorbs a
//! naive counter forgery into the flow estimates — the anomaly index never
//! moves. Likewise, leave-one-switch-out localization silently degrades to
//! [`crate::LooStatus::RankLost`] when a switch's removal strands too many
//! flows.
//!
//! This module certifies those properties **before a single epoch runs**,
//! by analyzing the FCM + topology + partition symbolically:
//!
//! * **Row share & residual absorption** (a): for each switch `s`, how much
//!   of a uniform forgery direction `u_s` (the indicator of `s`'s rows)
//!   lies inside the column span of the FCM. Absorption close to 1 with a
//!   dominant row share means least squares will eat the lie; the WARN
//!   carries a *certificate* — the absorbing column combination — so the
//!   operator can see exactly which flows launder the forged counters.
//! * **LOO localizability** (b): per switch, the same structural path
//!   [`crate::LooSolver::leave_out`] takes (excise fully-stranded basis
//!   columns, downdate the remaining rows out of the cached factor) is
//!   applied symbolically — no counters, no residuals — and classified as
//!   [`LooClass::Localizable`], [`LooClass::RankLost`], or
//!   [`LooClass::ConditionalOnMask`] (localizable now, but a single
//!   additional masked switch strands some flow group).
//! * **Degradation margin** (c): the smallest set of switch losses
//!   (offline / quarantined) that drives some flow unobservable — computed
//!   from the rule histories and verified against the row-mask machinery
//!   ([`Fcm::mask_rows`]) that the degraded detector actually uses.
//! * **Partition boundary coverage** (d): per shard of a
//!   [`ShardedFcm`], whether boundary-flow replication leaves the shard's
//!   sub-system below full column rank (its local Gram matrix singular),
//!   which would force that region onto the quarantine/fallback path from
//!   epoch 0.
//!
//! The output is a [`CoverageReport`] mirroring `foces-verify`'s report
//! shape: typed findings with severities, a one-line summary, and a JSONL
//! rendering for machine consumption. Runtime services run this as a
//! pre-flight gate and re-run it after every FCM rebuild; the `foces
//! coverage` CLI verb exposes it standalone.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::time::Instant;

use foces_linalg::{CsrMatrix, FactorCache, LinalgError};
use foces_net::SwitchId;
use foces_sparse::SparseFactor;

use crate::error::FocesError;
use crate::fcm::Fcm;
use crate::shard::ShardedFcm;

/// Severity of a coverage finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CoverageSeverity {
    /// Informational: worth knowing, not a blind spot by itself.
    Info,
    /// A structural blind spot: the detector or localizer can be evaded
    /// or starved in this configuration.
    Warn,
}

impl CoverageSeverity {
    /// Lowercase label used in reports and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            CoverageSeverity::Info => "info",
            CoverageSeverity::Warn => "warn",
        }
    }

    /// Whether this is a WARN-severity finding (a structural blind spot).
    pub fn is_warn(&self) -> bool {
        matches!(self, CoverageSeverity::Warn)
    }
}

/// What kind of structural gap a [`CoverageFinding`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoverageKind {
    /// A switch owns a dominant row share *and* a uniform forgery on its
    /// rows is (mostly) inside the FCM's column span: least squares will
    /// absorb naive counter fakes there.
    RowShareAbsorption,
    /// Leave-one-out localization of this switch loses rank: the LOO
    /// localizer will refuse with [`crate::LooStatus::RankLost`].
    LooRankLost,
    /// Localizable today, but contingent on the row mask: removing this
    /// switch leaves some flow group supported by a single other switch,
    /// so one masked/quarantined switch on top strands it.
    LooConditional,
    /// The degradation margin: the smallest switch-loss set that makes
    /// some flow unobservable.
    DegradationMargin,
    /// A cluster shard whose sub-system is below full column rank even
    /// with boundary-flow replication: its local solves are singular.
    BoundaryRankDeficit,
    /// The switch-level analysis was skipped (basis too large for the
    /// dense Gram path, or the base factorization failed).
    AnalysisTruncated,
}

impl CoverageKind {
    /// Short kebab-case label used in reports and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            CoverageKind::RowShareAbsorption => "row-share-absorption",
            CoverageKind::LooRankLost => "loo-rank-lost",
            CoverageKind::LooConditional => "loo-conditional",
            CoverageKind::DegradationMargin => "degradation-margin",
            CoverageKind::BoundaryRankDeficit => "boundary-rank-deficit",
            CoverageKind::AnalysisTruncated => "analysis-truncated",
        }
    }
}

/// Leave-one-switch-out localizability classification (tentpole part b).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LooClass {
    /// The reduced system keeps full rank: [`crate::LooSolver::leave_out`]
    /// will produce a verdict for this switch.
    Localizable,
    /// Full rank survives, but some flow group is left hanging on a single
    /// other switch — one more masked or quarantined switch strands it.
    ConditionalOnMask,
    /// The reduced system is rank-deficient: the LOO localizer refuses
    /// with [`crate::LooStatus::RankLost`] for this switch.
    RankLost,
}

impl LooClass {
    /// Lowercase label used in reports and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            LooClass::Localizable => "localizable",
            LooClass::ConditionalOnMask => "conditional-on-mask",
            LooClass::RankLost => "rank-lost",
        }
    }
}

/// The absorbing column combination behind a
/// [`CoverageKind::RowShareAbsorption`] WARN: the least-squares projection
/// of the uniform forgery direction `u_s` onto the FCM's column span,
/// expressed over parent flow columns.
#[derive(Debug, Clone, PartialEq)]
pub struct AbsorptionCertificate {
    /// `(parent flow column, coefficient)` of the largest-magnitude terms
    /// of the absorbing combination, sorted by `|coefficient|` descending.
    pub terms: Vec<(usize, f64)>,
    /// Relative residual `‖u_s − H·c‖ / ‖u_s‖` of the combination — how
    /// much of the forgery escapes the span (0 = fully absorbed).
    pub residual: f64,
    /// Nonzero terms omitted from [`AbsorptionCertificate::terms`].
    pub omitted: usize,
}

impl fmt::Display for AbsorptionCertificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u ≈")?;
        for (i, (col, c)) in self.terms.iter().enumerate() {
            let sign = if *c < 0.0 { '-' } else { '+' };
            if i > 0 || *c < 0.0 {
                write!(f, " {sign}")?;
            }
            write!(f, " {:.3}·f{}", c.abs(), col)?;
        }
        if self.omitted > 0 {
            write!(f, " (+{} more)", self.omitted)?;
        }
        write!(f, " [rel residual {:.2e}]", self.residual)
    }
}

/// Per-switch coverage scores (tentpole parts a and b).
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchCoverage {
    /// The switch.
    pub switch: SwitchId,
    /// FCM rows (rules) this switch owns.
    pub rows: usize,
    /// `rows / total rules` — the switch's share of the equation system.
    pub row_share: f64,
    /// `‖P·u_s‖ / ‖u_s‖` where `P` projects onto the FCM column span and
    /// `u_s` is the indicator of the switch's rows: 1.0 means a uniform
    /// forgery on this switch is fully absorbed by least squares.
    pub absorption: f64,
    /// Leave-one-out localizability class.
    pub loo: LooClass,
    /// Basis columns stranded (excised) when this switch is left out.
    pub flows_stranded: usize,
}

/// Per-shard boundary coverage (tentpole part d).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardCoverage {
    /// Region index in the partition.
    pub region: usize,
    /// Rules (rows) in the shard's sub-FCM.
    pub rules: usize,
    /// Flows (columns) in the shard's sub-FCM, including replicated
    /// boundary flows.
    pub flows: usize,
    /// Distinct basis columns of the sub-FCM.
    pub basis_cols: usize,
    /// Boundary flows replicated into this shard.
    pub boundary_flows: usize,
    /// Whether the sub-FCM's basis Gram matrix is positive definite — the
    /// shard's local least-squares solves are well-posed.
    pub full_rank: bool,
    /// `false` when the shard was skipped (basis above the size limit).
    pub analyzed: bool,
}

/// One structural gap surfaced by the analyzer.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageFinding {
    /// What kind of gap.
    pub kind: CoverageKind,
    /// How bad.
    pub severity: CoverageSeverity,
    /// The switch concerned, when the finding is per-switch.
    pub switch: Option<SwitchId>,
    /// The partition region concerned, when the finding is per-shard.
    pub region: Option<usize>,
    /// The dominant score behind the finding (absorption, margin, …);
    /// `NaN` when no single score applies.
    pub score: f64,
    /// Human-readable description.
    pub detail: String,
    /// The absorbing combination, for
    /// [`CoverageKind::RowShareAbsorption`] findings.
    pub certificate: Option<AbsorptionCertificate>,
}

impl CoverageFinding {
    /// Renders the finding as one flat JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(160);
        s.push_str("{\"event\":\"coverage-finding\",\"kind\":\"");
        s.push_str(self.kind.label());
        s.push_str("\",\"severity\":\"");
        s.push_str(self.severity.label());
        s.push('"');
        if let Some(sw) = self.switch {
            s.push_str(&format!(",\"switch\":{}", sw.0));
        }
        if let Some(r) = self.region {
            s.push_str(&format!(",\"region\":{r}"));
        }
        if self.score.is_finite() {
            s.push_str(&format!(",\"score\":{:.6}", self.score));
        }
        s.push_str(",\"detail\":\"");
        s.push_str(&json_escape(&self.detail));
        s.push('"');
        if let Some(cert) = &self.certificate {
            s.push_str(",\"certificate\":\"");
            s.push_str(&json_escape(&cert.to_string()));
            s.push_str(&format!(
                "\",\"certificate_residual\":{:.6e}",
                cert.residual
            ));
        }
        s.push('}');
        s
    }
}

/// Knobs for the coverage analyzer.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageConfig {
    /// Row share at or above which absorption is considered dangerous
    /// (both thresholds must trip for a
    /// [`CoverageKind::RowShareAbsorption`] WARN).
    pub row_share_warn: f64,
    /// Absorption score at or above which a dominant switch WARNs.
    pub absorption_warn: f64,
    /// Maximum certificate terms listed per WARN.
    pub certificate_terms: usize,
    /// Basis-column ceiling for the dense switch-level analysis; larger
    /// systems skip parts (a)/(b) with an
    /// [`CoverageKind::AnalysisTruncated`] finding instead of allocating
    /// a huge Gram matrix in a pre-flight gate.
    pub basis_limit: usize,
}

impl Default for CoverageConfig {
    /// Row share ≥ 0.25 with absorption ≥ 0.5 WARNs; switch-level analysis
    /// capped at 1536 basis columns (FatTree(8) sampled all-pairs runs,
    /// full all-pairs FatTree(8)+ is skipped).
    fn default() -> Self {
        CoverageConfig {
            row_share_warn: 0.25,
            absorption_warn: 0.5,
            certificate_terms: 6,
            basis_limit: 1536,
        }
    }
}

/// The analyzer's verdict: per-switch scores, the degradation margin,
/// per-shard boundary coverage, and the findings derived from them.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageReport {
    /// FCM rows (rules) analyzed.
    pub rule_count: usize,
    /// FCM columns (flows) analyzed.
    pub flow_count: usize,
    /// Distinct basis columns.
    pub basis_cols: usize,
    /// Per-switch scores, ascending by switch id; empty when the
    /// switch-level analysis was truncated.
    pub switches: Vec<SwitchCoverage>,
    /// Minimum number of switch losses that makes some flow unobservable.
    pub degradation_margin: usize,
    /// A flow attaining the margin (parent column index).
    pub margin_flow: Option<usize>,
    /// The witness switch set whose joint loss blinds `margin_flow`.
    pub margin_witness: Vec<SwitchId>,
    /// Per-shard boundary coverage; empty without a partition.
    pub shards: Vec<ShardCoverage>,
    /// Whether the switch-level analysis was skipped (see
    /// [`CoverageConfig::basis_limit`]).
    pub truncated: bool,
    /// All findings, WARNs first.
    pub findings: Vec<CoverageFinding>,
    /// Analysis wall time, seconds.
    pub elapsed_secs: f64,
}

impl CoverageReport {
    /// Number of WARN-severity findings.
    pub fn warn_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == CoverageSeverity::Warn)
            .count()
    }

    /// `true` when no finding is WARN severity.
    pub fn is_clean(&self) -> bool {
        self.warn_count() == 0
    }

    /// Number of switches in the given LOO class.
    pub fn class_count(&self, class: LooClass) -> usize {
        self.switches.iter().filter(|s| s.loo == class).count()
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "coverage: {} rules x {} flows ({} basis cols), {} warnings; \
             loo {} localizable / {} conditional / {} rank-lost; margin {}",
            self.rule_count,
            self.flow_count,
            self.basis_cols,
            self.warn_count(),
            self.class_count(LooClass::Localizable),
            self.class_count(LooClass::ConditionalOnMask),
            self.class_count(LooClass::RankLost),
            self.degradation_margin,
        );
        if !self.shards.is_empty() {
            let deficient = self
                .shards
                .iter()
                .filter(|sh| sh.analyzed && !sh.full_rank)
                .count();
            s.push_str(&format!(
                "; {} shards ({} rank-deficient)",
                self.shards.len(),
                deficient
            ));
        }
        if self.truncated {
            s.push_str("; switch-level analysis truncated");
        }
        s
    }

    /// Renders the summary as one flat JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256);
        s.push_str(&format!(
            "{{\"event\":\"coverage\",\"clean\":{},\"warnings\":{},\"rules\":{},\
             \"flows\":{},\"basis_cols\":{},\"switches\":{},\"localizable\":{},\
             \"conditional\":{},\"rank_lost\":{},\"degradation_margin\":{},\
             \"truncated\":{}",
            self.is_clean(),
            self.warn_count(),
            self.rule_count,
            self.flow_count,
            self.basis_cols,
            self.switches.len(),
            self.class_count(LooClass::Localizable),
            self.class_count(LooClass::ConditionalOnMask),
            self.class_count(LooClass::RankLost),
            self.degradation_margin,
            self.truncated,
        ));
        if !self.shards.is_empty() {
            let deficient = self
                .shards
                .iter()
                .filter(|sh| sh.analyzed && !sh.full_rank)
                .count();
            s.push_str(&format!(
                ",\"shards\":{},\"shards_rank_deficient\":{deficient}",
                self.shards.len()
            ));
        }
        s.push_str(&format!(",\"elapsed_secs\":{:.6}}}", self.elapsed_secs));
        s
    }

    /// Renders the report as JSON lines: the summary object first, then one
    /// object per finding. Ends with a newline.
    pub fn to_json_lines(&self) -> String {
        let mut s = self.to_json();
        s.push('\n');
        for f in &self.findings {
            s.push_str(&f.to_json());
            s.push('\n');
        }
        s
    }
}

/// Analyzes a flat (unpartitioned) FCM.
///
/// # Errors
///
/// [`FocesError::EmptyFcm`] when the FCM has no flows or rules. Numerical
/// failures never error: they degrade into findings
/// ([`CoverageKind::AnalysisTruncated`], [`LooClass::RankLost`]) so the
/// pre-flight gates can always render a report.
pub fn analyze_coverage(fcm: &Fcm, config: &CoverageConfig) -> Result<CoverageReport, FocesError> {
    analyze_inner(fcm, None, config)
}

/// Analyzes an FCM together with its cluster partition: everything
/// [`analyze_coverage`] computes, plus per-shard boundary coverage
/// (tentpole part d).
///
/// # Errors
///
/// As for [`analyze_coverage`].
pub fn analyze_cluster_coverage(
    fcm: &Fcm,
    sharded: &ShardedFcm,
    config: &CoverageConfig,
) -> Result<CoverageReport, FocesError> {
    analyze_inner(fcm, Some(sharded), config)
}

fn analyze_inner(
    fcm: &Fcm,
    sharded: Option<&ShardedFcm>,
    config: &CoverageConfig,
) -> Result<CoverageReport, FocesError> {
    if fcm.flow_count() == 0 || fcm.rule_count() == 0 {
        return Err(FocesError::EmptyFcm);
    }
    let start = Instant::now();
    let rules = fcm.rules();
    let groups = fcm.column_groups();
    let basis = fcm.sparse().select_columns(&groups.basis);
    let ncols = basis.cols();

    let mut rows_of: BTreeMap<SwitchId, Vec<usize>> = BTreeMap::new();
    for (i, r) in rules.iter().enumerate() {
        rows_of.entry(r.switch).or_default().push(i);
    }

    let mut warns: Vec<CoverageFinding> = Vec::new();
    let mut infos: Vec<CoverageFinding> = Vec::new();
    let mut switches: Vec<SwitchCoverage> = Vec::new();
    let mut truncated = false;

    if ncols > config.basis_limit {
        truncated = true;
        infos.push(CoverageFinding {
            kind: CoverageKind::AnalysisTruncated,
            severity: CoverageSeverity::Info,
            switch: None,
            region: None,
            score: ncols as f64,
            detail: format!(
                "basis has {ncols} columns (> limit {}); switch-level absorption and \
                 LOO analysis skipped",
                config.basis_limit
            ),
            certificate: None,
        });
    } else {
        match basis.gram_dense().and_then(FactorCache::factor_lean) {
            Err(e) => {
                truncated = true;
                warns.push(CoverageFinding {
                    kind: CoverageKind::AnalysisTruncated,
                    severity: CoverageSeverity::Warn,
                    switch: None,
                    region: None,
                    score: f64::NAN,
                    detail: format!(
                        "basis Gram factorization failed ({e}): the global least-squares \
                         system is rank-deficient; switch-level analysis unavailable"
                    ),
                    certificate: None,
                });
            }
            Ok(cache) => {
                // Absorption-certificate solves route through the sparse
                // factor (CSR kernels) — the dense factor cache stays for
                // the LOO classification, whose per-row downdates it alone
                // supports. The Gram factored fine densely, so the sparse
                // factor only ever fails on pathological conditioning; the
                // dense solve is the fallback.
                let sparse_factor = SparseFactor::factor_fresh(&basis.gram_csr()).ok();
                let state = SwitchAnalysis::build(&basis, &cache, sparse_factor, rules);
                for (&sw, rows) in &rows_of {
                    let row_share = rows.len() as f64 / rules.len() as f64;
                    let (absorption, certificate) = state.absorption(rows, &groups.basis, config);
                    let (loo, stranded, hinge) = state.classify(rows);
                    if row_share >= config.row_share_warn && absorption >= config.absorption_warn {
                        warns.push(CoverageFinding {
                            kind: CoverageKind::RowShareAbsorption,
                            severity: CoverageSeverity::Warn,
                            switch: Some(sw),
                            region: None,
                            score: absorption,
                            detail: format!(
                                "switch {} owns {:.1}% of the FCM rows and a uniform forgery \
                                 on them is {:.1}% absorbed by least squares — naive counter \
                                 fakes will not move the anomaly index",
                                sw.0,
                                100.0 * row_share,
                                100.0 * absorption
                            ),
                            certificate,
                        });
                    }
                    match loo {
                        LooClass::RankLost => warns.push(CoverageFinding {
                            kind: CoverageKind::LooRankLost,
                            severity: CoverageSeverity::Warn,
                            switch: Some(sw),
                            region: None,
                            score: stranded as f64,
                            detail: format!(
                                "leaving switch {} out strands {stranded} flow group(s) and \
                                 loses rank: the LOO localizer will refuse with RankLost",
                                sw.0
                            ),
                            certificate: None,
                        }),
                        LooClass::ConditionalOnMask => infos.push(CoverageFinding {
                            kind: CoverageKind::LooConditional,
                            severity: CoverageSeverity::Info,
                            switch: Some(sw),
                            region: None,
                            score: stranded as f64,
                            detail: match hinge {
                                Some((col, t)) => format!(
                                    "switch {} is localizable, but flow {} would then hang \
                                     on switch {} alone — one masked switch strands it",
                                    sw.0, col, t.0
                                ),
                                None => format!(
                                    "switch {} is localizable conditional on the row mask",
                                    sw.0
                                ),
                            },
                            certificate: None,
                        }),
                        LooClass::Localizable => {}
                    }
                    switches.push(SwitchCoverage {
                        switch: sw,
                        rows: rows.len(),
                        row_share,
                        absorption,
                        loo,
                        flows_stranded: stranded,
                    });
                }
            }
        }
    }

    // (c) Degradation margin: the cheapest switch-loss set blinding a flow
    // is the switch set of the flow with the fewest distinct switches in
    // its history. Verified below against the mask machinery itself.
    let mut margin = usize::MAX;
    let mut margin_flow = None;
    let mut margin_witness: Vec<SwitchId> = Vec::new();
    for (j, flow) in fcm.flows().iter().enumerate() {
        let distinct: BTreeSet<SwitchId> = flow.rules.iter().map(|r| r.switch).collect();
        if distinct.len() < margin && !distinct.is_empty() {
            margin = distinct.len();
            margin_flow = Some(j);
            margin_witness = distinct.into_iter().collect();
        }
    }
    if margin == usize::MAX {
        margin = 0;
    }
    if let Some(flow) = margin_flow {
        // Cross-check the witness against the real degraded-mode path: mask
        // exactly the witness switches' rows and confirm a flow drops.
        let observed: Vec<bool> = rules
            .iter()
            .map(|r| !margin_witness.contains(&r.switch))
            .collect();
        let dropped = fcm.mask_rows(&observed).dropped_flows();
        debug_assert!(dropped >= 1, "margin witness must drop at least one flow");
        infos.push(CoverageFinding {
            kind: CoverageKind::DegradationMargin,
            severity: CoverageSeverity::Info,
            switch: margin_witness.first().copied(),
            region: None,
            score: margin as f64,
            detail: format!(
                "losing {margin} switch(es) {:?} blinds flow {flow} entirely \
                 ({dropped} flow(s) dropped under that mask)",
                margin_witness.iter().map(|s| s.0).collect::<Vec<_>>()
            ),
            certificate: None,
        });
    }

    // (d) Partition boundary coverage.
    let mut shards: Vec<ShardCoverage> = Vec::new();
    if let Some(sharded) = sharded {
        for view in sharded.shard_views() {
            let sub = view.sub_fcm;
            let sub_groups = sub.column_groups();
            let sub_basis_cols = sub_groups.basis.len();
            if sub_basis_cols > config.basis_limit {
                infos.push(CoverageFinding {
                    kind: CoverageKind::AnalysisTruncated,
                    severity: CoverageSeverity::Info,
                    switch: None,
                    region: Some(view.region),
                    score: sub_basis_cols as f64,
                    detail: format!(
                        "shard {} has {sub_basis_cols} basis columns (> limit {}); \
                         boundary rank check skipped",
                        view.region, config.basis_limit
                    ),
                    certificate: None,
                });
                shards.push(ShardCoverage {
                    region: view.region,
                    rules: sub.rule_count(),
                    flows: sub.flow_count(),
                    basis_cols: sub_basis_cols,
                    boundary_flows: view.boundary_columns.len(),
                    full_rank: false,
                    analyzed: false,
                });
                continue;
            }
            let sub_basis = sub.sparse().select_columns(&sub_groups.basis);
            // Rank probe via the sparse factor: same positive-definiteness
            // tolerance as the dense Cholesky, without densifying the
            // shard's Gram.
            let full_rank = sub.rule_count() >= sub_basis_cols
                && SparseFactor::factor_fresh(&sub_basis.gram_csr()).is_ok();
            if !full_rank {
                warns.push(CoverageFinding {
                    kind: CoverageKind::BoundaryRankDeficit,
                    severity: CoverageSeverity::Warn,
                    switch: None,
                    region: Some(view.region),
                    score: sub_basis_cols as f64,
                    detail: format!(
                        "shard {} ({} rules x {} flows, {} boundary) is below full column \
                         rank: its local least-squares solves are singular",
                        view.region,
                        sub.rule_count(),
                        sub.flow_count(),
                        view.boundary_columns.len()
                    ),
                    certificate: None,
                });
            }
            shards.push(ShardCoverage {
                region: view.region,
                rules: sub.rule_count(),
                flows: sub.flow_count(),
                basis_cols: sub_basis_cols,
                boundary_flows: view.boundary_columns.len(),
                full_rank,
                analyzed: true,
            });
        }
    }

    let mut findings = warns;
    findings.append(&mut infos);
    Ok(CoverageReport {
        rule_count: fcm.rule_count(),
        flow_count: fcm.flow_count(),
        basis_cols: ncols,
        switches,
        degradation_margin: margin,
        margin_flow,
        margin_witness,
        shards,
        truncated,
        findings,
        elapsed_secs: start.elapsed().as_secs_f64(),
    })
}

/// Shared per-analysis state for the switch-level passes: the basis, its
/// cached factor, and the per-column support structure.
struct SwitchAnalysis<'a> {
    basis: &'a CsrMatrix,
    cache: &'a FactorCache,
    /// Sparse factor of the same Gram, for the absorption solves (one per
    /// switch): CSR kernels instead of dense back-substitutions.
    sparse_factor: Option<SparseFactor>,
    rules: &'a [foces_dataplane::RuleRef],
    /// Rows supporting each basis column.
    col_support: Vec<Vec<usize>>,
}

impl<'a> SwitchAnalysis<'a> {
    fn build(
        basis: &'a CsrMatrix,
        cache: &'a FactorCache,
        sparse_factor: Option<SparseFactor>,
        rules: &'a [foces_dataplane::RuleRef],
    ) -> Self {
        let mut col_support: Vec<Vec<usize>> = vec![Vec::new(); basis.cols()];
        for i in 0..basis.rows() {
            for (j, _) in basis.row_iter(i) {
                col_support[j].push(i);
            }
        }
        SwitchAnalysis {
            basis,
            cache,
            sparse_factor,
            rules,
            col_support,
        }
    }

    /// (a) `‖P·u_s‖ / ‖u_s‖` for the uniform forgery direction `u_s`, plus
    /// the absorbing combination when it will be WARNed about.
    fn absorption(
        &self,
        rows: &[usize],
        parent_cols: &[usize],
        config: &CoverageConfig,
    ) -> (f64, Option<AbsorptionCertificate>) {
        if rows.is_empty() {
            return (0.0, None);
        }
        let solve = || -> Result<(f64, Vec<f64>), LinalgError> {
            if let Some(factor) = &self.sparse_factor {
                return foces_sparse::absorption_coefficients(self.basis, factor, rows);
            }
            // Dense fallback (sparse factor unavailable): materialize the
            // indicator and back-substitute through the dense cache.
            let mut u = vec![0.0; self.rules.len()];
            for &r in rows {
                u[r] = 1.0;
            }
            let rhs = self.basis.transpose_matvec(&u)?;
            let x = self.cache.solve(&rhs)?;
            let fitted = self.basis.matvec(&x)?;
            let resid2: f64 = u.iter().zip(&fitted).map(|(a, b)| (a - b) * (a - b)).sum();
            Ok((resid2.max(0.0).sqrt(), x))
        };
        let Ok((resid, x)) = solve() else {
            return (f64::NAN, None);
        };
        let norm_u = (rows.len() as f64).sqrt();
        let rel = resid / norm_u;
        // ‖P·u‖² = ‖u‖² − ‖u − P·u‖² for an orthogonal projection.
        let absorption = (1.0 - rel * rel).max(0.0).sqrt();
        let mut terms: Vec<(usize, f64)> = x
            .iter()
            .enumerate()
            .filter(|(_, c)| c.abs() > 1e-9)
            .map(|(j, &c)| (parent_cols[j], c))
            .collect();
        terms.sort_by(|a, b| b.1.abs().total_cmp(&a.1.abs()).then(a.0.cmp(&b.0)));
        let omitted = terms.len().saturating_sub(config.certificate_terms);
        terms.truncate(config.certificate_terms);
        let certificate = (!terms.is_empty()).then_some(AbsorptionCertificate {
            terms,
            residual: rel,
            omitted,
        });
        (absorption, certificate)
    }

    /// (b) Symbolic replay of [`crate::LooSolver::leave_out`]'s structural
    /// path: excise fully-stranded basis columns, downdate the switch's
    /// rows out of a clone of the cached factor, and classify the result.
    /// Returns `(class, stranded basis columns, conditional hinge)`.
    fn classify(&self, rows: &[usize]) -> (LooClass, usize, Option<(usize, SwitchId)>) {
        if rows.is_empty() {
            return (LooClass::Localizable, 0, None);
        }
        let ncols = self.basis.cols();
        let mut local = vec![0usize; ncols];
        for &r in rows {
            for (j, _) in self.basis.row_iter(r) {
                local[j] += 1;
            }
        }
        let row_set: BTreeSet<usize> = rows.iter().copied().collect();
        let drop_cols: Vec<usize> = (0..ncols)
            .filter(|&j| !self.col_support[j].is_empty() && local[j] == self.col_support[j].len())
            .collect();
        let stranded = drop_cols.len();
        let kept = ncols - stranded;
        if kept == 0 {
            return (LooClass::RankLost, stranded, None);
        }
        let mut new_pos = vec![usize::MAX; ncols];
        let mut next = 0usize;
        for (j, pos) in new_pos.iter_mut().enumerate() {
            if drop_cols.binary_search(&j).is_err() {
                *pos = next;
                next += 1;
            }
        }
        let mut cache = self.cache.clone();
        cache.remove_batch(&drop_cols);
        for &r in rows {
            let mut v = vec![0.0; kept];
            let mut any = false;
            for (j, val) in self.basis.row_iter(r) {
                if new_pos[j] != usize::MAX {
                    v[new_pos[j]] = val;
                    any = true;
                }
            }
            if !any {
                continue;
            }
            // Any failure to downdate — expected singularity or otherwise —
            // means the reduced factor cannot be certified: RankLost.
            if cache.downdate(&v).is_err() {
                return (LooClass::RankLost, stranded, None);
            }
        }
        // Full rank survives. Conditional check: a kept column that lost
        // rows and now hangs on a single other switch is one mask away
        // from being stranded.
        for j in 0..ncols {
            if local[j] == 0 || new_pos[j] == usize::MAX {
                continue;
            }
            let remaining: BTreeSet<SwitchId> = self.col_support[j]
                .iter()
                .filter(|r| !row_set.contains(r))
                .map(|&r| self.switch_of(r))
                .collect();
            if remaining.len() == 1 {
                let hinge = remaining.into_iter().next().expect("len checked");
                return (LooClass::ConditionalOnMask, stranded, Some((j, hinge)));
            }
        }
        (LooClass::Localizable, stranded, None)
    }

    fn switch_of(&self, row: usize) -> SwitchId {
        self.rules[row].switch
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars) —
/// mirrors `foces-verify`'s report rendering.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Fcm;

    #[test]
    fn empty_fcm_is_refused() {
        // Rules but no flows: nothing to analyze coverage over.
        let rules = vec![foces_dataplane::RuleRef {
            switch: SwitchId(0),
            index: 0,
        }];
        let fcm = Fcm::from_parts(rules, Vec::new());
        assert!(matches!(
            analyze_coverage(&fcm, &CoverageConfig::default()),
            Err(crate::FocesError::EmptyFcm)
        ));
    }

    #[test]
    fn certificate_display_reads_as_a_combination() {
        let cert = AbsorptionCertificate {
            terms: vec![(4, 0.5), (9, -0.25)],
            residual: 0.0123,
            omitted: 3,
        };
        let s = cert.to_string();
        assert!(s.starts_with("u ≈ 0.500·f4"), "{s}");
        assert!(s.contains("- 0.250·f9"), "{s}");
        assert!(s.contains("(+3 more)"), "{s}");
        assert!(s.contains("[rel residual 1.23e-2]"), "{s}");
    }

    #[test]
    fn finding_json_escapes_the_detail() {
        let finding = CoverageFinding {
            kind: CoverageKind::RowShareAbsorption,
            severity: CoverageSeverity::Warn,
            switch: Some(SwitchId(7)),
            region: None,
            score: 0.5,
            detail: "a \"quoted\"\nline".into(),
            certificate: None,
        };
        let j = finding.to_json();
        assert!(j.contains("\"kind\":\"row-share-absorption\""), "{j}");
        assert!(j.contains("\"severity\":\"warn\""), "{j}");
        assert!(j.contains("\"switch\":7"), "{j}");
        assert!(j.contains("a \\\"quoted\\\"\\nline"), "{j}");
    }

    #[test]
    fn severity_and_kind_labels_are_stable() {
        assert!(CoverageSeverity::Warn.is_warn());
        assert!(!CoverageSeverity::Info.is_warn());
        assert_eq!(CoverageSeverity::Info.label(), "info");
        assert_eq!(CoverageKind::LooRankLost.label(), "loo-rank-lost");
        assert_eq!(LooClass::ConditionalOnMask.label(), "conditional-on-mask");
    }
}
