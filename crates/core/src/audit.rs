//! Detectability audit — the paper's future work #2, made concrete.
//!
//! The paper closes by proposing to "study how to install rules which meet
//! the detection conditions of FOCES, such that all possible forwarding
//! anomalies can be detected". This module provides the measurement half:
//! given a deployed configuration, enumerate every *single-hop deviation*
//! an adversary could apply (at some switch on some flow's path, forward to
//! a different neighbor instead of the intended next hop), derive the
//! deviated flow's new rule history by re-tracing the controller's own
//! tables, and classify the deviation as detectable or not via the
//! Theorem 1 rank oracle. Operators can read the result as a coverage
//! report: which parts of the rule set leave blind spots.

use crate::detectability::history_column;
use crate::error::FocesError;
use crate::Fcm;
use foces_controlplane::ControllerView;
use foces_dataplane::{Action, RuleRef};
use foces_linalg::{SpanTester, DEFAULT_TOL};
use foces_net::{Node, SwitchId};

/// One candidate single-hop deviation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviationCandidate {
    /// Index of the affected flow (column of the FCM).
    pub flow: usize,
    /// The switch where the adversary deviates the flow.
    pub at_switch: SwitchId,
    /// The neighbor switch the flow is redirected to.
    pub redirected_to: SwitchId,
    /// The deviated flow's rule history (empty if the redirected packet is
    /// dropped before matching anything).
    pub deviated_history: Vec<RuleRef>,
    /// Whether the deviated packets still reach the flow's destination.
    pub still_delivered: bool,
}

/// Aggregate audit result.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviationAudit {
    /// Candidates that Theorem 1 classifies as detectable.
    pub detectable: Vec<DeviationCandidate>,
    /// Candidates whose deviated column stays in the FCM's span — FOCES
    /// blind spots.
    pub undetectable: Vec<DeviationCandidate>,
    /// Candidates whose deviated history references rules the FCM does not
    /// know — the FCM is stale relative to the plane it was traced against.
    /// These cannot be classified; `foces audit` reports them as a finding
    /// instead of aborting.
    pub stale: Vec<DeviationCandidate>,
}

impl DeviationAudit {
    /// Total classified candidates (stale candidates are excluded: they
    /// were never run through the Theorem 1 oracle).
    pub fn total(&self) -> usize {
        self.detectable.len() + self.undetectable.len()
    }

    /// Fraction of candidates that are detectable (1.0 when there are no
    /// candidates at all).
    pub fn coverage(&self) -> f64 {
        if self.total() == 0 {
            1.0
        } else {
            self.detectable.len() as f64 / self.total() as f64
        }
    }
}

/// Walks a concrete header through the controller's **view** tables from
/// `start`, returning the matched rule history. Stops on delivery, drop,
/// miss, or a hop budget (adversarial redirections can loop).
fn trace_concrete(
    view: &ControllerView,
    start: SwitchId,
    header: u64,
    max_hops: usize,
) -> (Vec<RuleRef>, Option<foces_net::HostId>) {
    let topo = view.topology();
    let mut history = Vec::new();
    let mut current = start;
    for _ in 0..max_hops {
        let Some((idx, rule)) = view.table(current).lookup(header) else {
            return (history, None);
        };
        history.push(RuleRef {
            switch: current,
            index: idx,
        });
        match rule.action() {
            Action::Drop => return (history, None),
            Action::Forward(port) => {
                let Some(adj) = topo.adj(Node::Switch(current)).get(port.0) else {
                    return (history, None);
                };
                match adj.neighbor {
                    Node::Host(h) => return (history, Some(h)),
                    Node::Switch(s) => current = s,
                }
            }
        }
    }
    (history, None) // loop: never delivered
}

/// Enumerates and classifies every single-hop deviation of every flow.
///
/// For flow `f` with path `S₁…Sₖ` and each position `i`, the adversary at
/// `Sᵢ` can forward `f`'s packets to any neighbor switch `T` other than the
/// intended next hop. The deviated history is `f`'s rules up to `Sᵢ`
/// followed by whatever the benign network does with the packet from `T`
/// (traced through the controller's tables — benign switches keep
/// forwarding by destination).
///
/// `max_candidates` bounds the enumeration for large networks; pass
/// `usize::MAX` for an exhaustive audit.
pub fn audit_deviations(view: &ControllerView, fcm: &Fcm, max_candidates: usize) -> DeviationAudit {
    let topo = view.topology();
    let mut detectable = Vec::new();
    let mut undetectable = Vec::new();
    let mut stale = Vec::new();
    // One orthonormal basis of the FCM's column space answers every span
    // query in O(rules * rank) — the audit asks thousands of them.
    let mut tester = SpanTester::empty(fcm.rule_count(), DEFAULT_TOL);
    for j in 0..fcm.flow_count() {
        tester.absorb(&fcm.column(j));
    }
    'outer: for (flow_idx, flow) in fcm.flows().iter().enumerate() {
        let header = flow.concrete_header();
        for (pos, rule) in flow.rules.iter().enumerate() {
            let here = rule.switch;
            let intended_next = flow.path.get(pos + 1).copied();
            for adj in topo.adj(Node::Switch(here)) {
                let Node::Switch(target) = adj.neighbor else {
                    continue;
                };
                if Some(target) == intended_next {
                    continue; // not a deviation
                }
                // Deviated history: rules up to and including this switch,
                // then the benign trace from the redirection target.
                let mut deviated: Vec<RuleRef> = flow.rules[..=pos].to_vec();
                let (rest, delivered) = trace_concrete(view, target, header, 64);
                deviated.extend(rest);
                // Skip "deviations" that reproduce the original history
                // (e.g. redirecting into a switch that routes straight
                // back): FA(h, h) is not an anomaly (Definition 1).
                let mut canon = deviated.clone();
                canon.sort_unstable();
                canon.dedup();
                let mut orig = flow.rules.clone();
                orig.sort_unstable();
                if canon == orig {
                    continue;
                }
                let candidate = DeviationCandidate {
                    flow: flow_idx,
                    at_switch: here,
                    redirected_to: target,
                    deviated_history: canon.clone(),
                    still_delivered: delivered == Some(flow.egress),
                };
                match history_column(fcm, &canon) {
                    Ok(col) => {
                        if tester.contains(&col) {
                            undetectable.push(candidate);
                        } else {
                            detectable.push(candidate);
                        }
                    }
                    // Stale FCM: the re-trace matched a rule the snapshot
                    // does not know. Record, don't abort the whole audit.
                    Err(FocesError::UnknownRule(_)) => stale.push(candidate),
                    Err(_) => unreachable!("history_column only fails on unknown rules"),
                }
                if detectable.len() + undetectable.len() + stale.len() >= max_candidates {
                    break 'outer;
                }
            }
        }
    }
    DeviationAudit {
        detectable,
        undetectable,
        stale,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detectability::undetectable_by_rank;
    use foces_controlplane::{provision, uniform_flows, RuleGranularity};
    use foces_net::generators::{bcube, fattree};

    fn audit_for(topo: foces_net::Topology, cap: usize) -> (DeviationAudit, Fcm) {
        let flows = uniform_flows(&topo, 1000.0);
        let dep = provision(topo, &flows, RuleGranularity::PerDestination).unwrap();
        let fcm = Fcm::from_view(&dep.view);
        let audit = audit_deviations(&dep.view, &fcm, cap);
        (audit, fcm)
    }

    #[test]
    fn audit_finds_candidates_and_classifies_all() {
        let (audit, _) = audit_for(bcube(1, 4), 500);
        assert!(audit.total() > 0);
        assert!(audit.coverage() > 0.0);
        assert!(audit.coverage() <= 1.0);
    }

    #[test]
    fn detectable_candidates_really_are_detectable() {
        // Cross-check the audit's classification against the oracle.
        let (audit, fcm) = audit_for(fattree(4), 200);
        for c in audit.detectable.iter().take(30) {
            assert!(!undetectable_by_rank(&fcm, &c.deviated_history).unwrap());
        }
        for c in audit.undetectable.iter().take(30) {
            assert!(undetectable_by_rank(&fcm, &c.deviated_history).unwrap());
        }
    }

    #[test]
    fn deviations_change_the_history() {
        let (audit, fcm) = audit_for(bcube(1, 4), 300);
        for c in audit.detectable.iter().chain(&audit.undetectable).take(50) {
            let mut orig = fcm.flows()[c.flow].rules.clone();
            orig.sort_unstable();
            assert_ne!(c.deviated_history, orig);
        }
    }

    #[test]
    fn cap_limits_enumeration() {
        let (audit, _) = audit_for(fattree(4), 10);
        assert!(audit.total() <= 10);
    }

    #[test]
    fn coverage_of_empty_audit_is_one() {
        let audit = DeviationAudit {
            detectable: vec![],
            undetectable: vec![],
            stale: vec![],
        };
        assert_eq!(audit.coverage(), 1.0);
    }

    #[test]
    fn stale_plane_yields_stale_candidates_not_a_panic() {
        // Audit a view whose tables moved out from under the FCM: same
        // topology, but the view was re-provisioned at a different rule
        // granularity, so the benign re-trace walks rules the FCM snapshot
        // has no row for. This previously panicked inside history_column;
        // now it must classify those candidates as stale.
        let topo = fattree(4);
        let flows = uniform_flows(&topo, 1000.0);
        let stale_dep = provision(topo.clone(), &flows, RuleGranularity::PerDestination).unwrap();
        let stale_fcm = Fcm::from_view(&stale_dep.view);
        let dep = provision(topo, &flows, RuleGranularity::PerFlowPair).unwrap();
        let audit = audit_deviations(&dep.view, &stale_fcm, 200);
        assert!(!audit.stale.is_empty());
    }
}
