use crate::{EquationSystem, Fcm, FocesError, MaskedFcm, SolveOutcome, DEFAULT_THRESHOLD};
use foces_dataplane::RuleRef;
use std::fmt;

/// The denominator of the anomaly index (ablation knob).
///
/// The paper uses the **median** of the error vector: under the
/// "majority good" assumption most residuals are pure noise, and the
/// median is immune to the few anomaly-inflated entries. The mean is the
/// obvious alternative — cheaper conceptually but *not* robust: a single
/// huge residual inflates the denominator and suppresses the index. The
/// `granularity/statistic` benches quantify the difference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum IndexStatistic {
    /// `Err_max / Err_med` — the paper's Algorithm 1.
    #[default]
    MaxOverMedian,
    /// `Err_max / Err_mean` — ablation variant.
    MaxOverMean,
}

/// The Threshold-based Detector of the FOCES architecture — Algorithm 1 of
/// the paper.
///
/// Computes the error vector `Δ` through an [`EquationSystem`] solve, forms
/// the anomaly index `AI = Err_max / Err_med`, and flags an anomaly when
/// `AI` exceeds the threshold.
///
/// # Example
///
/// ```
/// use foces::{Detector, Fcm};
/// use foces_controlplane::{provision, uniform_flows, RuleGranularity};
/// use foces_dataplane::{inject_random_anomaly, AnomalyKind, LossModel};
/// use foces_net::generators::fattree;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let topo = fattree(4);
/// let flows = uniform_flows(&topo, 240_000.0);
/// let mut dep = provision(topo, &flows, RuleGranularity::PerDestination)?;
/// let fcm = Fcm::from_view(&dep.view);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
///
/// // Compromise one switch, replay traffic, detect.
/// inject_random_anomaly(&mut dep.dataplane, AnomalyKind::PathDeviation, &mut rng, &[]);
/// dep.replay_traffic(&mut LossModel::none());
/// let verdict = Detector::default().detect(&fcm, &dep.dataplane.collect_counters())?;
/// assert!(verdict.anomalous);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detector {
    threshold: f64,
    system: EquationSystem,
    statistic: IndexStatistic,
}

impl Default for Detector {
    /// The paper's configuration: threshold 4.5, automatic solver choice,
    /// max/median index.
    fn default() -> Self {
        Detector {
            threshold: DEFAULT_THRESHOLD,
            system: EquationSystem::default(),
            statistic: IndexStatistic::MaxOverMedian,
        }
    }
}

/// One detection round's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// `true` iff the anomaly index exceeded the threshold.
    pub anomalous: bool,
    /// `AI = Err_max / Err_med` (`f64::INFINITY` when the median is zero
    /// but the maximum is not — the noiseless-anomaly case of Fig. 2).
    pub anomaly_index: f64,
    /// Maximum of the error vector.
    pub err_max: f64,
    /// The denominator statistic of the error vector (median by default,
    /// mean under [`IndexStatistic::MaxOverMean`]).
    pub err_med: f64,
    /// The rule with the largest residual — a hint for localization.
    pub worst_rule: Option<RuleRef>,
    /// Full numeric outcome (estimates, fitted counters, residual).
    pub solve: SolveOutcome,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (AI = {:.2}, err_max = {:.2}, err_med = {:.2})",
            if self.anomalous { "ANOMALY" } else { "normal" },
            self.anomaly_index,
            self.err_max,
            self.err_med
        )
    }
}

impl Detector {
    /// Creates a detector with an explicit threshold and solver.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not positive.
    pub fn new(threshold: f64, system: EquationSystem) -> Self {
        assert!(threshold > 0.0, "threshold must be positive");
        Detector {
            threshold,
            system,
            statistic: IndexStatistic::MaxOverMedian,
        }
    }

    /// Switches the anomaly-index denominator (ablation; see
    /// [`IndexStatistic`]).
    pub fn with_statistic(mut self, statistic: IndexStatistic) -> Self {
        self.statistic = statistic;
        self
    }

    /// The configured index statistic.
    pub fn statistic(&self) -> IndexStatistic {
        self.statistic
    }

    /// Creates a detector with the given threshold and the default solver.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not positive.
    pub fn with_threshold(threshold: f64) -> Self {
        Detector::new(threshold, EquationSystem::default())
    }

    /// The detection threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The configured solver.
    pub fn system(&self) -> EquationSystem {
        self.system
    }

    /// Runs Algorithm 1 on a counter snapshot.
    ///
    /// # Errors
    ///
    /// Propagates [`FocesError`] from the equation-system solve (length
    /// mismatch, empty FCM, solver failure).
    pub fn detect(&self, fcm: &Fcm, counters: &[f64]) -> Result<Verdict, FocesError> {
        let solve = self.system.solve(fcm, counters)?;
        Ok(self.judge(fcm, counters, solve))
    }

    /// Runs Algorithm 1 through a warm [`crate::IncrementalSolver`],
    /// reusing (and patching) its cached factorization of the normal
    /// equations instead of refactorizing from scratch. The verdict is
    /// equivalent to [`Detector::detect`]'s — the solver falls back to a
    /// cold factorization whenever it cannot certify the patched factor —
    /// and the returned [`crate::SolvePath`] reports which path ran.
    ///
    /// # Errors
    ///
    /// As for [`Detector::detect`].
    pub fn detect_warm(
        &self,
        fcm: &Fcm,
        counters: &[f64],
        warm: &mut crate::IncrementalSolver,
    ) -> Result<(Verdict, crate::SolvePath), FocesError> {
        let (solve, path) = warm.solve(fcm, counters)?;
        Ok((self.judge(fcm, counters, solve), path))
    }

    /// Algorithm 1 on a row-masked system (see [`Fcm::mask_rows`]): some
    /// switches never reported this round, so only the observed sub-rows of
    /// `H·X = Y'` are checked. `full_counters` is the full-length vector;
    /// unobserved entries are ignored. The verdict's `worst_rule` still
    /// names a real rule (masked rows keep their [`foces_dataplane::RuleRef`]
    /// identity), but absence of an anomaly is a *weaker* claim than under
    /// [`Detector::detect`] — quantify the blind spot with the
    /// detectability oracle on `masked.fcm()`.
    ///
    /// # Errors
    ///
    /// * [`FocesError::CounterLengthMismatch`] if `full_counters.len()`
    ///   differs from the parent FCM's rule count;
    /// * [`FocesError::EmptyFcm`] if the mask dropped every flow;
    /// * [`FocesError::Solver`] from the sub-system solve.
    pub fn detect_masked(
        &self,
        masked: &MaskedFcm,
        full_counters: &[f64],
    ) -> Result<Verdict, FocesError> {
        if full_counters.len() != masked.parent_rule_count() {
            return Err(FocesError::CounterLengthMismatch {
                got: full_counters.len(),
                expected: masked.parent_rule_count(),
            });
        }
        self.detect(masked.fcm(), &masked.project(full_counters))
    }

    /// Forms the verdict from a completed solve — shared with the sliced
    /// detector (Algorithm 2), which produces its own solves per slice.
    pub(crate) fn judge(&self, fcm: &Fcm, counters: &[f64], solve: SolveOutcome) -> Verdict {
        let (err_max, worst_idx) = max_with_index(&solve.residual);
        let err_med = match self.statistic {
            IndexStatistic::MaxOverMedian => median(&solve.residual),
            IndexStatistic::MaxOverMean => mean(&solve.residual),
        };
        // Numerical floor: residuals far below counter magnitudes are solver
        // round-off, not signal. Without this, a noiseless healthy network
        // (median 1e-13, max 1e-11) would produce a huge spurious AI.
        let scale = counters.iter().fold(1.0_f64, |m, v| m.max(v.abs()));
        let eps = 1e-7 * scale;
        let anomaly_index = if err_max <= eps {
            0.0
        } else if err_med <= eps {
            f64::INFINITY
        } else {
            err_max / err_med
        };
        Verdict {
            anomalous: anomaly_index > self.threshold,
            anomaly_index,
            err_max,
            err_med,
            worst_rule: worst_idx.map(|i| fcm.rules()[i]),
            solve,
        }
    }
}

fn max_with_index(v: &[f64]) -> (f64, Option<usize>) {
    let mut best = 0.0_f64;
    let mut idx = None;
    for (i, &x) in v.iter().enumerate() {
        if x > best {
            best = x;
            idx = Some(i);
        }
    }
    (best, idx)
}

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Median; averages the two central elements for even lengths. Returns 0
/// for an empty slice.
pub(crate) fn median(v: &[f64]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    let mut sorted = v.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("residuals are never NaN"));
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foces_controlplane::{provision, uniform_flows, RuleGranularity};
    use foces_dataplane::{inject_random_anomaly, AnomalyKind, LossModel};
    use foces_net::generators::{bcube, fattree};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(topo: foces_net::Topology) -> (Fcm, foces_controlplane::Deployment) {
        let flows = uniform_flows(&topo, topo.host_count() as f64 * 15_000.0);
        let dep = provision(topo, &flows, RuleGranularity::PerDestination).unwrap();
        let fcm = Fcm::from_view(&dep.view);
        (fcm, dep)
    }

    #[test]
    fn healthy_lossless_network_is_normal() {
        let (fcm, mut dep) = setup(bcube(1, 4));
        dep.replay_traffic(&mut LossModel::none());
        let v = Detector::default()
            .detect(&fcm, &dep.dataplane.collect_counters())
            .unwrap();
        assert!(!v.anomalous, "verdict {v}");
        assert_eq!(v.anomaly_index, 0.0);
    }

    #[test]
    fn noiseless_anomaly_gives_infinite_index() {
        let (fcm, mut dep) = setup(bcube(1, 4));
        let mut rng = StdRng::seed_from_u64(3);
        inject_random_anomaly(
            &mut dep.dataplane,
            AnomalyKind::PathDeviation,
            &mut rng,
            &[],
        )
        .unwrap();
        dep.replay_traffic(&mut LossModel::none());
        let v = Detector::default()
            .detect(&fcm, &dep.dataplane.collect_counters())
            .unwrap();
        assert!(v.anomalous, "verdict {v}");
        assert!(v.anomaly_index.is_infinite());
        assert!(v.worst_rule.is_some());
    }

    /// Per-flow rules (the paper's Floodlight-reactive setup): every rule
    /// carries one flow, so loss-induced residuals are homogeneous and the
    /// healthy anomaly index stays below the folded-normal-derived 4.5.
    /// (Per-destination aggregation concentrates residuals on big shared
    /// rules and pushes the healthy index to ~8; see EXPERIMENTS.md.)
    fn setup_per_pair(topo: foces_net::Topology) -> (Fcm, foces_controlplane::Deployment) {
        let flows = uniform_flows(&topo, topo.host_count() as f64 * 15_000.0);
        let dep = provision(topo, &flows, RuleGranularity::PerFlowPair).unwrap();
        let fcm = Fcm::from_view(&dep.view);
        (fcm, dep)
    }

    #[test]
    fn lossy_healthy_network_stays_below_threshold() {
        let (fcm, mut dep) = setup_per_pair(bcube(1, 4));
        let mut loss = LossModel::sampled(0.05, 17);
        dep.replay_traffic(&mut loss);
        let v = Detector::default()
            .detect(&fcm, &dep.dataplane.collect_counters())
            .unwrap();
        assert!(
            !v.anomalous,
            "5% loss should not trip the default threshold: {v}"
        );
        assert!(v.anomaly_index.is_finite());
        assert!(v.anomaly_index > 0.0);
    }

    #[test]
    fn lossy_anomalous_network_is_detected() {
        let (fcm, mut dep) = setup(bcube(1, 4));
        let mut rng = StdRng::seed_from_u64(5);
        inject_random_anomaly(
            &mut dep.dataplane,
            AnomalyKind::PathDeviation,
            &mut rng,
            &[],
        )
        .unwrap();
        let mut loss = LossModel::sampled(0.05, 18);
        dep.replay_traffic(&mut loss);
        let v = Detector::default()
            .detect(&fcm, &dep.dataplane.collect_counters())
            .unwrap();
        assert!(v.anomalous, "verdict {v}");
    }

    #[test]
    fn early_drop_is_detected() {
        let (fcm, mut dep) = setup(fattree(4));
        let mut rng = StdRng::seed_from_u64(8);
        inject_random_anomaly(&mut dep.dataplane, AnomalyKind::EarlyDrop, &mut rng, &[]).unwrap();
        dep.replay_traffic(&mut LossModel::none());
        let v = Detector::default()
            .detect(&fcm, &dep.dataplane.collect_counters())
            .unwrap();
        assert!(v.anomalous);
    }

    #[test]
    fn repaired_anomaly_returns_to_normal() {
        let (fcm, mut dep) = setup(bcube(1, 4));
        let mut rng = StdRng::seed_from_u64(4);
        let applied = inject_random_anomaly(
            &mut dep.dataplane,
            AnomalyKind::PathDeviation,
            &mut rng,
            &[],
        )
        .unwrap();
        dep.replay_traffic(&mut LossModel::none());
        let det = Detector::default();
        assert!(
            det.detect(&fcm, &dep.dataplane.collect_counters())
                .unwrap()
                .anomalous
        );
        // Repair, reset, replay: normal again (the paper's Fig. 7 cycle).
        applied.revert(&mut dep.dataplane).unwrap();
        dep.dataplane.reset_counters();
        dep.replay_traffic(&mut LossModel::none());
        assert!(
            !det.detect(&fcm, &dep.dataplane.collect_counters())
                .unwrap()
                .anomalous
        );
    }

    #[test]
    fn masked_healthy_round_is_normal() {
        let (fcm, mut dep) = setup_per_pair(bcube(1, 4));
        let mut loss = LossModel::sampled(0.05, 23);
        dep.replay_traffic(&mut loss);
        let counters = dep.dataplane.collect_counters();
        let victim = fcm.rules()[0].switch;
        let observed: Vec<bool> = fcm.rules().iter().map(|r| r.switch != victim).collect();
        let masked = fcm.mask_rows(&observed);
        let v = Detector::default()
            .detect_masked(&masked, &counters)
            .unwrap();
        assert!(!v.anomalous, "masked healthy round flagged: {v}");
    }

    #[test]
    fn masked_round_still_detects_visible_anomaly() {
        let (fcm, mut dep) = setup(bcube(1, 4));
        let mut rng = StdRng::seed_from_u64(11);
        let applied = inject_random_anomaly(
            &mut dep.dataplane,
            AnomalyKind::PathDeviation,
            &mut rng,
            &[],
        )
        .unwrap();
        dep.replay_traffic(&mut LossModel::none());
        let counters = dep.dataplane.collect_counters();
        // Mask a switch that is NOT the compromised one: the inconsistency
        // the deviation leaves on the remaining rows must still show.
        let victim = fcm
            .rules()
            .iter()
            .map(|r| r.switch)
            .find(|&s| s != applied.rule.switch)
            .unwrap();
        let observed: Vec<bool> = fcm.rules().iter().map(|r| r.switch != victim).collect();
        let masked = fcm.mask_rows(&observed);
        let v = Detector::default()
            .detect_masked(&masked, &counters)
            .unwrap();
        assert!(v.anomalous, "masked round missed the anomaly: {v}");
    }

    #[test]
    fn masked_detect_validates_full_length() {
        let (fcm, _) = setup(bcube(1, 4));
        let masked = fcm.mask_rows(&vec![true; fcm.rule_count()]);
        let err = Detector::default()
            .detect_masked(&masked, &[1.0, 2.0])
            .unwrap_err();
        assert!(matches!(err, FocesError::CounterLengthMismatch { .. }));
    }

    #[test]
    fn threshold_is_configurable() {
        let det = Detector::with_threshold(0.5);
        assert_eq!(det.threshold(), 0.5);
        let (fcm, mut dep) = setup(bcube(1, 4));
        let mut loss = LossModel::sampled(0.10, 3);
        dep.replay_traffic(&mut loss);
        // With an absurdly low threshold, loss noise alone trips detection.
        let v = det.detect(&fcm, &dep.dataplane.collect_counters()).unwrap();
        assert!(v.anomalous);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threshold_rejected() {
        Detector::with_threshold(0.0);
    }

    #[test]
    fn mean_statistic_is_less_robust_than_median() {
        // With the anomaly inflating the denominator, max/mean yields a
        // smaller index than max/median — the reason the paper uses the
        // median. Verify the ordering on a real anomalous round.
        let (fcm, mut dep) = setup(bcube(1, 4));
        let mut rng = StdRng::seed_from_u64(21);
        inject_random_anomaly(
            &mut dep.dataplane,
            AnomalyKind::PathDeviation,
            &mut rng,
            &[],
        )
        .unwrap();
        let mut loss = LossModel::sampled(0.05, 5);
        dep.replay_traffic(&mut loss);
        let counters = dep.dataplane.collect_counters();
        let med = Detector::default().detect(&fcm, &counters).unwrap();
        let mean = Detector::default()
            .with_statistic(IndexStatistic::MaxOverMean)
            .detect(&fcm, &counters)
            .unwrap();
        assert!(med.anomaly_index > mean.anomaly_index, "{med} vs {mean}");
        assert_eq!(
            Detector::default().statistic(),
            IndexStatistic::MaxOverMedian
        );
    }

    #[test]
    fn median_conventions() {
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[3.0]), 3.0);
        assert_eq!(median(&[1.0, 3.0]), 2.0);
        assert_eq!(median(&[5.0, 1.0, 3.0]), 3.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
    }

    #[test]
    fn verdict_display() {
        let (fcm, mut dep) = setup(bcube(1, 4));
        dep.replay_traffic(&mut LossModel::none());
        let v = Detector::default()
            .detect(&fcm, &dep.dataplane.collect_counters())
            .unwrap();
        assert!(v.to_string().contains("normal"));
    }

    #[test]
    fn paper_worked_example_fig2() {
        // Eq. (6)-(7): 6 rules, 3 flows, deviated counters. AI must be
        // infinite (err_med = 0, err_max = 3).
        use foces_linalg::DenseMatrix;
        // Build a synthetic FCM via from_parts with hand-made flows.
        // Flows' rule memberships mirror H's columns.
        let h = DenseMatrix::from_rows(&[
            &[1., 0., 0.],
            &[1., 0., 0.],
            &[1., 1., 0.],
            &[0., 0., 0.],
            &[0., 0., 1.],
            &[1., 1., 1.],
        ])
        .unwrap();
        let fcm = crate::testkit::fcm_from_dense(&h);
        let y = [3., 3., 4., 3., 8., 12.];
        let v = Detector::default().detect(&fcm, &y).unwrap();
        assert!(v.anomalous);
        assert!(v.anomaly_index.is_infinite());
        assert!((v.err_max - 3.0).abs() < 1e-9);
        assert_eq!(v.err_med, median(&v.solve.residual));
        // The worst rule is row 3 (the unused rule at S3).
        assert_eq!(v.worst_rule.unwrap(), fcm.rules()[3]);
    }

    #[test]
    fn paper_counterexample_fig3_is_missed() {
        // Eq. (8): the consistent deviated system — FOCES must NOT flag it.
        use foces_linalg::DenseMatrix;
        let h = DenseMatrix::from_rows(&[
            &[1., 0., 0.],
            &[1., 0., 0.],
            &[1., 1., 0.],
            &[0., 0., 1.],
            &[0., 0., 1.],
            &[1., 1., 1.],
        ])
        .unwrap();
        let fcm = crate::testkit::fcm_from_dense(&h);
        let y = [3., 3., 4., 8., 8., 12.];
        let v = Detector::default().detect(&fcm, &y).unwrap();
        assert!(!v.anomalous, "Fig. 3 counterexample must be undetectable");
        // And X̂ = (3, 1, 8) as the paper computes.
        assert!((v.solve.volume_estimate[0] - 3.0).abs() < 1e-9);
        assert!((v.solve.volume_estimate[1] - 1.0).abs() < 1e-9);
        assert!((v.solve.volume_estimate[2] - 8.0).abs() < 1e-9);
    }
}
