//! The detectability oracle: Theorem 1 (exact, rank-based) and Theorem 2
//! (graph-based necessary condition).
//!
//! A forwarding anomaly replaces a flow's FCM column `hᵢ` with a deviated
//! column `hᵢ'` (Definition 1). Theorem 1: the anomaly is **undetectable**
//! iff `hᵢ'` lies in the column span of the original FCM — the observed
//! counters then admit an alternative benign explanation, so no residual
//! appears no matter how the detector is tuned.

use crate::error::FocesError;
use crate::rbg::Rbg;
use crate::Fcm;
use foces_dataplane::RuleRef;
use foces_linalg::{in_column_span, DEFAULT_TOL};
use std::collections::BTreeSet;

/// Builds the 0/1 column vector for a (deviated) rule history.
///
/// # Errors
///
/// [`FocesError::UnknownRule`] if the history references a rule outside
/// the FCM's rule universe — the FCM is stale relative to the plane the
/// history was traced from (e.g. `foces audit` against a plane that
/// churned since the FCM snapshot). Callers surface this as a finding,
/// not a panic.
pub(crate) fn history_column(fcm: &Fcm, history: &[RuleRef]) -> Result<Vec<f64>, FocesError> {
    let mut col = vec![0.0; fcm.rule_count()];
    for r in history {
        let row = fcm.rule_row(*r).ok_or(FocesError::UnknownRule(*r))?;
        col[row] = 1.0;
    }
    Ok(col)
}

/// Theorem 1 oracle: `true` iff the anomaly that rewrites some flow's rule
/// history to `deviated_history` is **undetectable** — the deviated column
/// lies in the span of the FCM's columns.
///
/// # Errors
///
/// [`FocesError::UnknownRule`] if the history references a rule the FCM
/// does not know (the FCM is stale relative to the plane).
///
/// # Example
///
/// ```
/// use foces::{testkit, undetectable_by_rank};
///
/// // Fig. 3 / Eq. (8): deviating flow a to r1,r2,r4,r5,r6 is undetectable.
/// let fcm = testkit::paper_fig3_fcm();
/// let r = fcm.rules();
/// let deviated = [r[0], r[1], r[3], r[4], r[5]];
/// assert!(undetectable_by_rank(&fcm, &deviated)?);
/// # Ok::<(), foces::FocesError>(())
/// ```
pub fn undetectable_by_rank(fcm: &Fcm, deviated_history: &[RuleRef]) -> Result<bool, FocesError> {
    let col = history_column(fcm, deviated_history)?;
    Ok(in_column_span(&fcm.dense(), &col, DEFAULT_TOL))
}

/// Convenience inverse of [`undetectable_by_rank`].
///
/// # Errors
///
/// [`FocesError::UnknownRule`] if the history references a rule the FCM
/// does not know (the FCM is stale relative to the plane).
///
/// # Example
///
/// ```
/// use foces::{is_detectable, testkit};
///
/// // Fig. 2 / Eq. (6): the same deviation against the Fig. 2 FCM is
/// // detectable (rule r4 is otherwise unused).
/// let fcm = testkit::paper_fig2_fcm();
/// let r = fcm.rules();
/// assert!(is_detectable(&fcm, &[r[0], r[1], r[3], r[4], r[5]])?);
/// # Ok::<(), foces::FocesError>(())
/// ```
pub fn is_detectable(fcm: &Fcm, deviated_history: &[RuleRef]) -> Result<bool, FocesError> {
    Ok(!undetectable_by_rank(fcm, deviated_history)?)
}

/// Theorem 2's graph condition, evaluated as a *necessary* test: returns
/// `true` iff some switch's RBG with respect to `H̃ = H ∪ {deviated}`
/// contains a (multigraph) loop.
///
/// `false` certifies the anomaly detectable without any linear algebra;
/// `true` means it *may* be undetectable and [`undetectable_by_rank`]
/// decides (see [`crate::rbg`] module docs for why the sufficient direction
/// needs the paper's no-pivot-rule side condition).
pub fn rbg_loop_exists(fcm: &Fcm, deviated_history: &[RuleRef]) -> bool {
    let mut histories: Vec<&[RuleRef]> = fcm.flows().iter().map(|f| f.rules.as_slice()).collect();
    histories.push(deviated_history);
    // Only switches touched by some history can have edges.
    let switches: BTreeSet<foces_net::SwitchId> = histories
        .iter()
        .flat_map(|h| h.iter().map(|r| r.switch))
        .collect();
    switches
        .into_iter()
        .any(|s| Rbg::build(s, &histories).has_loop())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{fcm_from_dense, paper_fig2_fcm, paper_fig3_fcm};
    use foces_linalg::DenseMatrix;

    fn deviated(fcm: &Fcm) -> Vec<RuleRef> {
        let r = fcm.rules();
        vec![r[0], r[1], r[3], r[4], r[5]]
    }

    #[test]
    fn fig2_deviation_is_detectable() {
        let fcm = paper_fig2_fcm();
        assert!(is_detectable(&fcm, &deviated(&fcm)).unwrap());
        assert!(!undetectable_by_rank(&fcm, &deviated(&fcm)).unwrap());
    }

    #[test]
    fn fig3_deviation_is_undetectable_and_has_loop() {
        let fcm = paper_fig3_fcm();
        assert!(undetectable_by_rank(&fcm, &deviated(&fcm)).unwrap());
        // Theorem 2 necessary direction: undetectable => loop.
        assert!(rbg_loop_exists(&fcm, &deviated(&fcm)));
    }

    #[test]
    fn unchanged_history_is_trivially_undetectable() {
        // Replacing a column by itself stays in the span: FA(h, h) is the
        // degenerate no-op "anomaly".
        let fcm = paper_fig2_fcm();
        let original = fcm.flows()[0].rules.clone();
        assert!(undetectable_by_rank(&fcm, &original).unwrap());
    }

    #[test]
    fn empty_history_detectable_iff_zero_not_special() {
        // An early drop at the very first switch erases the flow entirely:
        // the zero column. Zero is always in the span, so by the algebraic
        // criterion alone this is "undetectable"... for the *deviated* flow
        // — but the missing volume shows elsewhere. The rank oracle must
        // report in-span (the paper's Definition 2 is about equation
        // consistency, and HX = Y' stays consistent only if the lost volume
        // can be re-explained, which the detector tests separately).
        let fcm = paper_fig2_fcm();
        assert!(undetectable_by_rank(&fcm, &[]).unwrap());
    }

    #[test]
    fn single_unused_rule_deviation_is_detectable() {
        // Sending a flow through the never-used rule r4 (row 3) of Fig. 2
        // cannot be explained by any benign combination.
        let fcm = paper_fig2_fcm();
        let r = fcm.rules();
        assert!(is_detectable(&fcm, &[r[3]]).unwrap());
    }

    #[test]
    fn loop_free_rbg_certifies_detectability() {
        // 4 rules, 2 disjoint flows. Deviating a flow to the otherwise
        // unused rule 3 alone shares no rule with any flow: every
        // per-switch RBG stays a forest, certifying detectability without
        // linear algebra.
        let h = DenseMatrix::from_rows(&[&[1., 0.], &[1., 0.], &[0., 1.], &[0., 0.]]).unwrap();
        let fcm = fcm_from_dense(&h);
        let r = fcm.rules();
        let dev = [r[3]];
        assert!(!rbg_loop_exists(&fcm, &dev));
        assert!(is_detectable(&fcm, &dev).unwrap());
    }

    #[test]
    fn loop_is_necessary_not_sufficient() {
        // A deviation that keeps the original first hop shares rule r0 with
        // the original flow, creating parallel r_s -> r0 edges (a multigraph
        // loop) — yet the deviated column (1,0,0,1) is NOT in the span of
        // {(1,1,0,0), (0,0,1,0)}: detectable despite the loop. This is
        // exactly why has_loop() is only a necessary condition.
        let h = DenseMatrix::from_rows(&[&[1., 0.], &[1., 0.], &[0., 1.], &[0., 0.]]).unwrap();
        let fcm = fcm_from_dense(&h);
        let r = fcm.rules();
        let dev = [r[0], r[3]];
        assert!(rbg_loop_exists(&fcm, &dev));
        assert!(is_detectable(&fcm, &dev).unwrap());
    }

    #[test]
    fn foreign_rule_is_a_typed_error_not_a_panic() {
        let fcm = paper_fig2_fcm();
        let foreign = RuleRef {
            switch: foces_net::SwitchId(99),
            index: 0,
        };
        let err = undetectable_by_rank(&fcm, &[foreign]).unwrap_err();
        assert_eq!(err, crate::FocesError::UnknownRule(foreign));
        assert!(err.to_string().contains("unknown rule"));
        assert!(err.to_string().contains("stale"));
    }
}
