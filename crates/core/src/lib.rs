//! **FOCES** — network-wide forwarding anomaly detection for software-defined
//! networks, a from-scratch Rust reproduction of the ICDCS 2018 paper
//! *"FOCES: Detecting Forwarding Anomalies in Software Defined Networks"*.
//!
//! # The idea
//!
//! A compromised SDN switch can forward packets along paths the controller
//! never programmed — bypassing firewalls, detouring, or silently dropping
//! traffic — while forging its flow-table dumps and its own counters.
//! FOCES detects this **without any dedicated measurement rules**, using
//! only the counters of the ordinary forwarding rules:
//!
//! 1. From the controller's view of the network, build the **flow-counter
//!    matrix** `H`: one row per rule, one column per logical flow,
//!    `H[i][j] = 1` iff flow `j` traverses rule `i` ([`Fcm`]).
//! 2. Collect the counter vector `Y'` from the data plane.
//! 3. If forwarding is correct, `H·X = Y'` has a consistent solution in the
//!    flow volumes `X`. Solve the least-squares problem
//!    `X̂ = argmin ‖H·X − Y'‖` and inspect the residual
//!    `Δ = |Y' − H·X̂|` ([`EquationSystem`]).
//! 4. Noise (packet loss, unsynchronized counters) makes `Δ` slightly
//!    nonzero even in healthy networks, so FOCES flags an anomaly only when
//!    the **anomaly index** `AI = Err_max / Err_med` exceeds a threshold
//!    (default 4.5, derived from a folded-normal noise model)
//!    ([`Detector`], [`threshold`]).
//!
//! For scalability, the FCM can be **sliced** per switch (paper §IV-B):
//! each switch gets the sub-matrix of its own and predecessor rules, and
//! detection runs per slice with the same guarantees (Theorem 3)
//! ([`SlicedFcm`]). Slicing also enables **localization** of the
//! compromised switch ([`localize`], the paper's future work).
//!
//! The theory lives in [`rbg`] and the detectability oracle
//! ([`is_detectable`] / [`undetectable_by_rank`]): an anomaly is
//! undetectable iff the deviated flow column stays inside the FCM's column
//! span (Theorem 1), which reduces to a loop in a per-switch rule bipartite
//! graph (Theorem 2).
//!
//! # Quickstart
//!
//! ```
//! use foces::{Detector, Fcm};
//! use foces_controlplane::{provision, uniform_flows, RuleGranularity};
//! use foces_dataplane::LossModel;
//! use foces_net::generators::bcube;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Provision the paper's BCube(1,4) testbed.
//! let topo = bcube(1, 4);
//! let flows = uniform_flows(&topo, 240_000.0);
//! let mut dep = provision(topo, &flows, RuleGranularity::PerDestination)?;
//!
//! // Build the FCM from the controller's view and run one detection round.
//! let fcm = Fcm::from_view(&dep.view);
//! dep.replay_traffic(&mut LossModel::none());
//! let counters = dep.dataplane.collect_counters();
//! let detector = Detector::default();
//! let verdict = detector.detect(&fcm, &counters)?;
//! assert!(!verdict.anomalous); // healthy network
//! # Ok(())
//! # }
//! ```

mod audit;
mod byzantine;
pub mod coverage;
mod detectability;
mod detector;
mod error;
mod fcm;
mod harden;
mod incremental;
mod localize;
mod monitor;
pub mod rbg;
mod shard;
mod slicing;
mod solver;
pub mod testkit;
pub mod threshold;

pub use audit::{audit_deviations, DeviationAudit, DeviationCandidate};
pub use byzantine::{
    cross_validate, k_resilient_verdict, ByzantineReport, LooOutcome, LooSolver, LooStatus,
    ResilienceReport, ResilienceStep, SuspicionConfig, SuspicionTracker,
};
pub use coverage::{
    analyze_cluster_coverage, analyze_coverage, AbsorptionCertificate, CoverageConfig,
    CoverageFinding, CoverageKind, CoverageReport, CoverageSeverity, LooClass, ShardCoverage,
    SwitchCoverage,
};
pub use detectability::{is_detectable, rbg_loop_exists, undetectable_by_rank};
pub use detector::{Detector, IndexStatistic, Verdict};
pub use error::FocesError;
pub use fcm::{ColumnGroups, Fcm, MaskedFcm};
pub use harden::{harden, HardeningOutcome};
pub use incremental::{ColdReason, FcmDelta, IncrementalSolver, RankBudget, SolvePath};
pub use localize::{localize, localize_differential, SwitchSuspicion};
pub use monitor::{AlarmState, Monitor, MonitorConfig, MonitorReport};
pub use rbg::Rbg;
pub use shard::{ShardUnionVerdict, ShardView, ShardedFcm};
pub use slicing::{SliceView, SlicedFcm, SlicedVerdict};
pub use solver::{EquationSystem, SolveOutcome, SolverKind};
// Backend selection comes from the sparse engine crate; re-exported so
// downstream crates (runtime, cluster, ingest, cli) need no direct
// foces-sparse dependency.
pub use foces_sparse::BackendKind;

/// The paper's default detection threshold (§IV-A): with counter noise
/// `Y'(i) ~ N(Y₀(i), σ²)`, `Err_med ≈ 0.675σ` and `Err_max ≲ 3σ`, so a
/// healthy anomaly index stays below `3/0.675 ≈ 4.4` with probability
/// ≈ 0.997; 4.5 adds a small margin.
pub const DEFAULT_THRESHOLD: f64 = 4.5;
