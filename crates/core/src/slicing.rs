use crate::rbg::Rbg;
use crate::{Detector, Fcm, FocesError, Verdict};
use foces_atpg::LogicalFlow;
use foces_net::SwitchId;
use std::collections::BTreeSet;
use std::fmt;

/// One per-switch slice: the sub-FCM over `R(S)` (the switch's rules plus
/// their predecessor rules, from the switch's RBG) and `F(S)` (flows
/// touching any rule of `R(S)`).
#[derive(Debug, Clone)]
struct Slice {
    switch: SwitchId,
    /// Row indices into the parent FCM (for extracting the sub counter
    /// vector `Y'(i)`).
    parent_rows: Vec<usize>,
    /// The sub-FCM `H(Sᵢ)`.
    sub_fcm: Fcm,
}

/// The sliced flow-counter matrix of paper §IV-B: one sub-FCM per switch,
/// enabling Algorithm 2's per-switch detection with `O(n³)`-per-slice cost
/// instead of one network-sized inversion.
///
/// By Theorem 3, every anomaly detectable by the whole-network Algorithm 1
/// remains detectable by slicing; experiments (paper Fig. 10/11) show
/// slicing can even *improve* accuracy because benign noise elsewhere in
/// the network no longer dilutes a slice's anomaly index.
///
/// # Example
///
/// ```
/// use foces::{Detector, Fcm, SlicedFcm};
/// use foces_controlplane::{provision, uniform_flows, RuleGranularity};
/// use foces_dataplane::LossModel;
/// use foces_net::generators::bcube;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let topo = bcube(1, 4);
/// let flows = uniform_flows(&topo, 240_000.0);
/// let mut dep = provision(topo, &flows, RuleGranularity::PerDestination)?;
/// let fcm = Fcm::from_view(&dep.view);
/// let sliced = SlicedFcm::from_fcm(&fcm);
/// dep.replay_traffic(&mut LossModel::none());
/// let verdict = sliced.detect(&Detector::default(), &dep.dataplane.collect_counters())?;
/// assert!(!verdict.anomalous);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SlicedFcm {
    parent_rule_count: usize,
    slices: Vec<Slice>,
}

/// Outcome of one sliced detection round (Algorithm 2, evaluated on every
/// switch rather than short-circuiting, so the per-switch indices are
/// available for localization).
#[derive(Debug, Clone, PartialEq)]
pub struct SlicedVerdict {
    /// `true` iff any switch's slice flagged an anomaly.
    pub anomalous: bool,
    /// Per-switch verdicts, in slice order.
    pub per_switch: Vec<(SwitchId, Verdict)>,
}

impl SlicedVerdict {
    /// The largest per-switch anomaly index (0 if there are no slices).
    pub fn max_anomaly_index(&self) -> f64 {
        self.per_switch
            .iter()
            .map(|(_, v)| v.anomaly_index)
            .fold(0.0, f64::max)
    }

    /// Switches whose slice exceeded the threshold.
    pub fn flagged_switches(&self) -> Vec<SwitchId> {
        self.per_switch
            .iter()
            .filter(|(_, v)| v.anomalous)
            .map(|(s, _)| *s)
            .collect()
    }
}

impl fmt::Display for SlicedVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} slices, max AI = {:.2}, flagged: {:?})",
            if self.anomalous { "ANOMALY" } else { "normal" },
            self.per_switch.len(),
            self.max_anomaly_index(),
            self.flagged_switches()
        )
    }
}

impl SlicedFcm {
    /// Slices an FCM per switch. Switches whose slice would be empty (no
    /// rule matched by any flow) are skipped.
    pub fn from_fcm(fcm: &Fcm) -> Self {
        let histories: Vec<&[foces_dataplane::RuleRef]> =
            fcm.flows().iter().map(|f| f.rules.as_slice()).collect();
        let switches: BTreeSet<SwitchId> = fcm.rules().iter().map(|r| r.switch).collect();
        let mut slices = Vec::new();
        for switch in switches {
            let rbg = Rbg::build(switch, &histories);
            let rules = rbg.slicing_rules();
            if rules.is_empty() {
                continue;
            }
            let rule_set: BTreeSet<foces_dataplane::RuleRef> = rules.iter().copied().collect();
            // F(S): flows matching at least one rule of R(S); their
            // histories restricted to R(S) become the sub-FCM columns.
            let sub_flows: Vec<LogicalFlow> = fcm
                .flows()
                .iter()
                .filter(|f| f.rules.iter().any(|r| rule_set.contains(r)))
                .map(|f| {
                    let mut g = f.clone();
                    g.rules.retain(|r| rule_set.contains(r));
                    g.path.retain(|s| g.rules.iter().any(|r| r.switch == *s));
                    g
                })
                .collect();
            let parent_rows: Vec<usize> = rules
                .iter()
                .map(|r| fcm.rule_row(*r).expect("slicing rules come from the FCM"))
                .collect();
            let sub_fcm = Fcm::from_parts(rules, sub_flows);
            slices.push(Slice {
                switch,
                parent_rows,
                sub_fcm,
            });
        }
        SlicedFcm {
            parent_rule_count: fcm.rule_count(),
            slices,
        }
    }

    /// Number of slices (switches with at least one matched rule).
    pub fn slice_count(&self) -> usize {
        self.slices.len()
    }

    /// The switches with slices, in ascending order.
    pub fn switches(&self) -> impl Iterator<Item = SwitchId> + '_ {
        self.slices.iter().map(|s| s.switch)
    }

    /// Dimensions `(rules, flows)` of each slice's sub-FCM — the quantity
    /// the paper's complexity analysis is about (sub-FCMs are much smaller
    /// than the global FCM).
    pub fn slice_dims(&self) -> Vec<(SwitchId, usize, usize)> {
        self.slices
            .iter()
            .map(|s| (s.switch, s.sub_fcm.rule_count(), s.sub_fcm.flow_count()))
            .collect()
    }

    /// The parent FCM's rule count (the expected counter-vector length).
    pub fn parent_rule_count(&self) -> usize {
        self.parent_rule_count
    }

    /// Borrowed views of the slices, in slice (ascending switch) order —
    /// the unit of work for parallel sliced detection: each view carries
    /// everything needed to solve one slice independently.
    pub fn slice_views(&self) -> Vec<SliceView<'_>> {
        self.slices
            .iter()
            .map(|s| SliceView {
                switch: s.switch,
                parent_rows: &s.parent_rows,
                sub_fcm: &s.sub_fcm,
            })
            .collect()
    }

    /// Runs Algorithm 2: applies the detector to every slice with its sub
    /// counter vector.
    ///
    /// # Errors
    ///
    /// * [`FocesError::CounterLengthMismatch`] if `counters` does not match
    ///   the parent FCM's rule count;
    /// * solver errors from any slice.
    pub fn detect(
        &self,
        detector: &Detector,
        counters: &[f64],
    ) -> Result<SlicedVerdict, FocesError> {
        if counters.len() != self.parent_rule_count {
            return Err(FocesError::CounterLengthMismatch {
                got: counters.len(),
                expected: self.parent_rule_count,
            });
        }
        let mut per_switch = Vec::with_capacity(self.slices.len());
        let mut anomalous = false;
        for slice in &self.slices {
            let sub_counters: Vec<f64> = slice.parent_rows.iter().map(|&i| counters[i]).collect();
            let verdict = detector.detect(&slice.sub_fcm, &sub_counters)?;
            anomalous |= verdict.anomalous;
            per_switch.push((slice.switch, verdict));
        }
        Ok(SlicedVerdict {
            anomalous,
            per_switch,
        })
    }
}

/// A borrowed view of one slice (see [`SlicedFcm::slice_views`]).
#[derive(Debug, Clone, Copy)]
pub struct SliceView<'a> {
    /// The switch this slice checks.
    pub switch: SwitchId,
    /// Row indices into the parent FCM for the slice's rules.
    pub parent_rows: &'a [usize],
    /// The slice's sub-FCM `H(Sᵢ)`.
    pub sub_fcm: &'a Fcm,
}

impl SliceView<'_> {
    /// Extracts this slice's sub counter vector `Y'(i)` from the full
    /// vector and runs the detector on it.
    ///
    /// # Errors
    ///
    /// Solver errors from the slice solve.
    ///
    /// # Panics
    ///
    /// Panics if `counters` is shorter than the parent FCM's rule count
    /// (callers validate once against [`SlicedFcm::parent_rule_count`]).
    pub fn detect(&self, detector: &Detector, counters: &[f64]) -> Result<Verdict, FocesError> {
        let sub: Vec<f64> = self.parent_rows.iter().map(|&i| counters[i]).collect();
        detector.detect(self.sub_fcm, &sub)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::paper_fig2_fcm;
    use foces_controlplane::{provision, uniform_flows, RuleGranularity};
    use foces_dataplane::{inject_random_anomaly, AnomalyKind, LossModel};
    use foces_net::generators::{bcube, fattree};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(topo: foces_net::Topology) -> (Fcm, SlicedFcm, foces_controlplane::Deployment) {
        let flows = uniform_flows(&topo, topo.host_count() as f64 * 15_000.0);
        let dep = provision(topo, &flows, RuleGranularity::PerDestination).unwrap();
        let fcm = Fcm::from_view(&dep.view);
        let sliced = SlicedFcm::from_fcm(&fcm);
        (fcm, sliced, dep)
    }

    #[test]
    fn paper_fig5_sub_fcm_shape() {
        // Fig. 5: the sub-FCM for S2 of Fig. 2 is 4x3 (rules r2, r3, r5?,
        // r6... precisely: R(S2) = {r3} ∪ predecessors {r2} — in our
        // one-rule-per-switch testkit encoding: rule row 2 and its
        // predecessor row 1, flows a and b).
        let fcm = paper_fig2_fcm();
        let sliced = SlicedFcm::from_fcm(&fcm);
        // Switch 2 (rule r3) slice: rules {r3, r2}, flows {a, b}.
        let dims = sliced.slice_dims();
        let s2 = dims.iter().find(|(s, _, _)| s.0 == 2).unwrap();
        assert_eq!(s2.1, 2, "rules in S2 slice");
        assert_eq!(s2.2, 2, "flows in S2 slice");
    }

    #[test]
    fn healthy_network_not_flagged_by_slicing() {
        let (_, sliced, mut dep) = setup(bcube(1, 4));
        dep.replay_traffic(&mut LossModel::none());
        let v = sliced
            .detect(&Detector::default(), &dep.dataplane.collect_counters())
            .unwrap();
        assert!(!v.anomalous, "{v}");
        assert!(v.flagged_switches().is_empty());
    }

    #[test]
    fn theorem3_slicing_detects_what_baseline_detects() {
        // Inject anomalies; whenever the baseline flags, slicing must flag
        // too (Theorem 3).
        let detector = Detector::default();
        for seed in 0..10 {
            let (fcm, sliced, mut dep) = setup(bcube(1, 4));
            let mut rng = StdRng::seed_from_u64(seed);
            inject_random_anomaly(
                &mut dep.dataplane,
                AnomalyKind::PathDeviation,
                &mut rng,
                &[],
            )
            .unwrap();
            dep.replay_traffic(&mut LossModel::none());
            let counters = dep.dataplane.collect_counters();
            let baseline = detector.detect(&fcm, &counters).unwrap();
            let sliced_v = sliced.detect(&detector, &counters).unwrap();
            if baseline.anomalous {
                assert!(
                    sliced_v.anomalous,
                    "seed {seed}: baseline detected but slicing missed"
                );
            }
        }
    }

    #[test]
    fn flagged_switch_is_near_the_compromise() {
        let (_, sliced, mut dep) = setup(fattree(4));
        let mut rng = StdRng::seed_from_u64(12);
        let applied = inject_random_anomaly(
            &mut dep.dataplane,
            AnomalyKind::PathDeviation,
            &mut rng,
            &[],
        )
        .unwrap();
        dep.replay_traffic(&mut LossModel::none());
        let v = sliced
            .detect(&Detector::default(), &dep.dataplane.collect_counters())
            .unwrap();
        assert!(v.anomalous);
        assert!(!v.flagged_switches().is_empty());
        let _ = applied; // the compromised switch itself may or may not flag;
                         // localization quality is asserted in localize tests
    }

    #[test]
    fn slice_dimensions_are_smaller_than_parent() {
        let (fcm, sliced, _) = setup(fattree(4));
        for (_, rules, flows) in sliced.slice_dims() {
            assert!(rules <= fcm.rule_count());
            assert!(flows <= fcm.flow_count());
            assert!(rules > 0);
            assert!(flows > 0);
        }
        // Total slice area is far below #slices * parent area.
        let parent_area = fcm.rule_count() * fcm.flow_count();
        let total_slice_area: usize = sliced.slice_dims().iter().map(|(_, r, f)| r * f).sum();
        assert!(
            total_slice_area < parent_area * sliced.slice_count() / 4,
            "slices should be much smaller: {total_slice_area} vs parent {parent_area}"
        );
    }

    #[test]
    fn counter_length_validated() {
        let (_, sliced, _) = setup(bcube(1, 4));
        let err = sliced
            .detect(&Detector::default(), &[1.0, 2.0])
            .unwrap_err();
        assert!(matches!(err, FocesError::CounterLengthMismatch { .. }));
    }

    #[test]
    fn every_switch_with_rules_gets_a_slice() {
        let (fcm, sliced, _) = setup(bcube(1, 4));
        let switches_with_rules: BTreeSet<SwitchId> =
            fcm.rules().iter().map(|r| r.switch).collect();
        assert_eq!(sliced.slice_count(), switches_with_rules.len());
    }

    #[test]
    fn slice_views_reproduce_detect() {
        let (fcm, sliced, mut dep) = setup(bcube(1, 4));
        let mut rng = StdRng::seed_from_u64(9);
        inject_random_anomaly(
            &mut dep.dataplane,
            AnomalyKind::PathDeviation,
            &mut rng,
            &[],
        )
        .unwrap();
        dep.replay_traffic(&mut LossModel::none());
        let counters = dep.dataplane.collect_counters();
        assert_eq!(sliced.parent_rule_count(), fcm.rule_count());
        let detector = Detector::default();
        let whole = sliced.detect(&detector, &counters).unwrap();
        let views = sliced.slice_views();
        assert_eq!(views.len(), sliced.slice_count());
        for (view, (switch, verdict)) in views.iter().zip(&whole.per_switch) {
            assert_eq!(view.switch, *switch);
            let v = view.detect(&detector, &counters).unwrap();
            assert_eq!(v, *verdict);
        }
    }

    #[test]
    fn display_mentions_slices() {
        let (_, sliced, mut dep) = setup(bcube(1, 4));
        dep.replay_traffic(&mut LossModel::none());
        let v = sliced
            .detect(&Detector::default(), &dep.dataplane.collect_counters())
            .unwrap();
        assert!(v.to_string().contains("slices"));
    }
}
