//! Derivation of the detection threshold (paper §IV-A).
//!
//! FOCES models each observed counter as `Y'(i) ~ N(Y₀(i), σ²)`; each
//! residual entry then follows a **folded normal** distribution with CDF
//! `F(x) = erf(x / √(2σ²))`. Its median is `√2·erf⁻¹(1/2)·σ ≈ 0.6745σ`, and
//! by the three-sigma rule the maximum stays below `3σ` with probability
//! ≈ 0.997. A healthy anomaly index `Err_max / Err_med` therefore stays
//! below `3 / 0.6745 ≈ 4.45`, which the paper rounds up to the default
//! threshold **4.5**.
//!
//! The error function and its inverse are implemented here from scratch
//! (no libm dependency): `erf` via the Abramowitz–Stegun 7.1.26 rational
//! approximation (|error| < 1.5·10⁻⁷), `erf_inv` via Giles' polynomial
//! approximation refined with two Newton steps.

/// Error function `erf(x)`, Abramowitz–Stegun 7.1.26 (|error| ≤ 1.5e-7).
///
/// # Example
///
/// ```
/// let v = foces::threshold::erf(1.0);
/// assert!((v - 0.8427007).abs() < 1e-6);
/// ```
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// Inverse error function `erf⁻¹(y)` for `y ∈ (-1, 1)`.
///
/// Giles' single-precision polynomial seeded estimate, refined with two
/// Newton iterations against [`erf`] to full double-ish precision on the
/// range detection needs.
///
/// # Panics
///
/// Panics if `y` is outside `(-1, 1)`.
///
/// # Example
///
/// ```
/// let x = foces::threshold::erf_inv(0.5);
/// assert!((foces::threshold::erf(x) - 0.5).abs() < 1e-9);
/// ```
pub fn erf_inv(y: f64) -> f64 {
    assert!(y > -1.0 && y < 1.0, "erf_inv domain is (-1, 1), got {y}");
    if y == 0.0 {
        return 0.0;
    }
    // Initial estimate (Giles 2010, "Approximating the erfinv function").
    let w = -((1.0 - y) * (1.0 + y)).ln();
    let mut x = if w < 5.0 {
        let w = w - 2.5;
        let mut p = 2.81022636e-08;
        p = 3.43273939e-07 + p * w;
        p = -3.5233877e-06 + p * w;
        p = -4.39150654e-06 + p * w;
        p = 0.00021858087 + p * w;
        p = -0.00125372503 + p * w;
        p = -0.00417768164 + p * w;
        p = 0.246640727 + p * w;
        p = 1.50140941 + p * w;
        p * y
    } else {
        let w = w.sqrt() - 3.0;
        let mut p = -0.000200214257;
        p = 0.000100950558 + p * w;
        p = 0.00134934322 + p * w;
        p = -0.00367342844 + p * w;
        p = 0.00573950773 + p * w;
        p = -0.0076224613 + p * w;
        p = 0.00943887047 + p * w;
        p = 1.00167406 + p * w;
        p = 2.83297682 + p * w;
        p * y
    };
    // Newton refinement: f(x) = erf(x) - y, f'(x) = 2/√π · e^(−x²).
    let two_over_sqrt_pi = 2.0 / std::f64::consts::PI.sqrt();
    for _ in 0..2 {
        let err = erf(x) - y;
        x -= err / (two_over_sqrt_pi * (-x * x).exp());
    }
    x
}

/// The folded-normal median expressed in units of σ:
/// `√2 · erf⁻¹(1/2) ≈ 0.6745`. The paper uses 0.675.
pub fn folded_median_factor() -> f64 {
    std::f64::consts::SQRT_2 * erf_inv(0.5)
}

/// Derives a detection threshold from a maximum-residual budget expressed
/// in sigmas: `T = max_sigmas / folded_median_factor()`.
///
/// `derive_threshold(3.0) ≈ 4.45` — the paper's three-sigma derivation,
/// rounded up to its default of 4.5 ([`crate::DEFAULT_THRESHOLD`]).
///
/// # Panics
///
/// Panics if `max_sigmas` is not positive.
pub fn derive_threshold(max_sigmas: f64) -> f64 {
    assert!(max_sigmas > 0.0, "sigma budget must be positive");
    max_sigmas / folded_median_factor()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        // Reference values from standard tables.
        let cases = [
            (0.0, 0.0),
            (0.5, 0.5204999),
            (1.0, 0.8427008),
            (2.0, 0.9953223),
            (-1.0, -0.8427008),
        ];
        for (x, want) in cases {
            assert!((erf(x) - want).abs() < 2e-6, "erf({x}) = {}", erf(x));
        }
    }

    #[test]
    fn erf_limits() {
        assert!(erf(6.0) > 0.999999);
        assert!(erf(-6.0) < -0.999999);
    }

    #[test]
    fn erf_inv_round_trips() {
        for y in [-0.99, -0.5, -0.1, 0.0, 0.1, 0.5, 0.9, 0.999] {
            let x = erf_inv(y);
            assert!((erf(x) - y).abs() < 1e-7, "round trip at {y}: {}", erf(x));
        }
    }

    #[test]
    #[should_panic(expected = "domain")]
    fn erf_inv_rejects_out_of_domain() {
        erf_inv(1.0);
    }

    #[test]
    fn folded_median_matches_paper_constant() {
        // Paper: x = √2·erf⁻¹(1/2)·σ ≈ 0.675σ.
        let f = folded_median_factor();
        assert!((f - 0.6745).abs() < 1e-3, "factor {f}");
    }

    #[test]
    fn three_sigma_threshold_matches_paper() {
        // Paper: 3σ / 0.675σ ≈ 4.4, default threshold 4.5.
        let t = derive_threshold(3.0);
        assert!((t - 4.45).abs() < 0.05, "threshold {t}");
        assert!(crate::DEFAULT_THRESHOLD > t);
        assert!(crate::DEFAULT_THRESHOLD - t < 0.1);
    }

    #[test]
    fn erf_is_odd_and_monotone() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64 * 0.05).collect();
        for w in xs.windows(2) {
            assert!(erf(w[1]) >= erf(w[0]));
        }
        // Oddness holds to the approximation's own accuracy (the sign is
        // factored out, so the cancellation is exact except at x = 0 where
        // the polynomial leaves ~1e-9 that the special case removes).
        for &x in &xs {
            assert!((erf(-x) + erf(x)).abs() < 1e-8);
        }
    }
}
