//! The Rule Bipartite Graph (paper Definition 3) and its loop test
//! (Theorem 2), plus the per-switch rule/flow extraction that powers FCM
//! slicing (§IV-B).
//!
//! For a switch `S` and a set of flow rule-histories, the RBG has:
//!
//! * `V_out` — the rules of `S` matched by some flow;
//! * `V_in` — every rule that immediately precedes a `V_out` rule in some
//!   flow's history, plus a virtual source `r_s` standing in as "the first
//!   rule of all flows" for flows that *start* at `S`;
//! * one edge per (flow, consecutive rule pair) — a **multigraph**: two
//!   flows traversing the same rule pair contribute two parallel edges.
//!
//! # Loop semantics and Theorem 2
//!
//! Theorem 2 states a forwarding anomaly `FA(hᵢ, hᵢ')` is undetectable iff
//! some switch's RBG w.r.t. `H̃ = H ∪ {hᵢ'}` contains a loop. The paper's
//! proof (Appendix B) additionally assumes the rule set has no *pivot
//! rules* and that loop flows share their prior histories; without those
//! side conditions the loop test is a **necessary** condition for
//! undetectability but not a sufficient one. [`Rbg::has_loop`] therefore
//! over-approximates: *no loop anywhere ⇒ the anomaly is certainly
//! detectable*, while a loop means the anomaly **may** be undetectable and
//! the exact rank test ([`crate::undetectable_by_rank`], Theorem 1) gives
//! the final word. The property-test suite checks exactly this
//! containment on thousands of generated deviations.

use foces_dataplane::RuleRef;
use foces_net::SwitchId;
use std::collections::HashMap;
use std::fmt;

/// A node of the RBG: a concrete rule or the virtual source `r_s`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RbgNode {
    /// The virtual rule acting as the first rule of all flows.
    Virtual,
    /// A concrete rule.
    Rule(RuleRef),
}

impl fmt::Display for RbgNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RbgNode::Virtual => write!(f, "r_s"),
            RbgNode::Rule(r) => write!(f, "{r}"),
        }
    }
}

/// An RBG edge: a flow traversing `from` immediately before `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RbgEdge {
    /// Predecessor rule (or the virtual source).
    pub from: RbgNode,
    /// The `V_out` rule at the graph's switch.
    pub to: RuleRef,
    /// Index of the flow (into the history list the graph was built from).
    pub flow: usize,
}

/// The Rule Bipartite Graph of one switch with respect to a set of flow
/// histories (see module docs).
///
/// # Example
///
/// ```
/// use foces::rbg::Rbg;
/// use foces::testkit::paper_fig2_fcm;
///
/// let fcm = paper_fig2_fcm();
/// let histories: Vec<&[_]> =
///     fcm.flows().iter().map(|f| f.rules.as_slice()).collect();
/// // Row 5 (rule r6) lives on its own switch in the testkit encoding.
/// let rbg = Rbg::build(foces_net::SwitchId(5), &histories);
/// assert_eq!(rbg.v_out().len(), 1);
/// assert_eq!(rbg.v_in().len(), 2); // r3 and r5 feed r6
/// ```
#[derive(Debug, Clone)]
pub struct Rbg {
    switch: SwitchId,
    edges: Vec<RbgEdge>,
}

impl Rbg {
    /// Builds the RBG of `switch` from flow rule-histories.
    pub fn build(switch: SwitchId, histories: &[&[RuleRef]]) -> Self {
        let mut edges = Vec::new();
        for (flow, history) in histories.iter().enumerate() {
            for (pos, &rule) in history.iter().enumerate() {
                if rule.switch != switch {
                    continue;
                }
                let from = if pos == 0 {
                    RbgNode::Virtual
                } else {
                    RbgNode::Rule(history[pos - 1])
                };
                edges.push(RbgEdge {
                    from,
                    to: rule,
                    flow,
                });
            }
        }
        Rbg { switch, edges }
    }

    /// The switch this graph describes.
    pub fn switch(&self) -> SwitchId {
        self.switch
    }

    /// All edges (one per flow per traversal — parallel edges preserved).
    pub fn edges(&self) -> &[RbgEdge] {
        &self.edges
    }

    /// The `V_out` rules (rules of this switch matched by some flow),
    /// deduplicated, in first-appearance order.
    pub fn v_out(&self) -> Vec<RuleRef> {
        let mut seen = Vec::new();
        for e in &self.edges {
            if !seen.contains(&e.to) {
                seen.push(e.to);
            }
        }
        seen
    }

    /// The `V_in` nodes (predecessor rules plus possibly the virtual
    /// source), deduplicated, in first-appearance order.
    pub fn v_in(&self) -> Vec<RbgNode> {
        let mut seen = Vec::new();
        for e in &self.edges {
            if !seen.contains(&e.from) {
                seen.push(e.from);
            }
        }
        seen
    }

    /// The rule set `R(S) = (V_in ∪ V_out) \ {r_s}` used by FCM slicing
    /// (§IV-B), deduplicated, in first-appearance order.
    pub fn slicing_rules(&self) -> Vec<RuleRef> {
        let mut seen = Vec::new();
        for e in &self.edges {
            if let RbgNode::Rule(r) = e.from {
                if !seen.contains(&r) {
                    seen.push(r);
                }
            }
            if !seen.contains(&e.to) {
                seen.push(e.to);
            }
        }
        seen
    }

    /// Whether the undirected multigraph contains a loop: some connected
    /// component has at least as many edges as vertices (parallel edges
    /// from distinct flows count separately). See the module docs for how
    /// this relates to Theorem 2.
    pub fn has_loop(&self) -> bool {
        // Union-find over nodes; a loop exists iff some edge joins two
        // already-connected nodes.
        let mut ids: HashMap<RbgNode, usize> = HashMap::new();
        let mut id_of = |n: RbgNode, next: &mut Vec<usize>| -> usize {
            *ids.entry(n).or_insert_with(|| {
                next.push(next.len());
                next.len() - 1
            })
        };
        let mut parent: Vec<usize> = Vec::new();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for e in &self.edges {
            let a = id_of(e.from, &mut parent);
            let b = id_of(RbgNode::Rule(e.to), &mut parent);
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            if ra == rb {
                return true;
            }
            parent[ra] = rb;
        }
        false
    }
}

/// Classification of a rule's role with respect to a pair of flows
/// (paper Appendix B): a **separation rule** sends two flows to different
/// next rules; an **aggregation rule** receives two flows from different
/// previous rules; a **pivot rule** is both at once for the same flow pair.
///
/// Pivot rules are the side condition of Theorem 2's proof: Lemma 2 (and
/// hence the sufficient direction of the loop criterion) assumes the rule
/// set has none. [`pivot_rules`] lets users check whether the criterion is
/// exact for their configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PivotRule {
    /// The pivot rule itself.
    pub rule: RuleRef,
    /// One witnessing flow pair (indices into the history list).
    pub flows: (usize, usize),
}

/// Finds all pivot rules of a configuration's flow histories.
///
/// For every rule `r` and every pair of flows `(a, b)` that both match
/// `r`, `r` is a pivot rule iff it *separates* the pair (their successor
/// rules after `r` differ — including one ending at `r`) **and**
/// *aggregates* it (their predecessor rules before `r` differ — including
/// one starting at `r`). One witness pair per rule is reported.
///
/// # Example
///
/// ```
/// use foces::rbg::pivot_rules;
/// use foces::testkit::paper_fig2_fcm;
///
/// let fcm = paper_fig2_fcm();
/// let histories: Vec<&[_]> =
///     fcm.flows().iter().map(|f| f.rules.as_slice()).collect();
/// // Fig. 2's r6 aggregates flows arriving from r3 and r5 but never
/// // separates them (it is everyone's last rule): no pivot rules.
/// assert!(pivot_rules(&histories).is_empty());
/// ```
pub fn pivot_rules(histories: &[&[RuleRef]]) -> Vec<PivotRule> {
    /// One traversal of a rule: `(flow, predecessor, successor)`.
    type Occurrence = (usize, Option<RuleRef>, Option<RuleRef>);
    let mut occurrences: HashMap<RuleRef, Vec<Occurrence>> = HashMap::new();
    for (flow, history) in histories.iter().enumerate() {
        for (pos, &rule) in history.iter().enumerate() {
            let pred = if pos == 0 {
                None
            } else {
                Some(history[pos - 1])
            };
            let succ = history.get(pos + 1).copied();
            occurrences
                .entry(rule)
                .or_default()
                .push((flow, pred, succ));
        }
    }
    let mut out = Vec::new();
    for (&rule, occ) in &occurrences {
        'pairs: for (i, &(fa, pa, sa)) in occ.iter().enumerate() {
            for &(fb, pb, sb) in occ.iter().skip(i + 1) {
                if fa == fb {
                    continue; // a flow revisiting the rule is not a pair
                }
                let separates = sa != sb;
                let aggregates = pa != pb;
                if separates && aggregates {
                    out.push(PivotRule {
                        rule,
                        flows: (fa, fb),
                    });
                    break 'pairs; // one witness per rule suffices
                }
            }
        }
    }
    out.sort_by_key(|p| p.rule);
    out
}

impl fmt::Display for Rbg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "RBG(s{}): {} in-nodes, {} out-rules, {} edges",
            self.switch.0,
            self.v_in().len(),
            self.v_out().len(),
            self.edges.len()
        )?;
        for e in &self.edges {
            writeln!(f, "  {} -[f{}]-> {}", e.from, e.flow, e.to)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{paper_fig2_fcm, paper_fig3_fcm};

    fn histories(fcm: &crate::Fcm) -> Vec<Vec<RuleRef>> {
        fcm.flows().iter().map(|f| f.rules.clone()).collect()
    }

    #[test]
    fn fig2_structure() {
        let fcm = paper_fig2_fcm();
        let h = histories(&fcm);
        let refs: Vec<&[RuleRef]> = h.iter().map(|v| v.as_slice()).collect();
        // Switch 5 = rule r6: fed by r3 (flows a, b) and r5 (flow c).
        let rbg = Rbg::build(SwitchId(5), &refs);
        assert_eq!(rbg.v_out().len(), 1);
        assert_eq!(rbg.v_in().len(), 2);
        assert_eq!(rbg.edges().len(), 3);
        // Parallel edges (a and b both take r3 -> r6) form a multigraph loop.
        assert!(rbg.has_loop());
    }

    #[test]
    fn fig2_first_hop_uses_virtual_source() {
        let fcm = paper_fig2_fcm();
        let h = histories(&fcm);
        let refs: Vec<&[RuleRef]> = h.iter().map(|v| v.as_slice()).collect();
        // Switch 0 holds flow a's first rule.
        let rbg = Rbg::build(SwitchId(0), &refs);
        assert_eq!(rbg.v_in(), vec![RbgNode::Virtual]);
        assert!(!rbg.has_loop());
    }

    #[test]
    fn empty_switch_has_empty_graph() {
        let fcm = paper_fig2_fcm();
        let h = histories(&fcm);
        let refs: Vec<&[RuleRef]> = h.iter().map(|v| v.as_slice()).collect();
        let rbg = Rbg::build(SwitchId(42), &refs);
        assert!(rbg.edges().is_empty());
        assert!(!rbg.has_loop());
        assert!(rbg.v_out().is_empty());
    }

    #[test]
    fn fig3_deviated_flow_creates_loop() {
        // H̃ = H ∪ {a'} where a' = r1,r2,r4,r5,r6 (the undetectable
        // deviation of Eq. 8). The multigraph at r6's switch gains a second
        // r5->r6 edge, closing a loop.
        let fcm = paper_fig3_fcm();
        let mut h = histories(&fcm);
        let deviated = vec![
            fcm.rules()[0],
            fcm.rules()[1],
            fcm.rules()[3],
            fcm.rules()[4],
            fcm.rules()[5],
        ];
        h.push(deviated);
        let refs: Vec<&[RuleRef]> = h.iter().map(|v| v.as_slice()).collect();
        let any_loop = (0..6).any(|s| Rbg::build(SwitchId(s), &refs).has_loop());
        assert!(any_loop, "undetectable anomaly must show a loop (Thm 2)");
    }

    #[test]
    fn slicing_rules_include_predecessors() {
        let fcm = paper_fig2_fcm();
        let h = histories(&fcm);
        let refs: Vec<&[RuleRef]> = h.iter().map(|v| v.as_slice()).collect();
        let rbg = Rbg::build(SwitchId(5), &refs);
        let rules = rbg.slicing_rules();
        // r6 plus its predecessors r3, r5 (and never the virtual source).
        assert_eq!(rules.len(), 3);
        assert!(rules.contains(&fcm.rules()[5]));
        assert!(rules.contains(&fcm.rules()[2]));
        assert!(rules.contains(&fcm.rules()[4]));
    }

    #[test]
    fn single_edge_never_loops() {
        let r0 = RuleRef {
            switch: SwitchId(0),
            index: 0,
        };
        let history = [r0];
        let refs: Vec<&[RuleRef]> = vec![&history];
        let rbg = Rbg::build(SwitchId(0), &refs);
        assert_eq!(rbg.edges().len(), 1);
        assert!(!rbg.has_loop());
    }

    #[test]
    fn flow_visiting_switch_twice_contributes_two_edges() {
        // A detour history passing the same switch twice.
        let s = SwitchId(0);
        let r_a = RuleRef {
            switch: s,
            index: 0,
        };
        let r_mid = RuleRef {
            switch: SwitchId(1),
            index: 0,
        };
        let history = [r_a, r_mid, r_a];
        let refs: Vec<&[RuleRef]> = vec![&history];
        let rbg = Rbg::build(s, &refs);
        assert_eq!(rbg.edges().len(), 2);
        // r_s -> r_a and r_mid -> r_a: a tree, no loop yet.
        assert!(!rbg.has_loop());
    }

    #[test]
    fn pivot_rule_detected_on_crossing_flows() {
        // Two flows that merge at r_m and split again afterwards:
        //   flow a: r_a -> r_m -> r_x
        //   flow b: r_b -> r_m -> r_y
        // r_m aggregates (different predecessors) AND separates (different
        // successors) the pair: a pivot rule.
        let r = |s: usize| RuleRef {
            switch: SwitchId(s),
            index: 0,
        };
        let a = [r(0), r(2), r(3)];
        let b = [r(1), r(2), r(4)];
        let histories: Vec<&[RuleRef]> = vec![&a, &b];
        let pivots = pivot_rules(&histories);
        assert_eq!(pivots.len(), 1);
        assert_eq!(pivots[0].rule, r(2));
        assert_eq!(pivots[0].flows, (0, 1));
    }

    #[test]
    fn merge_without_split_is_not_pivot() {
        // Flows merge at r_m and stay together: aggregation only.
        let r = |s: usize| RuleRef {
            switch: SwitchId(s),
            index: 0,
        };
        let a = [r(0), r(2), r(3)];
        let b = [r(1), r(2), r(3)];
        let histories: Vec<&[RuleRef]> = vec![&a, &b];
        assert!(pivot_rules(&histories).is_empty());
    }

    #[test]
    fn split_without_merge_is_not_pivot() {
        // Flows share their first rule then diverge: separation only
        // (identical None predecessors).
        let r = |s: usize| RuleRef {
            switch: SwitchId(s),
            index: 0,
        };
        let a = [r(0), r(1)];
        let b = [r(0), r(2)];
        let histories: Vec<&[RuleRef]> = vec![&a, &b];
        assert!(pivot_rules(&histories).is_empty());
    }

    #[test]
    fn paper_examples_have_no_pivot_rules() {
        for fcm in [paper_fig2_fcm(), paper_fig3_fcm()] {
            let h = histories(&fcm);
            let refs: Vec<&[RuleRef]> = h.iter().map(|v| v.as_slice()).collect();
            assert!(pivot_rules(&refs).is_empty());
        }
    }

    #[test]
    fn display_lists_edges() {
        let fcm = paper_fig2_fcm();
        let h = histories(&fcm);
        let refs: Vec<&[RuleRef]> = h.iter().map(|v| v.as_slice()).collect();
        let s = format!("{}", Rbg::build(SwitchId(5), &refs));
        assert!(s.contains("RBG(s5)"));
        assert!(s.contains("r_s") || s.contains("s2#r0"));
    }
}
