//! Incremental cross-epoch solving: FCM deltas and a warm solver.
//!
//! FOCES solves `min ‖H·X − Y'‖` every collection epoch (paper §V-B), and
//! the paper's own overhead numbers (Fig. 12) show the matrix solve
//! dominating detection latency. Yet between consecutive epochs the FCM is
//! almost entirely unchanged: per-epoch work should be proportional to
//! *change*, not to network size.
//!
//! The key structural fact making that cheap: the solver works on the
//! deduplicated **column basis** (see [`Fcm::column_groups`]), and every
//! Gram entry `G[a][b] = |rules(a) ∩ rules(b)|` depends only on the two
//! columns' rule *sets* — [`foces_dataplane::RuleRef`] identities, not row
//! indices. Row churn (rules installed or removed without altering any
//! surviving flow's rule set) never perturbs `G`; it only changes how the
//! right-hand side `HᵀY'` is assembled, which is re-done each epoch anyway.
//! So maintaining the cached factorization of `G` reduces to **basis-column
//! appends and removals**, exactly the `O(n²)` operations
//! [`foces_linalg::FactorCache`] provides.
//!
//! [`IncrementalSolver`] owns such a cache keyed by each basis column's
//! sorted rule set, diffs it against the current FCM on every call, patches
//! the factor within a [`RankBudget`], verifies the patched factor with one
//! step of iterative refinement, and falls back to a full refactorization
//! whenever the budget, the cumulative drift cap, or the refinement
//! residual says the shortcut is no longer trustworthy. Every call reports
//! which path ran via [`SolvePath`] so the runtime can log and meter it.
//! The equivalence guarantee — warm and cold residuals agree to solver
//! tolerance, so a verdict can never differ — is pinned by the property
//! tests in `tests/incremental_props.rs`.

use crate::{Fcm, FocesError, MaskedFcm, SolveOutcome};
use foces_atpg::LogicalFlow;
use foces_controlplane::ControllerView;
use foces_dataplane::RuleRef;
use foces_linalg::{CsrMatrix, FactorCache, LinalgError};
use foces_sparse::{BackendKind, ResolvedBackend, SolveBackend, SparseEngine};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Structural difference between two FCMs — the per-epoch churn summary.
///
/// Rows are keyed by rule identity ([`RuleRef`]); columns by flow identity
/// (the `(ingress, egress)` pair, with repeated pairs matched by occurrence
/// order). "Retouched" rows are rules present in both FCMs whose counters
/// an update polluted mid-epoch (from the controller's update journal);
/// "retouched" columns are flows whose rule set changed — the reroutes.
///
/// The delta is what the runtime budgets and reports; the warm solver
/// performs its own basis-level diff internally (several flows can share
/// one basis column, so column churn over-approximates factor churn).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FcmDelta {
    /// Rules present in the new FCM only.
    pub rows_added: usize,
    /// Rules present in the old FCM only.
    pub rows_removed: usize,
    /// Rules present in both whose counters a journaled update touched.
    pub rows_retouched: usize,
    /// Flows (by identity) present in the new FCM only.
    pub cols_added: usize,
    /// Flows (by identity) present in the old FCM only.
    pub cols_removed: usize,
    /// Flows present in both whose rule set changed (reroutes/refinements).
    pub cols_retouched: usize,
}

impl FcmDelta {
    /// Computes the structural delta between two FCMs. `touched_rules` is
    /// the set of rules the update journal reports as modified between the
    /// two snapshots (see [`ControllerView::touched_rules_since`]); rules
    /// absent from either FCM are counted as added/removed, not retouched.
    pub fn between(old: &Fcm, new: &Fcm, touched_rules: &[RuleRef]) -> FcmDelta {
        let old_rules: std::collections::HashSet<RuleRef> = old.rules().iter().copied().collect();
        let new_rules: std::collections::HashSet<RuleRef> = new.rules().iter().copied().collect();
        let rows_added = new_rules.difference(&old_rules).count();
        let rows_removed = old_rules.difference(&new_rules).count();
        let rows_retouched = touched_rules
            .iter()
            .filter(|r| old_rules.contains(r) && new_rules.contains(r))
            .count();

        let old_cols = flows_by_identity(old.flows());
        let new_cols = flows_by_identity(new.flows());
        let mut cols_added = 0;
        let mut cols_removed = 0;
        let mut cols_retouched = 0;
        for (id, new_sets) in &new_cols {
            match old_cols.get(id) {
                None => cols_added += new_sets.len(),
                Some(old_sets) => {
                    let shared = old_sets.len().min(new_sets.len());
                    cols_added += new_sets.len() - shared;
                    cols_retouched += (0..shared).filter(|&k| old_sets[k] != new_sets[k]).count();
                }
            }
        }
        for (id, old_sets) in &old_cols {
            let shared = new_cols.get(id).map_or(0, |s| s.len().min(old_sets.len()));
            cols_removed += old_sets.len() - shared;
        }
        FcmDelta {
            rows_added,
            rows_removed,
            rows_retouched,
            cols_added,
            cols_removed,
            cols_retouched,
        }
    }

    /// Delta between an FCM built at `since_generation` and one built from
    /// the current `view`, with retouched rows taken from the view's
    /// update journal.
    pub fn from_journal(
        old: &Fcm,
        new: &Fcm,
        view: &ControllerView,
        since_generation: u64,
    ) -> FcmDelta {
        FcmDelta::between(old, new, &view.touched_rules_since(since_generation))
    }

    /// Total column churn — the quantity the rank budget is compared
    /// against (each added/removed/retouched column costs at most one
    /// factor removal plus one append).
    pub fn column_churn(&self) -> usize {
        self.cols_added + self.cols_removed + self.cols_retouched
    }

    /// `true` when nothing changed.
    pub fn is_empty(&self) -> bool {
        *self == FcmDelta::default()
    }
}

impl fmt::Display for FcmDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rows +{}/-{}/~{} cols +{}/-{}/~{}",
            self.rows_added,
            self.rows_removed,
            self.rows_retouched,
            self.cols_added,
            self.cols_removed,
            self.cols_retouched
        )
    }
}

/// Sorted rule sets per flow identity, in occurrence order.
fn flows_by_identity(
    flows: &[LogicalFlow],
) -> HashMap<(foces_net::HostId, foces_net::HostId), Vec<Vec<RuleRef>>> {
    let mut map: HashMap<_, Vec<Vec<RuleRef>>> = HashMap::new();
    for f in flows {
        let mut key: Vec<RuleRef> = f.rules.clone();
        key.sort_unstable();
        map.entry((f.ingress, f.egress)).or_default().push(key);
    }
    map
}

/// When the warm solver may keep patching and when it must refactorize.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankBudget {
    /// Per-epoch floor: always allow at least this many column edits.
    pub min_columns: usize,
    /// Per-epoch cap as a fraction of the factor dimension: editing more
    /// than `fraction·n` columns costs as much as refactorizing.
    pub fraction: f64,
    /// Cumulative cap: once `applied_rank` (rank-one modifications since
    /// the last full factorization) exceeds `drift_fraction·n`, refactorize
    /// to shed accumulated floating-point drift.
    pub drift_fraction: f64,
}

impl Default for RankBudget {
    fn default() -> Self {
        RankBudget {
            min_columns: 8,
            fraction: 0.25,
            drift_fraction: 1.0,
        }
    }
}

impl RankBudget {
    /// The per-epoch edit allowance for a factor of dimension `n`.
    pub fn allowance(&self, n: usize) -> usize {
        self.min_columns.max((self.fraction * n as f64) as usize)
    }

    /// The cumulative drift cap for a factor of dimension `n`.
    pub fn drift_cap(&self, n: usize) -> usize {
        ((self.drift_fraction * n as f64) as usize).max(self.min_columns)
    }
}

/// Why a solve ran cold (full refactorization) instead of warm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ColdReason {
    /// First solve, or the cache was explicitly invalidated.
    NoCache,
    /// The basis delta exceeded the per-epoch rank budget.
    BudgetExceeded,
    /// Cumulative patches since the last refactorization hit the drift cap.
    DriftCap,
    /// A patched append hit a (near-)singular pivot.
    Singular,
    /// Iterative refinement could not certify the patched factor.
    Conditioning,
    /// The Gram matrix itself is rank deficient; solved via the QR
    /// fallback, nothing cached.
    RankDeficient,
    /// Sparse backend: the Gram sparsity pattern changed since the last
    /// epoch, so the symbolic analysis (ordering, elimination tree) had to
    /// be redone — the sparse analogue of a dense refactorization.
    PatternChanged,
}

/// Which solve path a detection round actually took — surfaced through
/// `RuntimeMetrics` and the epoch log so operators can see the incremental
/// pipeline working (or falling back).
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum SolvePath {
    /// Full refactorization.
    Cold {
        /// Why the warm path was not taken.
        reason: ColdReason,
    },
    /// Cached factor patched and reused.
    Warm {
        /// Rank-one modifications applied this round (0 = pure reuse).
        rank_applied: usize,
    },
}

impl SolvePath {
    /// `true` for the warm (factor-reusing) path.
    pub fn is_warm(&self) -> bool {
        matches!(self, SolvePath::Warm { .. })
    }
}

impl fmt::Display for SolvePath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolvePath::Warm { rank_applied } => write!(f, "warm(rank={rank_applied})"),
            SolvePath::Cold { reason } => {
                let r = match reason {
                    ColdReason::NoCache => "no-cache",
                    ColdReason::BudgetExceeded => "budget-exceeded",
                    ColdReason::DriftCap => "drift-cap",
                    ColdReason::Singular => "singular",
                    ColdReason::Conditioning => "conditioning",
                    ColdReason::RankDeficient => "rank-deficient",
                    ColdReason::PatternChanged => "pattern-changed",
                };
                write!(f, "cold({r})")
            }
        }
    }
}

/// Relative normal-equation residual above which a refined warm solve is
/// distrusted and the round falls back to a cold factorization. Far above
/// round-off for a healthy factor, far below anything that could move a
/// verdict (the detector's own noise floor is `1e-7·scale`).
const REFINEMENT_TOL: f64 = 1e-6;

/// A warm equation-system solver: the direct normal-equation path of
/// [`crate::EquationSystem`] with a cross-epoch cached factorization.
///
/// Feed it each epoch's `(fcm, counters)`; it diffs the FCM's column basis
/// against its cache by rule-set identity, patches the cached `HᵀH = LLᵀ`
/// factor (column appends/removals), and solves with one step of iterative
/// refinement. Any doubt — budget exceeded, drift cap hit, singular pivot,
/// refinement residual too large — and it silently refactorizes, so results
/// are always exactly as trustworthy as the cold path.
///
/// # Example
///
/// ```
/// use foces::{Fcm, IncrementalSolver};
/// use foces_controlplane::{provision, uniform_flows, RuleGranularity};
/// use foces_dataplane::LossModel;
/// use foces_net::generators::fattree;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let topo = fattree(4);
/// let flows = uniform_flows(&topo, 240_000.0);
/// let mut dep = provision(topo, &flows, RuleGranularity::PerDestination)?;
/// let fcm = Fcm::from_view(&dep.view);
/// dep.replay_traffic(&mut LossModel::none());
/// let counters = dep.dataplane.collect_counters();
///
/// let mut solver = IncrementalSolver::default();
/// let (_, first) = solver.solve(&fcm, &counters)?;
/// let (_, second) = solver.solve(&fcm, &counters)?;
/// assert!(!first.is_warm()); // nothing cached yet
/// assert!(second.is_warm()); // identical FCM: pure reuse
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct IncrementalSolver {
    budget: RankBudget,
    cache: Option<WarmState>,
    backend: BackendKind,
    /// Cross-epoch sparse-engine state (symbolic analysis, PCGLS
    /// preconditioner) — the sparse counterpart of `cache`.
    engine: SparseEngine,
    /// Basis keys from the last sparse solve, for FcmDelta-style churn
    /// accounting (drives preconditioner refresh and warm/cold reporting).
    sparse_keys: Vec<Vec<RuleRef>>,
    /// Whether the sparse engine has completed a solve since the last
    /// invalidation (distinguishes a cold first solve from a pattern
    /// change).
    sparse_ready: bool,
    /// CGLS iterations spent by the most recent solve (0 on direct paths).
    last_iterations: u64,
}

/// The cached factor plus the rule-set key of each factor position.
#[derive(Debug, Clone)]
struct WarmState {
    factor: FactorCache,
    /// `keys[p]` = sorted rule set of the basis column at factor position
    /// `p`. Rule-set identity is stable across FCM rebuilds, row
    /// reindexing, and flow reordering — the whole point of the cache.
    keys: Vec<Vec<RuleRef>>,
}

impl IncrementalSolver {
    /// Creates a solver with an explicit rank budget and the default
    /// ([`BackendKind::Dense`]) backend.
    pub fn new(budget: RankBudget) -> Self {
        IncrementalSolver {
            budget,
            ..IncrementalSolver::default()
        }
    }

    /// Creates a solver with an explicit backend. `Dense` keeps the
    /// `FactorCache` warm/cold ladder; `Sparse` routes every solve through
    /// the [`SparseEngine`] (symbolic reuse + preconditioned CGLS); `Auto`
    /// resolves per basis size.
    pub fn with_backend(budget: RankBudget, backend: BackendKind) -> Self {
        IncrementalSolver {
            budget,
            backend,
            ..IncrementalSolver::default()
        }
    }

    /// The configured budget.
    pub fn budget(&self) -> RankBudget {
        self.budget
    }

    /// The configured backend.
    pub fn backend(&self) -> BackendKind {
        self.backend
    }

    /// CGLS iterations spent by the most recent solve (0 for direct
    /// methods and the dense backend).
    pub fn last_iterations(&self) -> u64 {
        self.last_iterations
    }

    /// Drops the cached factor and all sparse-engine state; the next solve
    /// runs cold.
    pub fn invalidate(&mut self) {
        self.cache = None;
        self.engine.invalidate();
        self.sparse_keys.clear();
        self.sparse_ready = false;
    }

    /// `true` once cross-epoch state is held (dense factor or sparse
    /// engine).
    pub fn is_warm(&self) -> bool {
        self.cache.is_some() || self.sparse_ready
    }

    /// Solves `min ‖H·X − Y'‖` like [`crate::EquationSystem::solve`] with
    /// [`crate::SolverKind::DirectDense`], reusing the cached factorization
    /// when the FCM's column basis is close enough to the cached one.
    /// Returns the outcome together with the [`SolvePath`] taken.
    ///
    /// # Errors
    ///
    /// * [`FocesError::EmptyFcm`] if the FCM has no flows;
    /// * [`FocesError::CounterLengthMismatch`] if `counters.len()` differs
    ///   from the FCM's rule count;
    /// * [`FocesError::Solver`] if every solve path fails.
    pub fn solve(
        &mut self,
        fcm: &Fcm,
        counters: &[f64],
    ) -> Result<(SolveOutcome, SolvePath), FocesError> {
        if fcm.flow_count() == 0 {
            return Err(FocesError::EmptyFcm);
        }
        if counters.len() != fcm.rule_count() {
            return Err(FocesError::CounterLengthMismatch {
                got: counters.len(),
                expected: fcm.rule_count(),
            });
        }
        let groups = fcm.column_groups();
        let h_basis = fcm.sparse().select_columns(&groups.basis);
        let keys: Vec<Vec<RuleRef>> = groups
            .basis
            .iter()
            .map(|&j| {
                let mut k = fcm.flows()[j].rules.clone();
                k.sort_unstable();
                k
            })
            .collect();

        let (path, x_basis) = self.solve_basis(&h_basis, counters, &keys)?;
        Ok((expand(fcm, &groups, &h_basis, counters, x_basis)?, path))
    }

    /// Row-masked warm solve: the warm counterpart of
    /// [`crate::EquationSystem::solve_masked`]. The masked sub-FCM's rule
    /// sets differ from the full FCM's, so use a *dedicated*
    /// `IncrementalSolver` per recurring mask (e.g. per set of silent
    /// switches) — reuse only pays off while the mask repeats.
    ///
    /// # Errors
    ///
    /// As for [`IncrementalSolver::solve`]; additionally
    /// [`FocesError::EmptyFcm`] if masking dropped every flow.
    ///
    /// # Panics
    ///
    /// Panics if `observed.len() != fcm.rule_count()`.
    pub fn solve_masked(
        &mut self,
        fcm: &Fcm,
        counters: &[f64],
        observed: &[bool],
    ) -> Result<(MaskedFcm, SolveOutcome, SolvePath), FocesError> {
        if fcm.flow_count() == 0 {
            return Err(FocesError::EmptyFcm);
        }
        if counters.len() != fcm.rule_count() {
            return Err(FocesError::CounterLengthMismatch {
                got: counters.len(),
                expected: fcm.rule_count(),
            });
        }
        let masked = fcm.mask_rows(observed);
        let sub = masked.project(counters);
        let (outcome, path) = self.solve(masked.fcm(), &sub)?;
        Ok((masked, outcome, path))
    }

    /// Produces the basis solution, deciding warm vs. cold.
    fn solve_basis(
        &mut self,
        h_basis: &CsrMatrix,
        counters: &[f64],
        keys: &[Vec<RuleRef>],
    ) -> Result<(SolvePath, Vec<f64>), FocesError> {
        if self.backend.resolve(h_basis.cols()) == ResolvedBackend::Sparse {
            return self.solve_basis_sparse(h_basis, counters, keys);
        }
        self.last_iterations = 0;
        let rhs = h_basis
            .transpose_matvec(counters)
            .map_err(FocesError::from)?;
        let reason = match self.try_warm(h_basis, keys, &rhs) {
            Ok(outcome) => return Ok(outcome),
            Err(reason) => reason,
        };
        // Cold path: factor the current Gram matrix from scratch and cache
        // it — lean (factor only, no Gram copy), since the warm path
        // verifies against the sparse basis itself. A rank-deficient basis
        // (duplicate-free but linearly dependent columns) falls through to
        // QR and caches nothing.
        self.cache = None;
        let gram = h_basis.gram_dense().map_err(FocesError::from)?;
        match FactorCache::factor_lean(gram) {
            Ok(factor) => {
                let x = factor.solve(&rhs).map_err(FocesError::from)?;
                self.cache = Some(WarmState {
                    factor,
                    keys: keys.to_vec(),
                });
                Ok((SolvePath::Cold { reason }, x))
            }
            Err(
                LinalgError::NotPositiveDefinite { .. } | LinalgError::SingularTriangular { .. },
            ) => {
                let dense = h_basis.try_to_dense().map_err(FocesError::from)?;
                let sol = foces_linalg::lstsq(&dense, counters, foces_linalg::LstsqMethod::Qr)
                    .map_err(FocesError::from)?;
                Ok((
                    SolvePath::Cold {
                        reason: ColdReason::RankDeficient,
                    },
                    sol.x,
                ))
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Sparse-backend basis solve: routes through the engine's symbolic
    /// reuse / PCGLS ladder, driving the preconditioner lifecycle with the
    /// same basis-key diff the dense warm path budgets on, and mapping the
    /// engine's reuse report onto [`SolvePath`].
    fn solve_basis_sparse(
        &mut self,
        h_basis: &CsrMatrix,
        counters: &[f64],
        keys: &[Vec<RuleRef>],
    ) -> Result<(SolvePath, Vec<f64>), FocesError> {
        let was_ready = self.sparse_ready;
        // Basis churn since the last solve = FcmDelta at basis granularity:
        // any appearing/disappearing rule-set key shifts column norms, so a
        // nonzero delta refreshes the PCGLS preconditioner.
        let delta_rank = if was_ready {
            let prev: HashSet<&[RuleRef]> = self.sparse_keys.iter().map(|k| k.as_slice()).collect();
            let now: HashSet<&[RuleRef]> = keys.iter().map(|k| k.as_slice()).collect();
            prev.symmetric_difference(&now).count()
        } else {
            keys.len()
        };
        if delta_rank > 0 {
            self.engine.note_rank_growth(delta_rank);
        }
        let sol = self
            .engine
            .solve_basis(h_basis, counters)
            .map_err(FocesError::from)?;
        self.last_iterations = sol.iterations;
        self.sparse_keys = keys.to_vec();
        self.sparse_ready = true;
        let path = if sol.reused && was_ready {
            SolvePath::Warm {
                rank_applied: delta_rank,
            }
        } else if was_ready {
            SolvePath::Cold {
                reason: ColdReason::PatternChanged,
            }
        } else {
            SolvePath::Cold {
                reason: ColdReason::NoCache,
            }
        };
        Ok((path, sol.x))
    }

    /// Attempts the warm path; on `Err` returns the cold-fallback reason.
    /// The cache is left in a consistent state either way (it is dropped
    /// before any fallible patching begins and reinstated on success).
    fn try_warm(
        &mut self,
        h_basis: &CsrMatrix,
        keys: &[Vec<RuleRef>],
        rhs: &[f64],
    ) -> Result<(SolvePath, Vec<f64>), ColdReason> {
        let state = self.cache.as_ref().ok_or(ColdReason::NoCache)?;

        // Diff the cached factor positions against the wanted keys.
        let wanted: HashMap<&[RuleRef], usize> = keys
            .iter()
            .enumerate()
            .map(|(b, k)| (k.as_slice(), b))
            .collect();
        let cached: HashMap<&[RuleRef], usize> = state
            .keys
            .iter()
            .enumerate()
            .map(|(p, k)| (k.as_slice(), p))
            .collect();
        let mut to_remove: Vec<usize> = state
            .keys
            .iter()
            .enumerate()
            .filter(|(_, k)| !wanted.contains_key(k.as_slice()))
            .map(|(p, _)| p)
            .collect();
        let to_add: Vec<usize> = keys
            .iter()
            .enumerate()
            .filter(|(_, k)| !cached.contains_key(k.as_slice()))
            .map(|(b, _)| b)
            .collect();

        let delta_rank = to_remove.len() + to_add.len();
        let n = state.factor.dim();
        if delta_rank > self.budget.allowance(n) {
            return Err(ColdReason::BudgetExceeded);
        }
        if state.factor.applied_rank() + delta_rank > self.budget.drift_cap(n.max(keys.len())) {
            return Err(ColdReason::DriftCap);
        }

        // Take the state out: patching mutates it, and any failure from
        // here on must leave `self.cache` empty so the cold path rebuilds.
        let mut state = self.cache.take().expect("checked above");

        // One batched removal: a single compaction + Givens sweep for the
        // whole round (per-position removal would copy the factor k times).
        to_remove.sort_unstable();
        state.factor.remove_batch(&to_remove);
        for &p in to_remove.iter().rev() {
            state.keys.remove(p);
        }
        // Appends: cross terms are intersection sizes against every key
        // currently in the factor (including keys appended this round).
        // Assembled up front, applied as one batched expansion.
        let mut crosses = Vec::with_capacity(to_add.len());
        let mut diags = Vec::with_capacity(to_add.len());
        for &b in &to_add {
            let key = &keys[b];
            crosses.push(
                state
                    .keys
                    .iter()
                    .map(|k| sorted_intersection_size(key, k) as f64)
                    .collect::<Vec<f64>>(),
            );
            diags.push(key.len() as f64);
            state.keys.push(key.clone());
        }
        if state.factor.append_batch(&crosses, &diags).is_err() {
            return Err(ColdReason::Singular);
        }
        // Rank-one modifications this round (the cumulative count since the
        // last refactorization feeds the drift cap above, not this report).
        let rank_applied = delta_rank;

        // The factor's positions are in cache order, not basis order —
        // permute the RHS in, solve with refinement, permute the result
        // back out.
        let pos_of: HashMap<&[RuleRef], usize> = state
            .keys
            .iter()
            .enumerate()
            .map(|(p, k)| (k.as_slice(), p))
            .collect();
        let mut rhs_factor = vec![0.0; rhs.len()];
        for (b, key) in keys.iter().enumerate() {
            rhs_factor[pos_of[key.as_slice()]] = rhs[b];
        }
        let x_factor = match state.factor.solve(&rhs_factor) {
            Ok(x) => x,
            Err(_) => return Err(ColdReason::Singular),
        };
        let mut x = vec![0.0; keys.len()];
        for (b, key) in keys.iter().enumerate() {
            x[b] = x_factor[pos_of[key.as_slice()]];
        }

        // Verify against the *real* sparse basis, not the cached Gram
        // matrix (which could itself have drifted): the normal residual
        // ‖Hᵀ(Hx) − rhs‖ / ‖rhs‖ from one sparse mat-vec pair — cheap
        // relative to any factor work. A patched factor in good shape
        // passes immediately; one that has drifted gets a single
        // warm-started refinement step before the solver gives up on it.
        let mut residual = normal_residual(h_basis, &x, rhs)?;
        if residual.1 > REFINEMENT_TOL {
            let mut r_factor = vec![0.0; rhs.len()];
            for (b, key) in keys.iter().enumerate() {
                r_factor[pos_of[key.as_slice()]] = residual.0[b];
            }
            let dx = match state.factor.solve(&r_factor) {
                Ok(dx) => dx,
                Err(_) => return Err(ColdReason::Singular),
            };
            for (b, key) in keys.iter().enumerate() {
                x[b] += dx[pos_of[key.as_slice()]];
            }
            residual = normal_residual(h_basis, &x, rhs)?;
            if residual.1 > REFINEMENT_TOL {
                return Err(ColdReason::Conditioning);
            }
        }

        self.cache = Some(state);
        Ok((SolvePath::Warm { rank_applied }, x))
    }
}

/// Normal-equation residual `rhs − Hᵀ(Hx)` of the sparse basis system,
/// with its norm relative to `‖rhs‖`. `Err` means the residual is not even
/// finite — the warm path treats that as a conditioning failure.
fn normal_residual(
    h_basis: &CsrMatrix,
    x: &[f64],
    rhs: &[f64],
) -> Result<(Vec<f64>, f64), ColdReason> {
    let fitted = h_basis.matvec(x).map_err(|_| ColdReason::Conditioning)?;
    let hthx = h_basis
        .transpose_matvec(&fitted)
        .map_err(|_| ColdReason::Conditioning)?;
    let r: Vec<f64> = rhs.iter().zip(&hthx).map(|(b, a)| b - a).collect();
    let num = r.iter().map(|v| v * v).sum::<f64>().sqrt();
    let den = rhs
        .iter()
        .map(|v| v * v)
        .sum::<f64>()
        .sqrt()
        .max(f64::MIN_POSITIVE);
    let rel = num / den;
    if !rel.is_finite() {
        return Err(ColdReason::Conditioning);
    }
    Ok((r, rel))
}

/// `|a ∩ b|` for sorted slices.
fn sorted_intersection_size(a: &[RuleRef], b: &[RuleRef]) -> usize {
    let (mut i, mut j, mut count) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Expands a basis solution to the full [`SolveOutcome`] (fitted counters,
/// residual, per-flow volumes with duplicate groups split evenly) — the
/// same post-processing as the cold direct path.
fn expand(
    fcm: &Fcm,
    groups: &crate::ColumnGroups,
    h_basis: &CsrMatrix,
    counters: &[f64],
    x_basis: Vec<f64>,
) -> Result<SolveOutcome, FocesError> {
    let fitted = h_basis.matvec(&x_basis).map_err(FocesError::from)?;
    let residual: Vec<f64> = counters
        .iter()
        .zip(&fitted)
        .map(|(y, yh)| (y - yh).abs())
        .collect();
    let mut sizes = vec![0usize; groups.basis.len()];
    for &g in &groups.group_of {
        sizes[g] += 1;
    }
    let volume_estimate: Vec<f64> = groups
        .group_of
        .iter()
        .map(|&g| x_basis[g] / sizes[g] as f64)
        .collect();
    debug_assert_eq!(volume_estimate.len(), fcm.flow_count());
    Ok(SolveOutcome {
        volume_estimate,
        fitted_counters: fitted,
        residual,
    })
}
