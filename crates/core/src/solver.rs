use crate::{Fcm, FocesError, MaskedFcm};
use foces_linalg::{lstsq, lstsq_sparse, DenseMatrix, LinalgError, LstsqMethod};
use foces_sparse::{BackendKind, ResolvedBackend, SolveBackend, SparseEngine};

/// Strategy for solving the flow-counter equation system.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[non_exhaustive]
pub enum SolverKind {
    /// Direct dense solve of the normal equations (the paper's Eq. 4),
    /// with a QR fallback on numerically deficient input. `O(m·n² + n³)`.
    DirectDense,
    /// Iterative sparse CGLS: `O(nnz)` per iteration, the scalability path
    /// for large FCMs (paper Fig. 12's 12 K-flow regime).
    IterativeSparse {
        /// Relative convergence tolerance on the normal-equation residual.
        tol: f64,
        /// Iteration budget.
        max_iter: usize,
    },
    /// Direct for small systems, iterative above
    /// [`SolverKind::AUTO_DIRECT_LIMIT`] flows, and iterative as a fallback
    /// whenever the direct path fails.
    #[default]
    Auto,
    /// The paper's Eq. (4) pipeline taken literally, with no structure
    /// exploitation: densify the basis, form `HᵀH` by dense matmul,
    /// explicitly invert it, then multiply. This is how the paper's
    /// NumPy prototype computes a detection round, and it is what the
    /// Fig. 12 scalability experiment times as "FOCES without slicing" —
    /// [`SolverKind::DirectDense`] exploits the FCM's block structure and
    /// would hide the `O(N³)` curve the paper reports.
    DenseNaive,
}

impl SolverKind {
    /// Flow-count boundary where [`SolverKind::Auto`] switches from direct
    /// to iterative.
    pub const AUTO_DIRECT_LIMIT: usize = 3000;

    /// Default CGLS tolerance.
    pub const DEFAULT_TOL: f64 = 1e-10;

    /// Default CGLS iteration budget.
    pub const DEFAULT_MAX_ITER: usize = 5000;
}

/// Result of one equation-system solve (one detection round's numerics).
#[derive(Debug, Clone, PartialEq)]
pub struct SolveOutcome {
    /// Estimated volume per logical flow, `X̂` (paper Eq. 4). Where several
    /// flows share an identical rule set (duplicate FCM columns, see
    /// [`Fcm::column_groups`]) only their *sum* is identifiable; the
    /// estimate splits the group total evenly among its members.
    pub volume_estimate: Vec<f64>,
    /// Fitted counter vector `Ŷ = H·X̂`.
    pub fitted_counters: Vec<f64>,
    /// Error vector `Δ = |Y' − Ŷ|` (paper Eq. 5) — the detector's input.
    pub residual: Vec<f64>,
}

/// The Equation System Solver of the FOCES architecture (paper Fig. 6):
/// given the FCM and a collected counter vector, produces the least-squares
/// volume estimate and the residual.
///
/// # Example
///
/// ```
/// use foces::{EquationSystem, Fcm, SolverKind};
/// use foces_controlplane::{provision, uniform_flows, RuleGranularity};
/// use foces_dataplane::LossModel;
/// use foces_net::generators::fattree;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let topo = fattree(4);
/// let flows = uniform_flows(&topo, 240_000.0);
/// let mut dep = provision(topo, &flows, RuleGranularity::PerDestination)?;
/// let fcm = Fcm::from_view(&dep.view);
/// dep.replay_traffic(&mut LossModel::none());
/// let outcome = EquationSystem::new(SolverKind::DirectDense)
///     .solve(&fcm, &dep.dataplane.collect_counters())?;
/// // Healthy, lossless network: residual is (numerically) zero.
/// assert!(outcome.residual.iter().all(|r| r.abs() < 1e-6));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EquationSystem {
    kind: SolverKind,
    backend: BackendKind,
}

impl EquationSystem {
    /// Creates a solver with the given strategy and the default
    /// ([`BackendKind::Dense`]) storage backend.
    pub fn new(kind: SolverKind) -> Self {
        EquationSystem {
            kind,
            backend: BackendKind::default(),
        }
    }

    /// Selects the solve backend: `Dense` (historical, golden-stable),
    /// `Sparse` (AMD + sparse Cholesky, PCGLS fallback — the only path that
    /// survives FatTree(16)-class bases), or `Auto`.
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// The configured strategy.
    pub fn kind(&self) -> SolverKind {
        self.kind
    }

    /// The configured storage backend.
    pub fn backend(&self) -> BackendKind {
        self.backend
    }

    /// Solves `min ‖H·X − Y'‖` and derives `Ŷ` and `Δ`.
    ///
    /// # Errors
    ///
    /// * [`FocesError::EmptyFcm`] if the FCM has no flows — checked first:
    ///   an empty system has no meaningful counter length to validate
    ///   against, so reporting a length mismatch there would misdiagnose
    ///   the real problem;
    /// * [`FocesError::CounterLengthMismatch`] if `counters.len()` differs
    ///   from the FCM's rule count;
    /// * [`FocesError::Solver`] if every solve path fails.
    pub fn solve(&self, fcm: &Fcm, counters: &[f64]) -> Result<SolveOutcome, FocesError> {
        if fcm.flow_count() == 0 {
            return Err(FocesError::EmptyFcm);
        }
        if counters.len() != fcm.rule_count() {
            return Err(FocesError::CounterLengthMismatch {
                got: counters.len(),
                expected: fcm.rule_count(),
            });
        }
        match self.kind {
            SolverKind::DirectDense => match solve_direct(fcm, counters, self.backend) {
                Ok(out) => Ok(out),
                // Residual dependencies beyond duplicate columns: fall back
                // to the iterative path, which tolerates rank deficiency.
                Err(
                    LinalgError::NotPositiveDefinite { .. }
                    | LinalgError::SingularTriangular { .. }
                    | LinalgError::RankDeficient { .. },
                ) => solve_iterative(
                    fcm,
                    counters,
                    SolverKind::DEFAULT_TOL,
                    SolverKind::DEFAULT_MAX_ITER,
                )
                .map_err(FocesError::from),
                Err(e) => Err(e.into()),
            },
            SolverKind::IterativeSparse { tol, max_iter } => {
                solve_iterative(fcm, counters, tol, max_iter).map_err(FocesError::from)
            }
            SolverKind::Auto => {
                if fcm.flow_count() <= SolverKind::AUTO_DIRECT_LIMIT {
                    EquationSystem::new(SolverKind::DirectDense)
                        .with_backend(self.backend)
                        .solve(fcm, counters)
                } else {
                    solve_iterative(
                        fcm,
                        counters,
                        SolverKind::DEFAULT_TOL,
                        SolverKind::DEFAULT_MAX_ITER,
                    )
                    .map_err(FocesError::from)
                }
            }
            SolverKind::DenseNaive => solve_naive(fcm, counters).map_err(FocesError::from),
        }
    }

    /// Row-masked solve: restricts the system to the rows marked `true` in
    /// `observed` (switches that actually answered this round) and solves
    /// the sub-system. `counters` is the *full-length* vector; unobserved
    /// entries are ignored, so callers may leave stale or zero placeholders
    /// there. Returns the mask (for row bookkeeping and oracle queries)
    /// alongside the outcome, whose vectors are in *masked* row order —
    /// map back with [`MaskedFcm::parent_rows`].
    ///
    /// # Errors
    ///
    /// * [`FocesError::EmptyFcm`] if the FCM has no flows to begin with
    ///   (checked first, as in [`EquationSystem::solve`]), or if masking
    ///   leaves none (every flow lost all its rules — the fully-blind
    ///   round);
    /// * [`FocesError::CounterLengthMismatch`] if `counters.len()` differs
    ///   from the full FCM's rule count;
    /// * [`FocesError::Solver`] as for [`EquationSystem::solve`].
    ///
    /// # Panics
    ///
    /// Panics if `observed.len() != fcm.rule_count()`.
    pub fn solve_masked(
        &self,
        fcm: &Fcm,
        counters: &[f64],
        observed: &[bool],
    ) -> Result<(MaskedFcm, SolveOutcome), FocesError> {
        if fcm.flow_count() == 0 {
            return Err(FocesError::EmptyFcm);
        }
        if counters.len() != fcm.rule_count() {
            return Err(FocesError::CounterLengthMismatch {
                got: counters.len(),
                expected: fcm.rule_count(),
            });
        }
        let masked = fcm.mask_rows(observed);
        let sub = masked.project(counters);
        let outcome = self.solve(masked.fcm(), &sub)?;
        Ok((masked, outcome))
    }
}

/// Paper-literal pipeline: `X̂ = (HᵀH)⁻¹ Hᵀ Y'` with dense, structure-blind
/// operations throughout (see [`SolverKind::DenseNaive`]).
fn solve_naive(fcm: &Fcm, counters: &[f64]) -> Result<SolveOutcome, LinalgError> {
    let groups = fcm.column_groups();
    let h_basis = fcm.sparse().select_columns(&groups.basis).try_to_dense()?;
    let gram = h_basis.transpose().matmul(&h_basis)?;
    let inv = foces_linalg::Cholesky::factor(&gram)?.inverse()?;
    let rhs = h_basis.transpose_matvec(counters)?;
    let x_basis = inv.matvec(&rhs)?;
    let fitted = h_basis.matvec(&x_basis)?;
    let residual: Vec<f64> = counters
        .iter()
        .zip(&fitted)
        .map(|(y, yh)| (y - yh).abs())
        .collect();
    let mut sizes = vec![0usize; groups.basis.len()];
    for &g in &groups.group_of {
        sizes[g] += 1;
    }
    let volume_estimate: Vec<f64> = groups
        .group_of
        .iter()
        .map(|&g| x_basis[g] / sizes[g] as f64)
        .collect();
    Ok(SolveOutcome {
        volume_estimate,
        fitted_counters: fitted,
        residual,
    })
}

/// Direct path: deduplicate columns, solve over the basis through the
/// selected backend (dense normal equations, or the sparse engine's
/// AMD-Cholesky/PCGLS ladder — never densifying `H` itself), and expand the
/// estimate back to all flows. A dense QR on the basis is the fallback for
/// numerically deficient Gram matrices on the dense backend; the sparse
/// engine handles rank deficiency internally via PCGLS.
fn solve_direct(
    fcm: &Fcm,
    counters: &[f64],
    backend: BackendKind,
) -> Result<SolveOutcome, LinalgError> {
    let groups = fcm.column_groups();
    let h_basis = fcm.sparse().select_columns(&groups.basis);
    let x_basis = match backend.resolve(h_basis.cols()) {
        ResolvedBackend::Sparse => SparseEngine::default().solve_basis(&h_basis, counters)?.x,
        ResolvedBackend::Dense => match solve_basis_cholesky(&h_basis, counters) {
            Ok(x) => x,
            Err(
                LinalgError::NotPositiveDefinite { .. } | LinalgError::SingularTriangular { .. },
            ) => {
                // Rank-deficient basis: densify (only ever reached on small
                // or degenerate systems) and let QR report precisely.
                let dense_basis: DenseMatrix = h_basis.try_to_dense()?;
                lstsq(&dense_basis, counters, LstsqMethod::Qr)?.x
            }
            Err(e) => return Err(e),
        },
    };
    let fitted = h_basis.matvec(&x_basis)?;
    let residual: Vec<f64> = counters
        .iter()
        .zip(&fitted)
        .map(|(y, yh)| (y - yh).abs())
        .collect();
    // Split each group's volume evenly among its members.
    let group_sizes: Vec<usize> = {
        let mut sizes = vec![0usize; groups.basis.len()];
        for &g in &groups.group_of {
            sizes[g] += 1;
        }
        sizes
    };
    let volume_estimate: Vec<f64> = groups
        .group_of
        .iter()
        .map(|&g| x_basis[g] / group_sizes[g] as f64)
        .collect();
    Ok(SolveOutcome {
        volume_estimate,
        fitted_counters: fitted,
        residual,
    })
}

/// Normal-equation solve on a sparse basis matrix: Gram assembly is
/// `O(Σ nnz(row)²)`, the Cholesky `O(n³)` — the paper's Eq. (4) cost.
fn solve_basis_cholesky(
    h_basis: &foces_linalg::CsrMatrix,
    counters: &[f64],
) -> Result<Vec<f64>, LinalgError> {
    let gram = h_basis.gram_dense()?;
    let rhs = h_basis.transpose_matvec(counters)?;
    foces_linalg::Cholesky::factor(&gram)?.solve(&rhs)
}

/// Iterative path: CGLS on the full sparse FCM. Duplicate columns are fine:
/// starting from zero, CGLS converges to the minimum-norm least-squares
/// solution, which splits duplicate-group volumes evenly by symmetry.
fn solve_iterative(
    fcm: &Fcm,
    counters: &[f64],
    tol: f64,
    max_iter: usize,
) -> Result<SolveOutcome, LinalgError> {
    let sol = lstsq_sparse(fcm.sparse(), counters, tol, max_iter)?;
    let fitted = fcm.sparse().matvec(&sol.x)?;
    let residual: Vec<f64> = counters
        .iter()
        .zip(&fitted)
        .map(|(y, yh)| (y - yh).abs())
        .collect();
    Ok(SolveOutcome {
        volume_estimate: sol.x,
        fitted_counters: fitted,
        residual,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use foces_controlplane::{provision, uniform_flows, RuleGranularity};
    use foces_dataplane::LossModel;
    use foces_net::generators::{fattree, stanford};

    fn healthy_setup(g: RuleGranularity) -> (Fcm, Vec<f64>, foces_controlplane::Deployment) {
        let topo = fattree(4);
        let flows = uniform_flows(&topo, 240_000.0);
        let mut dep = provision(topo, &flows, g).unwrap();
        let fcm = Fcm::from_view(&dep.view);
        dep.replay_traffic(&mut LossModel::none());
        let counters = dep.dataplane.collect_counters();
        (fcm, counters, dep)
    }

    #[test]
    fn healthy_network_zero_residual_per_destination() {
        let (fcm, counters, _) = healthy_setup(RuleGranularity::PerDestination);
        let out = EquationSystem::new(SolverKind::DirectDense)
            .solve(&fcm, &counters)
            .unwrap();
        assert!(out.residual.iter().all(|r| r.abs() < 1e-6));
        // Volume estimates must sum to the injected total per group; total
        // volume recovered equals total injected.
        let injected: f64 = 240.0 * 1000.0;
        let estimated: f64 = out.volume_estimate.iter().sum();
        assert!((estimated - injected).abs() < 1e-3, "estimated {estimated}");
    }

    #[test]
    fn healthy_network_recovers_exact_volumes_per_pair() {
        let (fcm, counters, _) = healthy_setup(RuleGranularity::PerFlowPair);
        let out = EquationSystem::new(SolverKind::DirectDense)
            .solve(&fcm, &counters)
            .unwrap();
        for v in &out.volume_estimate {
            assert!((v - 1000.0).abs() < 1e-6, "volume {v}");
        }
    }

    #[test]
    fn direct_and_iterative_agree_on_residuals() {
        let (fcm, mut counters, _) = healthy_setup(RuleGranularity::PerDestination);
        counters[3] += 500.0; // perturb to make it inconsistent
        let direct = EquationSystem::new(SolverKind::DirectDense)
            .solve(&fcm, &counters)
            .unwrap();
        let iterative = EquationSystem::new(SolverKind::IterativeSparse {
            tol: 1e-12,
            max_iter: 20_000,
        })
        .solve(&fcm, &counters)
        .unwrap();
        for (a, b) in direct.residual.iter().zip(&iterative.residual) {
            assert!((a - b).abs() < 1e-4, "direct {a} vs iterative {b}");
        }
    }

    #[test]
    fn naive_pipeline_matches_direct() {
        let (fcm, mut counters, _) = healthy_setup(RuleGranularity::PerDestination);
        counters[7] += 333.0;
        let direct = EquationSystem::new(SolverKind::DirectDense)
            .solve(&fcm, &counters)
            .unwrap();
        let naive = EquationSystem::new(SolverKind::DenseNaive)
            .solve(&fcm, &counters)
            .unwrap();
        for (a, b) in direct.residual.iter().zip(&naive.residual) {
            assert!((a - b).abs() < 1e-6, "direct {a} vs naive {b}");
        }
        for (a, b) in direct.volume_estimate.iter().zip(&naive.volume_estimate) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn auto_picks_direct_for_small_systems() {
        let (fcm, counters, _) = healthy_setup(RuleGranularity::PerDestination);
        let out = EquationSystem::default().solve(&fcm, &counters).unwrap();
        assert!(out.residual.iter().all(|r| r.abs() < 1e-6));
    }

    fn empty_fcm() -> Fcm {
        // Rules but no flows: the system has rows yet nothing to solve for.
        let rules = vec![
            foces_dataplane::RuleRef {
                switch: foces_net::SwitchId(0),
                index: 0,
            },
            foces_dataplane::RuleRef {
                switch: foces_net::SwitchId(1),
                index: 0,
            },
        ];
        Fcm::from_parts(rules, Vec::new())
    }

    fn single_flow_fcm() -> Fcm {
        let h = DenseMatrix::from_rows(&[&[1.], &[1.], &[0.]]).unwrap();
        crate::testkit::fcm_from_dense(&h)
    }

    #[test]
    fn empty_fcm_reported_before_counter_length() {
        // An empty system must report EmptyFcm even when the counter
        // vector is also the wrong length — the length of a vector for a
        // system with no unknowns is not the interesting diagnosis.
        let fcm = empty_fcm();
        let err = EquationSystem::default().solve(&fcm, &[1.0]).unwrap_err();
        assert!(matches!(err, FocesError::EmptyFcm), "got {err:?}");
        // Same with a correctly sized vector.
        let err = EquationSystem::default()
            .solve(&fcm, &[1.0, 2.0])
            .unwrap_err();
        assert!(matches!(err, FocesError::EmptyFcm));
    }

    #[test]
    fn empty_fcm_consistent_across_masked_and_warm_paths() {
        let fcm = empty_fcm();
        let err = EquationSystem::default()
            .solve_masked(&fcm, &[0.0], &[true, true])
            .unwrap_err();
        assert!(matches!(err, FocesError::EmptyFcm), "masked: {err:?}");
        let mut warm = crate::IncrementalSolver::default();
        let err = warm.solve(&fcm, &[0.0]).unwrap_err();
        assert!(matches!(err, FocesError::EmptyFcm), "warm: {err:?}");
        let err = warm.solve_masked(&fcm, &[0.0], &[true, true]).unwrap_err();
        assert!(matches!(err, FocesError::EmptyFcm), "warm masked: {err:?}");
    }

    #[test]
    fn single_flow_solves_on_every_path() {
        let fcm = single_flow_fcm();
        let counters = [5.0, 5.0, 0.0];
        let direct = EquationSystem::new(SolverKind::DirectDense)
            .solve(&fcm, &counters)
            .unwrap();
        assert!((direct.volume_estimate[0] - 5.0).abs() < 1e-9);
        assert!(direct.residual.iter().all(|r| r.abs() < 1e-9));

        let (masked, masked_out) = EquationSystem::default()
            .solve_masked(&fcm, &counters, &[true, true, false])
            .unwrap();
        assert_eq!(masked.fcm().flow_count(), 1);
        assert!((masked_out.volume_estimate[0] - 5.0).abs() < 1e-9);

        let mut warm = crate::IncrementalSolver::default();
        let (warm_out, path) = warm.solve(&fcm, &counters).unwrap();
        assert!(!path.is_warm());
        assert!((warm_out.volume_estimate[0] - 5.0).abs() < 1e-9);
        let (warm_out2, path2) = warm.solve(&fcm, &counters).unwrap();
        assert!(path2.is_warm(), "second solve should reuse the factor");
        assert!((warm_out2.volume_estimate[0] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn single_flow_length_mismatch_is_consistent() {
        let fcm = single_flow_fcm();
        let err = EquationSystem::default().solve(&fcm, &[1.0]).unwrap_err();
        assert!(
            matches!(
                err,
                FocesError::CounterLengthMismatch {
                    got: 1,
                    expected: 3
                }
            ),
            "got {err:?}"
        );
        let mut warm = crate::IncrementalSolver::default();
        let err = warm.solve(&fcm, &[1.0]).unwrap_err();
        assert!(matches!(
            err,
            FocesError::CounterLengthMismatch {
                got: 1,
                expected: 3
            }
        ));
        let err = EquationSystem::default()
            .solve_masked(&fcm, &[1.0], &[true, true, true])
            .unwrap_err();
        assert!(matches!(
            err,
            FocesError::CounterLengthMismatch {
                got: 1,
                expected: 3
            }
        ));
    }

    #[test]
    fn counter_length_is_validated() {
        let (fcm, _, _) = healthy_setup(RuleGranularity::PerDestination);
        let err = EquationSystem::default()
            .solve(&fcm, &[1.0, 2.0])
            .unwrap_err();
        assert!(matches!(err, FocesError::CounterLengthMismatch { .. }));
    }

    #[test]
    fn masked_solve_matches_subsystem() {
        let (fcm, mut counters, _) = healthy_setup(RuleGranularity::PerDestination);
        counters[5] += 250.0;
        let observed: Vec<bool> = (0..fcm.rule_count()).map(|i| i % 4 != 2).collect();
        let (masked, out) = EquationSystem::default()
            .solve_masked(&fcm, &counters, &observed)
            .unwrap();
        assert_eq!(out.residual.len(), masked.fcm().rule_count());
        // Same as solving the masked sub-system by hand.
        let by_hand = EquationSystem::default()
            .solve(masked.fcm(), &masked.project(&counters))
            .unwrap();
        for (a, b) in out.residual.iter().zip(&by_hand.residual) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn masked_solve_healthy_residual_zero() {
        let (fcm, counters, _) = healthy_setup(RuleGranularity::PerDestination);
        // Hide one switch's rows entirely: the sub-system is still
        // consistent, so residuals stay at round-off level.
        let victim = fcm.rules()[0].switch;
        let observed: Vec<bool> = fcm.rules().iter().map(|r| r.switch != victim).collect();
        let (_, out) = EquationSystem::default()
            .solve_masked(&fcm, &counters, &observed)
            .unwrap();
        assert!(out.residual.iter().all(|r| r.abs() < 1e-6));
    }

    #[test]
    fn masked_solve_validates_full_length() {
        let (fcm, _, _) = healthy_setup(RuleGranularity::PerDestination);
        let err = EquationSystem::default()
            .solve_masked(&fcm, &[0.0; 3], &vec![true; fcm.rule_count()])
            .unwrap_err();
        assert!(matches!(err, FocesError::CounterLengthMismatch { .. }));
    }

    #[test]
    fn stanford_healthy_residual_zero() {
        let topo = stanford();
        let flows = uniform_flows(&topo, 650_000.0);
        let mut dep = provision(topo, &flows, RuleGranularity::PerDestination).unwrap();
        let fcm = Fcm::from_view(&dep.view);
        dep.replay_traffic(&mut LossModel::none());
        let out = EquationSystem::default()
            .solve(&fcm, &dep.dataplane.collect_counters())
            .unwrap();
        assert!(out.residual.iter().all(|r| r.abs() < 1e-5));
    }

    #[test]
    fn anomaly_produces_large_residual() {
        let topo = fattree(4);
        let flows = uniform_flows(&topo, 240_000.0);
        let mut dep = provision(topo, &flows, RuleGranularity::PerDestination).unwrap();
        let fcm = Fcm::from_view(&dep.view);
        // Deviate one rule, then replay.
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
        let _applied = foces_dataplane::inject_random_anomaly(
            &mut dep.dataplane,
            foces_dataplane::AnomalyKind::PathDeviation,
            &mut rng,
            &[],
        )
        .unwrap();
        dep.replay_traffic(&mut LossModel::none());
        let out = EquationSystem::default()
            .solve(&fcm, &dep.dataplane.collect_counters())
            .unwrap();
        let max = out.residual.iter().cloned().fold(0.0_f64, f64::max);
        assert!(max > 100.0, "max residual {max}");
    }
}
