//! Region-sharded FCMs with explicit boundary flows — the matrix layer of
//! the cluster subsystem.
//!
//! [`SlicedFcm`](crate::SlicedFcm) cuts the FCM per *switch*; a cluster
//! deployment cuts it per *region shard* ([`foces_net::Partition`]), so
//! that one worker can own each region with its own warm factorization.
//! [`ShardedFcm`] generalizes the paper's §IV-B slicing from a single
//! switch to a switch set:
//!
//! * **Shard rule set** `R(s)` — the rules on the region's switches plus,
//!   for every traversal, the immediately preceding rule in that flow's
//!   history (the region-level RBG closure, exactly as
//!   [`Rbg::slicing_rules`](crate::rbg::Rbg::slicing_rules) does per
//!   switch). With the trivial per-switch partition this reproduces
//!   today's slicing *bit for bit*: same rules, same order, same sub-FCMs.
//! * **Shard flow set** `F(s)` — every flow matching at least one rule of
//!   `R(s)`, its column restricted to the `R(s)` rows.
//! * **Boundary flows** — flows whose rule history spans more than one
//!   region. A boundary flow contributes its rows to *every* shard it
//!   traverses; no shard sees a truncated picture of the rows it owns.
//!
//! # Why the shard-union verdict is sound
//!
//! Because `F(s)` contains every flow matching any rule of `R(s)`, the
//! shard system `H(s)·X(s) = Y(s)` is exactly the **row projection** of
//! the global system onto `R(s)` (zero columns dropped): each retained row
//! keeps *all* the columns that touch it. Consequently, with noiseless
//! counters:
//!
//! * a consistent global system projects to a consistent system in every
//!   shard — healthy traffic can never make a shard alarm; and
//! * an inconsistent shard system certifies the global system inconsistent
//!   — a shard alarm is never a phantom.
//!
//! This is the same projection argument the row-mask machinery
//! ([`crate::Fcm::mask_rows`]) is built on, and it is pinned by the
//! 256-case property test in `crates/core/tests/shard_props.rs`, which
//! also checks the union verdict against the global
//! [`Detector::detect`] and the per-switch mode against
//! [`SlicedFcm`](crate::SlicedFcm) verbatim.

use crate::{Detector, Fcm, FocesError, Verdict};
use foces_atpg::LogicalFlow;
use foces_dataplane::RuleRef;
use foces_net::{Partition, SwitchId};
use std::collections::HashSet;
use std::fmt;

/// One region shard: the sub-FCM over the region's closed rule set and the
/// flows touching it.
#[derive(Debug, Clone)]
struct Shard {
    /// Region index in the source [`Partition`].
    region: usize,
    /// The region's member switches (ascending).
    switches: Vec<SwitchId>,
    /// Row indices into the parent FCM for the shard's rules.
    parent_rows: Vec<usize>,
    /// Column indices into the parent FCM for the shard's flows.
    parent_columns: Vec<usize>,
    /// Subset of `parent_columns` that are boundary flows.
    boundary_columns: Vec<usize>,
    /// The shard's sub-FCM `H(s)`.
    sub_fcm: Fcm,
}

/// The region-sharded flow-counter matrix (see module docs).
#[derive(Debug, Clone)]
pub struct ShardedFcm {
    parent_rule_count: usize,
    shards: Vec<Shard>,
    /// Parent column indices of flows crossing region boundaries, ascending.
    boundary_flows: Vec<usize>,
}

/// Outcome of one sharded detection round: the union of all shard
/// verdicts.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardUnionVerdict {
    /// `true` iff any shard flagged an anomaly.
    pub anomalous: bool,
    /// Per-shard verdicts, in shard (ascending region) order.
    pub per_shard: Vec<(usize, Verdict)>,
}

impl ShardUnionVerdict {
    /// The largest per-shard anomaly index (0 with no shards).
    pub fn max_anomaly_index(&self) -> f64 {
        self.per_shard
            .iter()
            .map(|(_, v)| v.anomaly_index)
            .fold(0.0, f64::max)
    }

    /// Regions whose shard exceeded the threshold.
    pub fn flagged_regions(&self) -> Vec<usize> {
        self.per_shard
            .iter()
            .filter(|(_, v)| v.anomalous)
            .map(|(r, _)| *r)
            .collect()
    }
}

impl fmt::Display for ShardUnionVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} shards, max AI = {:.2}, flagged regions: {:?})",
            if self.anomalous { "ANOMALY" } else { "normal" },
            self.per_shard.len(),
            self.max_anomaly_index(),
            self.flagged_regions()
        )
    }
}

impl ShardedFcm {
    /// Builds one shard per partition region. Regions none of whose rules
    /// are matched by any flow are skipped (mirroring how
    /// [`SlicedFcm`](crate::SlicedFcm) skips switches with empty slices);
    /// the surviving shards keep their original region indices.
    pub fn from_fcm(fcm: &Fcm, partition: &Partition) -> Self {
        let flows = fcm.flows();
        // Region of each flow position, and the per-flow region span for
        // boundary classification.
        let region_of = |r: &RuleRef| partition.region_of(r.switch);
        let mut is_boundary = vec![false; flows.len()];
        for (j, f) in flows.iter().enumerate() {
            let mut first: Option<usize> = None;
            for rule in &f.rules {
                let reg = region_of(rule);
                match first {
                    None => first = Some(reg),
                    Some(r0) if r0 != reg => {
                        is_boundary[j] = true;
                        break;
                    }
                    _ => {}
                }
            }
        }

        let mut shards = Vec::new();
        for (region, members) in partition.regions().iter().enumerate() {
            let member_set: HashSet<SwitchId> = members.iter().copied().collect();
            // R(s): the region's matched rules plus each traversal's
            // predecessor, in first-appearance order (the multi-switch
            // generalization of Rbg::slicing_rules).
            let mut rules: Vec<RuleRef> = Vec::new();
            let mut rule_set: HashSet<RuleRef> = HashSet::new();
            let push = |r: RuleRef, rules: &mut Vec<RuleRef>, set: &mut HashSet<RuleRef>| {
                if set.insert(r) {
                    rules.push(r);
                }
            };
            for f in flows {
                for (pos, rule) in f.rules.iter().enumerate() {
                    if !member_set.contains(&rule.switch) {
                        continue;
                    }
                    if pos > 0 {
                        push(f.rules[pos - 1], &mut rules, &mut rule_set);
                    }
                    push(*rule, &mut rules, &mut rule_set);
                }
            }
            if rules.is_empty() {
                continue;
            }
            // F(s): flows matching at least one rule of R(s), restricted.
            let mut parent_columns = Vec::new();
            let mut boundary_columns = Vec::new();
            let mut sub_flows: Vec<LogicalFlow> = Vec::new();
            for (j, f) in flows.iter().enumerate() {
                if !f.rules.iter().any(|r| rule_set.contains(r)) {
                    continue;
                }
                let mut g = f.clone();
                g.rules.retain(|r| rule_set.contains(r));
                g.path.retain(|s| g.rules.iter().any(|r| r.switch == *s));
                parent_columns.push(j);
                if is_boundary[j] {
                    boundary_columns.push(j);
                }
                sub_flows.push(g);
            }
            let parent_rows: Vec<usize> = rules
                .iter()
                .map(|r| fcm.rule_row(*r).expect("shard rules come from the FCM"))
                .collect();
            shards.push(Shard {
                region,
                switches: members.clone(),
                parent_rows,
                parent_columns,
                boundary_columns,
                sub_fcm: Fcm::from_parts(rules, sub_flows),
            });
        }
        let boundary_flows: Vec<usize> = is_boundary
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(j, _)| j)
            .collect();
        ShardedFcm {
            parent_rule_count: fcm.rule_count(),
            shards,
            boundary_flows,
        }
    }

    /// Number of (non-empty) shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The parent FCM's rule count (the expected counter-vector length).
    pub fn parent_rule_count(&self) -> usize {
        self.parent_rule_count
    }

    /// Parent column indices of flows crossing region boundaries,
    /// ascending.
    pub fn boundary_flows(&self) -> &[usize] {
        &self.boundary_flows
    }

    /// Dimensions `(region, rules, flows)` of each shard's sub-FCM.
    pub fn shard_dims(&self) -> Vec<(usize, usize, usize)> {
        self.shards
            .iter()
            .map(|s| (s.region, s.sub_fcm.rule_count(), s.sub_fcm.flow_count()))
            .collect()
    }

    /// Borrowed views of the shards, in ascending region order — the unit
    /// of work for the cluster worker pool: each view carries everything
    /// needed to solve one shard independently.
    pub fn shard_views(&self) -> Vec<ShardView<'_>> {
        self.shards
            .iter()
            .map(|s| ShardView {
                region: s.region,
                switches: &s.switches,
                parent_rows: &s.parent_rows,
                parent_columns: &s.parent_columns,
                boundary_columns: &s.boundary_columns,
                sub_fcm: &s.sub_fcm,
            })
            .collect()
    }

    /// Runs the detector on every shard with its sub counter vector and
    /// unions the verdicts (the sequential reference the worker pool is
    /// checked against).
    ///
    /// # Errors
    ///
    /// * [`FocesError::CounterLengthMismatch`] if `counters` does not match
    ///   the parent FCM's rule count;
    /// * solver errors from any shard, in shard order.
    pub fn detect(
        &self,
        detector: &Detector,
        counters: &[f64],
    ) -> Result<ShardUnionVerdict, FocesError> {
        if counters.len() != self.parent_rule_count {
            return Err(FocesError::CounterLengthMismatch {
                got: counters.len(),
                expected: self.parent_rule_count,
            });
        }
        let mut per_shard = Vec::with_capacity(self.shards.len());
        let mut anomalous = false;
        for view in self.shard_views() {
            let verdict = view.detect(detector, counters)?;
            anomalous |= verdict.anomalous;
            per_shard.push((view.region, verdict));
        }
        Ok(ShardUnionVerdict {
            anomalous,
            per_shard,
        })
    }

    /// The boundary-flow reconciliation check: every boundary flow must
    /// appear in **each** shard whose region its history touches, and the
    /// union of its restricted histories across shards must reproduce its
    /// full global rule set. Returns the number of boundary flows checked.
    ///
    /// This is cheap (set arithmetic, no solves) and is asserted at
    /// construction time by the property suite; the cluster coordinator
    /// re-runs it after every FCM rebuild as a structural self-check.
    ///
    /// # Errors
    ///
    /// [`FocesError::ShardReconciliation`] naming the first flow whose
    /// shard columns fail to cover its global column.
    pub fn reconcile_boundaries(
        &self,
        fcm: &Fcm,
        partition: &Partition,
    ) -> Result<usize, FocesError> {
        let flows = fcm.flows();
        for &j in &self.boundary_flows {
            let flow = &flows[j];
            let touched: HashSet<usize> = flow
                .rules
                .iter()
                .map(|r| partition.region_of(r.switch))
                .collect();
            let mut covered: HashSet<RuleRef> = HashSet::new();
            for shard in &self.shards {
                let present = shard.parent_columns.binary_search(&j).is_ok();
                if touched.contains(&shard.region) && !present {
                    return Err(FocesError::ShardReconciliation {
                        flow: j,
                        region: shard.region,
                        detail: "boundary flow missing from a shard its path traverses",
                    });
                }
                if present {
                    let k = shard.parent_columns.binary_search(&j).expect("present");
                    covered.extend(shard.sub_fcm.flows()[k].rules.iter().copied());
                }
            }
            if flow.rules.iter().any(|r| !covered.contains(r)) {
                return Err(FocesError::ShardReconciliation {
                    flow: j,
                    region: usize::MAX,
                    detail: "shard-restricted histories do not cover the global column",
                });
            }
        }
        Ok(self.boundary_flows.len())
    }
}

/// A borrowed view of one shard (see [`ShardedFcm::shard_views`]).
#[derive(Debug, Clone, Copy)]
pub struct ShardView<'a> {
    /// Region index in the source partition.
    pub region: usize,
    /// The region's member switches.
    pub switches: &'a [SwitchId],
    /// Row indices into the parent FCM for the shard's rules.
    pub parent_rows: &'a [usize],
    /// Column indices into the parent FCM for the shard's flows.
    pub parent_columns: &'a [usize],
    /// Parent columns of boundary flows present in this shard.
    pub boundary_columns: &'a [usize],
    /// The shard's sub-FCM `H(s)`.
    pub sub_fcm: &'a Fcm,
}

impl ShardView<'_> {
    /// Extracts this shard's sub counter vector `Y(s)` from the full
    /// vector.
    ///
    /// # Panics
    ///
    /// Panics if `counters` is shorter than the parent FCM's rule count
    /// (callers validate once against [`ShardedFcm::parent_rule_count`]).
    pub fn sub_counters(&self, counters: &[f64]) -> Vec<f64> {
        self.parent_rows.iter().map(|&i| counters[i]).collect()
    }

    /// Runs the detector on this shard's sub-system.
    ///
    /// # Errors
    ///
    /// Solver errors from the shard solve.
    pub fn detect(&self, detector: &Detector, counters: &[f64]) -> Result<Verdict, FocesError> {
        detector.detect(self.sub_fcm, &self.sub_counters(counters))
    }

    /// Runs the detector through a per-shard warm
    /// [`IncrementalSolver`](crate::IncrementalSolver), reusing the shard's
    /// cached factorization — the solve path each cluster worker takes.
    ///
    /// # Errors
    ///
    /// As for [`ShardView::detect`].
    pub fn detect_warm(
        &self,
        detector: &Detector,
        counters: &[f64],
        warm: &mut crate::IncrementalSolver,
    ) -> Result<(Verdict, crate::SolvePath), FocesError> {
        detector.detect_warm(self.sub_fcm, &self.sub_counters(counters), warm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SlicedFcm, DEFAULT_THRESHOLD};
    use foces_controlplane::{provision, uniform_flows, RuleGranularity};
    use foces_dataplane::{inject_random_anomaly, AnomalyKind, LossModel};
    use foces_net::generators::{bcube, fattree};
    use foces_net::{partition, PartitionSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(
        topo: foces_net::Topology,
        spec: PartitionSpec,
    ) -> (Fcm, Partition, ShardedFcm, foces_controlplane::Deployment) {
        let flows = uniform_flows(&topo, topo.host_count() as f64 * 15_000.0);
        let part = partition(&topo, spec);
        let dep = provision(topo, &flows, RuleGranularity::PerDestination).unwrap();
        let fcm = Fcm::from_view(&dep.view);
        let sharded = ShardedFcm::from_fcm(&fcm, &part);
        (fcm, part, sharded, dep)
    }

    #[test]
    fn per_switch_mode_reproduces_slicing_exactly() {
        let (fcm, _, sharded, mut dep) = setup(bcube(1, 4), PartitionSpec::PerSwitch);
        let sliced = SlicedFcm::from_fcm(&fcm);
        assert_eq!(sharded.shard_count(), sliced.slice_count());
        // Same sub-FCM shapes in the same order...
        let shard_dims: Vec<(usize, usize)> = sharded
            .shard_dims()
            .into_iter()
            .map(|(_, r, f)| (r, f))
            .collect();
        let slice_dims: Vec<(usize, usize)> = sliced
            .slice_dims()
            .into_iter()
            .map(|(_, r, f)| (r, f))
            .collect();
        assert_eq!(shard_dims, slice_dims);
        // ...and identical verdicts on identical counters, anomaly or not.
        let mut rng = StdRng::seed_from_u64(3);
        inject_random_anomaly(
            &mut dep.dataplane,
            AnomalyKind::PathDeviation,
            &mut rng,
            &[],
        )
        .unwrap();
        dep.replay_traffic(&mut LossModel::none());
        let counters = dep.dataplane.collect_counters();
        let detector = Detector::default();
        let a = sharded.detect(&detector, &counters).unwrap();
        let b = sliced.detect(&detector, &counters).unwrap();
        assert_eq!(a.anomalous, b.anomalous);
        let union_verdicts: Vec<&Verdict> = a.per_shard.iter().map(|(_, v)| v).collect();
        let slice_verdicts: Vec<&Verdict> = b.per_switch.iter().map(|(_, v)| v).collect();
        assert_eq!(union_verdicts, slice_verdicts);
    }

    #[test]
    fn healthy_network_not_flagged_by_any_shard() {
        for k in [1, 3, 6] {
            let (_, _, sharded, mut dep) = setup(bcube(1, 4), PartitionSpec::EdgeCut { k });
            dep.replay_traffic(&mut LossModel::none());
            let counters = dep.dataplane.collect_counters();
            let v = sharded.detect(&Detector::default(), &counters).unwrap();
            assert!(!v.anomalous, "k={k}: {v}");
        }
    }

    #[test]
    fn shard_union_flags_what_global_flags() {
        let detector = Detector::with_threshold(DEFAULT_THRESHOLD);
        for seed in 0..8 {
            let (fcm, _, sharded, mut dep) = setup(bcube(1, 4), PartitionSpec::EdgeCut { k: 4 });
            let mut rng = StdRng::seed_from_u64(seed);
            inject_random_anomaly(
                &mut dep.dataplane,
                AnomalyKind::PathDeviation,
                &mut rng,
                &[],
            )
            .unwrap();
            dep.replay_traffic(&mut LossModel::none());
            let counters = dep.dataplane.collect_counters();
            let global = detector.detect(&fcm, &counters).unwrap();
            let union = sharded.detect(&detector, &counters).unwrap();
            if global.anomalous {
                assert!(union.anomalous, "seed {seed}: global flagged, union missed");
            }
        }
    }

    #[test]
    fn boundary_flows_reconcile() {
        for k in [2, 4, 8] {
            let (fcm, part, sharded, _) = setup(fattree(4), PartitionSpec::EdgeCut { k });
            let checked = sharded.reconcile_boundaries(&fcm, &part).unwrap();
            assert!(checked > 0, "k={k}: a fat-tree must have boundary flows");
            // Every boundary flow sits in at least two shards.
            let views = sharded.shard_views();
            for &j in sharded.boundary_flows() {
                let holders = views
                    .iter()
                    .filter(|v| v.parent_columns.binary_search(&j).is_ok())
                    .count();
                assert!(holders >= 2, "boundary flow {j} held by {holders} shards");
            }
        }
    }

    #[test]
    fn single_region_shard_is_the_global_system() {
        let (fcm, _, sharded, mut dep) = setup(bcube(1, 4), PartitionSpec::EdgeCut { k: 1 });
        assert_eq!(sharded.shard_count(), 1);
        assert!(sharded.boundary_flows().is_empty());
        let dims = sharded.shard_dims();
        // All matched rules and all flows in the one shard.
        assert_eq!(dims[0].2, fcm.flow_count());
        dep.replay_traffic(&mut LossModel::none());
        let counters = dep.dataplane.collect_counters();
        let v = sharded.detect(&Detector::default(), &counters).unwrap();
        assert!(!v.anomalous);
    }

    #[test]
    fn counter_length_validated() {
        let (_, _, sharded, _) = setup(bcube(1, 4), PartitionSpec::EdgeCut { k: 2 });
        let err = sharded
            .detect(&Detector::default(), &[1.0, 2.0])
            .unwrap_err();
        assert!(matches!(err, FocesError::CounterLengthMismatch { .. }));
    }

    #[test]
    fn shard_views_reproduce_detect() {
        let (_, _, sharded, mut dep) = setup(bcube(1, 4), PartitionSpec::EdgeCut { k: 3 });
        dep.replay_traffic(&mut LossModel::none());
        let counters = dep.dataplane.collect_counters();
        let detector = Detector::default();
        let whole = sharded.detect(&detector, &counters).unwrap();
        for (view, (region, verdict)) in sharded.shard_views().iter().zip(&whole.per_shard) {
            assert_eq!(view.region, *region);
            assert_eq!(view.detect(&detector, &counters).unwrap(), *verdict);
        }
    }

    #[test]
    fn warm_shard_solves_match_cold() {
        let (_, _, sharded, mut dep) = setup(bcube(1, 4), PartitionSpec::EdgeCut { k: 4 });
        let detector = Detector::default();
        let views = sharded.shard_views();
        let mut solvers: Vec<crate::IncrementalSolver> = views
            .iter()
            .map(|_| crate::IncrementalSolver::default())
            .collect();
        for epoch in 0..3 {
            dep.dataplane.reset_counters();
            dep.replay_traffic(&mut LossModel::none());
            let counters = dep.dataplane.collect_counters();
            for (view, solver) in views.iter().zip(&mut solvers) {
                let (warm_v, path) = view.detect_warm(&detector, &counters, solver).unwrap();
                let cold_v = view.detect(&detector, &counters).unwrap();
                assert_eq!(warm_v.anomalous, cold_v.anomalous);
                if epoch > 0 {
                    assert!(
                        path.is_warm(),
                        "epoch {epoch} region {}: {path}",
                        view.region
                    );
                }
            }
        }
    }

    #[test]
    fn display_mentions_shards() {
        let (_, _, sharded, mut dep) = setup(bcube(1, 4), PartitionSpec::EdgeCut { k: 2 });
        dep.replay_traffic(&mut LossModel::none());
        let counters = dep.dataplane.collect_counters();
        let v = sharded.detect(&Detector::default(), &counters).unwrap();
        assert!(v.to_string().contains("shards"));
    }
}
