//! Seed-determinism demo: drive one fixed fault-plus-churn scenario and
//! stream the per-epoch JSONL event log to the path given as the first
//! argument (default `epoch_log.jsonl`).
//!
//! Every random choice in the stack — traffic loss, channel faults,
//! anomaly placement, churn reroutes, incremental-solver behaviour — is
//! derived from the seeds fixed below, so two runs of this example must
//! produce **byte-identical** logs. CI runs it twice and diffs the files
//! (after zeroing the one process-level gauge, `peak_rss_bytes`, which
//! reads live `VmHWM`); a mismatch means nondeterminism crept into the
//! detection pipeline (a HashMap iteration order leak, an unseeded RNG,
//! a time-dependent branch), which would also invalidate the golden-file
//! battery.

use foces_controlplane::{provision, uniform_flows, RuleGranularity};
use foces_dataplane::AnomalyKind;
use foces_net::generators::fattree;
use foces_runtime::{EventLog, FaultScenario, RuntimeConfig, ScenarioDriver};

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "epoch_log.jsonl".to_string());

    let topo = fattree(4);
    let flows = uniform_flows(&topo, 240_000.0);
    let dep = provision(topo, &flows, RuleGranularity::PerFlowPair).expect("fattree provisions");

    let scenario = FaultScenario {
        epochs: 24,
        loss: 0.03,
        drop_prob: 0.10,
        anomaly_window: Some((10, 16)),
        anomaly_kind: AnomalyKind::PathDeviation,
        churn_period: Some(4),
        ..FaultScenario::default()
    };
    let mut driver = ScenarioDriver::new(dep, scenario.clone(), RuntimeConfig::default());
    let log = EventLog::to_file(std::path::Path::new(&path))
        .unwrap_or_else(|e| panic!("cannot open {path}: {e}"));
    driver.service_mut().set_event_log(log);

    for _ in 0..scenario.epochs {
        driver.step().expect("epoch completes");
    }
    eprintln!(
        "wrote {} epochs ({} churn events) to {path}",
        driver.service().epochs(),
        driver.churn_events()
    );
}
