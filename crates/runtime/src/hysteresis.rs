//! Alarm hysteresis: k-of-n confirmation with churn-aware suppression.
//!
//! The seed service raised after `raise_after` *consecutive* anomalous
//! rounds — brittle under churn, where a reconciled round can score
//! normal and reset the streak while a real attack is in progress, and
//! trigger-happy right after an update, when residual inconsistency can
//! masquerade as anomaly for a round. [`AlarmMachine`] generalizes the
//! streak to a sliding window (raise when `raise_k` of the last `window`
//! scored rounds were anomalous) and lets churn rounds arm a suppression
//! timer that temporarily *raises the bar* (`raise_k + churn_penalty`)
//! instead of discarding evidence. Blind rounds are simply not fed to the
//! machine — silence is neither health nor attack.
//!
//! With `window == raise_k` (the defaults) the window degenerates to the
//! old consecutive-streak semantics exactly.

use foces::AlarmState;
use std::collections::VecDeque;

/// Tunables for [`AlarmMachine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HysteresisConfig {
    /// Sliding window of scored rounds considered for raising. Clamped up
    /// to `raise_k` (a window smaller than the quorum could never raise).
    pub window: u32,
    /// Anomalous rounds within the window required to raise.
    pub raise_k: u32,
    /// Consecutive normal rounds required to clear a raised alarm.
    pub clear_after: u32,
    /// Scored rounds a churn round suppresses (0 disables suppression).
    pub churn_suppress: u32,
    /// Extra anomalous rounds required to raise while suppressed; the
    /// effective quorum is capped at the window size so a sustained
    /// attack can always raise eventually.
    pub churn_penalty: u32,
}

impl Default for HysteresisConfig {
    /// `2`-of-`2` raise, clear after `2`, suppress `2` rounds after churn
    /// with penalty `1` — the raise/clear halves match the seed service's
    /// consecutive-streak defaults bit for bit on churn-free runs.
    fn default() -> Self {
        HysteresisConfig {
            window: 2,
            raise_k: 2,
            clear_after: 2,
            churn_suppress: 2,
            churn_penalty: 1,
        }
    }
}

/// What one scored round did to the alarm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AlarmTransition {
    /// This round raised the alarm.
    pub raised: bool,
    /// This round cleared the alarm.
    pub cleared: bool,
    /// The window held a raising quorum but the churn-suppression penalty
    /// held the alarm back this round.
    pub suppressed: bool,
}

/// The k-of-n alarm state machine. Feed it every *scored* round via
/// [`AlarmMachine::observe`]; skip blind rounds entirely (freezing the
/// machine, exactly like the seed service froze its streaks).
#[derive(Debug, Clone)]
pub struct AlarmMachine {
    config: HysteresisConfig,
    state: AlarmState,
    /// Most recent scored rounds, newest last, bounded by `window`.
    recent: VecDeque<bool>,
    consecutive_normal: u32,
    /// Scored rounds of churn suppression still pending.
    suppress_left: u32,
}

impl AlarmMachine {
    /// A machine in [`AlarmState::Normal`] with an empty window.
    pub fn new(config: HysteresisConfig) -> Self {
        let config = HysteresisConfig {
            window: config.window.max(config.raise_k).max(1),
            ..config
        };
        AlarmMachine {
            config,
            state: AlarmState::Normal,
            recent: VecDeque::with_capacity(config.window as usize),
            consecutive_normal: 0,
            suppress_left: 0,
        }
    }

    /// Current alarm state.
    pub fn state(&self) -> AlarmState {
        self.state
    }

    /// The active (clamped) configuration.
    pub fn config(&self) -> HysteresisConfig {
        self.config
    }

    /// Is the churn-suppression timer currently armed?
    pub fn suppressed(&self) -> bool {
        self.suppress_left > 0
    }

    /// Scores one round. `anomalous` is the round's verdict; `churn` says
    /// the round witnessed a rule update (reconciled detection), which
    /// arms the suppression timer *before* the round is judged.
    pub fn observe(&mut self, anomalous: bool, churn: bool) -> AlarmTransition {
        if churn && self.config.churn_suppress > 0 {
            self.suppress_left = self.config.churn_suppress;
        }
        let suppressed_now = self.suppress_left > 0;
        self.suppress_left = self.suppress_left.saturating_sub(1);

        self.recent.push_back(anomalous);
        while self.recent.len() > self.config.window as usize {
            self.recent.pop_front();
        }
        if anomalous {
            self.consecutive_normal = 0;
        } else {
            self.consecutive_normal += 1;
        }

        let hits = self.recent.iter().filter(|&&a| a).count() as u32;
        let effective_k = if suppressed_now {
            (self.config.raise_k + self.config.churn_penalty).min(self.config.window)
        } else {
            self.config.raise_k
        };

        let previous = self.state;
        let mut suppressed = false;
        self.state = match previous {
            AlarmState::Normal | AlarmState::Suspected => {
                if hits >= effective_k {
                    AlarmState::Alarmed
                } else {
                    suppressed = suppressed_now && hits >= self.config.raise_k;
                    if hits > 0 {
                        AlarmState::Suspected
                    } else {
                        AlarmState::Normal
                    }
                }
            }
            AlarmState::Alarmed => {
                if self.consecutive_normal >= self.config.clear_after {
                    // Clearing also forgets the window: post-incident
                    // rounds start from a clean slate instead of
                    // re-raising off stale hits.
                    self.recent.clear();
                    AlarmState::Normal
                } else {
                    AlarmState::Alarmed
                }
            }
        };
        AlarmTransition {
            raised: previous != AlarmState::Alarmed && self.state == AlarmState::Alarmed,
            cleared: previous == AlarmState::Alarmed && self.state == AlarmState::Normal,
            suppressed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(m: &mut AlarmMachine, rounds: &[(bool, bool)]) -> Vec<AlarmTransition> {
        rounds.iter().map(|&(a, c)| m.observe(a, c)).collect()
    }

    #[test]
    fn defaults_match_consecutive_streak_semantics() {
        let mut m = AlarmMachine::new(HysteresisConfig::default());
        // anomalous, normal, anomalous: never two in the 2-window.
        assert!(!m.observe(true, false).raised);
        assert_eq!(m.state(), AlarmState::Suspected);
        assert!(!m.observe(false, false).raised);
        assert!(!m.observe(true, false).raised);
        // A second consecutive anomalous round raises.
        let t = m.observe(true, false);
        assert!(t.raised);
        assert_eq!(m.state(), AlarmState::Alarmed);
        // Two consecutive normals clear.
        assert!(!m.observe(false, false).cleared);
        let t = m.observe(false, false);
        assert!(t.cleared);
        assert_eq!(m.state(), AlarmState::Normal);
    }

    #[test]
    fn k_of_n_raises_through_an_interleaved_normal() {
        // 2-of-3: anomalous, normal, anomalous holds a quorum.
        let cfg = HysteresisConfig {
            window: 3,
            raise_k: 2,
            churn_suppress: 0,
            ..HysteresisConfig::default()
        };
        let mut m = AlarmMachine::new(cfg);
        let t = drive(&mut m, &[(true, false), (false, false), (true, false)]);
        assert!(!t[0].raised && !t[1].raised);
        assert!(t[2].raised, "2-of-3 must tolerate one normal in between");
    }

    #[test]
    fn churn_suppression_delays_but_does_not_erase_evidence() {
        // window 3, raise 2, penalty 1: during suppression the quorum is 3.
        let cfg = HysteresisConfig {
            window: 3,
            raise_k: 2,
            clear_after: 2,
            churn_suppress: 2,
            churn_penalty: 1,
        };
        let mut m = AlarmMachine::new(cfg);
        // Churn round scores anomalous (reconciliation residue), next
        // round too: 2 hits would normally raise, suppression holds it.
        let t0 = m.observe(true, true);
        assert!(!t0.raised);
        let t1 = m.observe(true, false);
        assert!(!t1.raised, "suppression window still open");
        assert!(t1.suppressed, "quorum met but penalty held it");
        // Third anomalous round: either the timer expired or the window
        // is saturated — the alarm must land.
        let t2 = m.observe(true, false);
        assert!(t2.raised, "sustained anomaly raises despite churn");
    }

    #[test]
    fn suppression_timer_rearms_on_every_churn_round() {
        let cfg = HysteresisConfig {
            window: 2,
            raise_k: 2,
            clear_after: 1,
            churn_suppress: 2,
            churn_penalty: 5, // capped at the window: quorum becomes 2
        };
        let mut m = AlarmMachine::new(cfg);
        assert_eq!(m.config().window, 2);
        m.observe(false, true);
        assert!(m.suppressed());
        m.observe(false, false);
        m.observe(false, false);
        assert!(!m.suppressed(), "timer runs out without churn");
        m.observe(false, true);
        assert!(m.suppressed(), "new churn round re-arms");
        // Penalty is capped at the window, so saturation still raises.
        let t = drive(&mut m, &[(true, false), (true, false)]);
        assert!(t[1].raised);
    }

    #[test]
    fn clearing_forgets_the_window() {
        let cfg = HysteresisConfig {
            window: 4,
            raise_k: 2,
            clear_after: 2,
            churn_suppress: 0,
            churn_penalty: 0,
        };
        let mut m = AlarmMachine::new(cfg);
        drive(&mut m, &[(true, false), (true, false)]);
        assert_eq!(m.state(), AlarmState::Alarmed);
        drive(&mut m, &[(false, false), (false, false)]);
        assert_eq!(m.state(), AlarmState::Normal);
        // The two old hits are gone: one fresh anomalous round only
        // suspects, it does not re-raise off stale window contents.
        let t = m.observe(true, false);
        assert!(!t.raised);
        assert_eq!(m.state(), AlarmState::Suspected);
    }

    #[test]
    fn window_smaller_than_quorum_is_clamped() {
        let m = AlarmMachine::new(HysteresisConfig {
            window: 1,
            raise_k: 3,
            ..HysteresisConfig::default()
        });
        assert_eq!(m.config().window, 3);
    }
}
