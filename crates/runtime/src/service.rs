//! The service loop: collect → assemble → detect → alarm, every epoch.
//!
//! [`RuntimeService`] composes the scheduler (fault-tolerant collection),
//! the degraded pipeline (row-masked detection + oracle), the parallel
//! slice solver (localization evidence), and [`foces::Monitor`]-style
//! alarm hysteresis. One deliberate difference from the monitor: a
//! [`DetectionMode::Blind`] round *freezes* the alarm state machine —
//! silence is not evidence of health, so blind rounds neither raise nor
//! clear anything.

use crate::degraded::{DegradedPipeline, DetectionMode};
use crate::hysteresis::{AlarmMachine, AlarmTransition, HysteresisConfig};
use crate::metrics::{json_f64, json_str, EventLog, RuntimeMetrics};
use crate::parallel::detect_parallel;
use crate::scheduler::{EpochScheduler, PollPolicy};
use crate::transport::SimTransport;
use foces::{
    analyze_coverage, cross_validate, k_resilient_verdict, localize, AlarmState, BackendKind,
    ColdReason, CoverageConfig, CoverageReport, Detector, Fcm, FcmDelta, FocesError,
    ResilienceReport, SlicedFcm, SlicedVerdict, SolvePath, SuspicionConfig, SuspicionTracker,
    SwitchSuspicion, Verdict, DEFAULT_THRESHOLD,
};
use foces_channel::{ChannelError, SwitchAgent, Transport};
use foces_controlplane::ControllerView;
use foces_dataplane::{DataPlane, RuleRef};
use foces_net::SwitchId;
use foces_verify::{verify_fcm, verify_with, VerifyOptions, VerifyReport};
use std::collections::BTreeSet;
use std::fmt;
use std::time::Instant;

/// Anything that can end a round with an error (channel protocol
/// violations or solver failures). Unresponsive switches are *not*
/// errors — they degrade the round instead.
#[derive(Debug)]
pub enum RuntimeError {
    /// Wire-level protocol violation on the control channel.
    Channel(ChannelError),
    /// Detection-side failure (length mismatch, solver breakdown).
    Detection(FocesError),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Channel(e) => write!(f, "control channel: {e}"),
            RuntimeError::Detection(e) => write!(f, "detection: {e}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<ChannelError> for RuntimeError {
    fn from(e: ChannelError) -> Self {
        RuntimeError::Channel(e)
    }
}

impl From<FocesError> for RuntimeError {
    fn from(e: FocesError) -> Self {
        RuntimeError::Detection(e)
    }
}

/// Byzantine-resilience tunables: suspicion scoring, leave-one-switch-out
/// liar localization, counter quarantine, and k-resilient verdict probes.
/// Off by default — the service then behaves exactly as it always has.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ByzantineConfig {
    /// Master switch for the whole layer.
    pub enabled: bool,
    /// Suspicion accumulation tuning (decay, implication threshold).
    pub suspicion: SuspicionConfig,
    /// How many of the most-suspicious switches each leave-one-out pass
    /// cross-validates.
    pub max_candidates: usize,
    /// Quarantine depth of the k-resilience probe run on alarm-raise
    /// epochs (0 disables the probe).
    pub resilience_k: usize,
    /// Quiet scored epochs before a quarantined switch is re-probed for
    /// release (its counters are re-admitted only if the system stays
    /// consistent with them).
    pub reprobe_after: u32,
}

impl Default for ByzantineConfig {
    fn default() -> Self {
        ByzantineConfig {
            enabled: false,
            suspicion: SuspicionConfig::default(),
            max_candidates: 4,
            resilience_k: 2,
            reprobe_after: 4,
        }
    }
}

/// Tunables for [`RuntimeService`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeConfig {
    /// Per-switch poll policy (deadline, retries, backoff).
    pub policy: PollPolicy,
    /// Anomaly-index threshold (paper default 4.5).
    pub threshold: f64,
    /// Anomalous rounds (within [`RuntimeConfig::alarm_window`]) before
    /// raising the alarm.
    pub raise_after: u32,
    /// Consecutive normal rounds before clearing a raised alarm.
    pub clear_after: u32,
    /// Sliding window of scored rounds the raise quorum is counted over.
    /// With `alarm_window == raise_after` (the defaults) this degenerates
    /// to the classic consecutive-streak hysteresis.
    pub alarm_window: u32,
    /// Scored rounds of alarm suppression armed by each churn round.
    pub churn_suppress: u32,
    /// Extra anomalous rounds required to raise while churn-suppressed.
    pub churn_penalty: u32,
    /// Cap on the detectability-oracle candidate sample.
    pub oracle_cap: usize,
    /// Worker threads for the parallel slice solve (≤ 1 = sequential).
    pub workers: usize,
    /// Byzantine-resilience layer (suspicion, liar localization,
    /// quarantine); disabled by default.
    pub byzantine: ByzantineConfig,
    /// Solve backend for the full-round incremental solver: dense factor
    /// cache, sparse Cholesky/PCGLS engine, or size-based auto selection.
    pub backend: BackendKind,
}

impl RuntimeConfig {
    /// The hysteresis parameters as an [`HysteresisConfig`].
    pub fn hysteresis(&self) -> HysteresisConfig {
        HysteresisConfig {
            window: self.alarm_window,
            raise_k: self.raise_after,
            clear_after: self.clear_after,
            churn_suppress: self.churn_suppress,
            churn_penalty: self.churn_penalty,
        }
    }

    /// Worst-case number of epochs between a persistent anomaly first
    /// manifesting during a churn-reconciled epoch and the alarm raise:
    /// the churn-suppression window plus its penalty delay the counter,
    /// then `raise_after` anomalous epochs must accumulate, plus one
    /// epoch of slack because the reconciled epoch itself may score clean
    /// (the anomaly's rows can be masked by the update's journal).
    ///
    /// This is the completeness bound the interleaving oracles hold every
    /// schedule to: a dropper activating at epoch `u` must raise by
    /// `u + churn_raise_bound()`.
    pub fn churn_raise_bound(&self) -> u64 {
        u64::from(self.raise_after) + u64::from(self.churn_suppress + self.churn_penalty) + 1
    }
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            policy: PollPolicy::default(),
            threshold: DEFAULT_THRESHOLD,
            raise_after: 2,
            clear_after: 2,
            alarm_window: 2,
            churn_suppress: 2,
            churn_penalty: 1,
            oracle_cap: 256,
            workers: std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(4),
            byzantine: ByzantineConfig::default(),
            backend: BackendKind::default(),
        }
    }
}

/// Everything one epoch produced.
#[derive(Debug, Clone)]
pub struct EpochReport {
    /// The epoch number (0-based).
    pub epoch: u64,
    /// How much evidence the round had.
    pub mode: DetectionMode,
    /// The whole-network verdict (absent on blind rounds).
    pub verdict: Option<Verdict>,
    /// Per-switch sliced verdicts (full rounds only; solved in parallel).
    pub sliced: Option<SlicedVerdict>,
    /// Alarm state after this round.
    pub state: AlarmState,
    /// `true` exactly when this round raised the alarm.
    pub alarm_raised: bool,
    /// `true` exactly when this round cleared the alarm.
    pub alarm_cleared: bool,
    /// Whether this round witnessed a rule update (journal advanced past
    /// the FCM's build generation, or a reply stamp outran it).
    pub churn: bool,
    /// Localization suspects (full anomalous rounds only), strongest first.
    pub suspects: Vec<SwitchSuspicion>,
    /// Which solve path the whole-network detection took: warm (cached
    /// factor patched) or cold (full refactorization) on full rounds,
    /// `None` on masked, reconciled, and blind rounds.
    pub solve_path: Option<SolvePath>,
    /// Whether this round ended with a static re-verification of the view
    /// (it does exactly when the FCM was rebuilt).
    pub verified: bool,
    /// Outstanding findings from the most recent static verification pass
    /// (the pre-flight pass, or the re-check after the latest rebuild).
    pub static_violations: usize,
    /// Largest per-switch suspicion score after this round (0.0 when the
    /// Byzantine layer is disabled).
    pub suspicion_max: f64,
    /// Switches whose cumulative suspicion has crossed the implication
    /// threshold, most suspicious first.
    pub implicated: Vec<SwitchId>,
    /// The liar leave-one-out cross-validation localized this round (its
    /// counters are quarantined from the next epoch on).
    pub localized_liar: Option<SwitchId>,
    /// Switches whose counters are quarantined after this round, ascending.
    pub quarantined_switches: Vec<SwitchId>,
    /// A quarantine this round's clean re-probe lifted.
    pub quarantine_released: Option<SwitchId>,
    /// k-resilience probe outcome (alarm-raise epochs only).
    pub resilience: Option<ResilienceReport>,
    /// The alarm is up but no single switch's removal explains the
    /// inconsistency — a real forwarding anomaly (possibly covered for by
    /// forged counters), not a pure counter-fake.
    pub byz_unresolved: bool,
}

impl EpochReport {
    /// Whether this round's verdict was anomalous (blind rounds are not).
    pub fn anomalous(&self) -> bool {
        self.verdict.as_ref().map(|v| v.anomalous).unwrap_or(false)
    }
}

/// The continuous, fault-tolerant detection service.
pub struct RuntimeService {
    pipeline: DegradedPipeline,
    sliced: SlicedFcm,
    scheduler: EpochScheduler,
    config: RuntimeConfig,
    metrics: RuntimeMetrics,
    log: EventLog,
    alarm: AlarmMachine,
    /// The controller-view generation the current FCM was built from.
    fcm_generation: u64,
    epoch: u64,
    /// The most recent static verification report.
    verification: VerifyReport,
    /// Rules implicated by the verification's *critical* findings (loops,
    /// blackholes, FCM inconsistencies). While non-empty, every epoch is
    /// detected reconciled with these rows masked: traffic caught in a
    /// statically-broken region must surface as a `static_violations`
    /// report, not as a forwarding-anomaly alarm.
    static_touched: Vec<RuleRef>,
    /// Residual-attribution scores per switch (Byzantine layer).
    suspicion: SuspicionTracker,
    /// Switches whose counters are excluded from detection: their rows are
    /// cleared from the observed mask before every solve, which routes the
    /// round through the sound row-masked (degraded) path.
    quarantined: BTreeSet<SwitchId>,
    /// Consecutive quiet scored epochs (drives quarantine re-probing).
    quiet_streak: u32,
    /// Alarm is up but leave-one-out could not pin a single liar.
    byz_unresolved: bool,
    /// The most recent coverage analysis: the pre-flight pass at
    /// construction, refreshed after every FCM rebuild. `None` only when
    /// the FCM was empty or degenerate beyond analysis.
    coverage: Option<CoverageReport>,
}

/// Statically verifies `view` (and `fcm` against it), treating
/// journal-drained rules as expected shadowing, and accounts the pass in
/// `metrics`.
fn verify_closure(view: &ControllerView, fcm: &Fcm, metrics: &mut RuntimeMetrics) -> VerifyReport {
    let t = Instant::now();
    let mut report = verify_with(
        view,
        &VerifyOptions {
            // Rolling updates deliberately leave drained (fully shadowed)
            // rules behind; the journal names every one of them.
            expected_shadowed: view.touched_rules_since(0),
            // The service already holds the FCM — check it directly
            // instead of re-tracing the view's flows.
            check_fcm: false,
        },
    );
    report.findings.extend(verify_fcm(view, fcm));
    report.flows_checked = fcm.flow_count();
    report.elapsed_secs = t.elapsed().as_secs_f64();
    metrics.verify_passes += 1;
    metrics.static_violations += report.findings.len() as u64;
    metrics.verify_secs += report.elapsed_secs;
    report
}

/// Runs the static coverage analysis on `fcm` and accounts it in
/// `metrics`, logging each WARN finding to `log` when one is given.
/// Degenerate FCMs (empty) yield `None` instead of failing the service —
/// detection itself reports the emptiness on the first epoch.
fn coverage_closure(
    fcm: &Fcm,
    metrics: &mut RuntimeMetrics,
    log: Option<&mut EventLog>,
) -> Option<CoverageReport> {
    let report = analyze_coverage(fcm, &CoverageConfig::default()).ok()?;
    metrics.coverage_passes += 1;
    metrics.coverage_warnings += report.warn_count() as u64;
    if let Some(log) = log {
        for f in &report.findings {
            if f.severity.is_warn() {
                log.record(f.to_json());
            }
        }
    }
    Some(report)
}

impl RuntimeService {
    /// Builds a service for `view`, polling `agents` through `transport`.
    /// Runs the full-system detectability audit once up front.
    pub fn new(
        view: &ControllerView,
        agents: Vec<Box<dyn SwitchAgent>>,
        transport: Box<dyn Transport>,
        config: RuntimeConfig,
    ) -> Self {
        let fcm = Fcm::from_view(view);
        // Pre-flight gate: prove the configuration sound before trusting
        // counter equations built from it, and statically score how much
        // detection/localization coverage it actually provides.
        let mut metrics = RuntimeMetrics::default();
        let verification = verify_closure(view, &fcm, &mut metrics);
        let coverage = coverage_closure(&fcm, &mut metrics, None);
        let static_touched = verification.implicated_rules();
        let sliced = SlicedFcm::from_fcm(&fcm);
        let detector = Detector::with_threshold(config.threshold);
        let pipeline =
            DegradedPipeline::with_backend(view, fcm, detector, config.oracle_cap, config.backend);
        let scheduler = EpochScheduler::new(agents, transport, config.policy);
        RuntimeService {
            pipeline,
            sliced,
            scheduler,
            config,
            metrics,
            log: EventLog::in_memory(),
            alarm: AlarmMachine::new(config.hysteresis()),
            fcm_generation: view.generation(),
            epoch: 0,
            verification,
            static_touched,
            suspicion: SuspicionTracker::new(config.byzantine.suspicion),
            quarantined: BTreeSet::new(),
            quiet_streak: 0,
            byz_unresolved: false,
            coverage,
        }
    }

    /// Convenience constructor: honest agents for every switch in the
    /// view, polled through the given [`SimTransport`].
    pub fn with_sim_transport(
        view: &ControllerView,
        transport: SimTransport,
        config: RuntimeConfig,
    ) -> Self {
        let agents: Vec<Box<dyn SwitchAgent>> = view
            .topology()
            .switches()
            .map(|s| Box::new(foces_channel::HonestAgent::new(s)) as Box<dyn SwitchAgent>)
            .collect();
        RuntimeService::new(view, agents, Box::new(transport), config)
    }

    /// Replaces the event log (e.g. with a file-backed one).
    pub fn set_event_log(&mut self, log: EventLog) {
        self.log = log;
    }

    /// Aggregate metrics so far.
    pub fn metrics(&self) -> &RuntimeMetrics {
        &self.metrics
    }

    /// The event log recorded so far.
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// Current alarm state.
    pub fn state(&self) -> AlarmState {
        self.alarm.state()
    }

    /// The controller-view generation the current FCM was built from.
    pub fn fcm_generation(&self) -> u64 {
        self.fcm_generation
    }

    /// Epochs completed.
    pub fn epochs(&self) -> u64 {
        self.epoch
    }

    /// The degraded-detection layer (FCM, oracle coverage, mask cache).
    pub fn pipeline(&self) -> &DegradedPipeline {
        &self.pipeline
    }

    /// The most recent static verification report: the pre-flight pass at
    /// construction, or the re-check after the latest FCM rebuild.
    pub fn verification(&self) -> &VerifyReport {
        &self.verification
    }

    /// The most recent coverage analysis (pre-flight, refreshed after
    /// every FCM rebuild); `None` if the FCM was empty.
    pub fn coverage(&self) -> Option<&CoverageReport> {
        self.coverage.as_ref()
    }

    /// Rules implicated by the verification's critical findings. While
    /// non-empty, every epoch is detected reconciled with these rows
    /// masked (see [`EpochReport::static_violations`]).
    pub fn static_touched(&self) -> &[RuleRef] {
        &self.static_touched
    }

    /// The Byzantine suspicion tracker (empty while the layer is off).
    pub fn suspicion(&self) -> &SuspicionTracker {
        &self.suspicion
    }

    /// Switches currently under counter quarantine, ascending.
    pub fn quarantined_switches(&self) -> Vec<SwitchId> {
        self.quarantined.iter().copied().collect()
    }

    /// Whether the service is in the unresolved-Byzantine state: the alarm
    /// is up, and leave-one-out cross-validation could not attribute the
    /// inconsistency to any single switch. The `foces` CLI exits with
    /// status 2 when a run ends in this state.
    pub fn byzantine_unresolved(&self) -> bool {
        self.byz_unresolved
    }

    /// Swaps in a new agent for its switch (compromise or restore a switch
    /// mid-run), returning the displaced agent — `None` if the switch is
    /// not polled by this service.
    pub fn replace_agent(&mut self, agent: Box<dyn SwitchAgent>) -> Option<Box<dyn SwitchAgent>> {
        self.scheduler.replace_agent(agent)
    }

    /// Runs one full epoch: sweep, assemble, detect (reconciling against
    /// the view's update journal when the epoch witnessed churn), alarm,
    /// log — and finally rebuild the FCM if the view moved past it.
    ///
    /// `view` must be the same controller view the service was built from
    /// (mid-run updates to it are exactly what the journal describes).
    ///
    /// # Errors
    ///
    /// [`RuntimeError`] on wire protocol violations or solver failures —
    /// never because switches were merely unresponsive.
    pub fn run_epoch(
        &mut self,
        dp: &DataPlane,
        view: &ControllerView,
    ) -> Result<EpochReport, RuntimeError> {
        let epoch = self.epoch;
        self.epoch += 1;

        // -- Collect ----------------------------------------------------
        let t0 = Instant::now();
        let collection = self.scheduler.poll_epoch(dp, epoch)?;
        self.metrics.collect_secs += t0.elapsed().as_secs_f64();
        self.metrics.epochs += 1;
        self.metrics.polls += collection.polls.len() as u64;
        self.metrics.sim_channel_ms += collection.elapsed_ms;
        for p in &collection.polls {
            self.metrics.retries += u64::from(p.retries());
            self.metrics.drops += u64::from(p.drops);
            self.metrics.stale_replies += u64::from(p.stale_replies);
            self.metrics.offline_polls += u64::from(p.offline);
            self.metrics.unresponsive += u64::from(!p.responsive());
        }

        // -- Assemble the counter vector in FCM row order ---------------
        let t1 = Instant::now();
        let (counters, collected_observed) = collection.assemble(self.pipeline.fcm().rules());
        // Quarantined switches' reports are withheld from detection: their
        // observed bits are cleared, which routes the round through the
        // row-masked (degraded) path — provably sound on the remaining
        // equations, merely narrower.
        let byz = self.config.byzantine;
        let mut observed = collected_observed.clone();
        if byz.enabled && !self.quarantined.is_empty() {
            for (i, r) in self.pipeline.fcm().rules().iter().enumerate() {
                if self.quarantined.contains(&r.switch) {
                    observed[i] = false;
                }
            }
        }
        self.metrics.build_secs += t1.elapsed().as_secs_f64();

        // -- Two-phase read: did this epoch witness a rule update? -------
        let stale = collection.stale_switches(self.fcm_generation);
        self.metrics.stale_generation_replies += stale.len() as u64;
        let churn = view.generation() > self.fcm_generation || !stale.is_empty();

        // -- Detect ------------------------------------------------------
        // Statically-implicated rules force the reconciled path even on
        // quiet epochs: their counters are poisoned by configuration, not
        // by a compromised switch, and must not feed the anomaly index.
        let t2 = Instant::now();
        let (verdict, mode) = if churn || !self.static_touched.is_empty() {
            let mut touched = view.touched_rules_since(self.fcm_generation);
            touched.extend(self.static_touched.iter().copied());
            touched.sort_unstable();
            touched.dedup();
            self.pipeline
                .detect_reconciled(&counters, &observed, &touched, stale)?
        } else {
            self.pipeline.detect(&counters, &observed)?
        };
        let sliced = if matches!(mode, DetectionMode::Full) {
            Some(detect_parallel(
                &self.sliced,
                self.pipeline.detector(),
                &counters,
                self.config.workers,
            )?)
        } else {
            None
        };
        self.metrics.solve_secs += t2.elapsed().as_secs_f64();

        // -- Account the solve path (full rounds only) -------------------
        let solve_path = self.pipeline.last_solve_path();
        match solve_path {
            Some(SolvePath::Warm { rank_applied }) => {
                self.metrics.warm_solves += 1;
                self.metrics.factor_rank_applied += rank_applied as u64;
            }
            Some(SolvePath::Cold { reason }) => {
                self.metrics.cold_solves += 1;
                if !matches!(reason, ColdReason::NoCache) {
                    self.metrics.warm_fallbacks += 1;
                }
            }
            _ => {}
        }
        let cg_iterations = self.pipeline.last_cg_iterations();
        self.metrics.cg_iterations += cg_iterations;
        self.metrics.solve_backend = self.config.backend.code();
        self.metrics.peak_rss_bytes = crate::metrics::peak_rss_bytes();

        // -- Alarm hysteresis (blind rounds freeze the machine) ----------
        let anomalous = verdict.as_ref().map(|v| v.anomalous).unwrap_or(false);
        let transition = if mode.is_blind() {
            AlarmTransition::default()
        } else {
            self.alarm.observe(anomalous, churn)
        };
        let alarm_raised = transition.raised;
        let alarm_cleared = transition.cleared;
        self.metrics.suppressed_raises += u64::from(transition.suppressed);

        // -- Localize (full anomalous rounds) ----------------------------
        let suspects = match (&sliced, anomalous) {
            (Some(sv), true) => localize(sv),
            _ => Vec::new(),
        };

        // -- Byzantine resilience (opt-in) -------------------------------
        let mut localized_liar: Option<SwitchId> = None;
        let mut quarantine_released: Option<SwitchId> = None;
        let mut resilience: Option<ResilienceReport> = None;
        if byz.enabled {
            // Residuals from full and row-masked rounds attribute cleanly
            // to switches; reconciled rounds mix generations and blind
            // rounds have nothing, so neither feeds suspicion.
            let scorable = matches!(mode, DetectionMode::Full | DetectionMode::Degraded { .. });
            if scorable {
                if let Some(v) = &verdict {
                    // Row-masking preserves order, so the solved rows are
                    // exactly the observed rules in FCM order.
                    let scored: Vec<RuleRef> = self
                        .pipeline
                        .fcm()
                        .rules()
                        .iter()
                        .zip(&observed)
                        .filter(|(_, &o)| o)
                        .map(|(r, _)| *r)
                        .collect();
                    if scored.len() == v.solve.residual.len() {
                        self.suspicion
                            .observe(&scored, &v.solve.residual, v.anomalous);
                        self.metrics.suspicion_rounds += 1;
                    }
                }
            }
            // While the alarm is up, cross-validate the top suspects by
            // leaving each one's equations out (factor downdates, no cold
            // refactorization). Exactly one consistent removal = the liar.
            if scorable && anomalous && self.alarm.state() == AlarmState::Alarmed {
                let candidates: Vec<SwitchId> = self
                    .suspicion
                    .ranked()
                    .into_iter()
                    .take(byz.max_candidates)
                    .map(|(s, _)| s)
                    .collect();
                if !candidates.is_empty() {
                    let report = if observed.iter().all(|&o| o) {
                        cross_validate(
                            self.pipeline.fcm(),
                            &counters,
                            self.config.threshold,
                            &candidates,
                        )?
                    } else {
                        let masked = self.pipeline.fcm().mask_rows(&observed);
                        let sub = masked.project(&counters);
                        cross_validate(masked.fcm(), &sub, self.config.threshold, &candidates)?
                    };
                    self.metrics.loo_solves += report.outcomes.len() as u64;
                    self.metrics.loo_downdates += report.downdates as u64;
                    if let Some(liar) = report.localized {
                        localized_liar = Some(liar);
                        self.quarantined.insert(liar);
                        self.suspicion.clear(liar);
                        self.metrics.liars_localized += 1;
                        self.metrics.switch_quarantines += 1;
                        self.byz_unresolved = false;
                    } else if report.base_anomalous {
                        // No single removal explains the conflict: a real
                        // forwarding anomaly (possibly covered for), not a
                        // pure counter-fake.
                        if !self.byz_unresolved {
                            self.metrics.unresolved_byzantine += 1;
                        }
                        self.byz_unresolved = true;
                    }
                }
            }
            // On the raise epoch, probe whether the verdict survives
            // silencing the top suspects (k-resilience).
            if scorable && alarm_raised && byz.resilience_k > 0 {
                let ranked: Vec<SwitchId> = self
                    .suspicion
                    .ranked()
                    .into_iter()
                    .map(|(s, _)| s)
                    .collect();
                if !ranked.is_empty() {
                    let rep = k_resilient_verdict(
                        self.pipeline.detector(),
                        self.pipeline.fcm(),
                        &counters,
                        &observed,
                        &ranked,
                        byz.resilience_k,
                    )?;
                    self.metrics.resilience_probes += 1;
                    if rep.flips_at.is_some() {
                        self.metrics.resilience_flips += 1;
                    }
                    resilience = Some(rep);
                }
            }
            // Liveness: after a quiet streak, tentatively re-admit one
            // quarantined switch's counters and release it if the system
            // stays consistent (e.g. the switch confessed / was repaired).
            if !self.quarantined.is_empty() && !mode.is_blind() {
                if anomalous {
                    self.quiet_streak = 0;
                } else {
                    self.quiet_streak += 1;
                }
                if self.quiet_streak >= byz.reprobe_after {
                    self.quiet_streak = 0;
                    let candidate = *self.quarantined.iter().next().expect("non-empty");
                    let mut probe_obs = observed.clone();
                    for (i, r) in self.pipeline.fcm().rules().iter().enumerate() {
                        if r.switch == candidate {
                            probe_obs[i] = collected_observed[i];
                        }
                    }
                    let masked = self.pipeline.fcm().mask_rows(&probe_obs);
                    match self.pipeline.detector().detect_masked(&masked, &counters) {
                        Ok(v) if !v.anomalous => {
                            self.quarantined.remove(&candidate);
                            self.suspicion.clear(candidate);
                            self.metrics.quarantine_releases += 1;
                            quarantine_released = Some(candidate);
                        }
                        Ok(_) => {} // still lying: stay quarantined
                        Err(FocesError::EmptyFcm) => {}
                        Err(e) => return Err(e.into()),
                    }
                }
            }
            if alarm_cleared {
                self.byz_unresolved = false;
            }
        }

        // -- Account + log -----------------------------------------------
        match &mode {
            DetectionMode::Full => self.metrics.full_rounds += 1,
            DetectionMode::Degraded { .. } => self.metrics.degraded_rounds += 1,
            DetectionMode::Reconciled { .. } => self.metrics.reconciled_rounds += 1,
            DetectionMode::Blind { .. } => self.metrics.blind_rounds += 1,
        }
        self.metrics.anomalous_rounds += u64::from(anomalous);
        self.metrics.alarms_raised += u64::from(alarm_raised);
        self.metrics.alarms_cleared += u64::from(alarm_cleared);

        let (missing_count, quarantined, coverage) = match &mode {
            DetectionMode::Full => (0usize, 0usize, self.pipeline.full_coverage()),
            DetectionMode::Degraded {
                missing, coverage, ..
            } => (missing.len(), 0, *coverage),
            DetectionMode::Reconciled {
                missing,
                quarantined_flows,
                coverage,
                ..
            } => (missing.len(), *quarantined_flows, *coverage),
            DetectionMode::Blind { missing } => (missing.len(), 0, 0.0),
        };
        self.metrics.quarantined_flows += quarantined as u64;

        // -- Refresh: adopt the view's new generation for the next epoch -
        // The churn epoch itself is scored on the OLD system (its counters
        // are mixed no matter what); from the next epoch on, counters and
        // FCM agree again. Every rebuild re-verifies the churn closure: a
        // journaled update that introduced a loop or blackhole surfaces
        // here as a static violation, never as a forwarding-anomaly alarm.
        let verified = view.generation() > self.fcm_generation;
        if verified {
            let fcm = Fcm::from_view(view);
            let delta =
                FcmDelta::from_journal(self.pipeline.fcm(), &fcm, view, self.fcm_generation);
            self.metrics.delta_rows +=
                (delta.rows_added + delta.rows_removed + delta.rows_retouched) as u64;
            self.metrics.delta_cols += delta.column_churn() as u64;
            self.verification = verify_closure(view, &fcm, &mut self.metrics);
            // Churn can erode coverage (e.g. a reroute concentrating rows
            // on one switch): re-score it the same epoch it happens. The
            // WARN lines are recorded after this epoch's own line so the
            // log stays one-epoch-per-line-then-findings.
            self.coverage = coverage_closure(&fcm, &mut self.metrics, None);
            self.static_touched = self.verification.implicated_rules();
            self.sliced = SlicedFcm::from_fcm(&fcm);
            // Retarget (not rebuild) the pipeline: the incremental
            // solver's cached factorization survives and the next full
            // round patches it with this delta instead of refactorizing.
            self.pipeline.retarget(view, fcm, self.config.oracle_cap);
            self.fcm_generation = view.generation();
            self.metrics.fcm_rebuilds += 1;
        }
        let static_violations = self.verification.findings.len();

        let ai = verdict
            .as_ref()
            .map(|v| v.anomaly_index)
            .unwrap_or(f64::NAN);
        let solve_path_json = solve_path
            .map(|p| json_str(&p.to_string()))
            .unwrap_or_else(|| "null".to_string());
        let suspicion_max = self.suspicion.max_score();
        let implicated = self.suspicion.implicated();
        let byz_unresolved = self.byz_unresolved;
        let localized_json = localized_liar
            .map(|s| s.0.to_string())
            .unwrap_or_else(|| "null".to_string());
        self.log.record(format!(
            "{{\"epoch\":{epoch},\"mode\":{},\"missing\":{missing_count},\
             \"anomaly_index\":{},\"anomalous\":{anomalous},\"coverage\":{},\
             \"churn\":{churn},\"quarantined\":{quarantined},\
             \"solve_path\":{solve_path_json},\"solve_backend\":{},\
             \"cg_iterations\":{cg_iterations},\"peak_rss_bytes\":{},\
             \"suspicion_max\":{},\"implicated\":{},\"liars\":{},\
             \"localized\":{localized_json},\"byz_unresolved\":{byz_unresolved},\
             \"state\":{},\"alarm_raised\":{alarm_raised},\
             \"alarm_cleared\":{alarm_cleared},\"verified\":{verified},\
             \"static_violations\":{static_violations},\"sim_ms\":{}}}",
            json_str(mode.label()),
            json_f64(ai),
            json_f64(coverage),
            json_str(self.config.backend.name()),
            self.metrics.peak_rss_bytes,
            json_f64(suspicion_max),
            implicated.len(),
            self.quarantined.len(),
            json_str(&self.alarm.state().to_string()),
            json_f64(collection.elapsed_ms),
        ));
        if verified {
            if let Some(cov) = &self.coverage {
                for f in cov.findings.iter().filter(|f| f.severity.is_warn()) {
                    self.log.record(f.to_json());
                }
            }
        }

        Ok(EpochReport {
            epoch,
            mode,
            verdict,
            sliced,
            state: self.alarm.state(),
            alarm_raised,
            alarm_cleared,
            churn,
            suspects,
            solve_path,
            verified,
            static_violations,
            suspicion_max,
            implicated,
            localized_liar,
            quarantined_switches: self.quarantined.iter().copied().collect(),
            quarantine_released,
            resilience,
            byz_unresolved,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::FaultProfile;
    use foces_controlplane::{provision, uniform_flows, RuleGranularity};
    use foces_dataplane::LossModel;
    use foces_net::generators::ring;

    fn deployment() -> foces_controlplane::Deployment {
        let topo = ring(4);
        let flows = uniform_flows(&topo, 12_000.0);
        let mut dep = provision(topo, &flows, RuleGranularity::PerFlowPair).unwrap();
        dep.replay_traffic(&mut LossModel::none());
        dep
    }

    #[test]
    fn healthy_epochs_stay_normal_and_full() {
        let dep = deployment();
        let transport = SimTransport::new(1, FaultProfile::default());
        let mut svc =
            RuntimeService::with_sim_transport(&dep.view, transport, RuntimeConfig::default());
        for _ in 0..3 {
            let r = svc.run_epoch(&dep.dataplane, &dep.view).unwrap();
            assert_eq!(r.mode, DetectionMode::Full);
            assert!(!r.anomalous());
            assert_eq!(r.state, AlarmState::Normal);
            assert!(r.sliced.is_some(), "full rounds run the parallel slices");
        }
        let m = svc.metrics();
        assert_eq!(m.epochs, 3);
        assert_eq!(m.full_rounds, 3);
        assert_eq!(m.degraded_rounds + m.blind_rounds, 0);
        assert_eq!(svc.log().lines().len(), 3);
        assert!(svc.log().lines()[0].contains("\"mode\":\"Full\""));
    }

    #[test]
    fn full_rounds_go_warm_after_the_first_solve() {
        let dep = deployment();
        let transport = SimTransport::new(1, FaultProfile::default());
        let mut svc =
            RuntimeService::with_sim_transport(&dep.view, transport, RuntimeConfig::default());
        let r0 = svc.run_epoch(&dep.dataplane, &dep.view).unwrap();
        assert!(
            matches!(r0.solve_path, Some(SolvePath::Cold { .. })),
            "first solve factors from scratch: {:?}",
            r0.solve_path
        );
        for _ in 0..2 {
            let r = svc.run_epoch(&dep.dataplane, &dep.view).unwrap();
            assert!(
                r.solve_path.is_some_and(|p| p.is_warm()),
                "steady state reuses the factor: {:?}",
                r.solve_path
            );
        }
        let m = svc.metrics();
        assert_eq!(m.cold_solves, 1);
        assert_eq!(m.warm_solves, 2);
        assert_eq!(m.warm_fallbacks, 0);
        assert_eq!(m.factor_rank_applied, 0, "no churn, pure reuse");
        assert!(svc.log().lines()[0].contains("\"solve_path\":\"cold(no-cache)\""));
        assert!(svc.log().lines()[1].contains("\"solve_path\":\"warm(rank=0)\""));
    }

    #[test]
    fn offline_switch_degrades_the_round() {
        let dep = deployment();
        let victim = dep.view.topology().switches().next().unwrap();
        let mut transport = SimTransport::new(2, FaultProfile::default());
        transport.set_profile(
            victim,
            FaultProfile {
                offline: vec![(0, 2)],
                ..FaultProfile::default()
            },
        );
        let mut svc =
            RuntimeService::with_sim_transport(&dep.view, transport, RuntimeConfig::default());
        let r0 = svc.run_epoch(&dep.dataplane, &dep.view).unwrap();
        assert!(r0.mode.is_degraded(), "epoch 0: victim offline");
        assert!(!r0.anomalous());
        let r2_mode = {
            svc.run_epoch(&dep.dataplane, &dep.view).unwrap(); // epoch 1, still offline
            svc.run_epoch(&dep.dataplane, &dep.view).unwrap().mode // epoch 2: back
        };
        assert_eq!(r2_mode, DetectionMode::Full);
        let m = svc.metrics();
        assert_eq!(m.degraded_rounds, 2);
        assert_eq!(m.offline_polls, 2);
        assert_eq!(m.unresponsive, 2);
    }

    #[test]
    fn churn_epoch_is_reconciled_then_the_fcm_is_rebuilt() {
        let topo = ring(4);
        let flows = uniform_flows(&topo, 12_000.0);
        let mut dep = provision(topo, &flows, RuleGranularity::PerFlowPair).unwrap();
        let transport = SimTransport::new(1, FaultProfile::default());
        let mut svc =
            RuntimeService::with_sim_transport(&dep.view, transport, RuntimeConfig::default());
        assert_eq!(svc.fcm_generation(), 0);

        // Epoch 0: quiet, full.
        dep.dataplane.reset_counters();
        dep.replay_traffic(&mut LossModel::none());
        let r0 = svc.run_epoch(&dep.dataplane, &dep.view).unwrap();
        assert_eq!(r0.mode, DetectionMode::Full);
        assert!(!r0.churn);

        // Epoch 1: a reroute lands mid-epoch — half the traffic runs under
        // each generation, so the counters fit neither system alone.
        dep.dataplane.reset_counters();
        dep.replay_traffic_scaled(&mut LossModel::none(), 0.5);
        dep.reroute_flow_via(0, &[]).unwrap();
        dep.replay_traffic_scaled(&mut LossModel::none(), 0.5);
        let r1 = svc.run_epoch(&dep.dataplane, &dep.view).unwrap();
        assert!(r1.churn);
        assert!(r1.mode.is_reconciled(), "got {:?}", r1.mode);
        assert!(!r1.anomalous(), "reconciliation absorbs the churn");
        let m = svc.metrics();
        assert_eq!(m.reconciled_rounds, 1);
        assert!(m.stale_generation_replies > 0);
        assert!(m.quarantined_flows >= 1);
        assert_eq!(m.fcm_rebuilds, 1);
        assert_eq!(svc.fcm_generation(), 1);
        assert!(svc.log().lines()[1].contains("\"mode\":\"Reconciled\""));
        assert!(svc.log().lines()[1].contains("\"churn\":true"));

        // Epoch 2: the rebuilt FCM matches the new paths — full and quiet,
        // and solved warm: the cached factor survived the rebuild and was
        // patched with the reroute's delta instead of refactorized.
        dep.dataplane.reset_counters();
        dep.replay_traffic(&mut LossModel::none());
        let r2 = svc.run_epoch(&dep.dataplane, &dep.view).unwrap();
        assert_eq!(r2.mode, DetectionMode::Full);
        assert!(!r2.churn);
        assert!(!r2.anomalous());
        assert_eq!(r2.state, AlarmState::Normal);
        assert!(
            r2.solve_path.is_some_and(|p| p.is_warm()),
            "factor cache survives the rebuild: {:?}",
            r2.solve_path
        );
        let m = svc.metrics();
        assert!(
            m.delta_rows + m.delta_cols > 0,
            "the rebuild accounted its journal delta"
        );
        assert_eq!(m.warm_fallbacks, 0);
    }

    #[test]
    fn preflight_verification_is_clean_and_counted() {
        let dep = deployment();
        let transport = SimTransport::new(9, FaultProfile::default());
        let mut svc =
            RuntimeService::with_sim_transport(&dep.view, transport, RuntimeConfig::default());
        assert!(
            svc.verification().is_clean(),
            "{}",
            svc.verification().summary()
        );
        assert!(svc.static_touched().is_empty());
        assert_eq!(svc.metrics().verify_passes, 1);
        assert_eq!(svc.metrics().static_violations, 0);
        assert!(svc.metrics().verify_secs > 0.0);
        let r = svc.run_epoch(&dep.dataplane, &dep.view).unwrap();
        assert!(!r.verified, "no rebuild on a quiet epoch");
        assert_eq!(r.static_violations, 0);
        assert!(svc.log().lines()[0].contains("\"verified\":false"));
        assert!(svc.log().lines()[0].contains("\"static_violations\":0"));
    }

    #[test]
    fn preflight_coverage_runs_and_flags_the_ring() {
        // ring(4) is exactly the PR 7 absorption case: the pre-flight
        // analysis must come back with row-share WARNs and certificates.
        let dep = deployment();
        let transport = SimTransport::new(11, FaultProfile::default());
        let svc =
            RuntimeService::with_sim_transport(&dep.view, transport, RuntimeConfig::default());
        let cov = svc.coverage().expect("non-empty FCM analyzes");
        assert!(cov.warn_count() > 0, "ring(4) has absorption blind spots");
        assert!(
            cov.findings.iter().any(|f| f.certificate.is_some()),
            "WARNs carry certificates"
        );
        assert_eq!(svc.metrics().coverage_passes, 1);
        assert_eq!(svc.metrics().coverage_warnings, cov.warn_count() as u64);
    }

    #[test]
    fn rebuild_reanalyzes_coverage_and_logs_warns() {
        let topo = ring(4);
        let flows = uniform_flows(&topo, 12_000.0);
        let mut dep = provision(topo, &flows, RuleGranularity::PerFlowPair).unwrap();
        let transport = SimTransport::new(1, FaultProfile::default());
        let mut svc =
            RuntimeService::with_sim_transport(&dep.view, transport, RuntimeConfig::default());
        assert_eq!(svc.metrics().coverage_passes, 1);
        dep.dataplane.reset_counters();
        dep.reroute_flow_via(0, &[]).unwrap();
        dep.replay_traffic(&mut LossModel::none());
        svc.run_epoch(&dep.dataplane, &dep.view).unwrap();
        assert_eq!(svc.metrics().coverage_passes, 2, "rebuild re-analyzed");
        assert!(
            svc.log()
                .lines()
                .iter()
                .any(|l| l.contains("\"event\":\"coverage-finding\"")),
            "rebuild-time WARNs reach the event log"
        );
    }

    #[test]
    fn blind_rounds_freeze_the_alarm_state() {
        let dep = deployment();
        let transport = SimTransport::new(
            3,
            FaultProfile {
                offline: vec![(0, 1)], // every switch offline in epoch 0
                ..FaultProfile::default()
            },
        );
        let mut svc =
            RuntimeService::with_sim_transport(&dep.view, transport, RuntimeConfig::default());
        let r = svc.run_epoch(&dep.dataplane, &dep.view).unwrap();
        assert!(r.mode.is_blind());
        assert!(r.verdict.is_none());
        assert_eq!(r.state, AlarmState::Normal);
        assert_eq!(svc.metrics().blind_rounds, 1);
        // The next epoch everyone is back.
        let r1 = svc.run_epoch(&dep.dataplane, &dep.view).unwrap();
        assert_eq!(r1.mode, DetectionMode::Full);
    }
}
