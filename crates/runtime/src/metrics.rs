//! Runtime observability: aggregate counters and a JSONL event log.
//!
//! Everything is hand-rolled (no serde in the dependency tree): the JSON
//! emitted here is deliberately flat — numbers, strings, and nothing
//! nested deeper than one object per line — so a shell pipeline
//! (`jq`, `grep`) is enough to consume it.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

/// Aggregate counters over a service's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RuntimeMetrics {
    /// Detection epochs completed.
    pub epochs: u64,
    /// Individual switch polls attempted (one per switch per epoch).
    pub polls: u64,
    /// Exchange retries beyond each poll's first attempt.
    pub retries: u64,
    /// Exchanges lost to message drops.
    pub drops: u64,
    /// Replies discarded for stale transaction ids.
    pub stale_replies: u64,
    /// Polls that found the switch offline.
    pub offline_polls: u64,
    /// Switch-epochs that ended with no counters.
    pub unresponsive: u64,
    /// Rounds detected on the full system.
    pub full_rounds: u64,
    /// Rounds detected on a row-masked system.
    pub degraded_rounds: u64,
    /// Rounds reconciled against the update journal (mid-epoch churn).
    pub reconciled_rounds: u64,
    /// Rounds with no usable data at all.
    pub blind_rounds: u64,
    /// Replies whose generation stamp outran the FCM's build generation.
    pub stale_generation_replies: u64,
    /// Flow-epochs quarantined by reconciliation (sum over rounds).
    pub quarantined_flows: u64,
    /// Rounds where a raise quorum was held back by churn suppression.
    pub suppressed_raises: u64,
    /// FCM (and slice/pipeline) rebuilds after the view moved on.
    pub fcm_rebuilds: u64,
    /// Static verification passes (the pre-flight pass plus one re-check
    /// after every FCM rebuild).
    pub verify_passes: u64,
    /// Static findings across all verification passes (loops, blackholes,
    /// shadowed rules, FCM inconsistencies).
    pub static_violations: u64,
    /// Coverage analysis passes (pre-flight plus one after every rebuild).
    pub coverage_passes: u64,
    /// WARN-severity coverage findings across all passes (absorption-prone
    /// switches, LOO rank loss, rank-deficient shards).
    pub coverage_warnings: u64,
    /// Full rounds solved on the warm path (cached factor patched and
    /// reused).
    pub warm_solves: u64,
    /// Full rounds solved cold (first factorization, or a fallback).
    pub cold_solves: u64,
    /// Cold full rounds that *had* a cached factor but fell back to
    /// refactorization (rank budget, drift cap, singularity, or
    /// conditioning).
    pub warm_fallbacks: u64,
    /// Rank-one factor modifications applied across all warm solves.
    pub factor_rank_applied: u64,
    /// Solve backend the full-round solver runs on, as a stable numeric
    /// code (0 = dense, 1 = sparse, 2 = auto) so the flat JSON stays
    /// numbers-only here; the epoch lines carry the name.
    pub solve_backend: u64,
    /// Conjugate-gradient iterations accumulated across all full-round
    /// solves (0 on dense and direct-sparse paths).
    pub cg_iterations: u64,
    /// Peak resident set size of the process in bytes (`VmHWM` from
    /// procfs), sampled at the end of the most recent epoch; 0 where
    /// procfs is unavailable.
    pub peak_rss_bytes: u64,
    /// Journal-delta row churn (added + removed + retouched) accumulated
    /// across FCM rebuilds.
    pub delta_rows: u64,
    /// Journal-delta column churn accumulated across FCM rebuilds.
    pub delta_cols: u64,
    /// Rounds whose residuals were fed to the suspicion tracker.
    pub suspicion_rounds: u64,
    /// Leave-one-switch-out candidate solves performed.
    pub loo_solves: u64,
    /// Rank-one factor downdates spent across all leave-one-out solves.
    pub loo_downdates: u64,
    /// Liars uniquely localized by leave-one-out cross-validation.
    pub liars_localized: u64,
    /// Switches placed under counter quarantine.
    pub switch_quarantines: u64,
    /// Quarantines lifted after a clean re-probe.
    pub quarantine_releases: u64,
    /// Epochs that entered the unresolved-Byzantine state (alarm up,
    /// no single switch's removal explains it).
    pub unresolved_byzantine: u64,
    /// k-resilience probes run on alarm-raise epochs.
    pub resilience_probes: u64,
    /// Probes whose verdict flipped when suspects were silenced.
    pub resilience_flips: u64,
    /// Rounds whose verdict was anomalous.
    pub anomalous_rounds: u64,
    /// Alarm raise transitions.
    pub alarms_raised: u64,
    /// Alarm clear transitions.
    pub alarms_cleared: u64,
    /// Wall-clock spent collecting counters (scheduler sweeps), seconds.
    pub collect_secs: f64,
    /// Wall-clock spent building masks / assembling vectors, seconds.
    pub build_secs: f64,
    /// Wall-clock spent in solves (detection), seconds.
    pub solve_secs: f64,
    /// Wall-clock spent in static verification passes, seconds.
    pub verify_secs: f64,
    /// *Simulated* channel time accumulated across sweeps, milliseconds.
    pub sim_channel_ms: f64,
}

impl RuntimeMetrics {
    /// One-line JSON rendering of every counter.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        let mut first = true;
        let mut num = |s: &mut String, k: &str, v: f64| {
            if !first {
                s.push(',');
            }
            first = false;
            let _ = write!(s, "\"{k}\":{}", json_f64(v));
        };
        num(&mut s, "epochs", self.epochs as f64);
        num(&mut s, "polls", self.polls as f64);
        num(&mut s, "retries", self.retries as f64);
        num(&mut s, "drops", self.drops as f64);
        num(&mut s, "stale_replies", self.stale_replies as f64);
        num(&mut s, "offline_polls", self.offline_polls as f64);
        num(&mut s, "unresponsive", self.unresponsive as f64);
        num(&mut s, "full_rounds", self.full_rounds as f64);
        num(&mut s, "degraded_rounds", self.degraded_rounds as f64);
        num(&mut s, "reconciled_rounds", self.reconciled_rounds as f64);
        num(&mut s, "blind_rounds", self.blind_rounds as f64);
        num(
            &mut s,
            "stale_generation_replies",
            self.stale_generation_replies as f64,
        );
        num(&mut s, "quarantined_flows", self.quarantined_flows as f64);
        num(&mut s, "suppressed_raises", self.suppressed_raises as f64);
        num(&mut s, "fcm_rebuilds", self.fcm_rebuilds as f64);
        num(&mut s, "verify_passes", self.verify_passes as f64);
        num(&mut s, "static_violations", self.static_violations as f64);
        num(&mut s, "coverage_passes", self.coverage_passes as f64);
        num(&mut s, "coverage_warnings", self.coverage_warnings as f64);
        num(&mut s, "warm_solves", self.warm_solves as f64);
        num(&mut s, "cold_solves", self.cold_solves as f64);
        num(&mut s, "warm_fallbacks", self.warm_fallbacks as f64);
        num(
            &mut s,
            "factor_rank_applied",
            self.factor_rank_applied as f64,
        );
        num(&mut s, "solve_backend", self.solve_backend as f64);
        num(&mut s, "cg_iterations", self.cg_iterations as f64);
        num(&mut s, "peak_rss_bytes", self.peak_rss_bytes as f64);
        num(&mut s, "delta_rows", self.delta_rows as f64);
        num(&mut s, "delta_cols", self.delta_cols as f64);
        num(&mut s, "suspicion_rounds", self.suspicion_rounds as f64);
        num(&mut s, "loo_solves", self.loo_solves as f64);
        num(&mut s, "loo_downdates", self.loo_downdates as f64);
        num(&mut s, "liars_localized", self.liars_localized as f64);
        num(&mut s, "switch_quarantines", self.switch_quarantines as f64);
        num(
            &mut s,
            "quarantine_releases",
            self.quarantine_releases as f64,
        );
        num(
            &mut s,
            "unresolved_byzantine",
            self.unresolved_byzantine as f64,
        );
        num(&mut s, "resilience_probes", self.resilience_probes as f64);
        num(&mut s, "resilience_flips", self.resilience_flips as f64);
        num(&mut s, "anomalous_rounds", self.anomalous_rounds as f64);
        num(&mut s, "alarms_raised", self.alarms_raised as f64);
        num(&mut s, "alarms_cleared", self.alarms_cleared as f64);
        num(&mut s, "collect_secs", self.collect_secs);
        num(&mut s, "build_secs", self.build_secs);
        num(&mut s, "solve_secs", self.solve_secs);
        num(&mut s, "verify_secs", self.verify_secs);
        num(&mut s, "sim_channel_ms", self.sim_channel_ms);
        s.push('}');
        s
    }
}

/// Peak resident set size of this process in bytes, read from the
/// `VmHWM` line of `/proc/self/status`. Returns 0 where that procfs
/// field is unavailable (non-Linux platforms, restricted mounts).
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kib = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse::<u64>()
                .unwrap_or(0);
            return kib * 1024;
        }
    }
    0
}

/// Zeroes the process-level gauge fields in an epoch JSONL line so that
/// seed-determinism checks can compare logs byte for byte.
///
/// Every behavioral field in the epoch log is derived from the run's
/// seeds and must reproduce exactly; `peak_rss_bytes` is the one
/// exception — it reads the live `VmHWM` gauge, which depends on what
/// the process allocated *before* the run. Determinism tests (and the
/// CI epoch-log diff) pass lines through this scrubber before
/// comparing; everything else is still pinned bit for bit.
pub fn scrub_gauges(line: &str) -> String {
    let key = "\"peak_rss_bytes\":";
    let Some(start) = line.find(key) else {
        return line.to_string();
    };
    let digits_at = start + key.len();
    let end = line[digits_at..]
        .find(|c: char| !c.is_ascii_digit())
        .map_or(line.len(), |i| digits_at + i);
    format!("{}{}0{}", &line[..start], key, &line[end..])
}

/// Renders an `f64` as JSON (JSON has no NaN/Infinity; those become
/// strings so a log line never goes unparseable).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // Trim trailing noise: integers render without a fraction.
        if v.fract() == 0.0 && v.abs() < 1e15 {
            format!("{}", v as i64)
        } else {
            format!("{v:.6}")
        }
    } else {
        format!("\"{v}\"")
    }
}

/// Escapes a string for embedding in a JSON value.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

enum Sink {
    Memory,
    File(BufWriter<File>),
}

/// An append-only JSONL event log: one JSON object per line. Events are
/// always retained in memory (bounded by the caller's run length); a file
/// sink additionally streams each line to disk as it is recorded.
pub struct EventLog {
    sink: Sink,
    lines: Vec<String>,
}

impl EventLog {
    /// A log that only accumulates in memory.
    pub fn in_memory() -> Self {
        EventLog {
            sink: Sink::Memory,
            lines: Vec::new(),
        }
    }

    /// A log that also streams every line to `path` (truncating it).
    ///
    /// # Errors
    ///
    /// Any [`std::io::Error`] from creating the file.
    pub fn to_file(path: &Path) -> std::io::Result<Self> {
        Ok(EventLog {
            sink: Sink::File(BufWriter::new(File::create(path)?)),
            lines: Vec::new(),
        })
    }

    /// Appends one pre-rendered JSON object line.
    pub fn record(&mut self, json_line: String) {
        if let Sink::File(w) = &mut self.sink {
            // Log output is best-effort: losing a line must never take the
            // detection loop down with it.
            let _ = writeln!(w, "{json_line}");
            let _ = w.flush();
        }
        self.lines.push(json_line);
    }

    /// All recorded lines, oldest first.
    pub fn lines(&self) -> &[String] {
        &self.lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_render_as_flat_json() {
        let m = RuntimeMetrics {
            epochs: 3,
            retries: 7,
            collect_secs: 0.25,
            ..RuntimeMetrics::default()
        };
        let j = m.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"epochs\":3"));
        assert!(j.contains("\"retries\":7"));
        assert!(j.contains("\"collect_secs\":0.250000"));
        assert!(!j.contains("{{"), "flat object only");
    }

    #[test]
    fn scrub_gauges_zeroes_only_the_rss_field() {
        let line = "{\"epoch\":4,\"peak_rss_bytes\":10825728,\"suspicion_max\":0}";
        assert_eq!(
            scrub_gauges(line),
            "{\"epoch\":4,\"peak_rss_bytes\":0,\"suspicion_max\":0}"
        );
        // Lines without the gauge pass through untouched.
        assert_eq!(scrub_gauges("{\"epoch\":4}"), "{\"epoch\":4}");
    }

    #[test]
    fn json_escaping_and_nonfinite_floats() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_f64(2.0), "2");
        assert_eq!(json_f64(f64::INFINITY), "\"inf\"");
    }

    #[test]
    fn file_sink_streams_lines() {
        let dir = std::env::temp_dir().join("foces-runtime-test-log");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("events-{}.jsonl", std::process::id()));
        let mut log = EventLog::to_file(&path).unwrap();
        log.record("{\"epoch\":0}".to_string());
        log.record("{\"epoch\":1}".to_string());
        assert_eq!(log.lines().len(), 2);
        let on_disk = std::fs::read_to_string(&path).unwrap();
        assert_eq!(on_disk, "{\"epoch\":0}\n{\"epoch\":1}\n");
        let _ = std::fs::remove_file(&path);
    }
}
