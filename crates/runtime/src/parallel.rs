//! Parallel slice solving.
//!
//! The paper's slicing algorithm (§IV-B) exists to make detection scale:
//! every per-switch slice is an *independent* least-squares problem, which
//! makes the solve embarrassingly parallel. [`detect_parallel`] fans the
//! slices of a [`SlicedFcm`] across a scoped worker pool — plain
//! `std::thread::scope`, a shared atomic work index, no extra
//! dependencies — and reassembles the verdicts in slice order, so the
//! result is **identical** (not merely statistically equivalent) to the
//! sequential [`SlicedFcm::detect`]: the same slices run the same solver
//! on the same numbers, only on different threads.

use foces::{Detector, FocesError, SlicedFcm, SlicedVerdict, Verdict};
use foces_net::SwitchId;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Runs sliced detection with up to `workers` threads.
///
/// `workers == 0` or `1` (or a single slice) falls back to the sequential
/// path. Slices are claimed from a shared atomic index, so threads stay
/// busy even when slice sizes are skewed; verdicts are written into
/// per-slice slots and reassembled in slice order, keeping the output
/// deterministic regardless of scheduling.
///
/// # Errors
///
/// Propagates [`FocesError`] exactly as the sequential path would: the
/// counter-length check happens up front, and a failing slice solve
/// surfaces as the error of the first failing slice in slice order.
pub fn detect_parallel(
    sliced: &SlicedFcm,
    detector: &Detector,
    counters: &[f64],
    workers: usize,
) -> Result<SlicedVerdict, FocesError> {
    if counters.len() != sliced.parent_rule_count() {
        // Delegate the error construction to the sequential path so the
        // two paths are indistinguishable to callers.
        return sliced.detect(detector, counters);
    }
    let views = sliced.slice_views();
    if workers <= 1 || views.len() <= 1 {
        return sliced.detect(detector, counters);
    }
    // Clamp the pool to the number of slices: `workers` usually comes
    // straight from `available_parallelism`, which can exceed the slice
    // count on small topologies — spawning the surplus threads would only
    // have them fetch an out-of-range index and exit, so don't.
    let spawn = workers.min(views.len());
    let slots: Vec<OnceLock<Result<Verdict, FocesError>>> =
        (0..views.len()).map(|_| OnceLock::new()).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..spawn {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(view) = views.get(i) else { break };
                let _ = slots[i].set(view.detect(detector, counters));
            });
        }
    });
    let mut per_switch: Vec<(SwitchId, Verdict)> = Vec::with_capacity(views.len());
    for (view, slot) in views.iter().zip(slots) {
        let verdict = slot
            .into_inner()
            .expect("every slice slot is filled before the scope ends")?;
        per_switch.push((view.switch, verdict));
    }
    let anomalous = per_switch.iter().any(|(_, v)| v.anomalous);
    Ok(SlicedVerdict {
        anomalous,
        per_switch,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use foces::Fcm;
    use foces_controlplane::{provision, uniform_flows, RuleGranularity};
    use foces_dataplane::{inject_random_anomaly, AnomalyKind, LossModel};
    use foces_net::generators::bcube;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(loss: f64, seed: u64) -> (SlicedFcm, Vec<f64>) {
        let topo = bcube(1, 4);
        let flows = uniform_flows(&topo, 240_000.0);
        let mut dep = provision(topo, &flows, RuleGranularity::PerFlowPair).unwrap();
        let fcm = Fcm::from_view(&dep.view);
        let sliced = SlicedFcm::from_fcm(&fcm);
        let mut loss = if loss > 0.0 {
            LossModel::sampled(loss, seed)
        } else {
            LossModel::none()
        };
        dep.replay_traffic(&mut loss);
        (sliced, dep.dataplane.collect_counters())
    }

    #[test]
    fn parallel_verdicts_are_identical_to_sequential() {
        let (sliced, counters) = setup(0.03, 17);
        let detector = Detector::default();
        let sequential = sliced.detect(&detector, &counters).unwrap();
        for workers in [2, 4, 8] {
            let parallel = detect_parallel(&sliced, &detector, &counters, workers).unwrap();
            assert_eq!(parallel, sequential, "workers={workers}");
        }
    }

    #[test]
    fn identical_under_anomaly_too() {
        let topo = bcube(1, 4);
        let flows = uniform_flows(&topo, 240_000.0);
        let mut dep = provision(topo, &flows, RuleGranularity::PerFlowPair).unwrap();
        let fcm = Fcm::from_view(&dep.view);
        let sliced = SlicedFcm::from_fcm(&fcm);
        let mut rng = StdRng::seed_from_u64(6);
        inject_random_anomaly(
            &mut dep.dataplane,
            AnomalyKind::PathDeviation,
            &mut rng,
            &[],
        )
        .unwrap();
        dep.replay_traffic(&mut LossModel::none());
        let counters = dep.dataplane.collect_counters();
        let detector = Detector::default();
        let sequential = sliced.detect(&detector, &counters).unwrap();
        let parallel = detect_parallel(&sliced, &detector, &counters, 4).unwrap();
        assert_eq!(parallel, sequential);
        assert!(parallel.anomalous, "the injected anomaly must be visible");
    }

    #[test]
    fn single_worker_falls_back_to_sequential() {
        let (sliced, counters) = setup(0.0, 0);
        let detector = Detector::default();
        let a = detect_parallel(&sliced, &detector, &counters, 1).unwrap();
        let b = sliced.detect(&detector, &counters).unwrap();
        assert_eq!(a, b);
    }

    /// A hand-built FCM whose slicing yields exactly one slice: one
    /// switch, one rule, one flow.
    fn one_slice_fcm() -> SlicedFcm {
        use foces_dataplane::RuleRef;
        use foces_net::{HostId, SwitchId};
        let rule = RuleRef {
            switch: SwitchId(0),
            index: 0,
        };
        let flow = foces_atpg::LogicalFlow {
            ingress: HostId(0),
            egress: HostId(1),
            header: foces_headerspace::Wildcard::any(16),
            rules: vec![rule],
            path: vec![SwitchId(0)],
        };
        SlicedFcm::from_fcm(&Fcm::from_parts(vec![rule], vec![flow]))
    }

    #[test]
    fn single_slice_with_many_workers_matches_sequential() {
        // Regression: the worker count must be clamped to the slice count,
        // not taken from the CPU count — a 1-slice system asked for 32
        // workers must not spawn 32 threads racing one index, and must
        // produce the sequential verdict.
        let sliced = one_slice_fcm();
        assert_eq!(sliced.slice_count(), 1);
        let detector = Detector::default();
        let counters = vec![1000.0];
        let seq = sliced.detect(&detector, &counters).unwrap();
        for workers in [2, 8, 32] {
            let par = detect_parallel(&sliced, &detector, &counters, workers).unwrap();
            assert_eq!(par, seq, "workers={workers}");
        }
        assert!(!seq.anomalous);
    }

    #[test]
    fn zero_slices_with_many_workers_is_an_empty_verdict() {
        // An FCM whose flows match no rules slices to zero sub-FCMs; the
        // parallel path must degrade to the sequential empty verdict
        // instead of sizing a pool for slices that do not exist.
        let sliced = SlicedFcm::from_fcm(&Fcm::from_parts(
            vec![foces_dataplane::RuleRef {
                switch: foces_net::SwitchId(0),
                index: 0,
            }],
            Vec::new(),
        ));
        assert_eq!(sliced.slice_count(), 0);
        let detector = Detector::default();
        let counters = vec![0.0];
        for workers in [0, 1, 4, 64] {
            let par = detect_parallel(&sliced, &detector, &counters, workers).unwrap();
            assert!(!par.anomalous, "workers={workers}");
            assert!(par.per_switch.is_empty());
        }
    }

    #[test]
    fn length_mismatch_errors_match_sequential() {
        let (sliced, _) = setup(0.0, 0);
        let detector = Detector::default();
        let short = vec![1.0; 3];
        let par = detect_parallel(&sliced, &detector, &short, 4);
        let seq = sliced.detect(&detector, &short);
        assert!(par.is_err() && seq.is_err());
    }
}
