//! A work-stealing shard worker pool — std-only, in the style of a
//! crossbeam deque without the dependency.
//!
//! The cluster coordinator hands the pool one task per shard each epoch.
//! Tasks are seeded round-robin into **bounded per-worker deques**
//! (capacity = backpressure: a seeder that outruns the workers stalls and
//! yields instead of queueing unboundedly); each worker drains its own
//! deque LIFO and, when empty, **steals** FIFO from the other workers'
//! deques, so one giant shard cannot idle the rest of the pool.
//!
//! Fault isolation is per task: a task that panics is caught
//! ([`std::panic::catch_unwind`]) and reported as
//! [`TaskOutcome::Panicked`] without poisoning the pool, and every task's
//! wall-clock is measured against an optional deadline so the caller can
//! mark just that shard degraded ([`TaskRun::deadline_missed`]). The pool
//! itself always returns one [`TaskRun`] per submitted task, in submission
//! order.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Pool sizing and fault-detection knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolConfig {
    /// Worker threads. `0` means one per task (capped at 16); any value is
    /// clamped to the task count, so a 1-task epoch never spawns idle
    /// threads.
    pub workers: usize,
    /// Per-worker deque capacity (the backpressure bound). `0` is treated
    /// as 1.
    pub queue_capacity: usize,
    /// Wall-clock budget per task; a task running longer completes but is
    /// flagged [`TaskRun::deadline_missed`].
    pub deadline: Option<Duration>,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            workers: 0,
            queue_capacity: 4,
            deadline: None,
        }
    }
}

/// How one task finished.
#[derive(Debug)]
pub enum TaskOutcome<T> {
    /// The task returned a value.
    Done(T),
    /// The task panicked; the payload's message (when it is a string) is
    /// preserved. Other tasks are unaffected.
    Panicked {
        /// Panic payload rendered to text.
        message: String,
    },
}

impl<T> TaskOutcome<T> {
    /// The value, if the task completed.
    pub fn value(&self) -> Option<&T> {
        match self {
            TaskOutcome::Done(v) => Some(v),
            TaskOutcome::Panicked { .. } => None,
        }
    }
}

/// Execution record of one task.
#[derive(Debug)]
pub struct TaskRun<T> {
    /// The task's result or panic.
    pub outcome: TaskOutcome<T>,
    /// Wall-clock spent inside the task.
    pub elapsed_ms: f64,
    /// Index of the worker that ran it.
    pub worker: usize,
    /// `true` when the running worker stole the task from another worker's
    /// deque.
    pub stolen: bool,
    /// `true` when `elapsed` exceeded [`PoolConfig::deadline`].
    pub deadline_missed: bool,
    /// Depth of the deque this task landed in when it was seeded (1 = it
    /// was alone) — the per-task view of queue pressure.
    pub seed_depth: usize,
}

impl<T> TaskRun<T> {
    /// `true` when the task finished cleanly within its deadline.
    pub fn healthy(&self) -> bool {
        matches!(self.outcome, TaskOutcome::Done(_)) && !self.deadline_missed
    }
}

/// Pool-level execution statistics for one [`run_tasks`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads actually spawned.
    pub workers: usize,
    /// Tasks executed after being stolen from another worker's deque.
    pub steals: usize,
    /// Times the seeder found every deque full and had to yield.
    pub backpressure_stalls: usize,
    /// Largest single-deque depth observed at seed time.
    pub max_queue_depth: usize,
}

struct Queues {
    locals: Vec<Mutex<VecDeque<usize>>>,
    capacity: usize,
}

impl Queues {
    /// Seeds `task` into `preferred`'s deque, or the shallowest other
    /// deque; `None` (backpressure) when every deque is at capacity.
    /// Returns the post-push depth on success.
    fn try_push(&self, preferred: usize, task: usize) -> Option<usize> {
        let order =
            std::iter::once(preferred).chain((0..self.locals.len()).filter(|&w| w != preferred));
        for w in order {
            let mut q = self.locals[w].lock().expect("queue lock");
            if q.len() < self.capacity {
                q.push_back(task);
                return Some(q.len());
            }
        }
        None
    }

    /// Owner pop: LIFO from the worker's own deque.
    fn pop_own(&self, worker: usize) -> Option<usize> {
        self.locals[worker].lock().expect("queue lock").pop_back()
    }

    /// Steal: FIFO from the next non-empty victim after `thief`.
    fn steal(&self, thief: usize) -> Option<usize> {
        let n = self.locals.len();
        for off in 1..n {
            let victim = (thief + off) % n;
            if let Some(task) = self.locals[victim].lock().expect("queue lock").pop_front() {
                return Some(task);
            }
        }
        None
    }
}

/// Runs `tasks` across a scoped work-stealing worker pool and returns one
/// [`TaskRun`] per task, in submission order, plus pool statistics.
///
/// Workers never outnumber tasks; zero tasks return immediately; a single
/// task (or a single worker) still goes through the queue so the
/// fault-isolation path is identical at every size. Panics inside tasks
/// are contained per task.
pub fn run_tasks<T, F>(tasks: Vec<F>, config: PoolConfig) -> (Vec<TaskRun<T>>, PoolStats)
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = tasks.len();
    if n == 0 {
        return (Vec::new(), PoolStats::default());
    }
    // Clamp, mirroring detect_parallel: requested parallelism never
    // exceeds the number of work items.
    let workers = match config.workers {
        0 => n.min(16),
        w => w.min(n),
    };
    let queues = Queues {
        locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
        capacity: config.queue_capacity.max(1),
    };
    let cells: Vec<Mutex<Option<F>>> = tasks.into_iter().map(|f| Mutex::new(Some(f))).collect();
    // Mutex rather than OnceLock: the latter would demand `T: Sync`, and
    // each slot is written exactly once anyway.
    let slots: Vec<Mutex<Option<TaskRun<T>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let seeding_done = AtomicBool::new(false);
    let steals = AtomicUsize::new(0);
    let stalls = AtomicUsize::new(0);
    let max_depth = AtomicUsize::new(0);
    let mut seed_depths = vec![0usize; n];

    std::thread::scope(|scope| {
        for w in 0..workers {
            let queues = &queues;
            let cells = &cells;
            let slots = &slots;
            let seeding_done = &seeding_done;
            let steals = &steals;
            let deadline = config.deadline;
            scope.spawn(move || loop {
                let (task, stolen) = match queues.pop_own(w) {
                    Some(t) => (t, false),
                    None => match queues.steal(w) {
                        Some(t) => {
                            steals.fetch_add(1, Ordering::Relaxed);
                            (t, true)
                        }
                        None => {
                            if seeding_done.load(Ordering::Acquire) {
                                // One last sweep: the seeder may have
                                // pushed between our miss and its flag.
                                match queues.pop_own(w).or_else(|| queues.steal(w)) {
                                    Some(t) => (t, false),
                                    None => break,
                                }
                            } else {
                                std::thread::yield_now();
                                continue;
                            }
                        }
                    },
                };
                let Some(f) = cells[task].lock().expect("task cell").take() else {
                    continue; // already claimed (cannot happen, but harmless)
                };
                let start = Instant::now();
                let outcome = match catch_unwind(AssertUnwindSafe(f)) {
                    Ok(v) => TaskOutcome::Done(v),
                    Err(payload) => TaskOutcome::Panicked {
                        // `&*payload`, not `&payload`: the latter would
                        // coerce the Box itself into `dyn Any` and defeat
                        // the downcasts.
                        message: panic_message(&*payload),
                    },
                };
                let elapsed = start.elapsed();
                *slots[task].lock().expect("result slot") = Some(TaskRun {
                    outcome,
                    elapsed_ms: elapsed.as_secs_f64() * 1e3,
                    worker: w,
                    stolen,
                    deadline_missed: deadline.is_some_and(|d| elapsed > d),
                    seed_depth: 0, // patched in after the scope ends
                });
            });
        }

        // Seed round-robin with backpressure: all deques full ⇒ stall and
        // yield until the workers drain something.
        for (task, depth_slot) in seed_depths.iter_mut().enumerate() {
            let preferred = task % workers;
            loop {
                if let Some(depth) = queues.try_push(preferred, task) {
                    max_depth.fetch_max(depth, Ordering::Relaxed);
                    *depth_slot = depth;
                    break;
                }
                stalls.fetch_add(1, Ordering::Relaxed);
                std::thread::yield_now();
            }
        }
        seeding_done.store(true, Ordering::Release);
    });

    let runs: Vec<TaskRun<T>> = slots
        .into_iter()
        .zip(seed_depths)
        .map(|(s, depth)| {
            let mut run = s
                .into_inner()
                .expect("result slot lock")
                .expect("every task slot is filled before the scope ends");
            run.seed_depth = depth;
            run
        })
        .collect();
    let stats = PoolStats {
        workers,
        steals: steals.load(Ordering::Relaxed),
        backpressure_stalls: stalls.load(Ordering::Relaxed),
        max_queue_depth: max_depth.load(Ordering::Relaxed),
    };
    (runs, stats)
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn cfg(workers: usize) -> PoolConfig {
        PoolConfig {
            workers,
            queue_capacity: 4,
            deadline: None,
        }
    }

    #[test]
    fn results_arrive_in_submission_order() {
        let tasks: Vec<_> = (0..37).map(|i| move || i * 10).collect();
        let (runs, stats) = run_tasks(tasks, cfg(4));
        assert_eq!(runs.len(), 37);
        assert_eq!(stats.workers, 4);
        for (i, run) in runs.iter().enumerate() {
            assert_eq!(run.outcome.value(), Some(&(i * 10)));
            assert!(run.healthy());
        }
    }

    #[test]
    fn zero_tasks_is_a_noop() {
        let tasks: Vec<fn() -> u32> = Vec::new();
        let (runs, stats) = run_tasks(tasks, cfg(8));
        assert!(runs.is_empty());
        assert_eq!(stats, PoolStats::default());
    }

    #[test]
    fn one_task_clamps_the_pool_to_one_worker() {
        let (runs, stats) = run_tasks(vec![|| 7u32], cfg(8));
        assert_eq!(stats.workers, 1, "workers must be clamped to task count");
        assert_eq!(runs[0].outcome.value(), Some(&7));
        assert_eq!(runs[0].worker, 0);
        assert!(!runs[0].stolen, "a single worker has nobody to steal from");
    }

    #[test]
    fn panic_is_isolated_to_its_task() {
        let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("injected worker fault")),
            Box::new(|| 3),
        ];
        let (runs, _) = run_tasks(tasks, cfg(2));
        assert_eq!(runs[0].outcome.value(), Some(&1));
        assert_eq!(runs[2].outcome.value(), Some(&3));
        match &runs[1].outcome {
            TaskOutcome::Panicked { message } => {
                assert!(message.contains("injected worker fault"), "{message}");
            }
            other => panic!("expected a panic outcome, got {other:?}"),
        }
        assert!(!runs[1].healthy());
    }

    #[test]
    fn deadline_miss_is_flagged_not_fatal() {
        let config = PoolConfig {
            workers: 2,
            queue_capacity: 4,
            deadline: Some(Duration::from_millis(5)),
        };
        let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![
            Box::new(|| {
                std::thread::sleep(Duration::from_millis(30));
                1
            }),
            Box::new(|| 2),
        ];
        let (runs, _) = run_tasks(tasks, config);
        assert!(runs[0].deadline_missed, "slow task must be flagged");
        assert_eq!(runs[0].outcome.value(), Some(&1), "but still completes");
        assert!(!runs[0].healthy());
        assert!(runs[1].healthy());
    }

    #[test]
    fn skewed_tasks_get_stolen() {
        // Worker 0's deque is seeded with slow tasks; the other workers
        // finish instantly and must steal to keep the pool busy.
        let slow = AtomicU32::new(0);
        let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> = (0..32)
            .map(|i| {
                let slow = &slow;
                let f: Box<dyn FnOnce() -> u32 + Send> = Box::new(move || {
                    if i % 4 == 0 {
                        std::thread::sleep(Duration::from_millis(10));
                        slow.fetch_add(1, Ordering::Relaxed);
                    }
                    i
                });
                f
            })
            .collect();
        let (runs, stats) = run_tasks(tasks, cfg(4));
        assert_eq!(runs.len(), 32);
        assert!(
            stats.steals > 0,
            "skewed load must trigger stealing: {stats:?}"
        );
        assert!(runs.iter().any(|r| r.stolen));
    }

    #[test]
    fn backpressure_bounds_queue_depth() {
        let config = PoolConfig {
            workers: 2,
            queue_capacity: 1,
            deadline: None,
        };
        let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> = (0..64)
            .map(|i| {
                let f: Box<dyn FnOnce() -> u32 + Send> = Box::new(move || {
                    std::thread::sleep(Duration::from_micros(200));
                    i
                });
                f
            })
            .collect();
        let (runs, stats) = run_tasks(tasks, config);
        assert_eq!(runs.len(), 64);
        assert!(
            stats.max_queue_depth <= 1,
            "capacity 1 must bound every deque: {stats:?}"
        );
        for (i, run) in runs.iter().enumerate() {
            assert_eq!(run.outcome.value(), Some(&(i as u32)));
        }
    }

    #[test]
    fn zero_worker_config_defaults_to_task_count() {
        let tasks: Vec<_> = (0..3).map(|i| move || i).collect();
        let (_, stats) = run_tasks(tasks, cfg(0));
        assert_eq!(stats.workers, 3);
    }
}
