//! Scenario harness: a whole deployment driven epoch by epoch.
//!
//! [`ScenarioDriver`] owns the [`Deployment`] *and* the
//! [`RuntimeService`], reproducing the paper's functional test (§VI,
//! Fig. 7) under channel faults: each epoch it resets counters, replays
//! traffic (with optional packet loss), injects/reverts a forwarding
//! anomaly at the configured epochs, then lets the service poll and
//! detect. The `foces run` CLI subcommand and the cross-crate fault
//! integration test are both thin wrappers around this type.

use crate::service::{EpochReport, RuntimeConfig, RuntimeError, RuntimeService};
use crate::transport::{FaultProfile, SimTransport};
use foces_controlplane::Deployment;
use foces_dataplane::{inject_random_anomaly, AnomalyKind, AppliedAnomaly, LossModel};
use foces_net::SwitchId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A complete fault-injection scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultScenario {
    /// Detection epochs to run.
    pub epochs: u64,
    /// Per-packet traffic loss probability (counter noise, §V).
    pub loss: f64,
    /// Control-channel message drop probability.
    pub drop_prob: f64,
    /// Base control-channel round-trip latency, ms.
    pub latency_ms: f64,
    /// Uniform latency jitter on top of the base, ms.
    pub jitter_ms: f64,
    /// Probability of a stale (reordered) reply.
    pub reorder_prob: f64,
    /// A switch taken offline for part of the run, with its `[start, end)`
    /// epoch window.
    pub offline: Option<(SwitchId, u64, u64)>,
    /// Epoch window `[start, end)` during which a forwarding anomaly is
    /// active: injected entering `start`, repaired entering `end`.
    pub anomaly_window: Option<(u64, u64)>,
    /// The kind of anomaly to inject.
    pub anomaly_kind: AnomalyKind,
    /// Rolling-update churn: every `period` epochs (starting at `period`)
    /// the controller reroutes a random flow **mid-epoch** — half the
    /// traffic is replayed under the old rules, half under the new — so
    /// the collected counters genuinely mix generations.
    pub churn_period: Option<u64>,
    /// Seed for choosing which flow to reroute and through where.
    pub churn_seed: u64,
    /// Seed for the transport faults and per-epoch loss sampling.
    pub seed: u64,
    /// Seed for choosing the compromised rule.
    pub anomaly_seed: u64,
}

impl Default for FaultScenario {
    /// 30 epochs, 3% traffic loss, 10% message drop, 5 ms ± 3 ms latency,
    /// no reordering, nobody offline, no anomaly.
    fn default() -> Self {
        FaultScenario {
            epochs: 30,
            loss: 0.03,
            drop_prob: 0.10,
            latency_ms: 5.0,
            jitter_ms: 3.0,
            reorder_prob: 0.0,
            offline: None,
            anomaly_window: None,
            anomaly_kind: AnomalyKind::PathDeviation,
            churn_period: None,
            churn_seed: 7,
            seed: 0,
            anomaly_seed: 4,
        }
    }
}

impl FaultScenario {
    /// The transport profile every switch gets by default.
    fn base_profile(&self) -> FaultProfile {
        FaultProfile {
            latency_ms: self.latency_ms,
            jitter_ms: self.jitter_ms,
            drop_prob: self.drop_prob,
            reorder_prob: self.reorder_prob,
            offline: Vec::new(),
        }
    }

    /// Builds the seeded transport, including the offline window.
    pub fn transport(&self) -> SimTransport {
        let mut t = SimTransport::new(self.seed, self.base_profile());
        if let Some((victim, start, end)) = self.offline {
            let mut p = self.base_profile();
            p.offline = vec![(start, end)];
            t.set_profile(victim, p);
        }
        t
    }
}

/// Drives one deployment through a [`FaultScenario`].
pub struct ScenarioDriver {
    dep: Deployment,
    service: RuntimeService,
    scenario: FaultScenario,
    inject_rng: StdRng,
    churn_rng: StdRng,
    applied: Option<AppliedAnomaly>,
    /// Reroutes/refinements applied so far (for tests and summaries).
    churn_events: u64,
}

impl ScenarioDriver {
    /// Builds the driver: honest agents over a [`SimTransport`] configured
    /// from `scenario`, service configured from `config`.
    pub fn new(dep: Deployment, scenario: FaultScenario, config: RuntimeConfig) -> Self {
        let service = RuntimeService::with_sim_transport(&dep.view, scenario.transport(), config);
        let inject_rng = StdRng::seed_from_u64(scenario.anomaly_seed);
        let churn_rng = StdRng::seed_from_u64(scenario.churn_seed);
        ScenarioDriver {
            dep,
            service,
            scenario,
            inject_rng,
            churn_rng,
            applied: None,
            churn_events: 0,
        }
    }

    /// The service (metrics, event log, alarm state).
    pub fn service(&self) -> &RuntimeService {
        &self.service
    }

    /// Mutable service access (e.g. to install a file-backed event log
    /// before the first epoch).
    pub fn service_mut(&mut self) -> &mut RuntimeService {
        &mut self.service
    }

    /// The scenario being driven.
    pub fn scenario(&self) -> &FaultScenario {
        &self.scenario
    }

    /// The currently active injected anomaly, if any.
    pub fn active_anomaly(&self) -> Option<&AppliedAnomaly> {
        self.applied.as_ref()
    }

    /// The deployment being driven (view, journal, data plane).
    pub fn deployment(&self) -> &Deployment {
        &self.dep
    }

    /// Controller updates (reroutes/refinements) applied so far.
    pub fn churn_events(&self) -> u64 {
        self.churn_events
    }

    /// Is `epoch` a scheduled churn epoch?
    pub fn churn_due_at(&self, epoch: u64) -> bool {
        self.scenario
            .churn_period
            .is_some_and(|p| p > 0 && epoch > 0 && epoch.is_multiple_of(p))
    }

    /// Is `epoch` inside the anomaly window?
    pub fn anomaly_active_at(&self, epoch: u64) -> bool {
        self.scenario
            .anomaly_window
            .map(|(s, e)| s <= epoch && epoch < e)
            .unwrap_or(false)
    }

    /// Runs one epoch: inject/repair at the window edges, reset counters,
    /// replay traffic with fresh loss sampling, poll and detect.
    ///
    /// # Errors
    ///
    /// Propagates [`RuntimeError`] from the service.
    pub fn step(&mut self) -> Result<EpochReport, RuntimeError> {
        let epoch = self.service.epochs();
        if let Some((start, end)) = self.scenario.anomaly_window {
            if epoch == start && self.applied.is_none() {
                // Never compromise the offline victim: an anomaly on an
                // unobserved switch tests masking, not detection.
                let exclude: Vec<SwitchId> =
                    self.scenario.offline.iter().map(|&(s, _, _)| s).collect();
                self.applied = inject_random_anomaly(
                    &mut self.dep.dataplane,
                    self.scenario.anomaly_kind,
                    &mut self.inject_rng,
                    &exclude,
                );
            }
            if epoch == end {
                if let Some(a) = self.applied.take() {
                    a.revert(&mut self.dep.dataplane)
                        .expect("injected rule cannot vanish");
                }
            }
        }
        self.dep.dataplane.reset_counters();
        let mut loss = if self.scenario.loss > 0.0 {
            LossModel::sampled(
                self.scenario.loss,
                self.scenario
                    .seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(epoch),
            )
        } else {
            LossModel::none()
        };
        if self.churn_due_at(epoch) {
            // Mid-epoch rolling update: half the epoch's traffic runs under
            // the old rules, the reroute lands, the other half runs under
            // the new ones — the counters the service collects genuinely
            // mix generations, which is exactly what reconciliation and
            // the generation stamps exist to absorb.
            self.dep.replay_traffic_scaled(&mut loss, 0.5);
            self.apply_churn();
            self.dep.replay_traffic_scaled(&mut loss, 0.5);
        } else {
            self.dep.replay_traffic(&mut loss);
        }
        self.service.run_epoch(&self.dep.dataplane, &self.dep.view)
    }

    /// One controller update, chosen by the (seeded) churn RNG: reroute a
    /// random flow through a random off-path waypoint, falling back to a
    /// granularity refinement along its current path when no waypoint
    /// admits a simple path.
    fn apply_churn(&mut self) {
        let flow = self.churn_rng.gen_range(0..self.dep.flows.len());
        let path = self.dep.expected_paths[flow].clone();
        let candidates: Vec<SwitchId> = self
            .dep
            .view
            .topology()
            .switches()
            .filter(|s| !path.contains(s))
            .collect();
        let rerouted = candidates
            .choose(&mut self.churn_rng)
            .copied()
            .and_then(|w| self.dep.reroute_flow_via(flow, &[w]).ok());
        if rerouted.is_none() {
            let _ = self.dep.refine_flow(flow);
        }
        self.churn_events += 1;
    }

    /// Runs the whole scenario, returning every epoch's report.
    ///
    /// # Errors
    ///
    /// Stops at (and returns) the first [`RuntimeError`].
    pub fn run(&mut self) -> Result<Vec<EpochReport>, RuntimeError> {
        let mut reports = Vec::with_capacity(self.scenario.epochs as usize);
        for _ in 0..self.scenario.epochs {
            reports.push(self.step()?);
        }
        Ok(reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degraded::DetectionMode;
    use foces_controlplane::{provision, uniform_flows, RuleGranularity};
    use foces_net::generators::ring;

    fn deployment() -> Deployment {
        let topo = ring(4);
        let flows = uniform_flows(&topo, 12_000.0);
        provision(topo, &flows, RuleGranularity::PerFlowPair).unwrap()
    }

    fn quiet() -> FaultScenario {
        FaultScenario {
            epochs: 4,
            loss: 0.0,
            drop_prob: 0.0,
            latency_ms: 1.0,
            jitter_ms: 0.0,
            ..FaultScenario::default()
        }
    }

    #[test]
    fn quiet_scenario_is_all_full_normal_rounds() {
        let mut driver = ScenarioDriver::new(deployment(), quiet(), RuntimeConfig::default());
        let reports = driver.run().unwrap();
        assert_eq!(reports.len(), 4);
        for r in &reports {
            assert_eq!(r.mode, DetectionMode::Full);
            assert!(!r.anomalous());
        }
        assert_eq!(driver.service().metrics().epochs, 4);
    }

    #[test]
    fn offline_window_produces_exactly_its_degraded_rounds() {
        let mut scenario = quiet();
        scenario.epochs = 5;
        scenario.offline = Some((foces_net::SwitchId(1), 1, 3));
        let mut driver = ScenarioDriver::new(deployment(), scenario, RuntimeConfig::default());
        let reports = driver.run().unwrap();
        let degraded: Vec<u64> = reports
            .iter()
            .filter(|r| r.mode.is_degraded())
            .map(|r| r.epoch)
            .collect();
        assert_eq!(degraded, vec![1, 2]);
        assert_eq!(driver.service().metrics().degraded_rounds, 2);
    }

    #[test]
    fn rolling_churn_reconciles_without_raising_alarms() {
        let mut scenario = quiet();
        scenario.epochs = 8;
        scenario.churn_period = Some(2);
        let mut driver = ScenarioDriver::new(deployment(), scenario, RuntimeConfig::default());
        let reports = driver.run().unwrap();
        assert!(driver.churn_events() > 0);
        let m = *driver.service().metrics();
        assert!(m.reconciled_rounds > 0, "churn epochs must reconcile");
        assert!(m.fcm_rebuilds > 0, "the view moved, the FCM must follow");
        assert_eq!(m.alarms_raised, 0, "no anomaly, no alarm");
        for r in &reports {
            assert!(!r.anomalous(), "epoch {}: churn is not an anomaly", r.epoch);
            assert_eq!(r.churn, driver.churn_due_at(r.epoch));
        }
    }

    #[test]
    fn same_seed_same_event_log() {
        let make = || {
            let mut scenario = FaultScenario {
                epochs: 6,
                ..FaultScenario::default()
            };
            scenario.seed = 99;
            let mut d = ScenarioDriver::new(deployment(), scenario, RuntimeConfig::default());
            d.run().unwrap();
            d.service().log().lines().to_vec()
        };
        assert_eq!(make(), make(), "seeded runs must be bit-identical");
    }

    #[test]
    fn anomaly_window_injects_and_repairs() {
        let mut scenario = quiet();
        scenario.epochs = 6;
        scenario.anomaly_window = Some((2, 4));
        let mut driver = ScenarioDriver::new(deployment(), scenario, RuntimeConfig::default());
        for epoch in 0..6u64 {
            driver.step().unwrap();
            let should_be_active = (2..4).contains(&epoch);
            assert_eq!(
                driver.active_anomaly().is_some(),
                should_be_active,
                "epoch {epoch}"
            );
            assert_eq!(driver.anomaly_active_at(epoch), should_be_active);
        }
    }
}
