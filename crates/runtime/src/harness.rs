//! Scenario harness: a whole deployment driven epoch by epoch.
//!
//! [`ScenarioDriver`] owns the [`Deployment`] *and* the
//! [`RuntimeService`], reproducing the paper's functional test (§VI,
//! Fig. 7) under channel faults: each epoch it resets counters, replays
//! traffic (with optional packet loss), injects/reverts a forwarding
//! anomaly at the configured epochs, then lets the service poll and
//! detect. The `foces run` CLI subcommand and the cross-crate fault
//! integration test are both thin wrappers around this type.

use crate::service::{EpochReport, RuntimeConfig, RuntimeError, RuntimeService};
use crate::transport::{FaultProfile, SimTransport};
use foces::Fcm;
use foces_channel::{
    plan_collusion, CollusionInputs, FakeStrategy, ForgingAgent, HonestAgent, RuleFacts,
};
use foces_controlplane::Deployment;
use foces_dataplane::{inject_random_anomaly, AnomalyKind, AppliedAnomaly, LossModel};
use foces_net::SwitchId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// A complete fault-injection scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultScenario {
    /// Detection epochs to run.
    pub epochs: u64,
    /// Per-packet traffic loss probability (counter noise, §V).
    pub loss: f64,
    /// Control-channel message drop probability.
    pub drop_prob: f64,
    /// Base control-channel round-trip latency, ms.
    pub latency_ms: f64,
    /// Uniform latency jitter on top of the base, ms.
    pub jitter_ms: f64,
    /// Probability of a stale (reordered) reply.
    pub reorder_prob: f64,
    /// A switch taken offline for part of the run, with its `[start, end)`
    /// epoch window.
    pub offline: Option<(SwitchId, u64, u64)>,
    /// Epoch window `[start, end)` during which a forwarding anomaly is
    /// active: injected entering `start`, repaired entering `end`.
    pub anomaly_window: Option<(u64, u64)>,
    /// The kind of anomaly to inject.
    pub anomaly_kind: AnomalyKind,
    /// Rolling-update churn: every `period` epochs (starting at `period`)
    /// the controller reroutes a random flow **mid-epoch** — half the
    /// traffic is replayed under the old rules, half under the new — so
    /// the collected counters genuinely mix generations.
    pub churn_period: Option<u64>,
    /// Seed for choosing which flow to reroute and through where.
    pub churn_seed: u64,
    /// Seed for the transport faults and per-epoch loss sampling.
    pub seed: u64,
    /// Seed for choosing the compromised rule.
    pub anomaly_seed: u64,
    /// Number of Byzantine (counter-forging) switches. 0 = everyone honest.
    pub liars: usize,
    /// How the liars coordinate their forged reports.
    pub fake_strategy: FakeStrategy,
    /// Epoch window `[start, end)` during which the liars forge: forging
    /// agents are installed entering `start` and the liars *confess*
    /// (honest agents restored, cover anomalies repaired) entering `end`.
    pub fake_window: Option<(u64, u64)>,
    /// Forgery interpolation λ ∈ [0, 1]: 0 reports the truth, 1 the
    /// strategy's full lie. The redteam sweep varies exactly this knob.
    pub fake_magnitude: f64,
    /// Seed for choosing which switches lie.
    pub liar_seed: u64,
}

impl Default for FaultScenario {
    /// 30 epochs, 3% traffic loss, 10% message drop, 5 ms ± 3 ms latency,
    /// no reordering, nobody offline, no anomaly.
    fn default() -> Self {
        FaultScenario {
            epochs: 30,
            loss: 0.03,
            drop_prob: 0.10,
            latency_ms: 5.0,
            jitter_ms: 3.0,
            reorder_prob: 0.0,
            offline: None,
            anomaly_window: None,
            anomaly_kind: AnomalyKind::PathDeviation,
            churn_period: None,
            churn_seed: 7,
            seed: 0,
            anomaly_seed: 4,
            liars: 0,
            fake_strategy: FakeStrategy::Naive,
            fake_window: None,
            fake_magnitude: 1.0,
            liar_seed: 11,
        }
    }
}

impl FaultScenario {
    /// The transport profile every switch gets by default.
    fn base_profile(&self) -> FaultProfile {
        FaultProfile {
            latency_ms: self.latency_ms,
            jitter_ms: self.jitter_ms,
            drop_prob: self.drop_prob,
            reorder_prob: self.reorder_prob,
            offline: Vec::new(),
        }
    }

    /// Builds the seeded transport, including the offline window.
    pub fn transport(&self) -> SimTransport {
        let mut t = SimTransport::new(self.seed, self.base_profile());
        if let Some((victim, start, end)) = self.offline {
            let mut p = self.base_profile();
            p.offline = vec![(start, end)];
            t.set_profile(victim, p);
        }
        t
    }
}

/// Drives one deployment through a [`FaultScenario`].
pub struct ScenarioDriver {
    dep: Deployment,
    service: RuntimeService,
    scenario: FaultScenario,
    inject_rng: StdRng,
    churn_rng: StdRng,
    liar_rng: StdRng,
    applied: Option<AppliedAnomaly>,
    /// Reroutes/refinements applied so far (for tests and summaries).
    churn_events: u64,
    /// The compromised switches while the fake window is open.
    liars: Vec<SwitchId>,
    /// Every switch currently running a forging agent (the liars, plus
    /// their accomplices under [`FakeStrategy::CoverUp`]).
    forging: Vec<SwitchId>,
    /// Real forwarding anomalies the evasion strategies are covering for
    /// (one early-drop per liar), repaired when the liars confess.
    cover_anomalies: Vec<AppliedAnomaly>,
    /// Honest counter snapshot taken entering the fake window — the
    /// "stale" values a replay-strategy liar keeps reporting.
    stale_snapshot: BTreeMap<(SwitchId, usize), f64>,
    /// Pre-compromise table snapshots (what a stealthy liar reports on
    /// table dumps), keyed by forging switch.
    original_tables: BTreeMap<SwitchId, Vec<foces_dataplane::Rule>>,
}

impl ScenarioDriver {
    /// Builds the driver: honest agents over a [`SimTransport`] configured
    /// from `scenario`, service configured from `config`.
    pub fn new(dep: Deployment, scenario: FaultScenario, config: RuntimeConfig) -> Self {
        let service = RuntimeService::with_sim_transport(&dep.view, scenario.transport(), config);
        let inject_rng = StdRng::seed_from_u64(scenario.anomaly_seed);
        let churn_rng = StdRng::seed_from_u64(scenario.churn_seed);
        let liar_rng = StdRng::seed_from_u64(scenario.liar_seed);
        ScenarioDriver {
            dep,
            service,
            scenario,
            inject_rng,
            churn_rng,
            liar_rng,
            applied: None,
            churn_events: 0,
            liars: Vec::new(),
            forging: Vec::new(),
            cover_anomalies: Vec::new(),
            stale_snapshot: BTreeMap::new(),
            original_tables: BTreeMap::new(),
        }
    }

    /// The service (metrics, event log, alarm state).
    pub fn service(&self) -> &RuntimeService {
        &self.service
    }

    /// Mutable service access (e.g. to install a file-backed event log
    /// before the first epoch).
    pub fn service_mut(&mut self) -> &mut RuntimeService {
        &mut self.service
    }

    /// The scenario being driven.
    pub fn scenario(&self) -> &FaultScenario {
        &self.scenario
    }

    /// The currently active injected anomaly, if any.
    pub fn active_anomaly(&self) -> Option<&AppliedAnomaly> {
        self.applied.as_ref()
    }

    /// The deployment being driven (view, journal, data plane).
    pub fn deployment(&self) -> &Deployment {
        &self.dep
    }

    /// Controller updates (reroutes/refinements) applied so far.
    pub fn churn_events(&self) -> u64 {
        self.churn_events
    }

    /// Is `epoch` a scheduled churn epoch?
    pub fn churn_due_at(&self, epoch: u64) -> bool {
        self.scenario
            .churn_period
            .is_some_and(|p| p > 0 && epoch > 0 && epoch.is_multiple_of(p))
    }

    /// Is `epoch` inside the anomaly window?
    pub fn anomaly_active_at(&self, epoch: u64) -> bool {
        self.scenario
            .anomaly_window
            .map(|(s, e)| s <= epoch && epoch < e)
            .unwrap_or(false)
    }

    /// Is `epoch` inside the fake (counter-forging) window?
    pub fn fake_active_at(&self, epoch: u64) -> bool {
        self.scenario.liars > 0
            && self
                .scenario
                .fake_window
                .map(|(s, e)| s <= epoch && epoch < e)
                .unwrap_or(false)
    }

    /// The compromised switches while the fake window is open.
    pub fn liar_switches(&self) -> &[SwitchId] {
        &self.liars
    }

    /// Every switch currently running a forging agent (liars plus, under
    /// [`FakeStrategy::CoverUp`], their colluding neighbors).
    pub fn forging_switches(&self) -> &[SwitchId] {
        &self.forging
    }

    /// The real forwarding anomalies the liars are covering for (empty for
    /// the fabrication strategy).
    pub fn cover_anomalies(&self) -> &[AppliedAnomaly] {
        &self.cover_anomalies
    }

    /// Runs one epoch: inject/repair at the window edges, reset counters,
    /// replay traffic with fresh loss sampling, poll and detect.
    ///
    /// # Errors
    ///
    /// Propagates [`RuntimeError`] from the service.
    pub fn step(&mut self) -> Result<EpochReport, RuntimeError> {
        let epoch = self.service.epochs();
        if let Some((start, end)) = self.scenario.anomaly_window {
            if epoch == start && self.applied.is_none() {
                // Never compromise the offline victim: an anomaly on an
                // unobserved switch tests masking, not detection.
                let exclude: Vec<SwitchId> =
                    self.scenario.offline.iter().map(|&(s, _, _)| s).collect();
                self.applied = inject_random_anomaly(
                    &mut self.dep.dataplane,
                    self.scenario.anomaly_kind,
                    &mut self.inject_rng,
                    &exclude,
                );
            }
            if epoch == end {
                if let Some(a) = self.applied.take() {
                    a.revert(&mut self.dep.dataplane)
                        .expect("injected rule cannot vanish");
                }
            }
        }
        if let Some((start, end)) = self.scenario.fake_window {
            if epoch == start && self.scenario.liars > 0 && self.liars.is_empty() {
                self.compromise_switches();
            }
            if epoch == end && !self.liars.is_empty() {
                self.confess();
            }
        }
        self.dep.dataplane.reset_counters();
        let mut loss = if self.scenario.loss > 0.0 {
            LossModel::sampled(
                self.scenario.loss,
                self.scenario
                    .seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(epoch),
            )
        } else {
            LossModel::none()
        };
        if self.churn_due_at(epoch) {
            // Mid-epoch rolling update: half the epoch's traffic runs under
            // the old rules, the reroute lands, the other half runs under
            // the new ones — the counters the service collects genuinely
            // mix generations, which is exactly what reconciliation and
            // the generation stamps exist to absorb.
            self.dep.replay_traffic_scaled(&mut loss, 0.5);
            self.apply_churn();
            self.dep.replay_traffic_scaled(&mut loss, 0.5);
        } else {
            self.dep.replay_traffic(&mut loss);
        }
        if self.fake_active_at(epoch) && !self.liars.is_empty() {
            // The registers for this epoch are final: (re)plan the forgery
            // against them and install it before the service polls.
            self.install_forgeries();
        }
        self.service.run_epoch(&self.dep.dataplane, &self.dep.view)
    }

    /// Picks the liars, snapshots their (still-honest) tables, and — for
    /// the evasion strategies — plants the real early-drop anomaly each
    /// liar will lie to conceal. Under [`FakeStrategy::CoverUp`] the
    /// liar's switch neighbors join the collusion.
    fn compromise_switches(&mut self) {
        let exclude: Vec<SwitchId> = self.scenario.offline.iter().map(|&(s, _, _)| s).collect();
        // Only switches that actually own rules can lie about them: on a
        // sampled flow set (e.g. the FatTree(8) redteam bench) some
        // switches carry no provisioned flow at all, and "compromising"
        // one would make the scenario vacuous.
        let mut pool: Vec<SwitchId> = self
            .dep
            .view
            .topology()
            .switches()
            .filter(|s| !exclude.contains(s))
            .filter(|&s| !self.dep.dataplane.table(s).is_empty())
            .collect();
        pool.shuffle(&mut self.liar_rng);
        pool.truncate(self.scenario.liars);
        pool.sort_unstable();
        self.liars = pool;

        let mut forging = self.liars.clone();
        if self.scenario.fake_strategy == FakeStrategy::CoverUp {
            for &liar in &self.liars.clone() {
                for adj in self.dep.view.topology().adj(foces_net::Node::Switch(liar)) {
                    if let foces_net::Node::Switch(n) = adj.neighbor {
                        forging.push(n);
                    }
                }
            }
            forging.sort_unstable();
            forging.dedup();
        }
        // Table snapshots must predate the cover anomalies: a stealthy
        // liar answers dumps with the rules the controller installed.
        for &s in &forging {
            let table: Vec<foces_dataplane::Rule> = self
                .dep
                .dataplane
                .table(s)
                .iter()
                .map(|(_, r)| r.clone())
                .collect();
            self.original_tables.insert(s, table);
        }
        self.forging = forging;

        if !self.scenario.fake_strategy.is_fabrication() {
            // Evasion: each liar really misbehaves (drops a flow early) and
            // the forged counters exist to hide it.
            let all: Vec<SwitchId> = self.dep.view.topology().switches().collect();
            for &liar in &self.liars.clone() {
                let exclude_rest: Vec<SwitchId> =
                    all.iter().copied().filter(|&s| s != liar).collect();
                if let Some(a) = inject_random_anomaly(
                    &mut self.dep.dataplane,
                    AnomalyKind::EarlyDrop,
                    &mut self.liar_rng,
                    &exclude_rest,
                ) {
                    self.cover_anomalies.push(a);
                }
            }
        }
    }

    /// The liars confess: honest agents come back, cover anomalies are
    /// repaired, and all adversarial state is dropped.
    fn confess(&mut self) {
        for &s in &self.forging {
            self.service.replace_agent(Box::new(HonestAgent::new(s)));
        }
        for a in self.cover_anomalies.drain(..) {
            a.revert(&mut self.dep.dataplane)
                .expect("covered rule cannot vanish");
        }
        self.liars.clear();
        self.forging.clear();
        self.stale_snapshot.clear();
        self.original_tables.clear();
    }

    /// Plans this epoch's coordinated forgery from the live registers and
    /// installs it into fresh forging agents.
    fn install_forgeries(&mut self) {
        if self.stale_snapshot.is_empty() {
            // First forging epoch: the honest registers become the stale
            // snapshot a replay liar keeps reporting as traffic drifts.
            for &s in &self.forging {
                for i in 0..self.dep.dataplane.table(s).len() {
                    self.stale_snapshot
                        .insert((s, i), self.dep.dataplane.true_counter(s, i));
                }
            }
        }
        // The adversary's model of the controller's expectation: nominal
        // (loss-free) flow volumes pushed through the intended routing.
        let fcm = Fcm::from_view(&self.dep.view);
        let mut rate_of: BTreeMap<(foces_net::HostId, foces_net::HostId), f64> = BTreeMap::new();
        for f in &self.dep.flows {
            *rate_of.entry((f.src, f.dst)).or_insert(0.0) += f.rate;
        }
        let mut expected: BTreeMap<(SwitchId, usize), f64> = BTreeMap::new();
        let mut affected: BTreeMap<(SwitchId, usize), bool> = BTreeMap::new();
        let cover_rules: Vec<_> = self.cover_anomalies.iter().map(|a| a.rule).collect();
        for flow in fcm.flows() {
            let rate = rate_of
                .get(&(flow.ingress, flow.egress))
                .copied()
                .unwrap_or(0.0);
            let on_covered_path = flow.rules.iter().any(|r| cover_rules.contains(r));
            for r in &flow.rules {
                *expected.entry((r.switch, r.index)).or_insert(0.0) += rate;
                if on_covered_path {
                    affected.insert((r.switch, r.index), true);
                }
            }
        }
        let mut inputs = CollusionInputs::default();
        for &s in &self.forging {
            let facts: Vec<RuleFacts> = (0..self.dep.dataplane.table(s).len())
                .map(|i| {
                    let truth = self.dep.dataplane.true_counter(s, i);
                    RuleFacts {
                        index: i,
                        truth,
                        expected: expected.get(&(s, i)).copied().unwrap_or(0.0),
                        stale: self.stale_snapshot.get(&(s, i)).copied().unwrap_or(truth),
                        // With no cover anomaly (fabrication) every rule is
                        // fair game; with one, only its flows' rows are.
                        affected: if cover_rules.is_empty() {
                            true
                        } else {
                            affected.get(&(s, i)).copied().unwrap_or(false)
                        },
                    }
                })
                .collect();
            inputs.rules_by_switch.insert(s, facts);
        }
        let plan = plan_collusion(
            self.scenario.fake_strategy,
            self.scenario.fake_magnitude,
            &inputs,
        );
        for &s in &self.forging {
            let table = self.original_tables.get(&s).cloned().unwrap_or_default();
            let mut agent = ForgingAgent::new(s, table);
            plan.forge_into(&mut agent);
            self.service.replace_agent(Box::new(agent));
        }
    }

    /// One controller update, chosen by the (seeded) churn RNG: reroute a
    /// random flow through a random off-path waypoint, falling back to a
    /// granularity refinement along its current path when no waypoint
    /// admits a simple path.
    fn apply_churn(&mut self) {
        let flow = self.churn_rng.gen_range(0..self.dep.flows.len());
        let path = self.dep.expected_paths[flow].clone();
        let candidates: Vec<SwitchId> = self
            .dep
            .view
            .topology()
            .switches()
            .filter(|s| !path.contains(s))
            .collect();
        let rerouted = candidates
            .choose(&mut self.churn_rng)
            .copied()
            .and_then(|w| self.dep.reroute_flow_via(flow, &[w]).ok());
        if rerouted.is_none() {
            let _ = self.dep.refine_flow(flow);
        }
        self.churn_events += 1;
    }

    /// Runs the whole scenario, returning every epoch's report.
    ///
    /// # Errors
    ///
    /// Stops at (and returns) the first [`RuntimeError`].
    pub fn run(&mut self) -> Result<Vec<EpochReport>, RuntimeError> {
        let mut reports = Vec::with_capacity(self.scenario.epochs as usize);
        for _ in 0..self.scenario.epochs {
            reports.push(self.step()?);
        }
        Ok(reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degraded::DetectionMode;
    use foces_controlplane::{provision, uniform_flows, RuleGranularity};
    use foces_net::generators::{fattree, ring};

    fn deployment() -> Deployment {
        let topo = ring(4);
        let flows = uniform_flows(&topo, 12_000.0);
        provision(topo, &flows, RuleGranularity::PerFlowPair).unwrap()
    }

    /// Liar localization needs the forgery to be *sparse* relative to the
    /// whole system — on ring(4) one switch owns ~half the FCM rows and
    /// least squares simply absorbs an all-rules fake. FatTree(4) gives
    /// each switch a small row share, which is the regime the paper (and
    /// the LOO localizer) targets.
    fn fattree_deployment() -> Deployment {
        let topo = fattree(4);
        let flows = uniform_flows(&topo, 240_000.0);
        provision(topo, &flows, RuleGranularity::PerFlowPair).unwrap()
    }

    fn quiet() -> FaultScenario {
        FaultScenario {
            epochs: 4,
            loss: 0.0,
            drop_prob: 0.0,
            latency_ms: 1.0,
            jitter_ms: 0.0,
            ..FaultScenario::default()
        }
    }

    #[test]
    fn quiet_scenario_is_all_full_normal_rounds() {
        let mut driver = ScenarioDriver::new(deployment(), quiet(), RuntimeConfig::default());
        let reports = driver.run().unwrap();
        assert_eq!(reports.len(), 4);
        for r in &reports {
            assert_eq!(r.mode, DetectionMode::Full);
            assert!(!r.anomalous());
        }
        assert_eq!(driver.service().metrics().epochs, 4);
    }

    #[test]
    fn offline_window_produces_exactly_its_degraded_rounds() {
        let mut scenario = quiet();
        scenario.epochs = 5;
        scenario.offline = Some((foces_net::SwitchId(1), 1, 3));
        let mut driver = ScenarioDriver::new(deployment(), scenario, RuntimeConfig::default());
        let reports = driver.run().unwrap();
        let degraded: Vec<u64> = reports
            .iter()
            .filter(|r| r.mode.is_degraded())
            .map(|r| r.epoch)
            .collect();
        assert_eq!(degraded, vec![1, 2]);
        assert_eq!(driver.service().metrics().degraded_rounds, 2);
    }

    #[test]
    fn rolling_churn_reconciles_without_raising_alarms() {
        let mut scenario = quiet();
        scenario.epochs = 8;
        scenario.churn_period = Some(2);
        let mut driver = ScenarioDriver::new(deployment(), scenario, RuntimeConfig::default());
        let reports = driver.run().unwrap();
        assert!(driver.churn_events() > 0);
        let m = *driver.service().metrics();
        assert!(m.reconciled_rounds > 0, "churn epochs must reconcile");
        assert!(m.fcm_rebuilds > 0, "the view moved, the FCM must follow");
        assert_eq!(m.alarms_raised, 0, "no anomaly, no alarm");
        for r in &reports {
            assert!(!r.anomalous(), "epoch {}: churn is not an anomaly", r.epoch);
            assert_eq!(r.churn, driver.churn_due_at(r.epoch));
        }
    }

    #[test]
    fn same_seed_same_event_log() {
        let make = || {
            let mut scenario = FaultScenario {
                epochs: 6,
                ..FaultScenario::default()
            };
            scenario.seed = 99;
            let mut d = ScenarioDriver::new(deployment(), scenario, RuntimeConfig::default());
            d.run().unwrap();
            d.service()
                .log()
                .lines()
                .iter()
                .map(|l| crate::metrics::scrub_gauges(l))
                .collect::<Vec<_>>()
        };
        assert_eq!(make(), make(), "seeded runs must be bit-identical");
    }

    #[test]
    fn naive_liar_is_localized_quarantined_then_released() {
        let mut scenario = quiet();
        scenario.epochs = 14;
        scenario.liars = 1;
        scenario.fake_window = Some((2, 9));
        let mut config = RuntimeConfig::default();
        config.byzantine.enabled = true;
        let epochs = scenario.epochs;
        let mut driver = ScenarioDriver::new(fattree_deployment(), scenario, config);
        let mut liar = None;
        let mut localized_at = None;
        for epoch in 0..epochs {
            let r = driver.step().unwrap();
            if driver.fake_active_at(epoch) {
                liar = driver.liar_switches().first().copied();
            }
            if let Some(s) = r.localized_liar {
                localized_at.get_or_insert((epoch, s));
            }
        }
        let (at, s) = localized_at.expect("the liar must be localized");
        assert_eq!(Some(s), liar, "localization names the actual liar");
        assert!(
            at <= 2 + 4,
            "localized within the hysteresis bound, got epoch {at}"
        );
        let m = *driver.service().metrics();
        assert_eq!(m.liars_localized, 1);
        assert_eq!(m.switch_quarantines, 1, "no honest switch quarantined");
        assert!(m.loo_solves > 0);
        assert!(m.loo_downdates > 0, "leave-one-out went through downdates");
        assert_eq!(
            m.quarantine_releases, 1,
            "the confessed switch is re-admitted after a quiet streak"
        );
        assert!(driver.service().quarantined_switches().is_empty());
        assert!(!driver.service().byzantine_unresolved());
        assert_eq!(m.alarms_raised, m.alarms_cleared, "run ends clean");
    }

    #[test]
    fn honest_churn_accumulates_no_suspicion_with_byzantine_enabled() {
        let mut scenario = quiet();
        scenario.epochs = 8;
        scenario.churn_period = Some(2);
        let mut config = RuntimeConfig::default();
        config.byzantine.enabled = true;
        let mut driver = ScenarioDriver::new(deployment(), scenario, config);
        let reports = driver.run().unwrap();
        for r in &reports {
            assert!(!r.anomalous(), "epoch {}: honest churn is quiet", r.epoch);
            assert!(r.quarantined_switches.is_empty());
            assert!(r.localized_liar.is_none());
            assert!(!r.byz_unresolved);
        }
        let m = *driver.service().metrics();
        assert_eq!(m.switch_quarantines, 0);
        assert_eq!(m.liars_localized, 0);
        assert_eq!(m.unresolved_byzantine, 0);
        assert_eq!(
            driver.service().suspicion().max_score(),
            0.0,
            "honest rounds never add suspicion"
        );
    }

    #[test]
    fn anomaly_window_injects_and_repairs() {
        let mut scenario = quiet();
        scenario.epochs = 6;
        scenario.anomaly_window = Some((2, 4));
        let mut driver = ScenarioDriver::new(deployment(), scenario, RuntimeConfig::default());
        for epoch in 0..6u64 {
            driver.step().unwrap();
            let should_be_active = (2..4).contains(&epoch);
            assert_eq!(
                driver.active_anomaly().is_some(),
                should_be_active,
                "epoch {epoch}"
            );
            assert_eq!(driver.anomaly_active_at(epoch), should_be_active);
        }
    }
}
