//! Degraded detection: keep detecting with whatever counters arrived.
//!
//! When switches miss an epoch (offline, drowned in drops), the naive
//! options are both wrong: abort the round (an attacker who can silence
//! one switch silences FOCES) or fabricate zeros (guaranteed false
//! alarm). The sound option follows from the algebra: deleting the
//! missing rows of `H·X ≈ Y'` leaves a *projection* of the same linear
//! system, so a consistent full system stays consistent and the masked
//! detector keeps its no-false-positive structure — it just sees fewer
//! equations ([`foces::Fcm::mask_rows`]).
//!
//! Fewer equations means weaker detection, and the Theorem 1 oracle
//! quantifies exactly how much weaker: a deviation is detectable under the
//! mask iff its *projected* deviated column leaves the span of the
//! *projected* FCM columns. [`DegradedPipeline`] re-runs the span oracle
//! on the masked system (cached per missing-switch set) and stamps every
//! verdict with a [`DetectionMode`] so operators know which rounds ran
//! with reduced — or zero ([`DetectionMode::Blind`]) — coverage.

use foces::{
    audit_deviations, BackendKind, Detector, DeviationCandidate, Fcm, FocesError,
    IncrementalSolver, MaskedFcm, RankBudget, SolvePath, Verdict,
};
use foces_controlplane::ControllerView;
use foces_dataplane::RuleRef;
use foces_linalg::{SpanTester, DEFAULT_TOL};
use foces_net::SwitchId;
use std::collections::HashMap;

/// How much of the detector's evidence a round actually had.
#[derive(Debug, Clone, PartialEq)]
pub enum DetectionMode {
    /// Every switch reported: the full FCM was used.
    Full,
    /// Some switches were missing; detection ran on the row-masked system.
    Degraded {
        /// The switches whose rows were masked, ascending.
        missing: Vec<SwitchId>,
        /// Number of FCM rows removed by the mask.
        masked_rows: usize,
        /// Flows that lost *all* their rows and dropped out of the system.
        dropped_flows: usize,
        /// Theorem 1 coverage of the masked system over the audited
        /// deviation candidates (≤ the full system's coverage).
        coverage: f64,
    },
    /// A mid-epoch rule update was detected (journal advanced or a reply
    /// stamp outran the FCM's build generation): detection ran on the
    /// row-masked **and** column-quarantined system, with the updated
    /// rules' rows, the flows through them, and the closure rows those
    /// flows still traverse all excluded.
    Reconciled {
        /// Responsive switches whose reply stamp was newer than the FCM.
        stale: Vec<SwitchId>,
        /// Switches that never answered (missing rows, as in `Degraded`).
        missing: Vec<SwitchId>,
        /// FCM rows removed (unobserved + journaled + closure).
        masked_rows: usize,
        /// Flows evicted because a journaled rule sits on their path.
        quarantined_flows: usize,
        /// Flows that lost all remaining rows and dropped out.
        dropped_flows: usize,
        /// Theorem 1 coverage of the reconciled system (quarantined flows
        /// count as undetectable).
        coverage: f64,
    },
    /// Nothing usable arrived (or masking emptied the system): no verdict
    /// this round.
    Blind {
        /// The switches whose rows were masked, ascending.
        missing: Vec<SwitchId>,
    },
}

impl DetectionMode {
    /// Short label for logs: `"Full"`, `"Degraded"`, `"Reconciled"` or
    /// `"Blind"`.
    pub fn label(&self) -> &'static str {
        match self {
            DetectionMode::Full => "Full",
            DetectionMode::Degraded { .. } => "Degraded",
            DetectionMode::Reconciled { .. } => "Reconciled",
            DetectionMode::Blind { .. } => "Blind",
        }
    }

    /// Is this a degraded (but not blind) round?
    pub fn is_degraded(&self) -> bool {
        matches!(self, DetectionMode::Degraded { .. })
    }

    /// Is this a churn-reconciled round?
    pub fn is_reconciled(&self) -> bool {
        matches!(self, DetectionMode::Reconciled { .. })
    }

    /// Is this a blind round?
    pub fn is_blind(&self) -> bool {
        matches!(self, DetectionMode::Blind { .. })
    }
}

/// Cached artifacts for one missing-switch set.
struct CachedMask {
    masked: MaskedFcm,
    coverage: f64,
}

/// The degraded-detection layer: owns the full FCM, a fixed sample of
/// audited deviation candidates, and a cache of masked systems keyed by
/// the (sorted) missing-switch set.
pub struct DegradedPipeline {
    fcm: Fcm,
    detector: Detector,
    /// Audited candidates (detectable and undetectable alike), sampled
    /// once at construction; the same set is re-classified under every
    /// mask so coverages are comparable.
    candidates: Vec<DeviationCandidate>,
    full_coverage: f64,
    cache: HashMap<Vec<SwitchId>, CachedMask>,
    /// Reconciled systems, keyed by (missing switches, journaled rules) —
    /// a rolling-update schedule revisits the same touched set many times.
    reconcile_cache: HashMap<(Vec<SwitchId>, Vec<RuleRef>), CachedMask>,
    /// The incremental solver backing full rounds: its cached `HᵀH = LLᵀ`
    /// factorization is patched epoch to epoch (and across FCM rebuilds,
    /// see [`DegradedPipeline::retarget`]) instead of refactorized.
    warm: IncrementalSolver,
    /// Which solve path the most recent round took (`None` on masked,
    /// reconciled, and blind rounds — those solve projected systems and
    /// never touch the cached factor).
    last_path: Option<SolvePath>,
}

impl DegradedPipeline {
    /// Builds the pipeline, running the full-system audit once.
    /// `oracle_cap` bounds the candidate enumeration (the same sample is
    /// reused for every masked re-audit; a few hundred is plenty for a
    /// coverage estimate).
    pub fn new(view: &ControllerView, fcm: Fcm, detector: Detector, oracle_cap: usize) -> Self {
        DegradedPipeline::with_backend(view, fcm, detector, oracle_cap, BackendKind::default())
    }

    /// Like [`DegradedPipeline::new`], but the full-round incremental
    /// solver runs on the given solve backend (dense factor cache, sparse
    /// Cholesky/PCGLS engine, or size-based auto selection).
    pub fn with_backend(
        view: &ControllerView,
        fcm: Fcm,
        detector: Detector,
        oracle_cap: usize,
        backend: BackendKind,
    ) -> Self {
        let mut pipeline = DegradedPipeline {
            fcm,
            detector,
            candidates: Vec::new(),
            full_coverage: 0.0,
            cache: HashMap::new(),
            reconcile_cache: HashMap::new(),
            warm: IncrementalSolver::with_backend(RankBudget::default(), backend),
            last_path: None,
        };
        pipeline.reaudit(view, oracle_cap);
        pipeline
    }

    /// Re-points the pipeline at a rebuilt FCM (after the controller view
    /// moved past the old one): re-runs the full-system audit and drops
    /// the mask caches, but **keeps** the incremental solver's cached
    /// factorization. The factor is keyed by the basis columns' rule
    /// sets, which survive a rebuild, so the next full round patches it
    /// with the journal's delta instead of refactorizing from scratch.
    pub fn retarget(&mut self, view: &ControllerView, fcm: Fcm, oracle_cap: usize) {
        self.fcm = fcm;
        self.cache.clear();
        self.reconcile_cache.clear();
        self.last_path = None;
        self.reaudit(view, oracle_cap);
    }

    /// Runs the full-system Theorem 1 audit for the current FCM.
    fn reaudit(&mut self, view: &ControllerView, oracle_cap: usize) {
        let audit = audit_deviations(view, &self.fcm, oracle_cap);
        self.full_coverage = audit.coverage();
        self.candidates = audit.detectable;
        self.candidates.extend(audit.undetectable);
    }

    /// The full (unmasked) FCM.
    pub fn fcm(&self) -> &Fcm {
        &self.fcm
    }

    /// The detector in use.
    pub fn detector(&self) -> &Detector {
        &self.detector
    }

    /// Theorem 1 coverage of the *full* system over the audited sample.
    pub fn full_coverage(&self) -> f64 {
        self.full_coverage
    }

    /// Number of audited deviation candidates.
    pub fn candidate_count(&self) -> usize {
        self.candidates.len()
    }

    /// Number of distinct missing-switch sets masked so far.
    pub fn cached_masks(&self) -> usize {
        self.cache.len()
    }

    /// Switches (ascending) that have at least one unobserved FCM row.
    pub fn missing_from(&self, observed: &[bool]) -> Vec<SwitchId> {
        let mut missing: Vec<SwitchId> = self
            .fcm
            .rules()
            .iter()
            .zip(observed)
            .filter(|(_, &seen)| !seen)
            .map(|(r, _)| r.switch)
            .collect();
        missing.sort_unstable();
        missing.dedup();
        missing
    }

    /// Runs one detection round over whatever was observed.
    ///
    /// `counters` is the full-length counter vector (entries at unobserved
    /// rows are ignored); `observed[i]` says whether row `i`'s counter
    /// actually arrived this epoch. Returns the verdict (absent on blind
    /// rounds) and the round's [`DetectionMode`].
    ///
    /// # Errors
    ///
    /// Propagates [`FocesError`] from the underlying solves.
    pub fn detect(
        &mut self,
        counters: &[f64],
        observed: &[bool],
    ) -> Result<(Option<Verdict>, DetectionMode), FocesError> {
        let missing = self.missing_from(observed);
        if missing.is_empty() {
            let (verdict, path) = self
                .detector
                .detect_warm(&self.fcm, counters, &mut self.warm)?;
            self.last_path = Some(path);
            return Ok((Some(verdict), DetectionMode::Full));
        }
        self.last_path = None;
        if !self.cache.contains_key(&missing) {
            let entry = self.build_mask(observed);
            self.cache.insert(missing.clone(), entry);
        }
        let entry = &self.cache[&missing];
        if entry.masked.fcm().rule_count() == 0 || entry.masked.fcm().flow_count() == 0 {
            return Ok((None, DetectionMode::Blind { missing }));
        }
        let verdict = self.detector.detect_masked(&entry.masked, counters)?;
        let mode = DetectionMode::Degraded {
            missing,
            masked_rows: entry.masked.masked_row_count(),
            dropped_flows: entry.masked.dropped_flows(),
            coverage: entry.coverage,
        };
        Ok((Some(verdict), mode))
    }

    /// Runs one churn-reconciled detection round.
    ///
    /// Called instead of [`DegradedPipeline::detect`] when the epoch
    /// witnessed a rule update: `touched_rules` is the journal's touched
    /// set since the FCM's build generation, and `stale` the switches
    /// whose reply stamps outran it. The reconciled system removes, on
    /// top of the unobserved rows:
    ///
    /// 1. the journaled rules' rows (their counters mix generations),
    /// 2. every flow through a journaled rule (its equations changed), and
    /// 3. the closure rows those quarantined flows still traverse (their
    ///    counters mix explained and quarantined volume).
    ///
    /// What remains is a sub-system consistent for benign traffic (see
    /// the churn-closure property test in `foces`'s `mask_props`), so a
    /// verdict on it is sound — merely weaker, which the quarantine-aware
    /// coverage quantifies: a deviation candidate on a quarantined flow
    /// counts as undetectable outright.
    ///
    /// # Errors
    ///
    /// Propagates [`FocesError`] from the underlying solves.
    ///
    /// # Panics
    ///
    /// Panics if `counters` / `observed` are not parent-FCM length.
    pub fn detect_reconciled(
        &mut self,
        counters: &[f64],
        observed: &[bool],
        touched_rules: &[RuleRef],
        stale: Vec<SwitchId>,
    ) -> Result<(Option<Verdict>, DetectionMode), FocesError> {
        self.last_path = None;
        let missing = self.missing_from(observed);
        let mut touched_key: Vec<RuleRef> = touched_rules.to_vec();
        touched_key.sort_unstable();
        touched_key.dedup();
        let key = (missing.clone(), touched_key);
        if !self.reconcile_cache.contains_key(&key) {
            let entry = self.build_reconciled(observed, &key.1);
            self.reconcile_cache.insert(key.clone(), entry);
        }
        let entry = &self.reconcile_cache[&key];
        if entry.masked.fcm().rule_count() == 0 || entry.masked.fcm().flow_count() == 0 {
            return Ok((None, DetectionMode::Blind { missing }));
        }
        let verdict = self.detector.detect_masked(&entry.masked, counters)?;
        let mode = DetectionMode::Reconciled {
            stale,
            missing,
            masked_rows: entry.masked.masked_row_count(),
            quarantined_flows: entry.masked.quarantined_flows(),
            dropped_flows: entry.masked.dropped_flows(),
            coverage: entry.coverage,
        };
        Ok((Some(verdict), mode))
    }

    /// Number of distinct (missing, touched) reconciliations built so far.
    pub fn cached_reconciliations(&self) -> usize {
        self.reconcile_cache.len()
    }

    /// Which solve path the most recent round took: `Some(Warm {..})` or
    /// `Some(Cold {..})` after a full round, `None` after a masked,
    /// reconciled, or blind one.
    pub fn last_solve_path(&self) -> Option<SolvePath> {
        self.last_path
    }

    /// Conjugate-gradient iterations spent by the most recent full-round
    /// solve (0 on dense or direct-sparse paths).
    pub fn last_cg_iterations(&self) -> u64 {
        self.warm.last_iterations()
    }

    /// The solve backend the full-round incremental solver runs on.
    pub fn backend(&self) -> BackendKind {
        self.warm.backend()
    }

    /// Whether the incremental solver currently holds a cached
    /// factorization a future full round could patch.
    pub fn solver_is_warm(&self) -> bool {
        self.warm.is_warm()
    }

    /// Builds the row-masked + column-quarantined system for a journaled
    /// touched set, and audits its quarantine-aware coverage.
    fn build_reconciled(&self, observed: &[bool], touched_rules: &[RuleRef]) -> CachedMask {
        let quarantined = self.fcm.columns_touching(touched_rules);
        let closure = self.fcm.rows_touching(&quarantined);
        let mut keep: Vec<bool> = observed
            .iter()
            .zip(&closure)
            .map(|(&o, &c)| o && !c)
            .collect();
        // Journaled rules may have no traced flow (and rules installed
        // after the FCM was built are not in the universe at all) — mask
        // the ones we know about explicitly rather than rely on closure.
        for r in touched_rules {
            if let Some(row) = self.fcm.rule_row(*r) {
                keep[row] = false;
            }
        }
        let masked = self.fcm.quarantine(&keep, &quarantined);
        let coverage = self.masked_coverage_with_quarantine(&masked, &quarantined);
        CachedMask { masked, coverage }
    }

    /// Builds the masked system and re-consults the Theorem 1 oracle on it.
    fn build_mask(&self, observed: &[bool]) -> CachedMask {
        let masked = self.fcm.mask_rows(observed);
        let coverage = self.masked_coverage(&masked);
        CachedMask { masked, coverage }
    }

    /// Re-classifies the audited candidates against the masked system: a
    /// deviation stays detectable iff its projected deviated column leaves
    /// the span of the projected FCM columns. Projection can only *shrink*
    /// the set of vectors outside the span, so this is ≤ the full coverage
    /// on the same sample.
    fn masked_coverage(&self, masked: &MaskedFcm) -> f64 {
        self.masked_coverage_with_quarantine(masked, &vec![false; self.fcm.flow_count()])
    }

    /// Coverage over the audited sample with a quarantine in effect: a
    /// candidate deviating a quarantined flow is undetectable by fiat —
    /// its column is not part of the reconciled system, so nothing
    /// constrains it this round.
    fn masked_coverage_with_quarantine(&self, masked: &MaskedFcm, quarantined: &[bool]) -> f64 {
        if self.candidates.is_empty() {
            return 1.0;
        }
        let sub = masked.fcm();
        if sub.rule_count() == 0 {
            return 0.0; // no equations left: every deviation is invisible
        }
        let mut tester = SpanTester::empty(sub.rule_count(), DEFAULT_TOL);
        for j in 0..sub.flow_count() {
            tester.absorb(&sub.column(j));
        }
        let mut detectable = 0usize;
        for c in &self.candidates {
            if quarantined.get(c.flow).copied().unwrap_or(false) {
                continue;
            }
            // Parent-space 0/1 column of the deviated history, then the
            // mask's projection onto the observed rows.
            let mut col = vec![0.0; self.fcm.rule_count()];
            for r in &c.deviated_history {
                if let Some(row) = self.fcm.rule_row(*r) {
                    col[row] = 1.0;
                }
            }
            if !tester.contains(&masked.project(&col)) {
                detectable += 1;
            }
        }
        detectable as f64 / self.candidates.len() as f64
    }

    /// Coverage of the masked system for an explicit observation mask —
    /// exposed for audits and tests; `detect` computes and caches the same
    /// number per missing-switch set.
    pub fn coverage_under_mask(&self, observed: &[bool]) -> f64 {
        self.masked_coverage(&self.fcm.mask_rows(observed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foces_controlplane::{provision, uniform_flows, RuleGranularity};
    use foces_dataplane::LossModel;
    use foces_net::generators::bcube;

    fn setup() -> (foces_controlplane::Deployment, DegradedPipeline) {
        let topo = bcube(1, 4);
        let flows = uniform_flows(&topo, 240_000.0);
        let mut dep = provision(topo, &flows, RuleGranularity::PerFlowPair).unwrap();
        dep.replay_traffic(&mut LossModel::none());
        let fcm = Fcm::from_view(&dep.view);
        let pipeline = DegradedPipeline::new(&dep.view, fcm, Detector::default(), 300);
        (dep, pipeline)
    }

    fn mask_without(pipeline: &DegradedPipeline, victims: &[SwitchId]) -> Vec<bool> {
        pipeline
            .fcm()
            .rules()
            .iter()
            .map(|r| !victims.contains(&r.switch))
            .collect()
    }

    #[test]
    fn all_observed_is_a_full_round() {
        let (dep, mut pipeline) = setup();
        let counters = pipeline.fcm().counters_from(&dep.dataplane);
        let observed = vec![true; counters.len()];
        let (verdict, mode) = pipeline.detect(&counters, &observed).unwrap();
        assert_eq!(mode, DetectionMode::Full);
        assert!(!verdict.unwrap().anomalous);
        assert_eq!(pipeline.cached_masks(), 0, "full rounds never mask");
    }

    #[test]
    fn missing_switch_degrades_with_reduced_oracle_coverage() {
        let (dep, mut pipeline) = setup();
        let counters = pipeline.fcm().counters_from(&dep.dataplane);
        let victim = pipeline.fcm().rules()[0].switch;
        let observed = mask_without(&pipeline, &[victim]);
        let (verdict, mode) = pipeline.detect(&counters, &observed).unwrap();
        assert!(
            !verdict.unwrap().anomalous,
            "healthy masked round is normal"
        );
        let DetectionMode::Degraded {
            missing,
            masked_rows,
            coverage,
            ..
        } = mode
        else {
            panic!("expected a degraded round, got {mode:?}");
        };
        assert_eq!(missing, vec![victim]);
        assert!(masked_rows > 0);
        assert!(
            coverage <= pipeline.full_coverage() + 1e-12,
            "projection cannot increase coverage: {} vs {}",
            coverage,
            pipeline.full_coverage()
        );
        assert!(pipeline.candidate_count() > 0);
    }

    #[test]
    fn masked_systems_are_cached_per_missing_set() {
        let (dep, mut pipeline) = setup();
        let counters = pipeline.fcm().counters_from(&dep.dataplane);
        let victim = pipeline.fcm().rules()[0].switch;
        let observed = mask_without(&pipeline, &[victim]);
        pipeline.detect(&counters, &observed).unwrap();
        pipeline.detect(&counters, &observed).unwrap();
        assert_eq!(pipeline.cached_masks(), 1);
        let other = pipeline
            .fcm()
            .rules()
            .iter()
            .map(|r| r.switch)
            .find(|&s| s != victim)
            .unwrap();
        let observed2 = mask_without(&pipeline, &[other]);
        pipeline.detect(&counters, &observed2).unwrap();
        assert_eq!(pipeline.cached_masks(), 2);
    }

    #[test]
    fn reconciliation_quarantines_churned_rules_and_stays_normal() {
        let (dep, mut pipeline) = setup();
        let mut counters = pipeline.fcm().counters_from(&dep.dataplane);
        let observed = vec![true; counters.len()];
        // Simulate a mid-epoch reroute of flow 0: the counters of its
        // rules are mixed-generation readings that fit no single volume.
        let touched = pipeline.fcm().flows()[0].rules.clone();
        assert!(touched.len() >= 2);
        for (k, r) in touched.iter().enumerate() {
            let row = pipeline.fcm().rule_row(*r).unwrap();
            counters[row] *= 0.2 + 0.6 * (k as f64 / (touched.len() - 1) as f64);
        }
        // The naive full-system detector false-alarms on the mix...
        let (v, _) = pipeline.detect(&counters, &observed).unwrap();
        assert!(
            v.unwrap().anomalous,
            "mixed-generation counters look like an attack"
        );
        // ...the reconciled system quarantines it away and stays normal.
        let (v, mode) = pipeline
            .detect_reconciled(&counters, &observed, &touched, vec![])
            .unwrap();
        assert!(!v.unwrap().anomalous);
        let DetectionMode::Reconciled {
            quarantined_flows,
            masked_rows,
            coverage,
            stale,
            ..
        } = mode
        else {
            panic!("expected a reconciled round");
        };
        assert!(stale.is_empty());
        assert!(quarantined_flows >= 1);
        assert!(masked_rows >= touched.len());
        assert!(coverage <= pipeline.full_coverage() + 1e-12);
        assert_eq!(pipeline.cached_reconciliations(), 1);
        // The same (missing, touched) key hits the cache.
        pipeline
            .detect_reconciled(&counters, &observed, &touched, vec![])
            .unwrap();
        assert_eq!(pipeline.cached_reconciliations(), 1);
    }

    #[test]
    fn reconciled_coverage_counts_quarantined_candidates_as_misses() {
        let (_, mut pipeline) = setup();
        let counters = vec![0.0; pipeline.fcm().rule_count()];
        let observed = vec![true; counters.len()];
        // Quarantine everything: every candidate's flow is evicted, so
        // coverage collapses to zero (or the round goes blind).
        let touched: Vec<_> = pipeline.fcm().rules().to_vec();
        let (_, mode) = pipeline
            .detect_reconciled(&counters, &observed, &touched, vec![])
            .unwrap();
        match mode {
            DetectionMode::Blind { .. } => {}
            DetectionMode::Reconciled { coverage, .. } => assert_eq!(coverage, 0.0),
            other => panic!("unexpected mode {other:?}"),
        }
    }

    #[test]
    fn retarget_preserves_the_warm_factor_across_a_rebuild() {
        let (mut dep, mut pipeline) = setup();
        let counters = pipeline.fcm().counters_from(&dep.dataplane);
        let observed = vec![true; counters.len()];
        pipeline.detect(&counters, &observed).unwrap();
        assert!(
            matches!(pipeline.last_solve_path(), Some(SolvePath::Cold { .. })),
            "first full round factors from scratch"
        );
        pipeline.detect(&counters, &observed).unwrap();
        assert!(
            pipeline.last_solve_path().is_some_and(|p| p.is_warm()),
            "steady state reuses the factor: {:?}",
            pipeline.last_solve_path()
        );
        // Reroute a flow and retarget at the rebuilt FCM: the mask caches
        // drop but the cached factor survives and absorbs the delta.
        dep.reroute_flow_via(0, &[]).unwrap();
        let fcm = Fcm::from_view(&dep.view);
        pipeline.retarget(&dep.view, fcm, 300);
        assert!(pipeline.solver_is_warm(), "retarget keeps the factor");
        assert_eq!(pipeline.cached_masks(), 0);
        assert_eq!(pipeline.cached_reconciliations(), 0);
        dep.dataplane.reset_counters();
        dep.replay_traffic(&mut LossModel::none());
        let counters = pipeline.fcm().counters_from(&dep.dataplane);
        let observed = vec![true; counters.len()];
        let (v, mode) = pipeline.detect(&counters, &observed).unwrap();
        assert_eq!(mode, DetectionMode::Full);
        assert!(!v.unwrap().anomalous);
        assert!(
            pipeline.last_solve_path().is_some_and(|p| p.is_warm()),
            "post-rebuild full round patches instead of refactorizing: {:?}",
            pipeline.last_solve_path()
        );
    }

    #[test]
    fn masked_rounds_report_no_solve_path() {
        let (dep, mut pipeline) = setup();
        let counters = pipeline.fcm().counters_from(&dep.dataplane);
        let victim = pipeline.fcm().rules()[0].switch;
        let observed = mask_without(&pipeline, &[victim]);
        pipeline.detect(&counters, &observed).unwrap();
        assert_eq!(pipeline.last_solve_path(), None);
    }

    #[test]
    fn everything_missing_is_blind() {
        let (dep, mut pipeline) = setup();
        let counters = pipeline.fcm().counters_from(&dep.dataplane);
        let observed = vec![false; counters.len()];
        let (verdict, mode) = pipeline.detect(&counters, &observed).unwrap();
        assert!(verdict.is_none());
        assert!(mode.is_blind());
        assert_eq!(mode.label(), "Blind");
    }

    #[test]
    fn coverage_under_total_mask_is_zero() {
        let (_, pipeline) = setup();
        let observed = vec![false; pipeline.fcm().rule_count()];
        assert_eq!(pipeline.coverage_under_mask(&observed), 0.0);
    }
}
