//! Seeded fault-injection transport for the control channel.
//!
//! [`SimTransport`] implements [`foces_channel::Transport`] with a
//! deterministic (seeded) fault model, so every run — tests, benches, the
//! `foces run` CLI — is reproducible. Delivery faults are *data*
//! ([`Delivery::Dropped`] / [`Delivery::Offline`]); the wire codec is
//! still exercised on every delivered exchange via
//! [`foces_channel::wire_exchange`].

use foces_channel::ChannelError;
use foces_channel::{wire_exchange, ControllerMsg, Delivery, SwitchAgent, SwitchMsg, Transport};
use foces_dataplane::DataPlane;
use foces_net::SwitchId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Per-switch channel behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultProfile {
    /// Base round-trip latency per exchange, in simulated milliseconds.
    pub latency_ms: f64,
    /// Uniform jitter added on top of `latency_ms` (`[0, jitter_ms)`).
    pub jitter_ms: f64,
    /// Probability that an exchange (request or reply) is lost in flight.
    pub drop_prob: f64,
    /// Probability that a *stale* reply (from an earlier exchange with this
    /// switch) is delivered instead of the fresh one — the scheduler sees a
    /// transaction-id mismatch and must retry.
    pub reorder_prob: f64,
    /// Half-open epoch windows `[start, end)` during which the switch is
    /// offline (crashed or partitioned). Multiple windows model
    /// crash-restart cycles.
    pub offline: Vec<(u64, u64)>,
}

impl Default for FaultProfile {
    /// A well-behaved 1 ms channel: no jitter, no drops, no reordering,
    /// never offline.
    fn default() -> Self {
        FaultProfile {
            latency_ms: 1.0,
            jitter_ms: 0.0,
            drop_prob: 0.0,
            reorder_prob: 0.0,
            offline: Vec::new(),
        }
    }
}

impl FaultProfile {
    /// Is the switch offline at `epoch`?
    pub fn offline_at(&self, epoch: u64) -> bool {
        self.offline.iter().any(|&(s, e)| s <= epoch && epoch < e)
    }
}

/// A deterministic faulty channel: every switch gets the default profile
/// unless overridden, and all randomness comes from one seeded
/// [`StdRng`], so identical seeds replay identical fault sequences.
#[derive(Debug, Clone)]
pub struct SimTransport {
    default_profile: FaultProfile,
    per_switch: HashMap<SwitchId, FaultProfile>,
    rng: StdRng,
    epoch: u64,
    /// Last fresh reply per switch, kept around to deliver out of order.
    stale: HashMap<SwitchId, SwitchMsg>,
}

impl SimTransport {
    /// Creates a transport where every switch follows `default_profile`.
    pub fn new(seed: u64, default_profile: FaultProfile) -> Self {
        SimTransport {
            default_profile,
            per_switch: HashMap::new(),
            rng: StdRng::seed_from_u64(seed),
            epoch: 0,
            stale: HashMap::new(),
        }
    }

    /// Overrides the profile of one switch (e.g. an offline window for the
    /// crash victim).
    pub fn set_profile(&mut self, switch: SwitchId, profile: FaultProfile) {
        self.per_switch.insert(switch, profile);
    }

    /// The profile governing `switch`.
    pub fn profile(&self, switch: SwitchId) -> &FaultProfile {
        self.per_switch
            .get(&switch)
            .unwrap_or(&self.default_profile)
    }

    /// The current simulated epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl Transport for SimTransport {
    fn exchange(
        &mut self,
        dp: &DataPlane,
        agent: &dyn SwitchAgent,
        msg: &ControllerMsg,
    ) -> Result<Delivery, ChannelError> {
        let sw = agent.switch();
        let p = self.profile(sw).clone();
        if p.offline_at(self.epoch) {
            return Ok(Delivery::Offline);
        }
        if p.drop_prob > 0.0 && self.rng.gen_bool(p.drop_prob.min(1.0)) {
            return Ok(Delivery::Dropped);
        }
        let fresh = wire_exchange(dp, agent, msg)?;
        let reply = if p.reorder_prob > 0.0 && self.rng.gen_bool(p.reorder_prob.min(1.0)) {
            // Deliver the previous reply (if any) and hold the fresh one
            // back as the next stale candidate.
            self.stale.insert(sw, fresh.clone()).unwrap_or(fresh)
        } else {
            self.stale.insert(sw, fresh.clone());
            fresh
        };
        let jitter = if p.jitter_ms > 0.0 {
            self.rng.gen_range(0.0..p.jitter_ms)
        } else {
            0.0
        };
        Ok(Delivery::Delivered {
            reply,
            latency_ms: p.latency_ms + jitter,
        })
    }

    fn on_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foces_channel::HonestAgent;
    use foces_controlplane::{provision, uniform_flows, RuleGranularity};
    use foces_dataplane::LossModel;
    use foces_net::generators::ring;

    fn deployment() -> foces_controlplane::Deployment {
        let topo = ring(4);
        let flows = uniform_flows(&topo, 1000.0);
        let mut dep = provision(topo, &flows, RuleGranularity::PerFlowPair).unwrap();
        dep.replay_traffic(&mut LossModel::none());
        dep
    }

    fn stats(xid: u32) -> ControllerMsg {
        ControllerMsg::StatsRequest { xid }
    }

    #[test]
    fn same_seed_replays_the_same_fault_sequence() {
        let dep = deployment();
        let agent = HonestAgent::new(foces_net::SwitchId(0));
        let profile = FaultProfile {
            drop_prob: 0.5,
            jitter_ms: 3.0,
            ..FaultProfile::default()
        };
        let run = |seed: u64| -> Vec<Delivery> {
            let mut t = SimTransport::new(seed, profile.clone());
            (0..20)
                .map(|i| t.exchange(&dep.dataplane, &agent, &stats(i)).unwrap())
                .collect()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should diverge");
    }

    #[test]
    fn offline_window_tracks_epochs() {
        let dep = deployment();
        let sw = foces_net::SwitchId(1);
        let agent = HonestAgent::new(sw);
        let mut t = SimTransport::new(0, FaultProfile::default());
        t.set_profile(
            sw,
            FaultProfile {
                offline: vec![(2, 4)],
                ..FaultProfile::default()
            },
        );
        let mut saw = Vec::new();
        for epoch in 0..6 {
            t.on_epoch(epoch);
            let d = t
                .exchange(&dep.dataplane, &agent, &stats(epoch as u32))
                .unwrap();
            saw.push(matches!(d, Delivery::Offline));
        }
        assert_eq!(saw, vec![false, false, true, true, false, false]);
        assert_eq!(t.epoch(), 5);
    }

    #[test]
    fn reordering_delivers_a_stale_xid() {
        let dep = deployment();
        let agent = HonestAgent::new(foces_net::SwitchId(2));
        let mut t = SimTransport::new(3, FaultProfile::default());
        // First exchange primes the stale buffer; then force reordering.
        let d0 = t.exchange(&dep.dataplane, &agent, &stats(100)).unwrap();
        let Delivery::Delivered {
            reply: SwitchMsg::StatsReply { xid, .. },
            ..
        } = d0
        else {
            panic!("expected delivery");
        };
        assert_eq!(xid, 100);
        let p = FaultProfile {
            reorder_prob: 1.0,
            ..FaultProfile::default()
        };
        t.set_profile(agent.switch(), p);
        let d1 = t.exchange(&dep.dataplane, &agent, &stats(101)).unwrap();
        let Delivery::Delivered {
            reply: SwitchMsg::StatsReply { xid, .. },
            ..
        } = d1
        else {
            panic!("expected delivery");
        };
        assert_eq!(xid, 100, "stale reply delivered in place of the fresh one");
    }

    #[test]
    fn latency_includes_bounded_jitter() {
        let dep = deployment();
        let agent = HonestAgent::new(foces_net::SwitchId(0));
        let profile = FaultProfile {
            latency_ms: 5.0,
            jitter_ms: 2.0,
            ..FaultProfile::default()
        };
        let mut t = SimTransport::new(11, profile);
        for i in 0..50 {
            let d = t.exchange(&dep.dataplane, &agent, &stats(i)).unwrap();
            let Delivery::Delivered { latency_ms, .. } = d else {
                panic!("no faults configured");
            };
            assert!((5.0..7.0).contains(&latency_ms), "latency {latency_ms}");
        }
    }
}
