//! Seeded fault-injection transport for the control channel.
//!
//! [`SimTransport`] implements [`foces_channel::Transport`] with a
//! deterministic (seeded) fault model, so every run — tests, benches, the
//! `foces run` CLI — is reproducible. Delivery faults are *data*
//! ([`Delivery::Dropped`] / [`Delivery::Offline`]); the wire codec is
//! still exercised on every delivered exchange via
//! [`foces_channel::wire_exchange`].
//!
//! The fault *vocabulary* — [`FaultProfile`] and the seeded
//! [`FaultModel`] sampler — lives in
//! `foces-channel` (and is re-exported here for compatibility), so the
//! lockstep transport and the event-driven per-link channel models in
//! `foces-ingest` speak one fault language. `SimTransport` keeps only
//! what is genuinely lockstep-specific: the epoch clock and the
//! stale-reply buffer that realises [`Fate::Deliver`]'s `reorder` bit.

use foces_channel::ChannelError;
use foces_channel::{
    wire_exchange, ControllerMsg, Delivery, Fate, FaultModel, SwitchAgent, SwitchMsg, Transport,
};
use foces_dataplane::DataPlane;
use foces_net::SwitchId;
use std::collections::HashMap;

pub use foces_channel::FaultProfile;

/// A deterministic faulty channel: every switch gets the default profile
/// unless overridden, and all randomness comes from one seeded generator
/// (via [`FaultModel`]), so identical seeds replay identical fault
/// sequences.
#[derive(Debug, Clone)]
pub struct SimTransport {
    model: FaultModel,
    epoch: u64,
    /// Last fresh reply per switch, kept around to deliver out of order.
    stale: HashMap<SwitchId, SwitchMsg>,
}

impl SimTransport {
    /// Creates a transport where every switch follows `default_profile`.
    pub fn new(seed: u64, default_profile: FaultProfile) -> Self {
        SimTransport {
            model: FaultModel::new(seed, default_profile),
            epoch: 0,
            stale: HashMap::new(),
        }
    }

    /// Overrides the profile of one switch (e.g. an offline window for the
    /// crash victim).
    pub fn set_profile(&mut self, switch: SwitchId, profile: FaultProfile) {
        self.model.set_profile(switch, profile);
    }

    /// The profile governing `switch`.
    pub fn profile(&self, switch: SwitchId) -> &FaultProfile {
        self.model.profile(switch)
    }

    /// The current simulated epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl Transport for SimTransport {
    fn exchange(
        &mut self,
        dp: &DataPlane,
        agent: &dyn SwitchAgent,
        msg: &ControllerMsg,
    ) -> Result<Delivery, ChannelError> {
        let sw = agent.switch();
        let (latency_ms, reorder) = match self.model.fate(sw, self.epoch) {
            Fate::Offline => return Ok(Delivery::Offline),
            Fate::Dropped => return Ok(Delivery::Dropped),
            Fate::Deliver {
                latency_ms,
                reorder,
            } => (latency_ms, reorder),
        };
        let fresh = wire_exchange(dp, agent, msg)?;
        let reply = if reorder {
            // Deliver the previous reply (if any) and hold the fresh one
            // back as the next stale candidate.
            self.stale.insert(sw, fresh.clone()).unwrap_or(fresh)
        } else {
            self.stale.insert(sw, fresh.clone());
            fresh
        };
        Ok(Delivery::Delivered { reply, latency_ms })
    }

    fn on_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foces_channel::HonestAgent;
    use foces_controlplane::{provision, uniform_flows, RuleGranularity};
    use foces_dataplane::LossModel;
    use foces_net::generators::ring;

    fn deployment() -> foces_controlplane::Deployment {
        let topo = ring(4);
        let flows = uniform_flows(&topo, 1000.0);
        let mut dep = provision(topo, &flows, RuleGranularity::PerFlowPair).unwrap();
        dep.replay_traffic(&mut LossModel::none());
        dep
    }

    fn stats(xid: u32) -> ControllerMsg {
        ControllerMsg::StatsRequest { xid }
    }

    #[test]
    fn same_seed_replays_the_same_fault_sequence() {
        let dep = deployment();
        let agent = HonestAgent::new(foces_net::SwitchId(0));
        let profile = FaultProfile {
            drop_prob: 0.5,
            jitter_ms: 3.0,
            ..FaultProfile::default()
        };
        let run = |seed: u64| -> Vec<Delivery> {
            let mut t = SimTransport::new(seed, profile.clone());
            (0..20)
                .map(|i| t.exchange(&dep.dataplane, &agent, &stats(i)).unwrap())
                .collect()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should diverge");
    }

    #[test]
    fn matches_the_shared_fault_model_sample_for_sample() {
        // The lockstep transport must consume the channel-level fault
        // vocabulary verbatim: same seed + same profile ⇒ the Delivery
        // sequence mirrors FaultModel's Fate sequence one-to-one.
        let dep = deployment();
        let agent = HonestAgent::new(foces_net::SwitchId(0));
        let profile = FaultProfile {
            drop_prob: 0.35,
            jitter_ms: 4.0,
            ..FaultProfile::default()
        };
        let mut t = SimTransport::new(21, profile.clone());
        let mut m = FaultModel::new(21, profile);
        for i in 0..40 {
            let d = t.exchange(&dep.dataplane, &agent, &stats(i)).unwrap();
            match m.fate(foces_net::SwitchId(0), 0) {
                Fate::Dropped => assert_eq!(d, Delivery::Dropped, "attempt {i}"),
                Fate::Deliver { latency_ms, .. } => {
                    let Delivery::Delivered {
                        latency_ms: got, ..
                    } = d
                    else {
                        panic!("attempt {i}: expected delivery");
                    };
                    assert_eq!(got, latency_ms, "attempt {i}");
                }
                Fate::Offline => panic!("no offline window configured"),
            }
        }
    }

    #[test]
    fn offline_window_tracks_epochs() {
        let dep = deployment();
        let sw = foces_net::SwitchId(1);
        let agent = HonestAgent::new(sw);
        let mut t = SimTransport::new(0, FaultProfile::default());
        t.set_profile(
            sw,
            FaultProfile {
                offline: vec![(2, 4)],
                ..FaultProfile::default()
            },
        );
        let mut saw = Vec::new();
        for epoch in 0..6 {
            t.on_epoch(epoch);
            let d = t
                .exchange(&dep.dataplane, &agent, &stats(epoch as u32))
                .unwrap();
            saw.push(matches!(d, Delivery::Offline));
        }
        assert_eq!(saw, vec![false, false, true, true, false, false]);
        assert_eq!(t.epoch(), 5);
    }

    #[test]
    fn reordering_delivers_a_stale_xid() {
        let dep = deployment();
        let agent = HonestAgent::new(foces_net::SwitchId(2));
        let mut t = SimTransport::new(3, FaultProfile::default());
        // First exchange primes the stale buffer; then force reordering.
        let d0 = t.exchange(&dep.dataplane, &agent, &stats(100)).unwrap();
        let Delivery::Delivered {
            reply: SwitchMsg::StatsReply { xid, .. },
            ..
        } = d0
        else {
            panic!("expected delivery");
        };
        assert_eq!(xid, 100);
        let p = FaultProfile {
            reorder_prob: 1.0,
            ..FaultProfile::default()
        };
        t.set_profile(agent.switch(), p);
        let d1 = t.exchange(&dep.dataplane, &agent, &stats(101)).unwrap();
        let Delivery::Delivered {
            reply: SwitchMsg::StatsReply { xid, .. },
            ..
        } = d1
        else {
            panic!("expected delivery");
        };
        assert_eq!(xid, 100, "stale reply delivered in place of the fresh one");
    }

    #[test]
    fn latency_includes_bounded_jitter() {
        let dep = deployment();
        let agent = HonestAgent::new(foces_net::SwitchId(0));
        let profile = FaultProfile {
            latency_ms: 5.0,
            jitter_ms: 2.0,
            ..FaultProfile::default()
        };
        let mut t = SimTransport::new(11, profile);
        for i in 0..50 {
            let d = t.exchange(&dep.dataplane, &agent, &stats(i)).unwrap();
            let Delivery::Delivered { latency_ms, .. } = d else {
                panic!("no faults configured");
            };
            assert!((5.0..7.0).contains(&latency_ms), "latency {latency_ms}");
        }
    }
}
