//! **foces-runtime** — the operational layer of the FOCES reproduction: a
//! continuous, fault-tolerant detection service over an *unreliable*
//! control channel.
//!
//! The paper's functional test (§VI, Fig. 7) polls switches "every
//! 5 seconds" over a real control network — one where requests get lost,
//! replies arrive late, and switches crash and come back. The rest of this
//! workspace assumed a perfect channel; this crate removes that assumption
//! without weakening the detector:
//!
//! * [`transport`] — [`SimTransport`], a seeded fault model implementing
//!   [`foces_channel::Transport`]: per-switch latency/jitter, message
//!   drops, stale-reply reordering, and offline/crash-restart windows.
//!   Every delivered message still round-trips through the wire codec.
//! * [`scheduler`] — [`EpochScheduler`] polls all agents each epoch with a
//!   per-switch deadline and bounded exponential-backoff retries; an
//!   unresponsive switch is *marked*, never fatal to the round.
//! * [`degraded`] — [`DegradedPipeline`] masks the FCM rows of missing
//!   switches ([`foces::MaskedFcm`]) and re-consults the Theorem 1
//!   detectability oracle on the masked system, labelling every round
//!   [`DetectionMode::Full`], [`DetectionMode::Degraded`] (with the
//!   oracle's residual coverage) or [`DetectionMode::Blind`].
//! * [`parallel`] — [`detect_parallel`] fans the per-switch slice solves
//!   of a [`foces::SlicedFcm`] across a scoped worker pool
//!   (`std::thread::scope`, no extra dependencies), with verdicts
//!   *identical* to the sequential path.
//! * [`pool`] — [`run_tasks`], a std-only work-stealing worker pool
//!   (bounded per-worker deques with backpressure, FIFO stealing,
//!   per-task panic containment and deadline accounting) — the execution
//!   engine under `foces-cluster`'s shard coordinator.
//! * [`metrics`] — [`RuntimeMetrics`] counters plus a JSONL [`EventLog`]
//!   of per-epoch records.
//! * [`hysteresis`] — [`AlarmMachine`], k-of-n alarm confirmation with
//!   churn-aware suppression windows (blind rounds freeze the machine
//!   instead of feeding it noise).
//! * [`service`] — [`RuntimeService`] glues the layers into one
//!   `run_epoch` loop. Every reply carries the switch's rule-table
//!   generation; when a stamp (or the controller view's update journal)
//!   outruns the FCM's build generation, the epoch is *reconciled* —
//!   journaled rows masked, affected flows quarantined
//!   ([`foces::Fcm::quarantine`]) — instead of failed, and the FCM is
//!   rebuilt at the epoch boundary.
//! * [`harness`] — [`ScenarioDriver`] owns a whole deployment and drives
//!   reset → replay → (inject/revert) → poll → detect per epoch; the
//!   `foces run` CLI subcommand and the cross-crate fault test sit on it.

pub mod degraded;
pub mod harness;
pub mod hysteresis;
pub mod metrics;
pub mod parallel;
pub mod pool;
pub mod scheduler;
pub mod service;
pub mod transport;

pub use degraded::{DegradedPipeline, DetectionMode};
pub use harness::{FaultScenario, ScenarioDriver};
pub use hysteresis::{AlarmMachine, AlarmTransition, HysteresisConfig};
pub use metrics::{peak_rss_bytes, scrub_gauges, EventLog, RuntimeMetrics};
pub use parallel::detect_parallel;
pub use pool::{run_tasks, PoolConfig, PoolStats, TaskOutcome, TaskRun};
pub use scheduler::{EpochCollection, EpochScheduler, PollPolicy, SwitchPoll};
pub use service::{ByzantineConfig, EpochReport, RuntimeConfig, RuntimeError, RuntimeService};
pub use transport::{FaultProfile, SimTransport};
