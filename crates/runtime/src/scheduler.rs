//! The epoch scheduler: one statistics sweep per detection interval.
//!
//! Each epoch the scheduler polls every switch agent through the
//! [`Transport`], giving each switch a simulated-time deadline and a
//! bounded number of exponential-backoff retries. A switch that stays
//! unresponsive (drops exhausted the budget, replies kept arriving with
//! stale transaction ids, or the transport reports it offline) is
//! **marked**, not fatal: the round always completes and downstream
//! layers decide how to detect with what arrived.

use foces_channel::{ChannelError, ControllerMsg, Delivery, SwitchAgent, SwitchMsg, Transport};
use foces_dataplane::{DataPlane, RuleRef};
use foces_net::SwitchId;

/// Retry/deadline policy for one switch poll.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PollPolicy {
    /// Simulated-time budget per switch per epoch, in milliseconds. Once a
    /// poll has consumed this much (latency + timeouts + backoff), the
    /// switch is marked unresponsive for the epoch.
    pub deadline_ms: f64,
    /// Time charged for an attempt whose reply never arrives (the
    /// controller's request timeout).
    pub attempt_timeout_ms: f64,
    /// Maximum exchange attempts per switch per epoch (first try included).
    pub max_attempts: u32,
    /// Backoff before retry `k` is `backoff_base_ms * 2^(k-1)`.
    pub backoff_base_ms: f64,
}

impl Default for PollPolicy {
    /// Deadline 400 ms, attempt timeout 80 ms, 5 attempts, 10 ms base
    /// backoff — generous enough that only a genuinely bad channel (or an
    /// offline switch) exhausts it.
    fn default() -> Self {
        PollPolicy {
            deadline_ms: 400.0,
            attempt_timeout_ms: 80.0,
            max_attempts: 5,
            backoff_base_ms: 10.0,
        }
    }
}

/// Outcome of polling one switch for one epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchPoll {
    /// The polled switch.
    pub switch: SwitchId,
    /// The reported per-rule counters, in table order — `None` if the
    /// switch never produced a usable reply this epoch.
    pub counters: Option<Vec<f64>>,
    /// The rule-table generation the switch stamped on its reply — `None`
    /// exactly when `counters` is. A stamp newer than the generation the
    /// FCM was built at means the counters mix traffic routed under two
    /// rule configurations (two-phase read, see
    /// [`EpochCollection::stale_switches`]).
    pub generation: Option<u64>,
    /// Exchange attempts made (≥ 1 unless the deadline was already spent).
    pub attempts: u32,
    /// Attempts lost to message drops.
    pub drops: u32,
    /// Replies discarded for carrying a stale transaction id.
    pub stale_replies: u32,
    /// Whether the transport reported the switch offline.
    pub offline: bool,
    /// Simulated time consumed by this poll, in milliseconds.
    pub elapsed_ms: f64,
}

impl SwitchPoll {
    /// Retries beyond the first attempt.
    pub fn retries(&self) -> u32 {
        self.attempts.saturating_sub(1)
    }

    /// Did the poll produce counters?
    pub fn responsive(&self) -> bool {
        self.counters.is_some()
    }
}

/// Everything one epoch's sweep produced.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochCollection {
    /// The epoch this sweep belongs to.
    pub epoch: u64,
    /// Per-switch outcomes, in ascending switch order.
    pub polls: Vec<SwitchPoll>,
    /// Simulated wall time of the sweep: switches are polled concurrently,
    /// so this is the *maximum* per-switch elapsed time.
    pub elapsed_ms: f64,
}

impl EpochCollection {
    /// The counters reported by `switch`, if it was responsive.
    pub fn counters_of(&self, switch: SwitchId) -> Option<&[f64]> {
        self.polls
            .iter()
            .find(|p| p.switch == switch)
            .and_then(|p| p.counters.as_deref())
    }

    /// Switches that produced no counters this epoch, ascending.
    pub fn missing_switches(&self) -> Vec<SwitchId> {
        self.polls
            .iter()
            .filter(|p| !p.responsive())
            .map(|p| p.switch)
            .collect()
    }

    /// The generation stamp `switch` reported, if it was responsive.
    pub fn generation_of(&self, switch: SwitchId) -> Option<u64> {
        self.polls
            .iter()
            .find(|p| p.switch == switch)
            .and_then(|p| p.generation)
    }

    /// Assembles the sweep into a counter vector in FCM row order:
    /// `counters[i]` is the reading for `rules[i]` (0.0 when it never
    /// arrived) and `observed[i]` says whether it actually did. This is
    /// the collection-side half of every detection round; masking and
    /// reconciliation downstream key off `observed`.
    pub fn assemble(&self, rules: &[RuleRef]) -> (Vec<f64>, Vec<bool>) {
        let mut counters = vec![0.0; rules.len()];
        let mut observed = vec![false; rules.len()];
        for (i, r) in rules.iter().enumerate() {
            if let Some(c) = self.counters_of(r.switch) {
                if let Some(&v) = c.get(r.index) {
                    counters[i] = v;
                    observed[i] = true;
                }
            }
        }
        (counters, observed)
    }

    /// Responsive switches whose reply carried a generation stamp *newer*
    /// than `fcm_generation` — the second phase of the two-phase read. A
    /// stamp records when the switch's table last changed, so an older
    /// stamp is fine (the table predates the FCM build and has not moved),
    /// but a newer one means the counters were collected against rules the
    /// FCM was not built from: the epoch must be reconciled, not scored
    /// as-is.
    pub fn stale_switches(&self, fcm_generation: u64) -> Vec<SwitchId> {
        self.polls
            .iter()
            .filter(|p| p.generation.is_some_and(|g| g > fcm_generation))
            .map(|p| p.switch)
            .collect()
    }
}

/// Polls a fixed set of agents through a [`Transport`], one sweep per
/// epoch, retrying per [`PollPolicy`].
pub struct EpochScheduler {
    agents: Vec<Box<dyn SwitchAgent>>,
    transport: Box<dyn Transport>,
    policy: PollPolicy,
    next_xid: u32,
}

impl EpochScheduler {
    /// Creates a scheduler over `agents` (sorted by switch id internally).
    pub fn new(
        mut agents: Vec<Box<dyn SwitchAgent>>,
        transport: Box<dyn Transport>,
        policy: PollPolicy,
    ) -> Self {
        agents.sort_by_key(|a| a.switch());
        EpochScheduler {
            agents,
            transport,
            policy,
            next_xid: 1,
        }
    }

    /// The switches this scheduler polls, ascending.
    pub fn switches(&self) -> Vec<SwitchId> {
        self.agents.iter().map(|a| a.switch()).collect()
    }

    /// Swaps in a new agent for the switch it claims to be (matched by
    /// [`SwitchAgent::switch`]), returning the displaced agent. Returns
    /// `None` — and changes nothing — when no agent for that switch
    /// exists. This is how a scenario compromises (or restores) a switch
    /// mid-run without rebuilding the scheduler.
    pub fn replace_agent(&mut self, agent: Box<dyn SwitchAgent>) -> Option<Box<dyn SwitchAgent>> {
        let s = agent.switch();
        let pos = self.agents.iter().position(|a| a.switch() == s)?;
        Some(std::mem::replace(&mut self.agents[pos], agent))
    }

    /// The active policy.
    pub fn policy(&self) -> PollPolicy {
        self.policy
    }

    /// Runs one epoch's sweep over all agents.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError`] only on wire-level protocol violations
    /// (malformed bytes); unresponsive switches are reported in the
    /// [`EpochCollection`], never as errors.
    pub fn poll_epoch(
        &mut self,
        dp: &DataPlane,
        epoch: u64,
    ) -> Result<EpochCollection, ChannelError> {
        self.transport.on_epoch(epoch);
        let mut polls = Vec::with_capacity(self.agents.len());
        let mut elapsed_ms: f64 = 0.0;
        for i in 0..self.agents.len() {
            let poll = self.poll_switch(dp, i)?;
            elapsed_ms = elapsed_ms.max(poll.elapsed_ms);
            polls.push(poll);
        }
        Ok(EpochCollection {
            epoch,
            polls,
            elapsed_ms,
        })
    }

    fn poll_switch(
        &mut self,
        dp: &DataPlane,
        agent_idx: usize,
    ) -> Result<SwitchPoll, ChannelError> {
        let agent = &*self.agents[agent_idx];
        let switch = agent.switch();
        let p = self.policy;
        let mut poll = SwitchPoll {
            switch,
            counters: None,
            generation: None,
            attempts: 0,
            drops: 0,
            stale_replies: 0,
            offline: false,
            elapsed_ms: 0.0,
        };
        while poll.attempts < p.max_attempts && poll.elapsed_ms < p.deadline_ms {
            if poll.attempts > 0 {
                // Exponential backoff before each retry.
                poll.elapsed_ms += p.backoff_base_ms * f64::from(1u32 << (poll.attempts - 1));
                if poll.elapsed_ms >= p.deadline_ms {
                    break;
                }
            }
            poll.attempts += 1;
            let xid = self.next_xid;
            self.next_xid = self.next_xid.wrapping_add(1).max(1);
            let msg = ControllerMsg::StatsRequest { xid };
            match self.transport.exchange(dp, agent, &msg)? {
                Delivery::Delivered { reply, latency_ms } => {
                    poll.elapsed_ms += latency_ms;
                    if poll.elapsed_ms > p.deadline_ms {
                        break; // reply arrived past the deadline: too late
                    }
                    match reply {
                        SwitchMsg::StatsReply {
                            xid: rxid,
                            generation,
                            counters,
                        } if rxid == xid => {
                            poll.counters = Some(counters);
                            poll.generation = Some(generation);
                            break;
                        }
                        _ => poll.stale_replies += 1, // stale xid or wrong type
                    }
                }
                Delivery::Dropped => {
                    poll.drops += 1;
                    poll.elapsed_ms += p.attempt_timeout_ms;
                }
                Delivery::Offline => {
                    poll.offline = true;
                    break; // retrying within the epoch cannot help
                }
            }
        }
        Ok(poll)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{FaultProfile, SimTransport};
    use foces_channel::{HonestAgent, PerfectTransport};
    use foces_controlplane::{provision, uniform_flows, RuleGranularity};
    use foces_dataplane::LossModel;
    use foces_net::generators::ring;

    fn deployment() -> foces_controlplane::Deployment {
        let topo = ring(4);
        let flows = uniform_flows(&topo, 1000.0);
        let mut dep = provision(topo, &flows, RuleGranularity::PerFlowPair).unwrap();
        dep.replay_traffic(&mut LossModel::none());
        dep
    }

    fn agents(dep: &foces_controlplane::Deployment) -> Vec<Box<dyn SwitchAgent>> {
        dep.view
            .topology()
            .switches()
            .map(|s| Box::new(HonestAgent::new(s)) as Box<dyn SwitchAgent>)
            .collect()
    }

    #[test]
    fn perfect_channel_collects_everything_first_try() {
        let dep = deployment();
        let mut sched = EpochScheduler::new(
            agents(&dep),
            Box::new(PerfectTransport),
            PollPolicy::default(),
        );
        let c = sched.poll_epoch(&dep.dataplane, 0).unwrap();
        assert!(c.missing_switches().is_empty());
        for p in &c.polls {
            assert_eq!(p.attempts, 1);
            assert_eq!(p.retries(), 0);
            let expected: Vec<f64> = (0..dep.dataplane.table(p.switch).len())
                .map(|i| dep.dataplane.counter(p.switch, i))
                .collect();
            assert_eq!(c.counters_of(p.switch).unwrap(), expected.as_slice());
        }
    }

    #[test]
    fn generation_stamps_surface_mid_epoch_updates() {
        let mut dep = deployment();
        let mut sched = EpochScheduler::new(
            agents(&dep),
            Box::new(PerfectTransport),
            PollPolicy::default(),
        );
        let c0 = sched.poll_epoch(&dep.dataplane, 0).unwrap();
        assert!(c0.polls.iter().all(|p| p.generation == Some(0)));
        assert!(c0.stale_switches(0).is_empty());
        // A controller update bumps the touched switches' table generation;
        // the next sweep's stamps expose exactly those switches as stale
        // relative to an FCM built at generation 0.
        let (generation, touched) = dep.reroute_flow_via(0, &[]).unwrap();
        assert_eq!(generation, 1);
        let c1 = sched.poll_epoch(&dep.dataplane, 1).unwrap();
        let stale = c1.stale_switches(0);
        assert!(!stale.is_empty());
        for s in &stale {
            assert_eq!(c1.generation_of(*s), Some(1));
            assert_eq!(dep.dataplane.table_generation(*s), 1);
        }
        // Every stale switch hosts at least one journaled rule.
        for s in &stale {
            assert!(touched.iter().any(|r| r.switch == *s));
        }
        // Relative to a generation-1 FCM nothing is stale: the untouched
        // switches' older stamps mean their tables simply predate it.
        assert!(c1.stale_switches(1).is_empty());
    }

    #[test]
    fn assemble_orders_counters_by_fcm_rows_and_marks_gaps() {
        let dep = deployment();
        let fcm = foces::Fcm::from_view(&dep.view);
        let victim = foces_net::SwitchId(1);
        let mut t = SimTransport::new(0, FaultProfile::default());
        t.set_profile(
            victim,
            FaultProfile {
                offline: vec![(0, 10)],
                ..FaultProfile::default()
            },
        );
        let mut sched = EpochScheduler::new(agents(&dep), Box::new(t), PollPolicy::default());
        let c = sched.poll_epoch(&dep.dataplane, 0).unwrap();
        let (counters, observed) = c.assemble(fcm.rules());
        assert_eq!(counters.len(), fcm.rule_count());
        assert_eq!(observed.len(), fcm.rule_count());
        for (i, r) in fcm.rules().iter().enumerate() {
            if r.switch == victim {
                assert!(!observed[i], "offline switch rows are unobserved");
                assert_eq!(counters[i], 0.0);
            } else {
                assert!(observed[i]);
                assert_eq!(counters[i], dep.dataplane.counter(r.switch, r.index));
            }
        }
    }

    #[test]
    fn drops_trigger_retries_then_success() {
        let dep = deployment();
        // 60% drop: with 5 attempts the poll still almost surely lands, and
        // with this seed at least one retry happens across 4 switches.
        let t = SimTransport::new(
            42,
            FaultProfile {
                drop_prob: 0.6,
                ..FaultProfile::default()
            },
        );
        let mut sched = EpochScheduler::new(agents(&dep), Box::new(t), PollPolicy::default());
        let c = sched.poll_epoch(&dep.dataplane, 0).unwrap();
        let total_retries: u32 = c.polls.iter().map(|p| p.retries()).sum();
        let total_drops: u32 = c.polls.iter().map(|p| p.drops).sum();
        assert!(total_retries > 0, "60% drop must force retries");
        // Every attempt either dropped or succeeded, so per responsive poll
        // drops == retries, and an unresponsive poll has one extra drop.
        assert_eq!(
            total_drops,
            total_retries + c.missing_switches().len() as u32
        );
    }

    #[test]
    fn offline_switch_is_marked_not_fatal() {
        let dep = deployment();
        let victim = foces_net::SwitchId(2);
        let mut t = SimTransport::new(0, FaultProfile::default());
        t.set_profile(
            victim,
            FaultProfile {
                offline: vec![(0, 10)],
                ..FaultProfile::default()
            },
        );
        let mut sched = EpochScheduler::new(agents(&dep), Box::new(t), PollPolicy::default());
        let c = sched.poll_epoch(&dep.dataplane, 3).unwrap();
        assert_eq!(c.missing_switches(), vec![victim]);
        let poll = c.polls.iter().find(|p| p.switch == victim).unwrap();
        assert!(poll.offline);
        assert_eq!(poll.attempts, 1, "no point retrying an offline switch");
        // Everyone else answered.
        assert_eq!(
            c.polls.iter().filter(|p| p.responsive()).count(),
            c.polls.len() - 1
        );
    }

    #[test]
    fn total_blackout_exhausts_attempts_within_deadline() {
        let dep = deployment();
        let t = SimTransport::new(
            5,
            FaultProfile {
                drop_prob: 1.0,
                ..FaultProfile::default()
            },
        );
        let policy = PollPolicy::default();
        let mut sched = EpochScheduler::new(agents(&dep), Box::new(t), policy);
        let c = sched.poll_epoch(&dep.dataplane, 0).unwrap();
        assert_eq!(c.missing_switches().len(), c.polls.len());
        for p in &c.polls {
            assert!(p.attempts <= policy.max_attempts);
            assert!(p.drops == p.attempts);
            assert!(
                p.elapsed_ms <= policy.deadline_ms + policy.attempt_timeout_ms,
                "deadline respected up to one in-flight timeout"
            );
        }
        // The sweep is concurrent: epoch time is the max poll time, not the sum.
        assert!(c.elapsed_ms <= policy.deadline_ms + policy.attempt_timeout_ms);
    }

    #[test]
    fn stale_replies_are_discarded_and_retried() {
        let dep = deployment();
        let t = SimTransport::new(
            9,
            FaultProfile {
                reorder_prob: 1.0,
                ..FaultProfile::default()
            },
        );
        let mut sched = EpochScheduler::new(agents(&dep), Box::new(t), PollPolicy::default());
        // Epoch 0 primes each switch's reorder buffer (the very first reply
        // per switch has nothing stale to swap with, so it lands fresh).
        let c0 = sched.poll_epoch(&dep.dataplane, 0).unwrap();
        assert!(c0.missing_switches().is_empty());
        // From then on a fully-reordering channel is always one reply
        // behind: every delivery carries the previous exchange's xid, so
        // every attempt is discarded as stale and the switches end the
        // epoch unresponsive — marked, not fatal.
        let c1 = sched.poll_epoch(&dep.dataplane, 1).unwrap();
        let stale: u32 = c1.polls.iter().map(|p| p.stale_replies).sum();
        assert!(stale > 0);
        assert_eq!(c1.missing_switches().len(), c1.polls.len());
    }
}
