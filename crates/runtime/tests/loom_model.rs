//! Loom model check of the lock-free work-claim loop in
//! `foces_runtime::detect_parallel`.
//!
//! The production loop is: N workers share an `AtomicUsize` work index,
//! each claims slices with `fetch_add(1, Relaxed)` and writes the verdict
//! into a per-slice slot; the scope join publishes the slots to the
//! reader. The soundness of the whole scheme reduces to two claims that
//! loom can exhaustively check over every interleaving:
//!
//! 1. **Unique claim**: no slot is ever written by two workers (relaxed
//!    `fetch_add` still hands out each index exactly once);
//! 2. **No lost work**: after all workers finish, every slot has been
//!    filled — a worker observing an out-of-range index terminates
//!    without leaving claimed-but-unprocessed slices behind.
//!
//! Build only under `RUSTFLAGS="--cfg loom"` (the CI `soundness` job):
//!
//! ```sh
//! RUSTFLAGS="--cfg loom" cargo test -p foces-runtime --test loom_model --release
//! ```
#![cfg(loom)]

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::Arc;
use loom::thread;

/// Sentinel for "slot not yet filled".
const EMPTY: usize = usize::MAX;

/// Runs the work-claim loop shape from `detect_parallel` under loom:
/// `workers` threads drain `slices` slots through a shared index.
fn model_claim_loop(workers: usize, slices: usize) {
    loom::model(move || {
        let next = Arc::new(AtomicUsize::new(0));
        let slots: Arc<Vec<AtomicUsize>> =
            Arc::new((0..slices).map(|_| AtomicUsize::new(EMPTY)).collect());
        let handles: Vec<_> = (0..workers)
            .map(|worker| {
                let next = Arc::clone(&next);
                let slots = Arc::clone(&slots);
                thread::spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= slots.len() {
                        break;
                    }
                    // Stand-in for `slots[i].set(verdict)`: swap lets the
                    // model detect a double claim, which `OnceLock::set`
                    // would silently drop in production.
                    let prev = slots[i].swap(worker, Ordering::Relaxed);
                    assert_eq!(prev, EMPTY, "slice {i} claimed by two workers");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for (i, slot) in slots.iter().enumerate() {
            let v = slot.load(Ordering::Relaxed);
            assert_ne!(v, EMPTY, "slice {i} never processed");
            assert!(v < workers, "slice {i} holds a garbage verdict");
        }
    });
}

#[test]
fn two_workers_three_slices_fill_every_slot_exactly_once() {
    model_claim_loop(2, 3);
}

#[test]
fn more_workers_than_slices_terminate_without_losing_work() {
    // Late-starting workers observe an exhausted index and must break
    // immediately; the index overshooting `slices` is harmless.
    model_claim_loop(3, 2);
}
