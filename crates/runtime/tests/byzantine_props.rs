//! Property battery for the Byzantine-resilience layer's *negative*
//! contract: an honest network — whatever the control channel and the
//! update schedule do — must never have a switch localized as a liar or
//! its counters quarantined.
//!
//! Two tiers of the guarantee:
//! * **Lossless + churn**: with zero traffic loss, every epoch's system
//!   is exactly consistent, so not a single round may score anomalous —
//!   zero suspicion, zero implications, zero alarms.
//! * **Noisy**: with traffic loss the residuals carry real noise, so
//!   isolated anomalous rounds (and transient suspicion) are legitimate
//!   — but the leave-one-out cross-validation must still refuse to pin
//!   that diffuse noise on any single switch: zero localizations, zero
//!   quarantines, always.

use foces_controlplane::{provision, uniform_flows, Deployment, RuleGranularity};
use foces_net::generators::ring;
use foces_runtime::{ByzantineConfig, FaultScenario, RuntimeConfig, ScenarioDriver};
use proptest::prelude::*;

const EPOCHS: u64 = 12;

fn testbed() -> Deployment {
    let topo = ring(4);
    let flows = uniform_flows(&topo, 12_000.0);
    provision(topo, &flows, RuleGranularity::PerFlowPair).expect("provision ring(4)")
}

fn byzantine_config() -> RuntimeConfig {
    RuntimeConfig {
        byzantine: ByzantineConfig {
            enabled: true,
            ..ByzantineConfig::default()
        },
        ..RuntimeConfig::default()
    }
}

fn honest_scenario(
    loss: f64,
    drop_prob: f64,
    reorder_prob: f64,
    churn_period: Option<u64>,
    seed: u64,
) -> FaultScenario {
    FaultScenario {
        epochs: EPOCHS,
        loss,
        drop_prob,
        latency_ms: 2.0,
        jitter_ms: 1.0,
        reorder_prob,
        offline: None,
        anomaly_window: None,
        churn_period,
        churn_seed: seed ^ 0x5bd1_e995,
        seed,
        liars: 0,
        ..FaultScenario::default()
    }
}

/// Runs the scenario to completion and returns the driver for inspection.
fn run(scenario: FaultScenario) -> ScenarioDriver {
    let mut driver = ScenarioDriver::new(testbed(), scenario, byzantine_config());
    driver.run().expect("honest epochs never fail outright");
    driver
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Lossless counters are exactly consistent: churn, message drops and
    /// reordering may degrade rounds but can never manufacture suspicion.
    #[test]
    fn lossless_churning_network_accumulates_no_suspicion(
        drop_prob in 0.0f64..0.15,
        reorder_prob in 0.0f64..0.15,
        churn_period in 2u64..5,
        seed in 0u64..1_000,
    ) {
        let driver = run(honest_scenario(0.0, drop_prob, reorder_prob, Some(churn_period), seed));
        let m = *driver.service().metrics();
        prop_assert_eq!(m.alarms_raised, 0, "honest churn raised an alarm");
        prop_assert_eq!(m.liars_localized, 0);
        prop_assert_eq!(m.switch_quarantines, 0);
        prop_assert_eq!(m.unresolved_byzantine, 0);
        prop_assert_eq!(
            driver.service().suspicion().max_score(),
            0.0,
            "suspicion accumulated on a lossless honest network"
        );
        prop_assert!(driver.service().suspicion().implicated().is_empty());
        prop_assert!(driver.service().quarantined_switches().is_empty());
    }

    /// Traffic loss makes residual noise — isolated anomalous rounds and
    /// transient suspicion are fair — but diffuse noise must never be
    /// pinned on a single switch: no localization, no quarantine.
    #[test]
    fn noisy_honest_network_is_never_quarantined(
        loss in 0.0f64..0.03,
        drop_prob in 0.0f64..0.15,
        reorder_prob in 0.0f64..0.15,
        churn in proptest::bool::ANY,
        seed in 0u64..1_000,
    ) {
        let churn_period = if churn { Some(3) } else { None };
        let driver = run(honest_scenario(loss, drop_prob, reorder_prob, churn_period, seed));
        let m = *driver.service().metrics();
        prop_assert_eq!(
            m.liars_localized, 0,
            "LOO pinned honest loss noise on a switch"
        );
        prop_assert_eq!(m.switch_quarantines, 0, "honest switch quarantined");
        prop_assert!(driver.service().quarantined_switches().is_empty());
    }
}
