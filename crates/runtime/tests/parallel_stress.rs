//! Scheduling stress for `detect_parallel`: hammer the work-claim loop
//! with many worker counts and repeated runs and require bit-identical
//! verdicts against the sequential path every time.
//!
//! This is the plain-threads companion to the loom model
//! (`tests/loom_model.rs`): loom proves the claim loop correct over every
//! interleaving of a small instance; this test runs the real code on real
//! threads enough times that a refactor which breaks slot publication or
//! work claiming fails fast. It is also the target the CI `soundness`
//! job runs under ThreadSanitizer.

use foces::{Detector, Fcm, SlicedFcm};
use foces_controlplane::{provision, uniform_flows, RuleGranularity};
use foces_dataplane::LossModel;
use foces_net::generators::ring;
use foces_runtime::detect_parallel;

#[test]
fn repeated_runs_with_skewed_worker_counts_stay_deterministic() {
    let topo = ring(8);
    let flows = uniform_flows(&topo, 240_000.0);
    let mut dep = provision(topo, &flows, RuleGranularity::PerFlowPair).unwrap();
    let fcm = Fcm::from_view(&dep.view);
    let sliced = SlicedFcm::from_fcm(&fcm);
    dep.replay_traffic(&mut LossModel::sampled(0.03, 11));
    let counters = dep.dataplane.collect_counters();
    let detector = Detector::default();
    let sequential = sliced.detect(&detector, &counters).unwrap();
    // Worker counts below, at, and far above the slice count, repeated so
    // the OS scheduler gets many chances to produce a fresh interleaving.
    for round in 0..25 {
        for workers in [2, 3, 7, 8, 32] {
            let parallel = detect_parallel(&sliced, &detector, &counters, workers).unwrap();
            assert_eq!(
                parallel, sequential,
                "divergence at round {round}, workers {workers}"
            );
        }
    }
}
