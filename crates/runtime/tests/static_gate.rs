//! Static verification gate, end to end: a controller update that
//! introduces a forwarding loop mid-run must surface as a *static
//! violation* on the epoch after the journal drains — with the exact
//! cycle and a concrete counterexample header — while the anomaly
//! detector keeps scoring the uncompromised remainder and never raises
//! an alarm. A broken configuration is a configuration bug, not a
//! compromised switch.

use foces::AlarmState;
use foces_controlplane::{provision, uniform_flows, RuleGranularity};
use foces_dataplane::{pair_header, pair_match, Action, LossModel, Rule};
use foces_net::generators::ring;
use foces_net::Node;
use foces_runtime::{DetectionMode, FaultProfile, RuntimeConfig, RuntimeService, SimTransport};
use foces_verify::FindingKind;

#[test]
fn churn_introduced_loop_is_a_static_violation_not_an_alarm() {
    let topo = ring(4);
    let flows = uniform_flows(&topo, 12_000.0);
    let mut dep = provision(topo, &flows, RuleGranularity::PerFlowPair).unwrap();
    let transport = SimTransport::new(1, FaultProfile::default());
    let mut svc =
        RuntimeService::with_sim_transport(&dep.view, transport, RuntimeConfig::default());
    assert!(svc.verification().is_clean(), "pre-flight must pass");
    assert!(svc.static_touched().is_empty());

    // Epoch 0: healthy, full detection.
    dep.dataplane.reset_counters();
    dep.replay_traffic(&mut LossModel::none());
    let r0 = svc.run_epoch(&dep.dataplane, &dep.view).unwrap();
    assert_eq!(r0.mode, DetectionMode::Full);
    assert!(!r0.verified);
    assert_eq!(r0.static_violations, 0);

    // A controller update gone wrong: a high-priority "hardening" rule
    // that bounces one pair back the way it came — a two-switch
    // forwarding loop, journaled on both planes like any other update.
    let fi = dep
        .expected_paths
        .iter()
        .position(|p| p.len() >= 2)
        .expect("ring(4) has multi-hop pairs");
    let spec = dep.flows[fi];
    let path = dep.expected_paths[fi].clone();
    let back = dep
        .view
        .topology()
        .port_towards(Node::Switch(path[1]), Node::Switch(path[0]))
        .unwrap();
    dep.install_hardening(
        path[1],
        Rule::new(pair_match(spec.src, spec.dst), 99, Action::Forward(back)),
    );

    // Epoch 1: the churn epoch. Reconciled detection, then the FCM
    // rebuild re-verifies the view and finds the loop.
    dep.dataplane.reset_counters();
    dep.replay_traffic(&mut LossModel::none());
    let r1 = svc.run_epoch(&dep.dataplane, &dep.view).unwrap();
    assert!(
        matches!(r1.mode, DetectionMode::Reconciled { .. }),
        "{r1:?}"
    );
    assert!(r1.verified, "the rebuild must re-verify the new view");
    assert!(r1.static_violations > 0, "the loop must be found");
    assert!(!r1.anomalous(), "a config loop is not a forwarding anomaly");

    let report = svc.verification();
    assert!(report.loops() >= 1, "{}", report.summary());
    let finding = report
        .of_kind(FindingKind::ForwardingLoop)
        .next()
        .expect("loop finding");
    assert_eq!(
        finding.header,
        Some(pair_header(spec.src, spec.dst)),
        "the counterexample is the rerouted pair's own header"
    );
    assert!(
        !svc.static_touched().is_empty(),
        "the cycle's rules must be quarantined"
    );

    // Epoch 2: no new churn, but the poisoned rules keep forcing the
    // reconciled path — looping counters never feed the anomaly index.
    dep.dataplane.reset_counters();
    dep.replay_traffic(&mut LossModel::none());
    let r2 = svc.run_epoch(&dep.dataplane, &dep.view).unwrap();
    assert!(
        matches!(r2.mode, DetectionMode::Reconciled { .. }),
        "{r2:?}"
    );
    assert!(!r2.verified, "no rebuild without a new generation");
    assert!(r2.static_violations > 0, "the findings persist");
    assert!(!r2.anomalous());
    assert_eq!(r2.state, AlarmState::Normal);

    let m = svc.metrics();
    assert_eq!(m.alarms_raised, 0, "static violations never raise alarms");
    assert!(m.verify_passes >= 2, "pre-flight plus the rebuild re-check");
    assert!(m.static_violations > 0);
    // The epoch log carries the verification keys on the existing lines.
    assert!(svc.log().lines()[1].contains("\"verified\":true"));
    assert!(!svc.log().lines()[1].contains("\"static_violations\":0"));
}
