//! Dependency-free ASCII charts for experiment results.
//!
//! The experiment binaries emit CSV; [`AsciiChart`] turns the series back
//! into something a human can eyeball in a terminal or paste into an
//! issue — no plotting stack required.

use std::fmt::Write as _;

/// One named series of `(x, y)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Data points (need not be sorted).
    pub points: Vec<(f64, f64)>,
}

/// A multi-series scatter chart rendered to monospace text.
///
/// Each series gets its own glyph; axes are annotated with data ranges;
/// `log_y` plots `log10(y)` (clamping non-positive values to the smallest
/// positive y in the data).
///
/// # Example
///
/// ```
/// use foces_experiments::{AsciiChart, Series};
///
/// let chart = AsciiChart::new("demo", 40, 10).with_series(vec![Series {
///     label: "line".into(),
///     points: (0..10).map(|i| (i as f64, i as f64 * 2.0)).collect(),
/// }]);
/// let text = chart.render();
/// assert!(text.contains("demo"));
/// assert!(text.contains("line"));
/// ```
#[derive(Debug, Clone)]
pub struct AsciiChart {
    title: String,
    width: usize,
    height: usize,
    log_y: bool,
    series: Vec<Series>,
}

const GLYPHS: [char; 8] = ['o', 'x', '+', '*', '#', '@', '%', '&'];

impl AsciiChart {
    /// Creates an empty chart with a plot area of `width` x `height`
    /// characters (both clamped to at least 8 x 4).
    pub fn new(title: impl Into<String>, width: usize, height: usize) -> Self {
        AsciiChart {
            title: title.into(),
            width: width.max(8),
            height: height.max(4),
            log_y: false,
            series: Vec::new(),
        }
    }

    /// Plots `log10(y)` instead of `y`.
    pub fn log_y(mut self) -> Self {
        self.log_y = true;
        self
    }

    /// Adds series (chainable).
    pub fn with_series(mut self, series: Vec<Series>) -> Self {
        self.series.extend(series);
        self
    }

    /// Renders the chart. Returns a note instead of a plot when there are
    /// no points at all.
    pub fn render(&self) -> String {
        let mut points_all: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().copied())
            .filter(|(x, y)| x.is_finite() && y.is_finite())
            .collect();
        if points_all.is_empty() {
            return format!("{}: (no data)\n", self.title);
        }
        let min_pos_y = points_all
            .iter()
            .map(|&(_, y)| y)
            .filter(|&y| y > 0.0)
            .fold(f64::INFINITY, f64::min);
        let ty = |y: f64| -> f64 {
            if self.log_y {
                y.max(if min_pos_y.is_finite() {
                    min_pos_y
                } else {
                    1e-9
                })
                .log10()
            } else {
                y
            }
        };
        for p in &mut points_all {
            p.1 = ty(p.1);
        }
        let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(x, y) in &points_all {
            x_min = x_min.min(x);
            x_max = x_max.max(x);
            y_min = y_min.min(y);
            y_max = y_max.max(y);
        }
        if x_max == x_min {
            x_max = x_min + 1.0;
        }
        if y_max == y_min {
            y_max = y_min + 1.0;
        }
        let mut grid = vec![vec![' '; self.width]; self.height];
        for (si, s) in self.series.iter().enumerate() {
            let glyph = GLYPHS[si % GLYPHS.len()];
            for &(x, y) in &s.points {
                if !x.is_finite() || !y.is_finite() {
                    continue;
                }
                let yv = ty(y);
                let col =
                    ((x - x_min) / (x_max - x_min) * (self.width - 1) as f64).round() as usize;
                let row =
                    ((yv - y_min) / (y_max - y_min) * (self.height - 1) as f64).round() as usize;
                let row = self.height - 1 - row.min(self.height - 1);
                grid[row][col.min(self.width - 1)] = glyph;
            }
        }
        let fmt_val = |v: f64| -> String {
            let real = if self.log_y { 10f64.powf(v) } else { v };
            if real.abs() >= 1000.0 {
                format!("{real:.0}")
            } else {
                format!("{real:.2}")
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}{}",
            self.title,
            if self.log_y { "  [log y]" } else { "" }
        );
        let y_top = fmt_val(y_max);
        let y_bot = fmt_val(y_min);
        let label_w = y_top.len().max(y_bot.len());
        for (i, row) in grid.iter().enumerate() {
            let label = if i == 0 {
                format!("{y_top:>label_w$}")
            } else if i == self.height - 1 {
                format!("{y_bot:>label_w$}")
            } else {
                " ".repeat(label_w)
            };
            let line: String = row.iter().collect();
            let _ = writeln!(out, "{label} |{line}|");
        }
        let x_lo = format!("{x_min:.6}");
        let x_lo = x_lo.trim_end_matches('0').trim_end_matches('.');
        let x_hi = format!("{x_max:.6}");
        let x_hi = x_hi.trim_end_matches('0').trim_end_matches('.');
        let pad = self.width.saturating_sub(x_lo.len() + x_hi.len()).max(1);
        let _ = writeln!(
            out,
            "{} {}{}{}",
            " ".repeat(label_w),
            x_lo,
            " ".repeat(pad),
            x_hi
        );
        for (si, s) in self.series.iter().enumerate() {
            let _ = writeln!(out, "    {} {}", GLYPHS[si % GLYPHS.len()], s.label);
        }
        out
    }
}

/// Parses one of this repo's experiment CSVs: skips `#` comments, treats
/// the first remaining line as a header, and returns `(header, rows)`.
pub fn parse_csv(text: &str) -> (Vec<String>, Vec<Vec<String>>) {
    let mut lines = text
        .lines()
        .filter(|l| !l.trim_start().starts_with('#') && !l.trim().is_empty());
    let header: Vec<String> = lines
        .next()
        .map(|h| h.split(',').map(|c| c.trim().to_string()).collect())
        .unwrap_or_default();
    let rows = lines
        .map(|l| l.split(',').map(|c| c.trim().to_string()).collect())
        .collect();
    (header, rows)
}

/// Looks up a column index by name.
pub fn column(header: &[String], name: &str) -> Option<usize> {
    header.iter().position(|h| h == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_points_in_the_right_corners() {
        let chart = AsciiChart::new("corners", 20, 6).with_series(vec![Series {
            label: "pts".into(),
            points: vec![(0.0, 0.0), (10.0, 100.0)],
        }]);
        let text = chart.render();
        let lines: Vec<&str> = text.lines().collect();
        // Top row holds the max point (right edge), bottom-1 the min (left).
        assert!(lines[1].trim_start().starts_with("100"));
        assert!(lines[1].contains('o'));
        assert!(lines[6].contains('o'));
    }

    #[test]
    fn multiple_series_use_distinct_glyphs() {
        let chart = AsciiChart::new("two", 20, 6).with_series(vec![
            Series {
                label: "a".into(),
                points: vec![(0.0, 1.0)],
            },
            Series {
                label: "b".into(),
                points: vec![(1.0, 2.0)],
            },
        ]);
        let text = chart.render();
        assert!(text.contains('o'));
        assert!(text.contains('x'));
        assert!(text.contains("a\n") || text.contains("a "));
    }

    #[test]
    fn log_scale_compresses_large_ranges() {
        let chart = AsciiChart::new("log", 20, 8)
            .log_y()
            .with_series(vec![Series {
                label: "t".into(),
                points: vec![(0.0, 1.0), (1.0, 10.0), (2.0, 100.0), (3.0, 1000.0)],
            }]);
        let text = chart.render();
        assert!(text.contains("[log y]"));
        // With log scaling the four points occupy four distinct rows.
        let rows_with_glyph = text.lines().filter(|l| l.contains('o')).count();
        assert!(rows_with_glyph >= 3, "{text}");
    }

    #[test]
    fn empty_chart_degrades_gracefully() {
        let chart = AsciiChart::new("nothing", 20, 6);
        assert!(chart.render().contains("(no data)"));
        let nan_chart = AsciiChart::new("nan", 20, 6).with_series(vec![Series {
            label: "bad".into(),
            points: vec![(f64::NAN, 1.0)],
        }]);
        assert!(nan_chart.render().contains("(no data)"));
    }

    #[test]
    fn csv_parsing_skips_comments() {
        let text = "# comment\na,b,c\n1,2,3\n# mid\n4,5,6\n";
        let (header, rows) = parse_csv(text);
        assert_eq!(header, vec!["a", "b", "c"]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1], vec!["4", "5", "6"]);
        assert_eq!(column(&header, "b"), Some(1));
        assert_eq!(column(&header, "z"), None);
    }
}
