//! **Fig. 9** — detection precision vs packet loss rate for 1, 2, and 3
//! modified rules.
//!
//! Protocol (paper §VI-E): threshold fixed at T = 3.5; for each loss rate
//! and each number of modified rules, average precision TP/(TP+FP) over 50
//! runs (mixed anomalous and normal trials).
//!
//! Expected shape: precision improves with more modified rules (stronger
//! signal) and decreases with loss (more FPs), staying above 90 % for
//! loss ≤ 10 %.
//!
//! Set `FOCES_TRIALS` to override the per-class trial count (default 50).

use foces::Detector;
use foces_controlplane::RuleGranularity;
use foces_experiments::{paper_topologies, Confusion, Testbed};

fn main() {
    let trials: usize = std::env::var("FOCES_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50);
    let threshold = 3.5;
    let losses = [0.0, 0.05, 0.10, 0.15, 0.20, 0.25];
    println!("# Fig. 9: precision vs loss, T = {threshold}, {trials} runs per class per point");
    println!("topology,loss_pct,modified_rules,precision,tp,fp");
    let _ = Detector::with_threshold(threshold); // threshold applied via Confusion
    for (name, topo) in paper_topologies() {
        let tb = Testbed::build(topo, RuleGranularity::PerFlowPair);
        for &loss in &losses {
            for modified in [1usize, 2, 3] {
                let mut samples = Vec::with_capacity(2 * trials);
                for t in 0..trials {
                    let base = (modified * 10_000 + t) as u64;
                    let (normal, _) = tb.round(loss, 0, 2 * base);
                    samples.push((tb.anomaly_index(&normal), false));
                    let (bad, _) = tb.round(loss, modified, 2 * base + 1);
                    samples.push((tb.anomaly_index(&bad), true));
                }
                let c = Confusion::at_threshold(&samples, threshold);
                println!(
                    "{name},{},{modified},{:.4},{},{}",
                    (loss * 100.0) as u32,
                    c.precision(),
                    c.tp,
                    c.fp
                );
            }
        }
        eprintln!("# finished {name}");
    }
}
