//! **Fig. 10** — detection accuracy with and without slicing at each
//! method's optimal threshold.
//!
//! Protocol (paper §VI-F): per topology, run labelled trials, sweep the
//! threshold from 0 to 100 for both the baseline (Algorithm 1) and the
//! sliced detector (Algorithm 2), and report each method's best accuracy
//! (TP+TN)/(P+N).
//!
//! Expected shape: slicing matches or beats the baseline (the paper sees
//! slicing win everywhere except BCube(1,4)), and by Theorem 3 never
//! detects less at matched noiseless settings.
//!
//! Set `FOCES_TRIALS` (default 30) and `FOCES_LOSS` (default 0.25).

use foces_controlplane::RuleGranularity;
use foces_experiments::{paper_topologies, Confusion, Testbed};

fn main() {
    let trials: usize = std::env::var("FOCES_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30);
    let loss: f64 = std::env::var("FOCES_LOSS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.25);
    println!(
        "# Fig. 10: best accuracy, baseline vs sliced, loss {}%, {trials} trials per class",
        loss * 100.0
    );
    println!("topology,method,best_accuracy,best_threshold");
    for (name, topo) in paper_topologies() {
        let tb = Testbed::build(topo, RuleGranularity::PerFlowPair);
        let mut base_samples = Vec::with_capacity(2 * trials);
        let mut sliced_samples = Vec::with_capacity(2 * trials);
        for t in 0..trials {
            let (normal, _) = tb.round(loss, 0, 2 * t as u64);
            base_samples.push((tb.anomaly_index(&normal), false));
            sliced_samples.push((tb.sliced_anomaly_index(&normal), false));
            let (bad, _) = tb.round(loss, 1, 2 * t as u64 + 1);
            base_samples.push((tb.anomaly_index(&bad), true));
            sliced_samples.push((tb.sliced_anomaly_index(&bad), true));
        }
        for (method, samples) in [("baseline", &base_samples), ("sliced", &sliced_samples)] {
            let (best_t, best_acc) = sweep_best(samples);
            println!("{name},{method},{best_acc:.4},{best_t}");
        }
        eprintln!("# finished {name}");
    }
}

/// Sweeps thresholds 0.5..100 and returns `(threshold, accuracy)` of the
/// most accurate point (first maximum wins).
fn sweep_best(samples: &[(f64, bool)]) -> (f64, f64) {
    let mut best = (0.5, 0.0);
    let mut thresholds: Vec<f64> = (1..=40).map(|t| t as f64 * 0.5).collect();
    thresholds.extend((21..=100).map(|t| t as f64));
    for t in thresholds {
        let acc = Confusion::at_threshold(samples, t).accuracy();
        if acc > best.1 {
            best = (t, acc);
        }
    }
    best
}
