//! **Table I** — parameters of the four evaluation topologies.
//!
//! Paper values: Stanford 26/26/650/1300, FatTree(4) 20/16/240/556,
//! BCube(1,4) 24/16/240/597, DCell(1,4) 25/20/380/859.
//!
//! Switches, hosts, and flows reproduce exactly. Rule counts depend on how
//! the controller compiles routes (the paper does not specify Floodlight's
//! exact rule shape); both of our granularities are reported —
//! per-flow-pair (one rule per flow per hop, Floodlight-reactive-style) and
//! per-destination (aggregated). See EXPERIMENTS.md for the comparison.

use foces::Fcm;
use foces_controlplane::{provision, uniform_flows, RuleGranularity};
use foces_experiments::paper_topologies;

fn main() {
    println!("# Table I: topology parameters");
    println!(
        "{:<12} {:>9} {:>7} {:>7} {:>12} {:>12} {:>10}",
        "topology", "switches", "hosts", "flows", "rules(pair)", "rules(dst)", "fcm nnz"
    );
    for (name, topo) in paper_topologies() {
        let switches = topo.switch_count();
        let hosts = topo.host_count();
        let flows = uniform_flows(&topo, 1.0);
        let pair_dep =
            provision(topo.clone(), &flows, RuleGranularity::PerFlowPair).expect("provision");
        let dst_dep = provision(topo, &flows, RuleGranularity::PerDestination).expect("provision");
        let fcm = Fcm::from_view(&pair_dep.view);
        println!(
            "{:<12} {:>9} {:>7} {:>7} {:>12} {:>12} {:>10}",
            name,
            switches,
            hosts,
            fcm.flow_count(),
            pair_dep.view.rule_count(),
            dst_dep.view.rule_count(),
            fcm.nnz()
        );
    }
    println!();
    println!("# paper reference: Stanford 26/26/650/1300, FatTree(4) 20/16/240/556,");
    println!("#                  BCube(1,4) 24/16/240/597, DCell(1,4) 25/20/380/859");
}
