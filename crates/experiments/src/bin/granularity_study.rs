//! **Reproduction study** (beyond the paper): healthy-network anomaly-index
//! distributions under the two rule-compilation granularities.
//!
//! The paper's threshold derivation (§IV-A) predicts a healthy index below
//! ≈ 4.4. This study shows the prediction holds for **per-flow rules**
//! (Floodlight reactive — the paper's testbed) but *not* for aggregated
//! per-destination rules, where loss residuals concentrate on heavily
//! shared rules and push the healthy index to 6–10. Operators deploying
//! FOCES on aggregated rule sets must re-derive their threshold; this
//! binary prints the data to do it (healthy index quantiles per topology,
//! granularity, and loss rate).

use foces_controlplane::RuleGranularity;
use foces_experiments::{paper_topologies, Testbed};

fn main() {
    let trials: usize = std::env::var("FOCES_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30);
    println!("# healthy anomaly-index quantiles by rule granularity ({trials} rounds)");
    println!("topology,granularity,loss_pct,p10,p50,p90,max");
    for (name, topo) in paper_topologies() {
        for (glabel, g) in [
            ("per-pair", RuleGranularity::PerFlowPair),
            ("per-dest", RuleGranularity::PerDestination),
        ] {
            let tb = Testbed::build(topo.clone(), g);
            for loss in [0.0, 0.05, 0.10] {
                let mut ais: Vec<f64> = (0..trials)
                    .map(|t| {
                        let (c, _) = tb.round(loss, 0, t as u64);
                        tb.anomaly_index(&c)
                    })
                    .collect();
                ais.sort_by(|a, b| a.partial_cmp(b).expect("indices are not NaN"));
                let q = |p: f64| ais[((ais.len() - 1) as f64 * p).round() as usize];
                println!(
                    "{name},{glabel},{},{:.2},{:.2},{:.2},{:.2}",
                    (loss * 100.0) as u32,
                    q(0.10),
                    q(0.50),
                    q(0.90),
                    ais[ais.len() - 1]
                );
            }
        }
        eprintln!("# finished {name}");
    }
    println!("# reading: per-pair medians sit well below the default threshold 4.5;");
    println!("# per-dest medians exceed it — aggregation needs a recalibrated threshold.");
    println!("# Stanford per-dest degenerates to AI=inf: with one host per switch its FCM");
    println!("# is nearly square (676 rules x 650 flows), the least-squares fit");
    println!("# interpolates the noise, the residual median collapses to zero, and the");
    println!("# max/median statistic loses meaning. FOCES needs rules >> flows.");
}
