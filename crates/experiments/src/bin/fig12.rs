//! **Fig. 12** — detection time vs number of flows, baseline vs slicing,
//! on FatTree(8).
//!
//! Protocol (paper §VI-F): provision increasing numbers of flows (random
//! subsets of the 128×127 host pairs) on FatTree(8) and wall-clock one
//! detection round of the baseline (Algorithm 1, direct normal-equation
//! solve) against the sliced detector (Algorithm 2).
//!
//! Expected shape: the baseline's time grows roughly cubically with the
//! number of distinct flow columns while slicing grows far slower;
//! at the largest point slicing takes a small fraction (< 20 % in the
//! paper) of the baseline.
//!
//! Differences from the paper, documented in EXPERIMENTS.md: rules are
//! compiled per destination so that rules aggregate flows (with per-flow
//! rules the normal-equation matrix is diagonal and the baseline cost
//! collapses — our fluid testbed is "too clean" for the paper's timing
//! story otherwise), and absolute times are not comparable to the paper's
//! Python/NumPy prototype.
//!
//! The default sweep stops at 3000 flows (~30 s total: the paper-literal
//! baseline is deliberately cubic); `FOCES_FULL=1` extends it to the
//! paper's 12000-flow point (several minutes for the dense inversions).

use foces::{Detector, EquationSystem, Fcm, SlicedFcm, SolverKind};
use foces_controlplane::{provision, uniform_flows, FlowSpec, RuleGranularity};
use foces_dataplane::LossModel;
use foces_net::generators::fattree;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let full = std::env::var("FOCES_FULL")
        .map(|v| v == "1")
        .unwrap_or(false);
    let mut sweep = vec![250usize, 500, 1000, 2000, 3000];
    if full {
        sweep.extend([4000, 6000, 9000, 12000]);
    }
    println!("# Fig. 12: detection time vs flows, FatTree(8), per-destination rules");
    println!("# baseline = paper-literal dense (H'H)^-1 pipeline; sliced = Algorithm 2;");
    println!("# direct/cgls = this reproduction's structure-aware extensions");
    println!("flows,unique_columns,rules,baseline_ms,sliced_ms,direct_ms,cgls_ms,fcm_build_ms,slice_build_ms");
    let topo = fattree(8);
    let all_flows: Vec<FlowSpec> = uniform_flows(&topo, 16256.0 * 1000.0);
    let mut rng = StdRng::seed_from_u64(99);
    for &n in &sweep {
        let mut flows = all_flows.clone();
        flows.shuffle(&mut rng);
        flows.truncate(n);
        let mut dep = provision(topo.clone(), &flows, RuleGranularity::PerDestination)
            .expect("fattree(8) provisions");

        let t0 = Instant::now();
        let fcm = Fcm::from_view(&dep.view);
        let fcm_build = t0.elapsed();

        let t0 = Instant::now();
        let sliced = SlicedFcm::from_fcm(&fcm);
        let slice_build = t0.elapsed();

        // One healthy collection round.
        let mut loss = LossModel::none();
        dep.replay_traffic(&mut loss);
        let counters = dep.dataplane.collect_counters();

        // Paper baseline: the literal (HᵀH)⁻¹ dense pipeline of Eq. (4).
        let naive_detector = Detector::new(4.5, EquationSystem::new(SolverKind::DenseNaive));
        let t0 = Instant::now();
        let baseline_verdict = naive_detector.detect(&fcm, &counters).expect("solve");
        let baseline = t0.elapsed();

        // Algorithm 2: per-switch slices (small sub-systems, default solver).
        let detector = Detector::default();
        let t0 = Instant::now();
        let sliced_verdict = sliced.detect(&detector, &counters).expect("solve");
        let sliced_time = t0.elapsed();

        // Reproduction extensions: structure-aware direct and sparse CGLS.
        let direct_detector = Detector::new(4.5, EquationSystem::new(SolverKind::DirectDense));
        let t0 = Instant::now();
        direct_detector.detect(&fcm, &counters).expect("solve");
        let direct_time = t0.elapsed();
        let cgls_detector = Detector::new(
            4.5,
            EquationSystem::new(SolverKind::IterativeSparse {
                tol: 1e-10,
                max_iter: 5000,
            }),
        );
        let t0 = Instant::now();
        cgls_detector.detect(&fcm, &counters).expect("solve");
        let cgls_time = t0.elapsed();

        assert!(!baseline_verdict.anomalous && !sliced_verdict.anomalous);
        let unique = fcm.column_groups().basis.len();
        println!(
            "{n},{unique},{},{:.1},{:.1},{:.1},{:.1},{:.1},{:.1}",
            fcm.rule_count(),
            baseline.as_secs_f64() * 1e3,
            sliced_time.as_secs_f64() * 1e3,
            direct_time.as_secs_f64() * 1e3,
            cgls_time.as_secs_f64() * 1e3,
            fcm_build.as_secs_f64() * 1e3,
            slice_build.as_secs_f64() * 1e3
        );
    }
}
