//! **Fig. 7** — functional test: anomaly-index timeline on BCube(1,4).
//!
//! Protocol (paper §VI-C): run for 180 s with a detection round every 5 s
//! (36 rounds); at t = 60 s randomly modify one rule, at t = 120 s repair
//! it. Repeat for packet loss rates 0 %, 5 %, and 10 %. Threshold 4.5.
//!
//! Expected shape: the index sits near its noise floor outside the attack
//! window, jumps past the threshold inside it, and the normal/anomaly gap
//! narrows as the loss rate grows.

use foces::{Detector, Fcm};
use foces_controlplane::RuleGranularity;
use foces_dataplane::{inject_random_anomaly, AnomalyKind};
use foces_experiments::{replay, Testbed};
use foces_net::generators::bcube;
use rand::rngs::StdRng;
use rand::SeedableRng;

const ROUNDS: usize = 36; // 180 s at one detection per 5 s
const ATTACK_START: usize = 12; // t = 60 s
const ATTACK_END: usize = 24; // t = 120 s

fn main() {
    println!("# Fig. 7: anomaly index over time, BCube(1,4), threshold 4.5");
    println!("loss_pct,time_s,anomaly_index,flagged,attack_active");
    let detector = Detector::default();
    for loss in [0.0, 0.05, 0.10] {
        let tb = Testbed::build(bcube(1, 4), RuleGranularity::PerFlowPair);
        let fcm = Fcm::from_view(&tb.dep.view);
        let mut dp = tb.dep.dataplane.clone();
        let mut rng = StdRng::seed_from_u64(7);
        let mut applied = None;
        for round in 0..ROUNDS {
            if round == ATTACK_START {
                applied = inject_random_anomaly(&mut dp, AnomalyKind::PathDeviation, &mut rng, &[]);
            }
            if round == ATTACK_END {
                if let Some(a) = applied.take() {
                    a.revert(&mut dp).expect("rule still present");
                }
            }
            let counters = replay(&mut dp, &tb.dep, loss, round as u64 + 1000);
            let verdict = detector.detect(&fcm, &counters).expect("counters match");
            let attack = (ATTACK_START..ATTACK_END).contains(&round);
            println!(
                "{},{},{:.3},{},{}",
                (loss * 100.0) as u32,
                (round + 1) * 5,
                verdict.anomaly_index.min(1e6), // render ∞ as a large cap
                verdict.anomalous as u8,
                attack as u8
            );
        }
    }
    println!("# expected: flagged=1 exactly while attack_active=1; gap narrows with loss");
}
