//! **Reproduction study** (the paper's future work #1, quantified):
//! how well does per-slice anomaly-index ranking localize the compromised
//! switch?
//!
//! Protocol: per topology and loss rate, inject one path deviation, run the
//! sliced detector, rank switches by slice anomaly index
//! ([`foces::localize`]), and score where the culprit lands. Because the
//! counter discrepancy physically materializes where the deviated traffic
//! *goes* (and where downstream rules starve), the natural target set is
//! the culprit **and its direct neighbors**; both strict (culprit only)
//! and vicinity hit-rates are reported, at ranks 1 and 3.

use foces::{localize, localize_differential};
use foces_controlplane::RuleGranularity;
use foces_dataplane::LossModel;
use foces_experiments::{paper_topologies, Testbed};
use foces_net::{Node, SwitchId};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let trials: usize = std::env::var("FOCES_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40);
    println!("# localization study: culprit rank in per-slice anomaly ordering");
    println!("# ({trials} detected-anomaly trials per point)");
    println!(
        "topology,loss_pct,slice_strict_top1,slice_strict_top3,slice_vicinity_top1,\
         slice_vicinity_top3,diff_strict_top1,detected"
    );
    for (name, topo) in paper_topologies() {
        let tb = Testbed::build(topo, RuleGranularity::PerFlowPair);
        for loss in [0.0, 0.05, 0.10] {
            let mut strict1 = 0;
            let mut strict3 = 0;
            let mut vicinity1 = 0;
            let mut vicinity3 = 0;
            let mut diff1 = 0;
            let mut detected = 0;
            let mut seed = 0u64;
            while detected < trials && seed < 10 * trials as u64 {
                seed += 1;
                // Inject one deviation on a clone and replay.
                let mut dp = tb.dep.dataplane.clone();
                let mut rng = StdRng::seed_from_u64(seed);
                let Some(applied) = foces_dataplane::inject_random_anomaly(
                    &mut dp,
                    foces_dataplane::AnomalyKind::PathDeviation,
                    &mut rng,
                    &[],
                ) else {
                    continue;
                };
                dp.reset_counters();
                let mut lm = if loss > 0.0 {
                    LossModel::sampled(loss, seed)
                } else {
                    LossModel::none()
                };
                for f in &tb.dep.flows {
                    dp.inject(
                        f.src,
                        foces_dataplane::pair_header(f.src, f.dst),
                        f.rate,
                        &mut lm,
                    );
                }
                let counters = dp.collect_counters();
                let verdict = tb
                    .sliced
                    .detect(&foces::Detector::default(), &counters)
                    .expect("solve");
                if !verdict.anomalous {
                    continue; // undetectable deviation: nothing to localize
                }
                detected += 1;
                let ranking = localize(&verdict);
                let culprit = applied.rule.switch;
                let neighbors: Vec<SwitchId> = tb
                    .dep
                    .view
                    .topology()
                    .adj(Node::Switch(culprit))
                    .iter()
                    .filter_map(|a| match a.neighbor {
                        Node::Switch(s) => Some(s),
                        Node::Host(_) => None,
                    })
                    .collect();
                let in_vicinity = |s: SwitchId| s == culprit || neighbors.contains(&s);
                let top: Vec<SwitchId> = ranking.iter().take(3).map(|r| r.switch).collect();
                if top.first() == Some(&culprit) {
                    strict1 += 1;
                }
                if top.contains(&culprit) {
                    strict3 += 1;
                }
                if top.first().copied().map(in_vicinity).unwrap_or(false) {
                    vicinity1 += 1;
                }
                if top.iter().any(|&s| in_vicinity(s)) {
                    vicinity3 += 1;
                }
                // Differential walk (tolerance above the per-hop loss).
                let diff = localize_differential(&tb.fcm, &counters, 2.5 * loss + 0.05);
                if diff.first().map(|s| s.switch) == Some(culprit) {
                    diff1 += 1;
                }
            }
            let pct = |n: usize| 100.0 * n as f64 / detected.max(1) as f64;
            println!(
                "{name},{},{:.0},{:.0},{:.0},{:.0},{:.0},{detected}",
                (loss * 100.0) as u32,
                pct(strict1),
                pct(strict3),
                pct(vicinity1),
                pct(vicinity3),
                pct(diff1)
            );
        }
        eprintln!("# finished {name}");
    }
    println!("# reading: slice ranking names the VICINITY (the culprit or the switch it");
    println!("# redirected onto) with ~100% top-1; the differential counter walk");
    println!("# (localize_differential) pins the culprit itself.");
}
