//! **Fig. 8** — ROC curves: TP rate vs FP rate per topology and loss rate.
//!
//! Protocol (paper §VI-D): for each of the four topologies and packet loss
//! rates 0–25 %, run labelled trials (one randomly modified rule vs none)
//! and sweep the detection threshold from 1 to 100, plotting the TP rate
//! against the FP rate.
//!
//! Expected shape: near-perfect curves for loss ≤ 10 %, visible degradation
//! above, but always better than the random-guess diagonal. At threshold
//! 4.5 and 10 % loss the paper reports ≈100 % TP with ≈4.3 % FP on DCell.
//!
//! Set `FOCES_TRIALS` to override the per-class trial count (default 30).

use foces_controlplane::RuleGranularity;
use foces_experiments::{paper_topologies, Confusion, Testbed};

fn main() {
    let trials: usize = std::env::var("FOCES_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30);
    let losses = [0.0, 0.05, 0.10, 0.15, 0.20, 0.25];
    println!("# Fig. 8: ROC sweep, {trials} anomalous + {trials} normal trials per point");
    println!("topology,loss_pct,threshold,tp_rate,fp_rate");
    for (name, topo) in paper_topologies() {
        let tb = Testbed::build(topo, RuleGranularity::PerFlowPair);
        for &loss in &losses {
            // Labelled anomaly indices.
            let mut samples = Vec::with_capacity(2 * trials);
            for t in 0..trials {
                let (normal, _) = tb.round(loss, 0, 2 * t as u64);
                samples.push((tb.anomaly_index(&normal), false));
                let (bad, applied) = tb.round(loss, 1, 2 * t as u64 + 1);
                // A trial where injection found no eligible rule would be
                // unlabeled; the bundled topologies always have rules.
                assert_eq!(applied.len(), 1);
                samples.push((tb.anomaly_index(&bad), true));
            }
            let mut thresholds: Vec<f64> = (1..=20).map(|t| t as f64 * 0.5).collect();
            thresholds.extend((11..=100).map(|t| t as f64));
            for t in thresholds {
                let c = Confusion::at_threshold(&samples, t);
                println!(
                    "{name},{},{t},{:.4},{:.4}",
                    (loss * 100.0) as u32,
                    c.tpr(),
                    c.fpr()
                );
            }
        }
        eprintln!("# finished {name}");
    }
}
