//! **Fig. 11** — detection accuracy as a function of the threshold, with
//! and without slicing.
//!
//! Protocol (paper §VI-F): same labelled trials as Fig. 10, but the full
//! accuracy-vs-threshold curve from 0 to 100 is reported for both methods.
//!
//! Expected shape: both curves rise to a plateau and fall once the
//! threshold exceeds the anomalous indices; the sliced curve prefers a
//! **larger** threshold than the baseline (slicing concentrates the
//! anomaly signal, pushing anomalous indices higher).
//!
//! Set `FOCES_TRIALS` (default 30) and `FOCES_LOSS` (default 0.25).

use foces_controlplane::RuleGranularity;
use foces_experiments::{paper_topologies, Confusion, Testbed};

fn main() {
    let trials: usize = std::env::var("FOCES_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30);
    let loss: f64 = std::env::var("FOCES_LOSS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.25);
    println!(
        "# Fig. 11: accuracy vs threshold, loss {}%, {trials} trials per class",
        loss * 100.0
    );
    println!("topology,method,threshold,accuracy");
    for (name, topo) in paper_topologies() {
        let tb = Testbed::build(topo, RuleGranularity::PerFlowPair);
        let mut base_samples = Vec::with_capacity(2 * trials);
        let mut sliced_samples = Vec::with_capacity(2 * trials);
        for t in 0..trials {
            let (normal, _) = tb.round(loss, 0, 2 * t as u64);
            base_samples.push((tb.anomaly_index(&normal), false));
            sliced_samples.push((tb.sliced_anomaly_index(&normal), false));
            let (bad, _) = tb.round(loss, 1, 2 * t as u64 + 1);
            base_samples.push((tb.anomaly_index(&bad), true));
            sliced_samples.push((tb.sliced_anomaly_index(&bad), true));
        }
        let mut thresholds: Vec<f64> = (1..=40).map(|t| t as f64 * 0.5).collect();
        thresholds.extend((21..=100).map(|t| t as f64));
        for (method, samples) in [("baseline", &base_samples), ("sliced", &sliced_samples)] {
            for &t in &thresholds {
                let acc = Confusion::at_threshold(samples, t).accuracy();
                println!("{name},{method},{t},{acc:.4}");
            }
        }
        eprintln!("# finished {name}");
    }
}
