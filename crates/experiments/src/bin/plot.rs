//! Renders the recorded experiment CSVs (`results/*.csv`) as ASCII charts.
//!
//! ```sh
//! cargo run --release -p foces-experiments --bin plot            # all figures
//! cargo run --release -p foces-experiments --bin plot -- fig7    # one figure
//! ```

use foces_experiments::{column, parse_csv, AsciiChart, Series};

fn read(name: &str) -> Option<(Vec<String>, Vec<Vec<String>>)> {
    let path = format!("results/{name}.csv");
    match std::fs::read_to_string(&path) {
        Ok(text) => Some(parse_csv(&text)),
        Err(_) => {
            eprintln!("(skipping {name}: no {path}; run the {name} binary first)");
            None
        }
    }
}

fn f(s: &str) -> f64 {
    s.parse().unwrap_or(f64::NAN)
}

fn plot_fig7() {
    let Some((header, rows)) = read("fig7") else {
        return;
    };
    let (li, ti, ai) = (
        column(&header, "loss_pct").unwrap(),
        column(&header, "time_s").unwrap(),
        column(&header, "anomaly_index").unwrap(),
    );
    let mut series = Vec::new();
    for loss in ["0", "5", "10"] {
        let points: Vec<(f64, f64)> = rows
            .iter()
            .filter(|r| r[li] == loss)
            .map(|r| (f(&r[ti]), f(&r[ai]).max(0.01)))
            .collect();
        if !points.is_empty() {
            series.push(Series {
                label: format!("{loss}% loss"),
                points,
            });
        }
    }
    println!(
        "{}",
        AsciiChart::new("Fig. 7: anomaly index over time (attack 60-120s)", 64, 16)
            .log_y()
            .with_series(series)
            .render()
    );
}

fn plot_fig8() {
    let Some((header, rows)) = read("fig8") else {
        return;
    };
    let (topo_i, loss_i, tp_i, fp_i) = (
        column(&header, "topology").unwrap(),
        column(&header, "loss_pct").unwrap(),
        column(&header, "tp_rate").unwrap(),
        column(&header, "fp_rate").unwrap(),
    );
    for topo in ["Stanford", "DCell14"] {
        let mut series = Vec::new();
        for loss in ["5", "15", "25"] {
            let points: Vec<(f64, f64)> = rows
                .iter()
                .filter(|r| r[topo_i] == topo && r[loss_i] == loss)
                .map(|r| (f(&r[fp_i]), f(&r[tp_i])))
                .collect();
            if !points.is_empty() {
                series.push(Series {
                    label: format!("{loss}% loss"),
                    points,
                });
            }
        }
        println!(
            "{}",
            AsciiChart::new(
                format!("Fig. 8: ROC, {topo} (x = FP rate, y = TP rate)"),
                64,
                14
            )
            .with_series(series)
            .render()
        );
    }
}

fn plot_fig11() {
    let Some((header, rows)) = read("fig11") else {
        return;
    };
    let (topo_i, m_i, t_i, a_i) = (
        column(&header, "topology").unwrap(),
        column(&header, "method").unwrap(),
        column(&header, "threshold").unwrap(),
        column(&header, "accuracy").unwrap(),
    );
    let mut series = Vec::new();
    for method in ["baseline", "sliced"] {
        let points: Vec<(f64, f64)> = rows
            .iter()
            .filter(|r| r[topo_i] == "FatTree4" && r[m_i] == method && f(&r[t_i]) <= 20.0)
            .map(|r| (f(&r[t_i]), f(&r[a_i])))
            .collect();
        if !points.is_empty() {
            series.push(Series {
                label: method.to_string(),
                points,
            });
        }
    }
    println!(
        "{}",
        AsciiChart::new(
            "Fig. 11: accuracy vs threshold, FatTree4 (thresholds <= 20)",
            64,
            14
        )
        .with_series(series)
        .render()
    );
}

fn plot_fig12() {
    let Some((header, rows)) = read("fig12") else {
        return;
    };
    let fl = column(&header, "flows").unwrap();
    let mut series = Vec::new();
    for (col, label) in [
        ("baseline_ms", "paper-literal dense"),
        ("direct_ms", "structure-aware direct"),
        ("sliced_ms", "sliced (Alg. 2)"),
        ("cgls_ms", "CGLS"),
    ] {
        let ci = column(&header, col).unwrap();
        let points: Vec<(f64, f64)> = rows.iter().map(|r| (f(&r[fl]), f(&r[ci]))).collect();
        series.push(Series {
            label: label.to_string(),
            points,
        });
    }
    println!(
        "{}",
        AsciiChart::new("Fig. 12: detection time (ms) vs flows, FatTree(8)", 64, 16)
            .log_y()
            .with_series(series)
            .render()
    );
}

fn main() {
    let only: Option<String> = std::env::args().nth(1);
    let want = |name: &str| only.as_deref().is_none_or(|o| o == name);
    if want("fig7") {
        plot_fig7();
    }
    if want("fig8") {
        plot_fig8();
    }
    if want("fig11") {
        plot_fig11();
    }
    if want("fig12") {
        plot_fig12();
    }
}
