//! Shared harness for the experiment binaries that regenerate the paper's
//! tables and figures (one binary per table/figure, see `src/bin/`).
//!
//! The harness mirrors the paper's Mininet/Floodlight testbed (§VI-B):
//!
//! * the four topologies of Table I (plus FatTree(8) for Fig. 12);
//! * one flow per ordered host pair, uniform rates, fixed aggregate volume;
//! * per-flow rules ([`RuleGranularity::PerFlowPair`]) by default — the
//!   behaviour of Floodlight's reactive forwarding, and the regime in which
//!   the paper's folded-normal threshold analysis (healthy anomaly index
//!   below ≈ 4.4) holds; per-destination aggregation is exercised as an
//!   ablation;
//! * anomalies injected by randomly rewriting rule actions, detection run
//!   on freshly collected counters each round.

mod golden;
mod report;

pub use golden::{diff_csv, GoldenPolicy};
pub use report::{column, parse_csv, AsciiChart, Series};

use foces::{Detector, Fcm, SlicedFcm};
use foces_controlplane::{provision, uniform_flows, Deployment, RuleGranularity};
use foces_dataplane::{inject_random_anomaly, AnomalyKind, AppliedAnomaly, DataPlane, LossModel};
use foces_net::generators::{bcube, dcell, fattree, stanford};
use foces_net::Topology;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Packets per flow per collection interval used across experiments
/// (≈ a 2 Mb/s flow of 1500 B packets over the paper's 5 s interval).
pub const FLOW_RATE: f64 = 1000.0;

/// The counter-collection noise model used across experiments: 2 %
/// per-switch polling skew (±100 ms spread on a 5 s interval — the
/// statistics collector reads switches sequentially while traffic flows)
/// plus 0.5 % independent per-rule read jitter. See
/// [`foces_dataplane::CollectionNoise`].
pub fn collection_noise() -> foces_dataplane::CollectionNoise {
    foces_dataplane::CollectionNoise::default()
}

/// The four evaluation topologies of Table I.
pub fn paper_topologies() -> Vec<(&'static str, Topology)> {
    // Labels are comma-free so the experiment CSVs stay strictly parseable.
    vec![
        ("Stanford", stanford()),
        ("FatTree4", fattree(4)),
        ("BCube14", bcube(1, 4)),
        ("DCell14", dcell(1, 4)),
    ]
}

/// A provisioned network plus the FOCES structures built from its
/// controller view — everything one experiment trial needs.
pub struct Testbed {
    /// The provisioned deployment (data plane + controller view + flows).
    pub dep: Deployment,
    /// The flow-counter matrix built from the view.
    pub fcm: Fcm,
    /// The per-switch sliced FCM.
    pub sliced: SlicedFcm,
}

impl Testbed {
    /// Provisions `topo` with the all-pairs workload at [`FLOW_RATE`] per
    /// flow and builds the FCM and its slices.
    ///
    /// # Panics
    ///
    /// Panics if provisioning fails — the bundled topologies always route.
    pub fn build(topo: Topology, granularity: RuleGranularity) -> Self {
        let flows = uniform_flows(
            &topo,
            topo.host_count() as f64 * (topo.host_count() as f64 - 1.0) * FLOW_RATE,
        );
        let dep = provision(topo, &flows, granularity).expect("paper topologies provision");
        let fcm = Fcm::from_view(&dep.view);
        let sliced = SlicedFcm::from_fcm(&fcm);
        Testbed { dep, fcm, sliced }
    }

    /// One collection round on a **clone** of the data plane: optionally
    /// inject `modified_rules` random path deviations, replay all traffic
    /// under the given loss rate, and return the collected counter vector
    /// together with the applied anomalies.
    ///
    /// Cloning keeps the testbed reusable across trials; `seed` makes every
    /// trial reproducible.
    pub fn round(
        &self,
        loss_rate: f64,
        modified_rules: usize,
        seed: u64,
    ) -> (Vec<f64>, Vec<AppliedAnomaly>) {
        let mut dp = self.dep.dataplane.clone();
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
        let mut applied = Vec::new();
        for _ in 0..modified_rules {
            if let Some(a) =
                inject_random_anomaly(&mut dp, AnomalyKind::PathDeviation, &mut rng, &[])
            {
                applied.push(a);
            }
        }
        let counters = replay(&mut dp, &self.dep, loss_rate, seed);
        (counters, applied)
    }

    /// The baseline (Algorithm 1) anomaly index for a counter vector.
    ///
    /// # Panics
    ///
    /// Panics on solver failure — counters from [`Testbed::round`] always
    /// match the FCM.
    pub fn anomaly_index(&self, counters: &[f64]) -> f64 {
        Detector::default()
            .detect(&self.fcm, counters)
            .expect("testbed counters match the FCM")
            .anomaly_index
    }

    /// The sliced (Algorithm 2) maximum per-switch anomaly index.
    ///
    /// # Panics
    ///
    /// Panics on solver failure.
    pub fn sliced_anomaly_index(&self, counters: &[f64]) -> f64 {
        self.sliced
            .detect(&Detector::default(), counters)
            .expect("testbed counters match the FCM")
            .max_anomaly_index()
    }
}

/// Replays the deployment's flows through `dp` with sampled loss and
/// returns the collected counters. Exposed for binaries that manage their
/// own data-plane mutations (Fig. 7's timeline).
pub fn replay(dp: &mut DataPlane, dep: &Deployment, loss_rate: f64, seed: u64) -> Vec<f64> {
    let mut loss = if loss_rate > 0.0 {
        LossModel::sampled(loss_rate, seed.wrapping_mul(31).wrapping_add(7))
    } else {
        LossModel::none()
    };
    dp.reset_counters();
    for f in &dep.flows {
        let header = foces_dataplane::pair_header(f.src, f.dst);
        dp.inject(f.src, header, f.rate, &mut loss);
    }
    let mut sync_rng = StdRng::seed_from_u64(seed.wrapping_mul(0x5DEECE66D).wrapping_add(11));
    dp.collect_counters_realistic(&collection_noise(), &mut sync_rng)
}

/// Classification counts over a set of labelled trials.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Confusion {
    /// Anomalous trials flagged anomalous.
    pub tp: usize,
    /// Normal trials flagged anomalous.
    pub fp: usize,
    /// Normal trials passed as normal.
    pub tn: usize,
    /// Anomalous trials missed.
    pub fn_: usize,
}

impl Confusion {
    /// Builds the confusion counts for a threshold over labelled anomaly
    /// indices (`(index, is_anomalous)` pairs).
    pub fn at_threshold(samples: &[(f64, bool)], threshold: f64) -> Self {
        let mut c = Confusion::default();
        for &(ai, anomalous) in samples {
            match (ai > threshold, anomalous) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, false) => c.tn += 1,
                (false, true) => c.fn_ += 1,
            }
        }
        c
    }

    /// True-positive rate (recall); 0 when there are no positives.
    pub fn tpr(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// False-positive rate; 0 when there are no negatives.
    pub fn fpr(&self) -> f64 {
        ratio(self.fp, self.fp + self.tn)
    }

    /// Precision TP/(TP+FP); 1 when nothing was flagged (vacuous).
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            1.0
        } else {
            ratio(self.tp, self.tp + self.fp)
        }
    }

    /// Accuracy (TP+TN)/(P+N) — the paper's Fig. 10/11 metric.
    pub fn accuracy(&self) -> f64 {
        ratio(self.tp + self.tn, self.tp + self.fp + self.tn + self.fn_)
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_counts_and_rates() {
        let samples = [(10.0, true), (1.0, true), (0.5, false), (9.0, false)];
        let c = Confusion::at_threshold(&samples, 4.5);
        assert_eq!(
            c,
            Confusion {
                tp: 1,
                fp: 1,
                tn: 1,
                fn_: 1
            }
        );
        assert_eq!(c.tpr(), 0.5);
        assert_eq!(c.fpr(), 0.5);
        assert_eq!(c.precision(), 0.5);
        assert_eq!(c.accuracy(), 0.5);
    }

    #[test]
    fn empty_denominators_are_safe() {
        let c = Confusion::default();
        assert_eq!(c.tpr(), 0.0);
        assert_eq!(c.fpr(), 0.0);
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.accuracy(), 0.0);
    }

    #[test]
    fn testbed_round_is_reproducible() {
        let tb = Testbed::build(bcube(1, 4), RuleGranularity::PerFlowPair);
        let (c1, a1) = tb.round(0.05, 1, 42);
        let (c2, a2) = tb.round(0.05, 1, 42);
        assert_eq!(c1, c2);
        assert_eq!(a1, a2);
        let (c3, _) = tb.round(0.05, 1, 43);
        assert_ne!(c1, c3);
    }

    #[test]
    fn healthy_and_anomalous_indices_separate() {
        let tb = Testbed::build(bcube(1, 4), RuleGranularity::PerFlowPair);
        let (healthy, _) = tb.round(0.05, 0, 1);
        let (bad, applied) = tb.round(0.05, 1, 1);
        assert_eq!(applied.len(), 1);
        assert!(tb.anomaly_index(&healthy) < 4.5);
        assert!(tb.anomaly_index(&bad) > 4.5);
        assert!(tb.sliced_anomaly_index(&bad) > 4.5);
    }
}
