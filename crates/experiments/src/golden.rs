//! Tolerance-aware comparison of experiment CSVs against golden files.
//!
//! The experiment binaries are seeded and deterministic, so their outputs
//! can be pinned byte-for-byte — except for wall-clock columns (Fig. 12's
//! `*_ms` timings) and the float formatting itself, which this module
//! handles by parsing numeric cells and comparing with a combined
//! absolute/relative tolerance. Structural drift (different header, extra
//! or missing rows, a numeric cell turning into text) is always an error.

use crate::parse_csv;

/// Policy for comparing one experiment CSV against its golden file.
#[derive(Debug, Clone)]
pub struct GoldenPolicy {
    /// Absolute slack per numeric cell.
    pub abs_tol: f64,
    /// Relative slack per numeric cell (scaled by the golden magnitude).
    pub rel_tol: f64,
    /// Header names whose cells are not compared at all (machine-dependent
    /// columns such as wall-clock timings).
    pub skip_columns: Vec<String>,
}

impl Default for GoldenPolicy {
    /// Exact comparison (zero tolerance, no skipped columns).
    fn default() -> Self {
        GoldenPolicy {
            abs_tol: 0.0,
            rel_tol: 0.0,
            skip_columns: Vec::new(),
        }
    }
}

impl GoldenPolicy {
    /// Exact comparison, but ignoring every column whose name ends in
    /// `_ms` — the convention the experiment binaries use for wall-clock
    /// measurements.
    pub fn ignoring_timings(header: &[String]) -> Self {
        GoldenPolicy {
            skip_columns: header
                .iter()
                .filter(|h| h.ends_with("_ms"))
                .cloned()
                .collect(),
            ..GoldenPolicy::default()
        }
    }

    fn skips(&self, column_name: Option<&String>) -> bool {
        column_name.is_some_and(|n| self.skip_columns.contains(n))
    }
}

/// Compares `actual` CSV text against `golden` under `policy`.
///
/// Returns the list of mismatches (empty means the files agree). Comments
/// (`#` lines) and blank lines are ignored on both sides, so regenerated
/// files may reword their commentary freely; headers and data must match.
pub fn diff_csv(golden: &str, actual: &str, policy: &GoldenPolicy) -> Vec<String> {
    let (gh, grows) = parse_csv(golden);
    let (ah, arows) = parse_csv(actual);
    let mut errs = Vec::new();
    if gh != ah {
        errs.push(format!("header mismatch: golden {gh:?} vs actual {ah:?}"));
        return errs;
    }
    if grows.len() != arows.len() {
        errs.push(format!(
            "row count mismatch: golden {} vs actual {}",
            grows.len(),
            arows.len()
        ));
        return errs;
    }
    for (r, (grow, arow)) in grows.iter().zip(&arows).enumerate() {
        if grow.len() != arow.len() {
            errs.push(format!(
                "row {r}: cell count mismatch: golden {} vs actual {}",
                grow.len(),
                arow.len()
            ));
            continue;
        }
        for (c, (g, a)) in grow.iter().zip(arow).enumerate() {
            if policy.skips(gh.get(c)) {
                continue;
            }
            match (g.parse::<f64>(), a.parse::<f64>()) {
                (Ok(gv), Ok(av)) => {
                    let tol = policy.abs_tol + policy.rel_tol * gv.abs().max(av.abs());
                    let agree = if gv.is_finite() && av.is_finite() {
                        (gv - av).abs() <= tol
                    } else {
                        // NaN never matches; infinities must match exactly.
                        gv == av
                    };
                    if !agree {
                        errs.push(format!(
                            "row {r} col {} ({}): golden {g} vs actual {a} (tol {tol:.3e})",
                            c,
                            gh.get(c).map(String::as_str).unwrap_or("?"),
                        ));
                    }
                }
                _ => {
                    if g != a {
                        errs.push(format!(
                            "row {r} col {} ({}): golden {g:?} vs actual {a:?}",
                            c,
                            gh.get(c).map(String::as_str).unwrap_or("?"),
                        ));
                    }
                }
            }
        }
    }
    errs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_files_agree_and_comments_are_ignored() {
        let golden = "# old comment\na,b\n1,2.5\n";
        let actual = "# new comment, reworded\n\na,b\n1,2.5\n";
        assert!(diff_csv(golden, actual, &GoldenPolicy::default()).is_empty());
    }

    #[test]
    fn numeric_drift_within_tolerance_passes_outside_fails() {
        let golden = "x,y\n10,100.0\n";
        let near = "x,y\n10,100.4\n";
        let far = "x,y\n10,106.0\n";
        let policy = GoldenPolicy {
            rel_tol: 0.005,
            ..GoldenPolicy::default()
        };
        assert!(diff_csv(golden, near, &policy).is_empty());
        let errs = diff_csv(golden, far, &policy);
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains("col 1 (y)"), "{errs:?}");
    }

    #[test]
    fn exact_default_rejects_any_numeric_change() {
        let golden = "x\n1.000\n";
        // Same value, different formatting: parses equal, so it passes.
        assert!(diff_csv(golden, "x\n1.0\n", &GoldenPolicy::default()).is_empty());
        assert_eq!(
            diff_csv(golden, "x\n1.001\n", &GoldenPolicy::default()).len(),
            1
        );
    }

    #[test]
    fn structural_drift_is_always_an_error() {
        let golden = "a,b\n1,2\n3,4\n";
        let policy = GoldenPolicy {
            abs_tol: 1e9,
            ..GoldenPolicy::default()
        };
        assert!(!diff_csv(golden, "a,c\n1,2\n3,4\n", &policy).is_empty());
        assert!(!diff_csv(golden, "a,b\n1,2\n", &policy).is_empty());
        assert!(!diff_csv(golden, "a,b\n1,2\n3,4,5\n", &policy).is_empty());
        assert!(!diff_csv(golden, "a,b\n1,2\n3,oops\n", &policy).is_empty());
    }

    #[test]
    fn skip_columns_ignore_machine_dependent_cells() {
        let golden = "flows,baseline_ms,ok\n100,17.3,1\n";
        let actual = "flows,baseline_ms,ok\n100,523.9,1\n";
        let header: Vec<String> = ["flows", "baseline_ms", "ok"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let policy = GoldenPolicy::ignoring_timings(&header);
        assert_eq!(policy.skip_columns, vec!["baseline_ms".to_string()]);
        assert!(diff_csv(golden, actual, &policy).is_empty());
        // The non-skipped columns are still enforced.
        let broken = "flows,baseline_ms,ok\n101,17.3,1\n";
        assert_eq!(diff_csv(golden, broken, &policy).len(), 1);
    }

    #[test]
    fn non_finite_cells_must_match_exactly() {
        let golden = "v\ninf\n";
        let policy = GoldenPolicy {
            abs_tol: 1.0,
            ..GoldenPolicy::default()
        };
        assert!(diff_csv(golden, "v\ninf\n", &policy).is_empty());
        assert!(!diff_csv(golden, "v\n1e300\n", &policy).is_empty());
        assert!(!diff_csv("v\nNaN\n", "v\nNaN\n", &policy).is_empty());
    }
}
