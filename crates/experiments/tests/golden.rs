//! Golden-file regression tests: every figure/table binary is rerun and
//! its CSV compared against the checked-in `results/*.csv` with the
//! tolerance-aware differ ([`foces_experiments::diff_csv`]).
//!
//! The binaries are seeded and deterministic, so the policy is essentially
//! exact (1e-9 slack absorbs float *formatting* differences only); Fig. 12
//! additionally skips its wall-clock `*_ms` columns, which are
//! machine-dependent by nature.
//!
//! Only the fast binaries run by default. The `#[ignore]`d ones take
//! minutes in a debug build — CI runs them in release via
//! `cargo test -p foces-experiments --release --test golden -- --ignored`,
//! and so can you after touching the detection pipeline.
//!
//! When a behaviour change is *intentional*, regenerate with e.g.
//! `cargo run --release -p foces-experiments --bin fig7 > results/fig7.csv`
//! and review the diff like any other code change.

use foces_experiments::{diff_csv, parse_csv, GoldenPolicy};
use std::process::Command;

/// Runs `bin`, captures its CSV, and diffs it against `results/<name>`.
fn check(bin: &str, name: &str, make_policy: fn(&[String]) -> GoldenPolicy) {
    let out = Command::new(bin).output().expect("spawn experiment binary");
    assert!(
        out.status.success(),
        "{bin} exited with {:?}\nstderr: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let actual = String::from_utf8(out.stdout).expect("binary emits UTF-8 CSV");
    let golden_path = format!("{}/../../results/{name}", env!("CARGO_MANIFEST_DIR"));
    let golden = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("read golden {golden_path}: {e}"));
    let (header, _) = parse_csv(&golden);
    let errs = diff_csv(&golden, &actual, &make_policy(&header));
    assert!(
        errs.is_empty(),
        "{name}: {} mismatch(es) vs {golden_path} (first 10):\n{}\n\
         If the change is intentional, regenerate the golden file (see the \
         module docs) and commit the diff.",
        errs.len(),
        errs.iter().take(10).cloned().collect::<Vec<_>>().join("\n")
    );
}

/// Near-exact: tolerance absorbs float formatting, nothing else.
fn exact(_header: &[String]) -> GoldenPolicy {
    GoldenPolicy {
        abs_tol: 1e-9,
        rel_tol: 1e-9,
        skip_columns: Vec::new(),
    }
}

/// Near-exact but skipping the machine-dependent `*_ms` timing columns.
fn exact_ignoring_timings(header: &[String]) -> GoldenPolicy {
    GoldenPolicy {
        abs_tol: 1e-9,
        rel_tol: 1e-9,
        ..GoldenPolicy::ignoring_timings(header)
    }
}

#[test]
fn table1_matches_golden() {
    check(env!("CARGO_BIN_EXE_table1"), "table1.csv", exact);
}

#[test]
fn fig7_matches_golden() {
    check(env!("CARGO_BIN_EXE_fig7"), "fig7.csv", exact);
}

#[test]
#[ignore = "minutes in a debug build; CI runs it in release"]
fn fig8_matches_golden() {
    check(env!("CARGO_BIN_EXE_fig8"), "fig8.csv", exact);
}

#[test]
#[ignore = "minutes in a debug build; CI runs it in release"]
fn fig9_matches_golden() {
    check(env!("CARGO_BIN_EXE_fig9"), "fig9.csv", exact);
}

#[test]
#[ignore = "minutes in a debug build; CI runs it in release"]
fn fig10_matches_golden() {
    check(env!("CARGO_BIN_EXE_fig10"), "fig10.csv", exact);
}

#[test]
#[ignore = "minutes in a debug build; CI runs it in release"]
fn fig11_matches_golden() {
    check(env!("CARGO_BIN_EXE_fig11"), "fig11.csv", exact);
}

#[test]
#[ignore = "minutes in a debug build; CI runs it in release"]
fn fig12_matches_golden() {
    check(
        env!("CARGO_BIN_EXE_fig12"),
        "fig12.csv",
        exact_ignoring_timings,
    );
}
