//! Property tests for the static analyzer: clean provisioned planes must
//! verify with zero findings, and each mutation family the analyzer
//! exists to catch — loop-forming next-hop rewrites, deleted last-hop
//! rules, broader higher-priority shadow rules — must be caught with a
//! concrete counterexample header that actually exhibits the violation.

use foces_controlplane::{provision, uniform_flows, ControllerView, Deployment, RuleGranularity};
use foces_dataplane::{dst_match, pair_header, Action, FlowTable};
use foces_net::generators::{bcube, fattree, random_connected, ring};
use foces_net::{Node, SwitchId};
use foces_verify::{verify_view, verify_with, FindingKind, VerifyOptions};
use proptest::prelude::*;

/// A provisioned deployment on a random connected topology, per-pair
/// rules for every host pair.
fn testbed(n: usize, chords: usize, topo_seed: u64) -> Deployment {
    let topo = random_connected(n, chords, topo_seed);
    let flows = uniform_flows(&topo, topo.host_count() as f64 * 1000.0);
    provision(topo, &flows, RuleGranularity::PerFlowPair).expect("provision random net")
}

/// Clones the view's flow tables so a test can mutate one and rebuild a
/// view via `ControllerView::from_parts`.
fn cloned_tables(view: &ControllerView) -> Vec<FlowTable> {
    (0..view.topology().switch_count())
        .map(|s| view.table(SwitchId(s)).clone())
        .collect()
}

/// Indices of flows whose expected path spans at least two switches (the
/// mutations below need an upstream hop).
fn multi_hop_flows(dep: &Deployment) -> Vec<usize> {
    dep.expected_paths
        .iter()
        .enumerate()
        .filter(|(_, p)| p.len() >= 2)
        .map(|(i, _)| i)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Freshly provisioned evaluation planes — routing trees on FatTree,
    /// BCube, and rings, under both rule granularities — carry no loops,
    /// no blackholes, no dead rules, and a consistent FCM.
    #[test]
    fn clean_planes_verify_with_zero_findings(
        family in 0usize..3,
        size in 0usize..4,
        per_pair in any::<bool>(),
    ) {
        let topo = match family {
            0 => fattree(4),
            1 => bcube(1, 3 + size % 2),
            _ => ring(4 + size),
        };
        let granularity = if per_pair {
            RuleGranularity::PerFlowPair
        } else {
            RuleGranularity::PerDestination
        };
        let flows = uniform_flows(&topo, topo.host_count() as f64 * 1000.0);
        let view = provision(topo, &flows, granularity).unwrap().view;
        let report = verify_view(&view);
        prop_assert!(report.is_clean(), "{}", report.summary());
        prop_assert!(report.classes_traced > 0);
        prop_assert_eq!(report.rules_checked, view.rule_count());
        prop_assert!(report.flows_checked > 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Rewriting one mid-path next hop to point back where the packet
    /// came from creates a two-switch bounce; the traversal must prove it
    /// with a header that matches every rule on the reported trajectory.
    #[test]
    fn loop_forming_rewrite_is_caught_with_a_counterexample(
        n in 4usize..8,
        chords in 0usize..4,
        topo_seed in 0u64..500,
        pick in any::<proptest::sample::Index>(),
    ) {
        let dep = testbed(n, chords, topo_seed);
        let candidates = multi_hop_flows(&dep);
        prop_assume!(!candidates.is_empty());
        let fi = candidates[pick.index(candidates.len())];
        let spec = dep.flows[fi];
        let path = &dep.expected_paths[fi];
        let at = 1 + pick.index(path.len() - 1);
        let header = pair_header(spec.src, spec.dst);
        let (idx, _) = dep.view.table(path[at]).lookup(header).expect("pair rule on path");
        let back = dep
            .view
            .topology()
            .port_towards(Node::Switch(path[at]), Node::Switch(path[at - 1]))
            .expect("consecutive path switches are adjacent");
        let mut tables = cloned_tables(&dep.view);
        tables[path[at].0]
            .get_mut(idx)
            .unwrap()
            .set_action(Action::Forward(back));
        let mutated = ControllerView::from_parts(dep.view.topology().clone(), tables);

        let report = verify_with(&mutated, &VerifyOptions { check_fcm: false, ..Default::default() });
        let loops: Vec<_> = report.of_kind(FindingKind::ForwardingLoop).collect();
        prop_assert!(!loops.is_empty(), "no loop found: {}", report.summary());
        for f in &loops {
            let h = f.header.expect("loop findings carry a concrete header");
            for &r in &f.rules {
                let rule = mutated.rule(r).expect("trajectory rules exist");
                prop_assert!(
                    rule.matches(h),
                    "counterexample {h:#010x} does not match {r} on the reported trajectory"
                );
            }
        }
    }

    /// Removing a flow's last-hop rule strands traffic that already
    /// matched upstream: a blackhole at exactly that switch, witnessed by
    /// exactly that pair's header.
    #[test]
    fn deleted_last_hop_rule_is_a_blackhole(
        n in 4usize..8,
        chords in 0usize..4,
        topo_seed in 0u64..500,
        pick in any::<proptest::sample::Index>(),
    ) {
        let dep = testbed(n, chords, topo_seed);
        let candidates = multi_hop_flows(&dep);
        prop_assume!(!candidates.is_empty());
        let fi = candidates[pick.index(candidates.len())];
        let spec = dep.flows[fi];
        let last = *dep.expected_paths[fi].last().unwrap();
        let header = pair_header(spec.src, spec.dst);
        let (deleted, _) = dep.view.table(last).lookup(header).expect("last-hop rule");
        let mut tables = cloned_tables(&dep.view);
        let mut shrunk = FlowTable::new();
        for (i, r) in dep.view.table(last).iter() {
            if i != deleted {
                shrunk.push(r.clone());
            }
        }
        tables[last.0] = shrunk;
        let mutated = ControllerView::from_parts(dep.view.topology().clone(), tables);

        let report = verify_with(&mutated, &VerifyOptions { check_fcm: false, ..Default::default() });
        let holes: Vec<_> = report.of_kind(FindingKind::Blackhole).collect();
        prop_assert!(
            holes.iter().any(|f| f.switch == last && f.header == Some(header)),
            "no blackhole at s{} for header {header:#010x}: {}",
            last.0,
            report.summary()
        );
    }

    /// A broader rule installed above a pair rule's priority makes the
    /// pair rule dead; shadowing must name both the victim and the
    /// shadower, with a header both of them match.
    #[test]
    fn broader_priority_shadow_rule_is_caught(
        n in 4usize..8,
        chords in 0usize..4,
        topo_seed in 0u64..500,
        pick in any::<proptest::sample::Index>(),
    ) {
        let dep = testbed(n, chords, topo_seed);
        prop_assume!(!dep.flows.is_empty());
        let fi = pick.index(dep.flows.len());
        let spec = dep.flows[fi];
        let sw = dep.expected_paths[fi][0];
        let header = pair_header(spec.src, spec.dst);
        let mut view = dep.view.clone();
        let (idx, port) = {
            let (idx, rule) = view.table(sw).lookup(header).expect("pair rule at ingress");
            let Action::Forward(port) = rule.action() else {
                panic!("provisioned pair rules forward");
            };
            (idx, port)
        };
        let victim = foces_dataplane::RuleRef { switch: sw, index: idx };
        // Same egress port, so the pair's traffic still flows — the rule
        // is dead, not the path.
        let shadower = view.install(
            sw,
            foces_dataplane::Rule::new(dst_match(spec.dst), 99, Action::Forward(port)),
        );

        let report = verify_with(&view, &VerifyOptions { check_fcm: false, ..Default::default() });
        let finding = report
            .of_kind(FindingKind::ShadowedRule)
            .find(|f| f.rules.first() == Some(&victim));
        prop_assert!(
            finding.is_some(),
            "pair rule {victim} not reported dead: {}",
            report.summary()
        );
        let finding = finding.unwrap();
        prop_assert!(
            finding.rules.contains(&shadower),
            "finding does not name the shadower: {finding}"
        );
        let h = finding.header.expect("shadow findings carry a concrete header");
        prop_assert!(view.rule(victim).unwrap().matches(h));
        prop_assert!(view.rule(shadower).unwrap().matches(h));
    }
}
