//! Findings and reports: the machine-readable output of static
//! verification.

use foces_dataplane::RuleRef;
use foces_headerspace::Wildcard;
use foces_net::SwitchId;
use std::fmt;
use std::fmt::Write as _;

/// Which invariant family a finding violates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FindingKind {
    /// A header region re-enters a switch it already traversed: every
    /// packet in the region forwards forever (until TTL).
    ForwardingLoop,
    /// A header region that matched at least one forwarding rule dies
    /// without reaching an edge port or an explicit drop rule (table miss
    /// downstream, or a forward action out a port with no link).
    Blackhole,
    /// A rule whose match region is fully covered by higher-precedence
    /// rules in the same table: it can never match a packet (dead rule).
    ShadowedRule,
    /// The FCM disagrees with the rule tables: a row names a rule the
    /// view does not hold, or a flow column's recorded rule path is not
    /// what the tables actually forward the flow's header along.
    FcmInconsistency,
    /// An audit walked a deviation path through a rule the FCM has no row
    /// for: the matrix is stale relative to the plane being audited, so
    /// the deviation cannot be classified detectable or undetectable.
    StaleRule,
}

impl FindingKind {
    /// Short machine-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            FindingKind::ForwardingLoop => "loop",
            FindingKind::Blackhole => "blackhole",
            FindingKind::ShadowedRule => "shadowed",
            FindingKind::FcmInconsistency => "fcm",
            FindingKind::StaleRule => "stale-rule",
        }
    }

    /// Whether findings of this kind poison detection verdicts.
    ///
    /// Loops, blackholes and FCM mismatches put counter volume where the
    /// FCM has no explanation (or vice versa), so the runtime must
    /// quarantine the implicated rules. A fully shadowed rule merely
    /// never matches — its counter stays zero and the FCM, built from the
    /// same shadowing-aware trace, never charges it — so it is reported
    /// but does not poison verdicts.
    pub fn is_critical(&self) -> bool {
        !matches!(self, FindingKind::ShadowedRule)
    }
}

impl fmt::Display for FindingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One invariant violation, with a concrete counterexample where the
/// analysis produced one (always, for loop/blackhole/shadowing).
#[derive(Debug, Clone)]
pub struct Finding {
    /// The violated invariant family.
    pub kind: FindingKind,
    /// The switch where the violation manifests (loop re-entry point,
    /// blackhole location, shadowed rule's table, first divergent hop).
    pub switch: SwitchId,
    /// Implicated rules: the traversal history into a loop/blackhole, the
    /// shadowed rule followed by its shadowers, or an FCM column.
    pub rules: Vec<RuleRef>,
    /// The symbolic counterexample region, when the analysis has one.
    pub region: Option<Wildcard>,
    /// A concrete counterexample header (a member of `region`).
    pub header: Option<u64>,
    /// Human-readable explanation.
    pub detail: String,
}

impl Finding {
    /// One-line JSON rendering (flat, hand-rolled — no serde in the
    /// dependency tree).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        let _ = write!(s, "\"kind\":{}", json_str(self.kind.label()));
        let _ = write!(s, ",\"critical\":{}", self.kind.is_critical());
        let _ = write!(s, ",\"switch\":{}", self.switch.0);
        s.push_str(",\"rules\":[");
        for (i, r) in self.rules.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&json_str(&r.to_string()));
        }
        s.push(']');
        match &self.region {
            Some(w) => {
                let _ = write!(s, ",\"region\":{}", json_str(&w.to_string()));
            }
            None => s.push_str(",\"region\":null"),
        }
        match self.header {
            Some(h) => {
                let _ = write!(s, ",\"header\":{h}");
            }
            None => s.push_str(",\"header\":null"),
        }
        let _ = write!(s, ",\"detail\":{}", json_str(&self.detail));
        s.push('}');
        s
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] s{}: {}", self.kind, self.switch.0, self.detail)?;
        if let Some(h) = self.header {
            write!(f, " (counterexample header {h:#010x})")?;
        }
        Ok(())
    }
}

/// The result of one verification pass.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// Every violation found, in analysis order (traversal, shadowing,
    /// FCM consistency).
    pub findings: Vec<Finding>,
    /// Packet equivalence classes traced to a terminal outcome.
    pub classes_traced: usize,
    /// Rules inspected by the shadowing analysis.
    pub rules_checked: usize,
    /// FCM flow columns re-simulated (0 when the FCM check was skipped).
    pub flows_checked: usize,
    /// Wall-clock time of the pass, seconds.
    pub elapsed_secs: f64,
}

impl VerifyReport {
    /// `true` iff no invariant was violated.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Findings of one kind.
    pub fn of_kind(&self, kind: FindingKind) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(move |f| f.kind == kind)
    }

    /// Number of loop findings.
    pub fn loops(&self) -> usize {
        self.of_kind(FindingKind::ForwardingLoop).count()
    }

    /// Number of blackhole findings.
    pub fn blackholes(&self) -> usize {
        self.of_kind(FindingKind::Blackhole).count()
    }

    /// Number of shadowed/dead-rule findings.
    pub fn shadowed(&self) -> usize {
        self.of_kind(FindingKind::ShadowedRule).count()
    }

    /// Number of FCM consistency findings.
    pub fn inconsistencies(&self) -> usize {
        self.of_kind(FindingKind::FcmInconsistency).count()
    }

    /// Number of stale-rule findings (FCM stale relative to the plane).
    pub fn stale_rules(&self) -> usize {
        self.of_kind(FindingKind::StaleRule).count()
    }

    /// Findings that poison detection verdicts (everything but shadowing).
    pub fn critical(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.kind.is_critical())
    }

    /// The deduplicated, sorted set of rules implicated by **critical**
    /// findings — the rows a runtime must quarantine to keep detecting
    /// soundly on the rest of the network.
    pub fn implicated_rules(&self) -> Vec<RuleRef> {
        let mut rules: Vec<RuleRef> = self
            .critical()
            .flat_map(|f| f.rules.iter().copied())
            .collect();
        rules.sort_unstable();
        rules.dedup();
        rules
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        if self.is_clean() {
            format!(
                "clean: {} classes traced, {} rules checked, {} flow columns verified in {:.3}s",
                self.classes_traced, self.rules_checked, self.flows_checked, self.elapsed_secs
            )
        } else {
            format!(
                "{} violation(s): {} loop, {} blackhole, {} shadowed, {} fcm, {} stale ({:.3}s)",
                self.findings.len(),
                self.loops(),
                self.blackholes(),
                self.shadowed(),
                self.inconsistencies(),
                self.stale_rules(),
                self.elapsed_secs
            )
        }
    }

    /// Machine-readable rendering: one summary object followed by one
    /// object per finding, each on its own line (JSONL).
    pub fn to_json_lines(&self) -> Vec<String> {
        let mut lines = Vec::with_capacity(self.findings.len() + 1);
        lines.push(format!(
            "{{\"event\":\"verify\",\"clean\":{},\"findings\":{},\"loops\":{},\
             \"blackholes\":{},\"shadowed\":{},\"fcm\":{},\"stale\":{},\"classes\":{},\
             \"rules\":{},\"flows\":{},\"elapsed_secs\":{:.6}}}",
            self.is_clean(),
            self.findings.len(),
            self.loops(),
            self.blackholes(),
            self.shadowed(),
            self.inconsistencies(),
            self.stale_rules(),
            self.classes_traced,
            self.rules_checked,
            self.flows_checked,
            self.elapsed_secs
        ));
        lines.extend(self.findings.iter().map(Finding::to_json));
        lines
    }
}

/// Escapes a string as a JSON value (kept local: `foces-runtime` depends
/// on this crate, so we cannot borrow its helper without a cycle).
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_finding() -> Finding {
        Finding {
            kind: FindingKind::ForwardingLoop,
            switch: SwitchId(3),
            rules: vec![
                RuleRef {
                    switch: SwitchId(1),
                    index: 0,
                },
                RuleRef {
                    switch: SwitchId(3),
                    index: 2,
                },
            ],
            region: Some(Wildcard::any(8)),
            header: Some(0x2a),
            detail: "cycle s3 -> s1 -> s3".into(),
        }
    }

    #[test]
    fn finding_renders_flat_json() {
        let j = sample_finding().to_json();
        assert!(j.contains("\"kind\":\"loop\""), "{j}");
        assert!(j.contains("\"critical\":true"), "{j}");
        assert!(j.contains("\"switch\":3"), "{j}");
        assert!(j.contains("\"rules\":[\"s1#r0\",\"s3#r2\"]"), "{j}");
        assert!(j.contains("\"header\":42"), "{j}");
        assert!(!FindingKind::ShadowedRule.is_critical());
    }

    #[test]
    fn report_summary_and_json_lines() {
        let clean = VerifyReport {
            classes_traced: 10,
            rules_checked: 5,
            ..VerifyReport::default()
        };
        assert!(clean.is_clean());
        assert!(clean.summary().starts_with("clean"));
        assert_eq!(clean.to_json_lines().len(), 1);
        assert!(clean.to_json_lines()[0].contains("\"clean\":true"));

        let dirty = VerifyReport {
            findings: vec![sample_finding()],
            ..VerifyReport::default()
        };
        assert!(!dirty.is_clean());
        assert_eq!(dirty.loops(), 1);
        assert_eq!(dirty.implicated_rules().len(), 2);
        assert_eq!(dirty.to_json_lines().len(), 2);
        assert!(dirty.summary().contains("1 loop"));
    }
}
