//! FCM structural consistency: the flow-counter matrix must agree with the
//! rule tables it claims to model.
//!
//! Two obligations:
//!
//! 1. **Row liveness** — every FCM row references a rule the controller
//!    view actually holds. (An FCM kept across reconfigurations can go
//!    stale; detection over phantom rows charges counters to nothing.)
//! 2. **Column realizability** — every flow column's recorded rule path is
//!    exactly what the tables forward that flow's concrete header along,
//!    ending at the recorded egress host. Forwarding has no header
//!    rewrites, so one [`foces_dataplane::FlowTable::lookup`] walk per
//!    column decides this.

use crate::report::{Finding, FindingKind};
use foces::Fcm;
use foces_controlplane::ControllerView;
use foces_dataplane::{Action, RuleRef};
use foces_net::{HostId, Node, SwitchId};

/// Checks an FCM against a controller view, returning one finding per
/// stale row and per unrealizable flow column.
pub fn verify_fcm(view: &ControllerView, fcm: &Fcm) -> Vec<Finding> {
    let mut findings = Vec::new();
    for &r in fcm.rules() {
        if view.rule(r).is_none() {
            findings.push(Finding {
                kind: FindingKind::FcmInconsistency,
                switch: r.switch,
                rules: vec![r],
                region: None,
                header: None,
                detail: format!("FCM row references {r}, absent from the controller view"),
            });
        }
    }
    let topo = view.topology();
    for f in fcm.flows() {
        let header = f.concrete_header();
        let Some((first_switch, _)) = topo.host_attachment(f.ingress) else {
            findings.push(Finding {
                kind: FindingKind::FcmInconsistency,
                switch: f.path.first().copied().unwrap_or(SwitchId(0)),
                rules: f.rules.clone(),
                region: Some(f.header.clone()),
                header: Some(header),
                detail: format!(
                    "flow column h{}->h{}: ingress host is not attached to any switch",
                    f.ingress.0, f.egress.0
                ),
            });
            continue;
        };
        let (walked, delivered) = walk(view, first_switch, header);
        if walked != f.rules || delivered != Some(f.egress) {
            let divergence = walked
                .iter()
                .zip(&f.rules)
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| walked.len().min(f.rules.len()));
            let switch = f
                .rules
                .get(divergence)
                .or_else(|| walked.get(divergence))
                .map(|r| r.switch)
                .unwrap_or(first_switch);
            let walked_str: Vec<String> = walked.iter().map(|r| r.to_string()).collect();
            let recorded_str: Vec<String> = f.rules.iter().map(|r| r.to_string()).collect();
            findings.push(Finding {
                kind: FindingKind::FcmInconsistency,
                switch,
                rules: f.rules.clone(),
                region: Some(f.header.clone()),
                header: Some(header),
                detail: format!(
                    "flow column h{}->h{} (header {header:#010x}): tables forward \
                     along [{}] delivering to {}, FCM records [{}] delivering to h{}",
                    f.ingress.0,
                    f.egress.0,
                    walked_str.join(", "),
                    delivered.map_or("nobody".to_string(), |h| format!("h{}", h.0)),
                    recorded_str.join(", "),
                    f.egress.0
                ),
            });
        }
    }
    findings
}

/// Walks a concrete header through the view's tables from `start`,
/// returning the rules matched and the host delivered to (if any). Bounded
/// by the switch count, so a looping configuration terminates with a
/// too-long rule path — which never equals a (finite, loop-free) recorded
/// column.
fn walk(view: &ControllerView, start: SwitchId, header: u64) -> (Vec<RuleRef>, Option<HostId>) {
    let topo = view.topology();
    let mut walked = Vec::new();
    let mut sw = start;
    for _ in 0..=topo.switch_count() {
        let Some((index, rule)) = view.table(sw).lookup(header) else {
            break;
        };
        walked.push(RuleRef { switch: sw, index });
        match rule.action() {
            Action::Drop => break,
            Action::Forward(port) => match topo.adj(Node::Switch(sw)).get(port.0) {
                None => break,
                Some(adj) => match adj.neighbor {
                    Node::Host(h) => return (walked, Some(h)),
                    Node::Switch(next) => sw = next,
                },
            },
        }
    }
    (walked, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use foces_dataplane::{dst_match, FlowTable, Rule};
    use foces_net::{Port, Topology};

    /// h0 - s0 - s1 - h1 with per-destination rules both ways.
    fn clean_view() -> ControllerView {
        let mut topo = Topology::new();
        let s0 = topo.add_switch("s0");
        let s1 = topo.add_switch("s1");
        let h0 = topo.add_host();
        let h1 = topo.add_host();
        topo.connect(Node::Switch(s0), Node::Switch(s1)).unwrap();
        topo.connect(Node::Host(h0), Node::Switch(s0)).unwrap();
        topo.connect(Node::Host(h1), Node::Switch(s1)).unwrap();
        let mut t0 = FlowTable::new();
        t0.push(Rule::new(dst_match(h1), 5, Action::Forward(Port(0))));
        t0.push(Rule::new(dst_match(h0), 5, Action::Forward(Port(1))));
        let mut t1 = FlowTable::new();
        t1.push(Rule::new(dst_match(h1), 5, Action::Forward(Port(1))));
        t1.push(Rule::new(dst_match(h0), 5, Action::Forward(Port(0))));
        ControllerView::from_parts(topo, vec![t0, t1])
    }

    #[test]
    fn consistent_fcm_is_clean() {
        let view = clean_view();
        let fcm = Fcm::from_view(&view);
        assert_eq!(fcm.flow_count(), 2);
        assert!(verify_fcm(&view, &fcm).is_empty());
    }

    #[test]
    fn stale_row_is_reported() {
        let view = clean_view();
        let mut rules: Vec<RuleRef> = view.rule_refs().collect();
        rules.push(RuleRef {
            switch: SwitchId(1),
            index: 99,
        });
        let fcm = Fcm::from_parts(rules, foces_atpg::trace_flows(&view));
        let findings = verify_fcm(&view, &fcm);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].detail.contains("s1#r99"));
    }

    #[test]
    fn rewired_next_hop_breaks_the_column() {
        // Build the FCM against the clean view, then rewire s0's dst=h1
        // rule to bounce back to h0: the h0->h1 column is no longer what
        // the tables do.
        let clean = clean_view();
        let fcm = Fcm::from_view(&clean);
        let mut tables: Vec<FlowTable> = (0..clean.topology().switch_count())
            .map(|s| clean.table(SwitchId(s)).clone())
            .collect();
        tables[0]
            .get_mut(0)
            .unwrap()
            .set_action(Action::Forward(Port(1))); // deliver dst=h1 to... h0
        let mutated = ControllerView::from_parts(clean.topology().clone(), tables);
        let findings = verify_fcm(&mutated, &fcm);
        assert_eq!(findings.len(), 1, "{findings:?}");
        let f = &findings[0];
        assert_eq!(f.kind, FindingKind::FcmInconsistency);
        assert!(f.detail.contains("delivering to h0"), "{}", f.detail);
        assert!(f.header.is_some());
    }
}
