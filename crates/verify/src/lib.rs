//! Static verification of SDN rule tables for the FOCES reproduction.
//!
//! FOCES detects forwarding anomalies **at runtime** from rule counters;
//! this crate proves, **before any packet flows**, that the controller's
//! intended configuration is itself sound. The two are complementary: a
//! loop or blackhole that is already present in the controller's view is a
//! configuration bug, not a compromised switch, and flagging it as a
//! forwarding anomaly would misdirect the response. The runtime therefore
//! runs these checks as a pre-flight gate and after every reconciled
//! churn epoch, reporting violations as *static* findings.
//!
//! Four analyses over a [`ControllerView`] (and optionally its [`Fcm`]):
//!
//! * **Loop freedom** ([`FindingKind::ForwardingLoop`]) — symbolic
//!   traversal of every packet equivalence class from every host port;
//!   a class re-entering a switch on its own path loops forever (rules
//!   never rewrite headers, so trajectories are deterministic).
//! * **Blackhole freedom** ([`FindingKind::Blackhole`]) — every class the
//!   network *accepts* (matches at least one rule) must reach a host port
//!   or an explicit drop; dying by downstream table miss or by forwarding
//!   out a linkless port is a violation.
//! * **Shadowed/dead rules** ([`FindingKind::ShadowedRule`]) — a rule
//!   fully covered by higher-precedence rules in its table can never
//!   match; decided exactly by wildcard subtraction
//!   ([`foces_headerspace::covers`]).
//! * **FCM consistency** ([`FindingKind::FcmInconsistency`]) — every FCM
//!   row maps to a live rule and every flow column's rule path is what the
//!   tables actually forward ([`verify_fcm`]).
//!
//! Emptiness everywhere is decided **exactly** (wildcard difference), so a
//! clean report is a proof and every finding carries a concrete
//! counterexample header.
//!
//! # Example
//!
//! ```
//! use foces_controlplane::{provision, uniform_flows, RuleGranularity};
//! use foces_net::generators::fattree;
//! use foces_verify::verify_view;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let topo = fattree(4);
//! let flows = uniform_flows(&topo, 240_000.0);
//! let dep = provision(topo, &flows, RuleGranularity::PerDestination)?;
//! let report = verify_view(&dep.view);
//! assert!(report.is_clean(), "{}", report.summary());
//! # Ok(())
//! # }
//! ```

mod consistency;
mod report;
mod shadow;
mod traversal;

pub use consistency::verify_fcm;
pub use report::{Finding, FindingKind, VerifyReport};

use foces::Fcm;
use foces_controlplane::ControllerView;
use foces_dataplane::RuleRef;
use std::time::Instant;

/// Knobs for a verification pass.
#[derive(Debug, Clone)]
pub struct VerifyOptions {
    /// Rules that are shadowed **on purpose** and must not be reported —
    /// typically the drained lower-priority rules a rolling update leaves
    /// behind, as recorded in the controller's journal
    /// ([`ControllerView::touched_rules_since`]).
    pub expected_shadowed: Vec<RuleRef>,
    /// Whether to build the view's FCM and check its structural
    /// consistency. Callers that already hold an FCM should pass `false`
    /// and call [`verify_fcm`] themselves to avoid re-tracing flows.
    pub check_fcm: bool,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions {
            expected_shadowed: Vec::new(),
            check_fcm: true,
        }
    }
}

/// Verifies a controller view with default options (all four analyses, no
/// shadowing allowlist).
pub fn verify_view(view: &ControllerView) -> VerifyReport {
    verify_with(view, &VerifyOptions::default())
}

/// Verifies a controller view with explicit options.
pub fn verify_with(view: &ControllerView, opts: &VerifyOptions) -> VerifyReport {
    let start = Instant::now();
    let mut report = VerifyReport::default();
    traversal::check_traversal(view, &mut report);
    shadow::check_shadowing(view, &opts.expected_shadowed, &mut report);
    if opts.check_fcm {
        let fcm = Fcm::from_view(view);
        report.flows_checked = fcm.flow_count();
        report.findings.extend(verify_fcm(view, &fcm));
    }
    report.elapsed_secs = start.elapsed().as_secs_f64();
    report
}
