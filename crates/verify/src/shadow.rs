//! Intra-table shadowing: rules whose match region is fully covered by
//! higher-precedence rules and therefore can never match a packet.
//!
//! Coverage is decided exactly by wildcard subtraction
//! ([`foces_headerspace::covers`]): a rule is dead iff subtracting every
//! higher-precedence overlapping match from its own match leaves nothing.
//! Precedence mirrors [`foces_dataplane::FlowTable::lookup`]: priority
//! descending, insertion index ascending on ties.
//!
//! Callers can allowlist rules that are shadowed *on purpose* — the control
//! plane's rolling updates deliberately leave drained lower-priority rules
//! behind and journals them — via the `expected` parameter.

use crate::report::{Finding, FindingKind, VerifyReport};
use foces_controlplane::ControllerView;
use foces_dataplane::RuleRef;
use foces_headerspace::{covers, Wildcard};

/// Runs the dead-rule analysis, appending findings and updating the
/// `rules_checked` counter. Rules listed in `expected` are skipped.
pub(crate) fn check_shadowing(
    view: &ControllerView,
    expected: &[RuleRef],
    report: &mut VerifyReport,
) {
    for switch in view.topology().switches() {
        let table = view.table(switch);
        let mut order: Vec<usize> = (0..table.len()).collect();
        order.sort_by(|&a, &b| {
            let (ra, rb) = (table.get(a).unwrap(), table.get(b).unwrap());
            rb.priority().cmp(&ra.priority()).then(a.cmp(&b))
        });
        for (pos, &idx) in order.iter().enumerate() {
            report.rules_checked += 1;
            let rule = table.get(idx).expect("index from 0..len");
            let rref = RuleRef { switch, index: idx };
            if expected.contains(&rref) {
                continue;
            }
            let shadowers: Vec<(RuleRef, &Wildcard)> = order[..pos]
                .iter()
                .map(|&i| {
                    (
                        RuleRef { switch, index: i },
                        table.get(i).expect("index from 0..len").match_fields(),
                    )
                })
                .filter(|(_, m)| m.overlaps(rule.match_fields()))
                .collect();
            if shadowers.is_empty() {
                continue;
            }
            let cover: Vec<Wildcard> = shadowers.iter().map(|(_, m)| (*m).clone()).collect();
            if covers(&cover, rule.match_fields()) {
                let mut rules = vec![rref];
                rules.extend(shadowers.iter().map(|(r, _)| *r));
                report.findings.push(Finding {
                    kind: FindingKind::ShadowedRule,
                    switch,
                    rules,
                    header: Some(rule.match_fields().representative()),
                    region: Some(rule.match_fields().clone()),
                    detail: format!(
                        "rule {rref} [p{}] {} is dead: fully covered by {} \
                         higher-precedence rule(s)",
                        rule.priority(),
                        rule.match_fields(),
                        shadowers.len()
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foces_dataplane::{dst_match, pair_match, Action, FlowTable, Rule, HEADER_WIDTH};
    use foces_net::{HostId, Node, Port, Topology};

    fn one_switch(table: FlowTable) -> ControllerView {
        let mut topo = Topology::new();
        let s0 = topo.add_switch("s0");
        let h0 = topo.add_host();
        topo.connect(Node::Host(h0), Node::Switch(s0)).unwrap();
        ControllerView::from_parts(topo, vec![table])
    }

    fn run(view: &ControllerView, expected: &[RuleRef]) -> VerifyReport {
        let mut report = VerifyReport::default();
        check_shadowing(view, expected, &mut report);
        report
    }

    #[test]
    fn higher_priority_broad_rule_shadows_narrow_one() {
        let mut t = FlowTable::new();
        t.push(Rule::new(pair_match(HostId(0), HostId(1)), 5, Action::Drop));
        t.push(Rule::new(dst_match(HostId(1)), 10, Action::Drop));
        let view = one_switch(t);
        let report = run(&view, &[]);
        assert_eq!(report.shadowed(), 1, "{:?}", report.findings);
        let f = &report.findings[0];
        assert_eq!(f.rules[0].index, 0, "the pair rule is the dead one");
        // The counterexample header is a packet the dead rule claims.
        assert!(view.rule(f.rules[0]).unwrap().matches(f.header.unwrap()));
        assert!(!f.kind.is_critical());
    }

    #[test]
    fn partial_overlap_is_not_shadowing() {
        let mut t = FlowTable::new();
        t.push(Rule::new(
            pair_match(HostId(0), HostId(1)),
            10,
            Action::Drop,
        ));
        t.push(Rule::new(dst_match(HostId(1)), 5, Action::Drop));
        let report = run(&one_switch(t), &[]);
        assert!(report.is_clean(), "{:?}", report.findings);
        assert_eq!(report.rules_checked, 2);
    }

    #[test]
    fn equal_priority_shadowing_respects_insertion_order() {
        // Identical matches at equal priority: lookup always picks the
        // first-installed, so the second is dead — and only the second.
        let mut t = FlowTable::new();
        t.push(Rule::new(Wildcard::any(HEADER_WIDTH), 5, Action::Drop));
        t.push(Rule::new(Wildcard::any(HEADER_WIDTH), 5, Action::Drop));
        let report = run(&one_switch(t), &[]);
        assert_eq!(report.shadowed(), 1);
        assert_eq!(report.findings[0].rules[0].index, 1);
    }

    #[test]
    fn multi_rule_union_cover_is_detected() {
        // Two pair rules jointly cover... no: pair matches are points in
        // the (src, dst) space, so use two half-space rules instead: src
        // bit 0 = 0 and src bit 0 = 1 jointly cover everything.
        let mut lo = Wildcard::any(HEADER_WIDTH);
        lo.set_bit(0, Some(false));
        let mut hi = Wildcard::any(HEADER_WIDTH);
        hi.set_bit(0, Some(true));
        let mut t = FlowTable::new();
        t.push(Rule::new(lo, 10, Action::Drop));
        t.push(Rule::new(hi, 10, Action::Drop));
        t.push(Rule::new(
            Wildcard::any(HEADER_WIDTH),
            5,
            Action::Forward(Port(0)),
        ));
        let report = run(&one_switch(t), &[]);
        assert_eq!(report.shadowed(), 1, "{:?}", report.findings);
        assert_eq!(report.findings[0].rules[0].index, 2);
        assert_eq!(report.findings[0].rules.len(), 3, "both shadowers listed");
    }

    #[test]
    fn expected_shadowed_rules_are_skipped() {
        let mut t = FlowTable::new();
        t.push(Rule::new(pair_match(HostId(0), HostId(1)), 5, Action::Drop));
        t.push(Rule::new(dst_match(HostId(1)), 10, Action::Drop));
        let view = one_switch(t);
        let drained = RuleRef {
            switch: foces_net::SwitchId(0),
            index: 0,
        };
        let report = run(&view, &[drained]);
        assert!(report.is_clean(), "{:?}", report.findings);
    }
}
