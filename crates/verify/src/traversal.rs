//! Symbolic per-class traversal: loop freedom and blackhole freedom.
//!
//! Like the ATPG tracer, we inject a symbolic header at every host port
//! (source bits pinned) and push it through the flow tables, splitting on
//! priority shadowing. Unlike the tracer — which only needs the classes
//! that *are* delivered — verification must prove things about the classes
//! that are **not**, so emptiness is decided *exactly* via wildcard
//! subtraction ([`Wildcard::subtract_all`]) instead of the tracer's
//! single-negative containment approximation. Every region we recurse into
//! therefore carries a concrete witness header, which becomes the
//! counterexample when the region ends in a violation.
//!
//! Soundness of the loop check: forwarding rules in this model never
//! rewrite headers, so a concrete header's trajectory is deterministic. If
//! a non-empty region arrives back at a switch already on its path, every
//! header in it repeats the cycle forever — a real forwarding loop, not an
//! artifact of symbolic over-approximation.
//!
//! Blackhole scoping: a region that dies on its *first* table (no rule
//! matches at the ingress switch) is merely unprovisioned traffic and is
//! ignored. A region that matched at least one rule and then dies — table
//! miss downstream, or a forward action out a port with no link — is a
//! blackhole: the network accepted the traffic and lost it.

use crate::report::{Finding, FindingKind, VerifyReport};
use foces_controlplane::ControllerView;
use foces_dataplane::{Action, RuleRef, HEADER_WIDTH};
use foces_headerspace::Wildcard;
use foces_net::{Node, SwitchId};
use std::collections::HashSet;

/// A symbolic region: a positive wildcard minus already-peeled
/// higher-precedence matches. Same shape as the ATPG tracer's region, but
/// with exact emptiness.
#[derive(Debug, Clone)]
struct Region {
    pos: Wildcard,
    negs: Vec<Wildcard>,
}

impl Region {
    /// An exact non-empty sub-region (the first disjoint piece of
    /// `pos \ union(negs)`), or `None` if the region denotes no header.
    fn witness(&self) -> Option<Wildcard> {
        self.pos.subtract_all(&self.negs).into_iter().next()
    }

    /// Intersects with a match pattern, returning the constrained region
    /// and a piece of it proving non-emptiness.
    fn constrain(&self, m: &Wildcard) -> Option<(Region, Wildcard)> {
        let pos = self.pos.intersect(m)?;
        let negs: Vec<Wildcard> = self
            .negs
            .iter()
            .filter(|n| pos.overlaps(n))
            .cloned()
            .collect();
        let r = Region { pos, negs };
        let w = r.witness()?;
        Some((r, w))
    }
}

struct Traversal<'a> {
    view: &'a ControllerView,
    findings: Vec<Finding>,
    /// Cycles already reported, keyed by the rule sequence of the cycle
    /// itself (classes from different ingresses share one loop).
    loops_seen: HashSet<Vec<RuleRef>>,
    /// Blackholes already reported, keyed by location: `Some(rule)` for a
    /// forward-to-nowhere rule, `None` for a table miss at that switch.
    holes_seen: HashSet<(SwitchId, Option<RuleRef>)>,
    classes: usize,
}

/// Runs the loop/blackhole analysis, appending findings and updating the
/// `classes_traced` counter.
pub(crate) fn check_traversal(view: &ControllerView, report: &mut VerifyReport) {
    let topo = view.topology();
    let mut t = Traversal {
        view,
        findings: Vec::new(),
        loops_seen: HashSet::new(),
        holes_seen: HashSet::new(),
        classes: 0,
    };
    for ingress in topo.hosts() {
        let Some((first_switch, _)) = topo.host_attachment(ingress) else {
            continue;
        };
        // Real traffic entering at this port carries the host's own source
        // address; pin it, mirroring the ATPG tracer.
        let mut pos = Wildcard::any(HEADER_WIDTH);
        for bit in 0..16 {
            pos.set_bit(bit, Some((ingress.0 >> (15 - bit)) & 1 == 1));
        }
        let region = Region {
            pos,
            negs: Vec::new(),
        };
        t.explore(first_switch, region, Vec::new(), Vec::new());
    }
    report.classes_traced += t.classes;
    report.findings.extend(t.findings);
}

impl Traversal<'_> {
    fn explore(
        &mut self,
        switch: SwitchId,
        region: Region,
        history: Vec<RuleRef>,
        path: Vec<SwitchId>,
    ) {
        // Revisit of a path switch with a (by construction non-empty)
        // region: every header in it loops forever.
        if let Some(k) = path.iter().position(|&s| s == switch) {
            self.classes += 1;
            // Canonicalize the cycle by rotating its rule sequence to start
            // at the smallest RuleRef: classes entering the same loop from
            // different ingresses see rotations of one cycle.
            let mut cycle: Vec<RuleRef> = history[k..].to_vec();
            if let Some(start) = cycle
                .iter()
                .enumerate()
                .min_by_key(|(_, r)| **r)
                .map(|(i, _)| i)
            {
                cycle.rotate_left(start);
            }
            if self.loops_seen.insert(cycle) {
                let piece = region.witness().expect("recursed regions are non-empty");
                let cycle_path: Vec<String> =
                    path[k..].iter().map(|s| format!("s{}", s.0)).collect();
                self.findings.push(Finding {
                    kind: FindingKind::ForwardingLoop,
                    switch,
                    rules: history,
                    header: Some(piece.representative()),
                    region: Some(piece),
                    detail: format!(
                        "header class re-enters s{}: cycle {} -> s{}",
                        switch.0,
                        cycle_path.join(" -> "),
                        switch.0
                    ),
                });
            }
            return;
        }
        // Defensive hop budget; the revisit check above already bounds
        // recursion by the switch count.
        if path.len() > self.view.topology().switch_count() {
            return;
        }

        let table = self.view.table(switch);
        // Effective precedence: priority desc, index asc — mirrors
        // FlowTable::lookup.
        let mut order: Vec<usize> = (0..table.len()).collect();
        order.sort_by(|&a, &b| {
            let (ra, rb) = (table.get(a).unwrap(), table.get(b).unwrap());
            rb.priority().cmp(&ra.priority()).then(a.cmp(&b))
        });
        let mut shadow = region;
        for idx in order {
            let rule = table.get(idx).expect("index from 0..len");
            let Some((matched, piece)) = shadow.constrain(rule.match_fields()) else {
                continue;
            };
            let rref = RuleRef { switch, index: idx };
            let mut new_history = history.clone();
            new_history.push(rref);
            let mut new_path = path.clone();
            new_path.push(switch);
            match rule.action() {
                // An explicit drop is a stated policy, not a blackhole.
                Action::Drop => self.classes += 1,
                Action::Forward(port) => {
                    match self.view.topology().adj(Node::Switch(switch)).get(port.0) {
                        None => {
                            // Forward out a port with no link: traffic the
                            // network accepted falls off the edge.
                            self.classes += 1;
                            if self.holes_seen.insert((switch, Some(rref))) {
                                self.findings.push(Finding {
                                    kind: FindingKind::Blackhole,
                                    switch,
                                    rules: new_history,
                                    header: Some(piece.representative()),
                                    region: Some(piece),
                                    detail: format!(
                                        "rule {rref} forwards out port {} which has no link",
                                        port.0
                                    ),
                                });
                            }
                        }
                        Some(adj) => match adj.neighbor {
                            Node::Host(_) => self.classes += 1, // delivered
                            Node::Switch(next) => {
                                self.explore(next, matched, new_history, new_path);
                            }
                        },
                    }
                }
            }
            shadow.negs.push(rule.match_fields().clone());
        }
        // Residual region: headers no rule matches. At the ingress switch
        // that is unprovisioned traffic; downstream it is a blackhole —
        // upstream rules forwarded traffic here and this table drops it by
        // omission.
        if let Some(piece) = shadow.witness() {
            self.classes += 1;
            if !history.is_empty() && self.holes_seen.insert((switch, None)) {
                self.findings.push(Finding {
                    kind: FindingKind::Blackhole,
                    switch,
                    rules: history,
                    header: Some(piece.representative()),
                    region: Some(piece),
                    detail: format!(
                        "traffic forwarded to s{} misses its table (no matching rule)",
                        switch.0
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foces_dataplane::{dst_match, pair_header, pair_match, FlowTable, Rule};
    use foces_net::{HostId, Port, Topology};

    /// h0 - s0 - s1 - h1, tables installed by the caller.
    fn line2(t0: FlowTable, t1: FlowTable) -> ControllerView {
        let mut topo = Topology::new();
        let s0 = topo.add_switch("s0");
        let s1 = topo.add_switch("s1");
        let h0 = topo.add_host();
        let h1 = topo.add_host();
        topo.connect(Node::Switch(s0), Node::Switch(s1)).unwrap(); // port 0 each
        topo.connect(Node::Host(h0), Node::Switch(s0)).unwrap(); // s0 port 1
        topo.connect(Node::Host(h1), Node::Switch(s1)).unwrap(); // s1 port 1
        ControllerView::from_parts(topo, vec![t0, t1])
    }

    fn run(view: &ControllerView) -> VerifyReport {
        let mut report = VerifyReport::default();
        check_traversal(view, &mut report);
        report
    }

    #[test]
    fn clean_line_has_no_findings() {
        let mut t0 = FlowTable::new();
        t0.push(Rule::new(dst_match(HostId(1)), 5, Action::Forward(Port(0))));
        let mut t1 = FlowTable::new();
        t1.push(Rule::new(dst_match(HostId(1)), 5, Action::Forward(Port(1))));
        t1.push(Rule::new(dst_match(HostId(0)), 5, Action::Forward(Port(0))));
        let mut t0b = t0.clone();
        t0b.push(Rule::new(dst_match(HostId(0)), 5, Action::Forward(Port(1))));
        let report = run(&line2(t0b, t1));
        assert!(report.is_clean(), "{:?}", report.findings);
        assert!(report.classes_traced > 0);
    }

    #[test]
    fn bounce_loop_detected_with_valid_counterexample() {
        // Both switches forward dst=h1 at each other.
        let mut t0 = FlowTable::new();
        t0.push(Rule::new(dst_match(HostId(1)), 5, Action::Forward(Port(0))));
        let mut t1 = FlowTable::new();
        t1.push(Rule::new(dst_match(HostId(1)), 5, Action::Forward(Port(0))));
        let view = line2(t0, t1);
        let report = run(&view);
        assert_eq!(report.loops(), 1, "{:?}", report.findings);
        let f = &report.findings[0];
        // The counterexample header must genuinely match every rule on the
        // reported trajectory.
        let h = f.header.unwrap();
        for r in &f.rules {
            assert!(view.rule(*r).unwrap().matches(h), "{r} misses {h:#x}");
        }
        // h0's own traffic to h1 is in the looping class.
        assert!(f
            .region
            .as_ref()
            .unwrap()
            .is_subset_of(&dst_match(HostId(1))));
    }

    #[test]
    fn downstream_table_miss_is_a_blackhole_but_ingress_miss_is_not() {
        // s0 forwards dst=h1 to s1; s1 has no rule at all.
        let mut t0 = FlowTable::new();
        t0.push(Rule::new(dst_match(HostId(1)), 5, Action::Forward(Port(0))));
        let report = run(&line2(t0, FlowTable::new()));
        assert_eq!(report.blackholes(), 1, "{:?}", report.findings);
        assert_eq!(report.loops(), 0);
        let f = &report.findings[0];
        assert_eq!(f.switch, SwitchId(1));
        assert_eq!(f.rules.len(), 1, "implicates the forwarding rule");
        // h0's un-matched traffic at its own ingress switch (e.g. dst=h0)
        // must NOT have been reported: exactly one finding total.
        assert_eq!(report.findings.len(), 1);
    }

    #[test]
    fn forward_to_missing_port_is_a_blackhole() {
        let mut t0 = FlowTable::new();
        t0.push(Rule::new(dst_match(HostId(1)), 5, Action::Forward(Port(7))));
        let report = run(&line2(t0, FlowTable::new()));
        assert_eq!(report.blackholes(), 1, "{:?}", report.findings);
        assert!(report.findings[0].detail.contains("no link"));
    }

    #[test]
    fn explicit_drop_is_clean() {
        let mut t0 = FlowTable::new();
        t0.push(Rule::new(dst_match(HostId(1)), 5, Action::Drop));
        let report = run(&line2(t0, FlowTable::new()));
        assert!(report.is_clean(), "{:?}", report.findings);
    }

    #[test]
    fn priority_peeling_is_exact() {
        // s0: a high-priority pair drop (h0 -> h1) peels exactly the class
        // the per-dest rule below would otherwise forward into s1's empty
        // table. With the source pinned to h0 at injection, the residual
        // reaching s1 is empty, so no blackhole may be reported.
        let mut t0 = FlowTable::new();
        t0.push(Rule::new(dst_match(HostId(1)), 5, Action::Forward(Port(0))));
        t0.push(Rule::new(
            pair_match(HostId(0), HostId(1)),
            10,
            Action::Drop,
        ));
        let report = run(&line2(t0, FlowTable::new()));
        assert!(report.is_clean(), "{:?}", report.findings);
        // Sanity: the concrete pair header is indeed captured by the drop.
        assert!(
            pair_match(HostId(0), HostId(1)).matches_concrete(pair_header(HostId(0), HostId(1)))
        );
    }

    #[test]
    fn exact_emptiness_avoids_false_blackholes_under_union_cover() {
        // Two half-space drops (dst = h1, split on the lowest source bit)
        // jointly cover everything the forwarding rule below them would
        // send into s1's empty table. No SINGLE rule covers it — the
        // ATPG tracer's one-negative containment test would call the
        // residual non-empty — but exact subtraction proves it empty.
        let mut lo = dst_match(HostId(1));
        lo.set_bit(15, Some(false));
        let mut hi = dst_match(HostId(1));
        hi.set_bit(15, Some(true));
        let mut t0 = FlowTable::new();
        t0.push(Rule::new(lo, 10, Action::Drop));
        t0.push(Rule::new(hi, 10, Action::Drop));
        t0.push(Rule::new(dst_match(HostId(1)), 5, Action::Forward(Port(0))));
        let report = run(&line2(t0, FlowTable::new()));
        assert!(report.is_clean(), "{:?}", report.findings);
    }

    #[test]
    fn one_loop_reported_once_across_ingresses() {
        // Same bounce loop, reachable from both hosts: the cycle dedup must
        // collapse it per cycle rule-set, yielding <= 2 loop findings (one
        // per distinct entry history) but only one per identical cycle.
        let mut t0 = FlowTable::new();
        t0.push(Rule::new(dst_match(HostId(1)), 5, Action::Forward(Port(0))));
        let mut t1 = FlowTable::new();
        t1.push(Rule::new(dst_match(HostId(1)), 5, Action::Forward(Port(0))));
        let view = line2(t0, t1);
        let report = run(&view);
        assert_eq!(report.loops(), 1);
    }
}
