//! **foces-sched** — deterministic concurrency-conformance harness for
//! the FOCES consistency protocol.
//!
//! The reconciliation machinery (generation stamps, update journal, row
//! masking, flow quarantine — PR 2) was only ever exercised against one
//! update committing at one global split point. Real controllers commit
//! N concurrent updates while counters are being collected, and each
//! *switch* applies its FlowMods at its own moment. This crate is the
//! repo's first systematic model-checking layer over that race:
//!
//! 1. [`ScheduleSpace`] models each (update, new-path switch) commit as
//!    an independent event and enumerates slot vectors — which commits
//!    land after how many traffic segments — under the per-switch FIFO
//!    partial order, one canonical representative per Mazurkiewicz trace
//!    (commuting commits on disjoint switches are explored once; the
//!    skipped linearizations are counted as **pruned**).
//! 2. [`run_schedule`] executes a schedule for real: staged reroutes on
//!    a cloned [`Deployment`], per-switch commits interleaved with
//!    scaled traffic, epochs scored by a real
//!    [`foces_runtime::RuntimeService`], slot-boundary snapshots
//!    replayed through the §13 shard fan-out via the *deployed*
//!    [`foces_cluster::reconcile_shard_round`].
//! 3. The [`oracle`]s hold every schedule to the protocol's contract:
//!    healthy schedules reconcile with zero false alarms; a dropper
//!    outside every update's blast radius still alarms within the
//!    hysteresis + churn-suppression bound; shard rounds fired at any
//!    boundary (stale-generation members included) are reconciled or
//!    blind, never anomalous.
//! 4. On failure, [`shrink_failing`] pins events to the window's
//!    extremes until only the interleaving that matters remains.
//!
//! [`run_interleave`] drives the whole pipeline and is what the
//! `foces interleave` CLI verb (exit 2 on any violation) wraps. Every
//! mode — exhaustive, bounded [`ScheduleSet::Sample`], and the
//! [`ScheduleSet::Uniform`] global splits the pre-harness tests used —
//! is deterministic: same seed, byte-identical schedule log.

mod fanout;
mod harness;
pub mod oracle;
mod schedule;
mod shrink;

pub use fanout::{check_fanout, FanoutOutcome};
pub use harness::{
    events_for, run_schedule, BoundarySnapshot, DropperSpec, EpochOutcome, HarnessConfig,
    ScheduleRun,
};
pub use oracle::{check_dropper, check_healthy, Violation};
pub use schedule::{CommitEvent, Enumeration, Schedule, ScheduleSpace};
pub use shrink::shrink_failing;

use foces_controlplane::testkit::{plan_reroutes, ReroutePlan};
use foces_controlplane::{Deployment, ProvisionError};
use foces_net::SwitchId;
use std::error::Error;
use std::fmt;

/// Errors from the harness.
#[derive(Debug)]
#[non_exhaustive]
pub enum SchedError {
    /// The fabric cannot express the requested number of concurrent
    /// reroutes on distinct flows.
    NotEnoughReroutes {
        /// How many updates were requested.
        wanted: usize,
        /// How many reroutable flows were found.
        found: usize,
    },
    /// Exhaustive enumeration would exceed the configured cap — use a
    /// bounded [`ScheduleSet::Sample`] instead.
    TooManySchedules {
        /// The schedule classes the space contains.
        classes: u128,
        /// The configured cap.
        cap: u128,
    },
    /// No eligible rule exists for the dropper outside the blast radius.
    NoDropperSite,
    /// Staging a planned reroute failed.
    Provision(ProvisionError),
    /// An epoch failed to score.
    Runtime(foces_runtime::RuntimeError),
    /// A shard-round solve failed.
    Foces(foces::FocesError),
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::NotEnoughReroutes { wanted, found } => write!(
                f,
                "fabric offers only {found} reroutable flows, {wanted} updates requested"
            ),
            SchedError::TooManySchedules { classes, cap } => write!(
                f,
                "{classes} schedule classes exceed the exhaustive cap {cap}; use --schedules"
            ),
            SchedError::NoDropperSite => {
                write!(f, "no eligible dropper rule outside the blast radius")
            }
            SchedError::Provision(e) => write!(f, "staging failed: {e}"),
            SchedError::Runtime(e) => write!(f, "epoch failed: {e}"),
            SchedError::Foces(e) => write!(f, "shard solve failed: {e}"),
        }
    }
}

impl Error for SchedError {}

impl From<ProvisionError> for SchedError {
    fn from(e: ProvisionError) -> Self {
        SchedError::Provision(e)
    }
}

impl From<foces_runtime::RuntimeError> for SchedError {
    fn from(e: foces_runtime::RuntimeError) -> Self {
        SchedError::Runtime(e)
    }
}

impl From<foces::FocesError> for SchedError {
    fn from(e: foces::FocesError) -> Self {
        SchedError::Foces(e)
    }
}

/// Which subset of the schedule space to execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleSet {
    /// Every equivalence class (refused above
    /// [`InterleaveConfig::max_explored`]).
    Exhaustive,
    /// A deterministic seeded sample of valid schedules — the CI mode.
    Sample {
        /// Distinct schedules to draw.
        count: usize,
        /// The draw's seed.
        seed: u64,
    },
    /// Only the global-split schedules (all events share one slot) — the
    /// trivial N=1-era subset, kept as the migration target for the
    /// pre-harness tests.
    Uniform,
}

/// Configuration for [`run_interleave`].
#[derive(Debug, Clone)]
pub struct InterleaveConfig {
    /// Concurrent reroutes to stage (distinct flows).
    pub updates: usize,
    /// Traffic segments per collection window (slots run `0..=segments`).
    pub segments: u8,
    /// Which schedules to execute.
    pub mode: ScheduleSet,
    /// Epoch layout + runtime configuration per schedule.
    pub harness: HarnessConfig,
    /// Whether to run the dropper-completeness dimension (doubles the
    /// executions: one healthy + one dropper run per schedule).
    pub check_dropper: bool,
    /// Seed for the dropper's rule choice.
    pub dropper_seed: u64,
    /// Region shards for the fan-out dimension; `None` disables it.
    pub fanout_shards: Option<usize>,
    /// Refuse exhaustive enumeration above this many classes.
    pub max_explored: u128,
}

impl Default for InterleaveConfig {
    fn default() -> Self {
        InterleaveConfig {
            updates: 2,
            segments: 2,
            mode: ScheduleSet::Exhaustive,
            harness: HarnessConfig::default(),
            check_dropper: true,
            dropper_seed: 41,
            fanout_shards: Some(2),
            max_explored: 20_000,
        }
    }
}

/// One schedule's full outcome across all enabled dimensions.
#[derive(Debug, Clone)]
pub struct ScheduleOutcome {
    /// The canonical schedule executed.
    pub schedule: Schedule,
    /// The update epoch's detection-mode label from the healthy run.
    pub update_mode: String,
    /// Alarms the healthy run raised (0 when sound).
    pub alarms: u64,
    /// When the dropper run first raised, if that dimension ran.
    pub dropper_first_raise: Option<u64>,
    /// The fan-out dimension's aggregate, if enabled.
    pub fanout: Option<FanoutOutcome>,
    /// All oracle violations this schedule produced.
    pub violations: Vec<Violation>,
}

/// The full harness report.
#[derive(Debug, Clone)]
pub struct InterleaveReport {
    /// The staged reroutes (one per update).
    pub plans: Vec<ReroutePlan>,
    /// The commit events, in stage order.
    pub events: Vec<CommitEvent>,
    /// Canonical schedules executed.
    pub explored: u64,
    /// Equivalent linearizations skipped by trace pruning.
    pub pruned: u128,
    /// Per-schedule outcomes, in enumeration order.
    pub outcomes: Vec<ScheduleOutcome>,
    /// A locally-minimal failing schedule and its violations, when any
    /// schedule failed.
    pub minimal_failing: Option<(Schedule, Vec<Violation>)>,
}

impl InterleaveReport {
    /// Total oracle violations across all schedules.
    pub fn violation_count(&self) -> u64 {
        self.outcomes
            .iter()
            .map(|o| o.violations.len() as u64)
            .sum()
    }

    /// `true` when every schedule satisfied every enabled oracle.
    pub fn ok(&self) -> bool {
        self.violation_count() == 0
    }

    /// The deterministic JSONL schedule log: one plan line, one line per
    /// schedule, one summary line. Byte-identical across runs with the
    /// same inputs and seed.
    pub fn json_lines(&self) -> Vec<String> {
        let mut lines = Vec::with_capacity(self.outcomes.len() + 2);
        let flows: Vec<String> = self.plans.iter().map(|p| p.flow.to_string()).collect();
        let waypoints: Vec<String> = self
            .plans
            .iter()
            .map(|p| p.waypoint.0.to_string())
            .collect();
        let blast: Vec<String> = blast_union(&self.plans)
            .iter()
            .map(|s| s.0.to_string())
            .collect();
        lines.push(format!(
            "{{\"event\":\"interleave-plan\",\"updates\":{},\"events\":{},\"flows\":[{}],\"waypoints\":[{}],\"blast_radius\":[{}]}}",
            self.plans.len(),
            self.events.len(),
            flows.join(","),
            waypoints.join(","),
            blast.join(","),
        ));
        for (id, o) in self.outcomes.iter().enumerate() {
            let slots: Vec<String> = o.schedule.slots.iter().map(u8::to_string).collect();
            let first = o
                .dropper_first_raise
                .map_or("null".to_string(), |e| e.to_string());
            let fanout = match &o.fanout {
                Some(f) => format!(
                    "{{\"rounds\":{},\"reconciled\":{},\"blind\":{},\"stale\":{}}}",
                    f.rounds, f.reconciled, f.blind, f.stale_rounds
                ),
                None => "null".to_string(),
            };
            let violations: Vec<String> = o.violations.iter().map(|v| format!("\"{v}\"")).collect();
            lines.push(format!(
                "{{\"event\":\"schedule\",\"id\":{},\"slots\":[{}],\"segments\":{},\"uniform\":{},\"update_mode\":\"{}\",\"alarms\":{},\"dropper_first_raise\":{},\"fanout\":{},\"violations\":[{}]}}",
                id,
                slots.join(","),
                o.schedule.segments,
                o.schedule.is_uniform(),
                o.update_mode,
                o.alarms,
                first,
                fanout,
                violations.join(","),
            ));
        }
        let minimal = self
            .minimal_failing
            .as_ref()
            .map_or("null".to_string(), |(s, _)| format!("\"{}\"", s.label()));
        lines.push(format!(
            "{{\"event\":\"interleave-summary\",\"explored\":{},\"pruned\":{},\"violations\":{},\"minimal_failing\":{}}}",
            self.explored,
            self.pruned,
            self.violation_count(),
            minimal,
        ));
        lines
    }
}

fn blast_union(plans: &[ReroutePlan]) -> Vec<SwitchId> {
    let mut union: Vec<SwitchId> = plans.iter().flat_map(|p| p.blast_radius()).collect();
    union.sort_unstable();
    union.dedup();
    union
}

/// One schedule's evaluation across all enabled oracle dimensions.
struct DimensionResults {
    violations: Vec<Violation>,
    healthy: ScheduleRun,
    fanout: Option<FanoutOutcome>,
    dropper_first: Option<u64>,
}

/// Executes every enabled oracle dimension for one schedule and returns
/// the merged violations plus the healthy run (for reporting).
fn schedule_violations(
    template: &Deployment,
    plans: &[ReroutePlan],
    events: &[CommitEvent],
    schedule: &Schedule,
    cfg: &InterleaveConfig,
    exclude: &[SwitchId],
) -> Result<DimensionResults, SchedError> {
    let healthy = run_schedule(template, plans, events, schedule, &cfg.harness, None, None)?;
    let mut violations = check_healthy(&healthy, &cfg.harness);
    let fanout = match cfg.fanout_shards {
        Some(k) => {
            let f = check_fanout(template, &healthy, k, cfg.harness.runtime.threshold)?;
            violations.extend(f.violations.iter().cloned());
            Some(f)
        }
        None => None,
    };
    let dropper_first = if cfg.check_dropper {
        let d = DropperSpec {
            seed: cfg.dropper_seed,
            exclude: exclude.to_vec(),
        };
        let run = run_schedule(
            template,
            plans,
            events,
            schedule,
            &cfg.harness,
            Some(&d),
            None,
        )?;
        violations.extend(check_dropper(&run, &cfg.harness));
        run.first_raise
    } else {
        None
    };
    Ok(DimensionResults {
        violations,
        healthy,
        fanout,
        dropper_first,
    })
}

/// Plans `cfg.updates` concurrent reroutes on `template`, enumerates (or
/// samples) the commit-schedule space, executes every selected schedule
/// through all enabled oracle dimensions, and — if anything failed —
/// shrinks the first failing schedule to a locally-minimal one.
///
/// # Errors
///
/// See [`SchedError`]; notably [`SchedError::TooManySchedules`] when the
/// exhaustive space exceeds [`InterleaveConfig::max_explored`].
pub fn run_interleave(
    template: &Deployment,
    cfg: &InterleaveConfig,
) -> Result<InterleaveReport, SchedError> {
    let plans = plan_reroutes(template, cfg.updates);
    if plans.len() < cfg.updates {
        return Err(SchedError::NotEnoughReroutes {
            wanted: cfg.updates,
            found: plans.len(),
        });
    }
    run_interleave_with_plans(template, plans, cfg)
}

/// [`run_interleave`] with caller-chosen reroute plans — for tests that
/// need a specific update shape (e.g. two reroutes with *overlapping*
/// blast radii) rather than the planner's shortest-path picks.
/// `cfg.updates` is ignored; `plans` defines the update set.
///
/// # Errors
///
/// See [`SchedError`].
pub fn run_interleave_with_plans(
    template: &Deployment,
    plans: Vec<ReroutePlan>,
    cfg: &InterleaveConfig,
) -> Result<InterleaveReport, SchedError> {
    let events = events_for(&plans);
    let space = ScheduleSpace::new(events.clone(), cfg.segments);
    let (schedules, explored, pruned) = match cfg.mode {
        ScheduleSet::Exhaustive => {
            let classes = space.class_count();
            if classes > cfg.max_explored {
                return Err(SchedError::TooManySchedules {
                    classes,
                    cap: cfg.max_explored,
                });
            }
            let e = space.enumerate();
            (e.schedules, e.explored, e.pruned)
        }
        ScheduleSet::Sample { count, seed } => {
            let s = space.sample(count, seed);
            let pruned = s
                .iter()
                .map(|sch| space.linearizations(sch).saturating_sub(1))
                .sum();
            (s.clone(), s.len() as u64, pruned)
        }
        ScheduleSet::Uniform => {
            let s: Vec<Schedule> = (0..=cfg.segments)
                .map(|slot| Schedule::uniform(events.len(), slot, cfg.segments))
                .collect();
            let pruned = s
                .iter()
                .map(|sch| space.linearizations(sch).saturating_sub(1))
                .sum();
            (s.clone(), s.len() as u64, pruned)
        }
    };

    let exclude = blast_union(&plans);
    let update_at = cfg.harness.update_at as usize;
    let mut outcomes = Vec::with_capacity(schedules.len());
    for schedule in &schedules {
        let dims = schedule_violations(template, &plans, &events, schedule, cfg, &exclude)?;
        outcomes.push(ScheduleOutcome {
            schedule: schedule.clone(),
            update_mode: dims.healthy.epochs[update_at].mode.clone(),
            alarms: dims.healthy.alarms_raised,
            dropper_first_raise: dims.dropper_first,
            fanout: dims.fanout,
            violations: dims.violations,
        });
    }

    let minimal_failing = match outcomes.iter().find(|o| !o.violations.is_empty()) {
        Some(bad) => {
            let shrunk = shrink_failing(&space, &bad.schedule, |cand| {
                schedule_violations(template, &plans, &events, cand, cfg, &exclude)
                    .map(|d| !d.violations.is_empty())
                    .unwrap_or(true)
            });
            let dims = schedule_violations(template, &plans, &events, &shrunk, cfg, &exclude)?;
            Some((shrunk, dims.violations))
        }
        None => None,
    };

    Ok(InterleaveReport {
        plans,
        events,
        explored,
        pruned,
        outcomes,
        minimal_failing,
    })
}
