//! Greedy shrinking of a failing schedule to a locally-minimal one.
//!
//! "Minimal" here means *minimal mixing*: as many events as possible
//! pinned to the window's extremes (slot 0 = before any traffic, slot
//! `segments` = after all of it), because an extreme slot removes that
//! commit from the race entirely. The schedule that still fails with the
//! fewest mid-window commits names the exact interleaving that matters.

use crate::schedule::{Schedule, ScheduleSpace};

/// Shrinks `start` (which must satisfy `still_fails`) by repeatedly
/// pinning one event's slot to an extreme (0 first, then `segments`)
/// while the failure persists, until a fixpoint. The result fails and is
/// valid; every single further extremization either passes or breaks
/// FIFO validity.
///
/// `still_fails` is re-invoked per candidate — callers pay one full
/// schedule execution per probe, so this is for the (rare) failure path.
pub fn shrink_failing<F>(space: &ScheduleSpace, start: &Schedule, mut still_fails: F) -> Schedule
where
    F: FnMut(&Schedule) -> bool,
{
    let mut current = start.clone();
    loop {
        let mut improved = false;
        for e in 0..current.slots.len() {
            // Only mid-window events are candidates: an event already at
            // an extreme is out of the race, and re-moving it to the
            // *other* extreme could oscillate forever. Each accepted move
            // strictly shrinks the mid-window set, so this terminates.
            if current.slots[e] == 0 || current.slots[e] == space.segments {
                continue;
            }
            for target in [0u8, space.segments] {
                let mut candidate = current.clone();
                candidate.slots[e] = target;
                if !space.is_valid(&candidate) {
                    continue;
                }
                if still_fails(&candidate) {
                    current = candidate;
                    improved = true;
                    break;
                }
            }
        }
        if !improved {
            return current;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::CommitEvent;
    use foces_net::SwitchId;

    #[test]
    fn shrinks_to_the_one_slot_that_matters() {
        // Failure depends only on event 1 sitting mid-window; everything
        // else should be driven to an extreme.
        let events = vec![
            CommitEvent {
                update: 0,
                switch: SwitchId(1),
            },
            CommitEvent {
                update: 0,
                switch: SwitchId(2),
            },
            CommitEvent {
                update: 1,
                switch: SwitchId(3),
            },
        ];
        let space = ScheduleSpace::new(events, 2);
        let start = Schedule {
            slots: vec![1, 1, 1],
            segments: 2,
        };
        let minimal = shrink_failing(&space, &start, |s| s.slots[1] == 1);
        assert_eq!(minimal.slots[1], 1, "the culprit survives");
        assert!(
            minimal.slots[0] == 0 || minimal.slots[0] == 2,
            "bystander pinned to an extreme"
        );
        assert!(minimal.slots[2] == 0 || minimal.slots[2] == 2);
    }
}
