//! Executes one enumerated schedule against the real stack: staged
//! reroutes on a cloned [`Deployment`], per-switch commits interleaved
//! with scaled traffic replay, epochs scored by a real
//! [`RuntimeService`], and per-boundary counter snapshots for the shard
//! fan-out dimension.

use crate::schedule::{CommitEvent, Schedule};
use crate::SchedError;
use foces::Fcm;
use foces_controlplane::testkit::ReroutePlan;
use foces_controlplane::{Deployment, StagedUpdate};
use foces_dataplane::{inject_random_anomaly, AnomalyKind, LossModel, RuleRef};
use foces_net::SwitchId;
use foces_runtime::{FaultProfile, RuntimeConfig, RuntimeService, SimTransport};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// How the harness drives each schedule's epochs.
#[derive(Debug, Clone, Copy)]
pub struct HarnessConfig {
    /// Runtime (detector + hysteresis) configuration for the service.
    pub runtime: RuntimeConfig,
    /// The epoch the updates are staged and committed in.
    pub update_at: u64,
    /// Healthy epochs to score after the update epoch.
    pub epochs_after: u64,
    /// Seed for the (quiet) simulated control channel.
    pub transport_seed: u64,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            runtime: RuntimeConfig::default(),
            update_at: 1,
            epochs_after: 2,
            transport_seed: 7,
        }
    }
}

/// A persistent dropper to plant before the update epoch's traffic — the
/// adversary's best moment to hide behind reconciliation masking.
#[derive(Debug, Clone)]
pub struct DropperSpec {
    /// Seed for the random eligible-rule choice.
    pub seed: u64,
    /// Switches the dropper must avoid (the updates' union blast radius).
    pub exclude: Vec<SwitchId>,
}

/// One scored epoch, reduced to the fields the oracles (and the JSON
/// schedule log) need.
#[derive(Debug, Clone)]
pub struct EpochOutcome {
    /// The epoch number.
    pub epoch: u64,
    /// Detection-mode label (e.g. `Full`, `Reconciled`).
    pub mode: String,
    /// Whether the round's verdict crossed the threshold.
    pub anomalous: bool,
    /// Whether this round raised the alarm.
    pub alarm_raised: bool,
    /// Whether this round witnessed churn.
    pub churn: bool,
    /// Whether the round took the journal-reconciled path.
    pub reconciled: bool,
}

/// Counters and generation stamps captured at one slot boundary of the
/// update epoch — what a shard completing at that instant would see.
#[derive(Debug, Clone)]
pub struct BoundarySnapshot {
    /// The boundary's slot (commits with this slot have landed; `slot`
    /// traffic segments have run).
    pub slot: u8,
    /// The pre-update FCM's counter vector (row order) at this instant.
    pub counters: Vec<f64>,
    /// `generations[s]` = switch `s`'s table generation at this instant.
    pub generations: Vec<u64>,
}

/// Everything one schedule execution produced.
#[derive(Debug, Clone)]
pub struct ScheduleRun {
    /// Per-epoch outcomes, in order.
    pub epochs: Vec<EpochOutcome>,
    /// Alarm state after the last epoch (as a debug label).
    pub final_state: String,
    /// Total alarms raised across the run.
    pub alarms_raised: u64,
    /// FCM rebuilds performed (must be > 0: the FCM follows the view).
    pub fcm_rebuilds: u64,
    /// First epoch that raised the alarm, if any.
    pub first_raise: Option<u64>,
    /// The data plane's full counter vector at the end of the update
    /// epoch's traffic — the pruning-soundness witness: equivalent
    /// schedules must reproduce it bit-for-bit.
    pub update_counters: Vec<f64>,
    /// Journal rows touched by the staged updates (vs generation 0).
    pub touched_rules: Vec<RuleRef>,
    /// Per-slot-boundary snapshots of the update epoch (slots
    /// `1..=segments`), for the shard fan-out dimension.
    pub boundaries: Vec<BoundarySnapshot>,
}

fn quiet_transport(seed: u64) -> SimTransport {
    SimTransport::new(
        seed,
        FaultProfile {
            latency_ms: 1.0,
            jitter_ms: 0.0,
            drop_prob: 0.0,
            reorder_prob: 0.0,
            offline: Vec::new(),
        },
    )
}

/// The commit events a set of reroute plans induces, in stage order:
/// update-major, new-path order within each update. This is the event
/// list [`crate::ScheduleSpace`] must be built over for
/// [`run_schedule`]'s schedules to line up.
pub fn events_for(plans: &[ReroutePlan]) -> Vec<CommitEvent> {
    plans
        .iter()
        .enumerate()
        .flat_map(|(update, p)| {
            p.new_path
                .iter()
                .map(move |&switch| CommitEvent { update, switch })
        })
        .collect()
}

/// Runs one schedule end to end on a clone of `template`.
///
/// * Epochs before `update_at` and after it replay full traffic and must
///   score clean.
/// * At `update_at`, all plans are **staged** first (view + journal, no
///   FlowMods), then the window runs: for each slot `0..=segments`, the
///   events assigned to that slot commit (in `order`, which defaults to
///   stage order and must respect per-switch FIFO), then one traffic
///   segment of `1/segments` of every flow's volume replays.
/// * With a [`DropperSpec`], the dropper activates entering the update
///   epoch, off the excluded switches.
///
/// `events` and `schedule` must be index-aligned; `order`, when given, is
/// a permutation of event indices used to linearize same-slot commits (to
/// verify pruning soundness: any valid linearization must be equivalent
/// to the canonical stage-order one).
///
/// # Errors
///
/// [`SchedError::Provision`] when a plan no longer applies,
/// [`SchedError::Runtime`] when an epoch fails to score.
///
/// # Panics
///
/// Panics if `order` violates per-switch FIFO (the controller's
/// index-lockstep assertion fires), or if `schedule` is not aligned with
/// `events`.
pub fn run_schedule(
    template: &Deployment,
    plans: &[ReroutePlan],
    events: &[CommitEvent],
    schedule: &Schedule,
    cfg: &HarnessConfig,
    dropper: Option<&DropperSpec>,
    order: Option<&[usize]>,
) -> Result<ScheduleRun, SchedError> {
    assert_eq!(
        events.len(),
        schedule.slots.len(),
        "schedule must assign every event a slot"
    );
    let identity: Vec<usize> = (0..events.len()).collect();
    let order = order.unwrap_or(&identity);
    assert_eq!(order.len(), events.len(), "order must permute all events");

    let mut dep = template.clone();
    let fcm0 = Fcm::from_view(&dep.view);
    let mut service = RuntimeService::with_sim_transport(
        &dep.view,
        quiet_transport(cfg.transport_seed),
        cfg.runtime,
    );

    let total_epochs = cfg.update_at + 1 + cfg.epochs_after;
    let mut epochs = Vec::with_capacity(total_epochs as usize);
    let mut first_raise = None;
    let mut update_counters = Vec::new();
    let mut touched_rules = Vec::new();
    let mut boundaries = Vec::new();

    for epoch in 0..total_epochs {
        let report = if epoch == cfg.update_at {
            dep.dataplane.reset_counters();
            if let Some(d) = dropper {
                let mut rng = StdRng::seed_from_u64(d.seed);
                let applied = inject_random_anomaly(
                    &mut dep.dataplane,
                    AnomalyKind::EarlyDrop,
                    &mut rng,
                    &d.exclude,
                )
                .ok_or(SchedError::NoDropperSite)?;
                debug_assert!(!d.exclude.contains(&applied.rule.switch));
            }
            let staged: Vec<StagedUpdate> = plans
                .iter()
                .map(|p| dep.stage_reroute_via(p.flow, &[p.waypoint]))
                .collect::<Result<_, _>>()?;
            touched_rules = dep.view.touched_rules_since(0);
            let fraction = 1.0 / f64::from(schedule.segments);
            let mut loss = LossModel::none();
            for slot in 0..=schedule.segments {
                for &e in order {
                    if schedule.slots[e] == slot {
                        dep.commit_switch(&staged[events[e].update], events[e].switch);
                    }
                }
                if slot > 0 {
                    boundaries.push(BoundarySnapshot {
                        slot,
                        counters: fcm0.counters_from(&dep.dataplane),
                        generations: (0..dep.dataplane.topology().switch_count())
                            .map(|s| dep.dataplane.table_generation(SwitchId(s)))
                            .collect(),
                    });
                }
                if slot < schedule.segments {
                    dep.replay_traffic_scaled(&mut loss, fraction);
                }
            }
            update_counters = dep.dataplane.collect_counters();
            service.run_epoch(&dep.dataplane, &dep.view)?
        } else {
            dep.dataplane.reset_counters();
            dep.replay_traffic(&mut LossModel::none());
            service.run_epoch(&dep.dataplane, &dep.view)?
        };
        if report.alarm_raised && first_raise.is_none() {
            first_raise = Some(epoch);
        }
        epochs.push(EpochOutcome {
            epoch,
            mode: report.mode.label().to_string(),
            anomalous: report.anomalous(),
            alarm_raised: report.alarm_raised,
            churn: report.churn,
            reconciled: report.mode.is_reconciled(),
        });
    }

    let metrics = *service.metrics();
    Ok(ScheduleRun {
        epochs,
        final_state: format!("{:?}", service.state()),
        alarms_raised: metrics.alarms_raised,
        fcm_rebuilds: metrics.fcm_rebuilds,
        first_raise,
        update_counters,
        touched_rules,
        boundaries,
    })
}
