//! The shard fan-out dimension: replay every slot boundary of an
//! executed schedule through the §13 sharded detection path, with the
//! per-switch generation stamps the boundary froze.
//!
//! This models the event-driven ingest's completion edge firing *during*
//! the commit window: a shard whose members all answered fires
//! immediately, and some members may already stamp a generation the
//! shard's FCM (built at generation 0) has never seen — the
//! stale-generation race. Every such round goes through the **same**
//! [`foces_cluster::reconcile_shard_round`] the stream driver deploys,
//! and the oracle requires it be scored reconciled or blind — never
//! anomalous, never solved as if generations were pure.

use crate::harness::ScheduleRun;
use crate::oracle::Violation;
use crate::SchedError;
use foces::{Detector, EquationSystem, Fcm, ShardedFcm};
use foces_cluster::{reconcile_shard_round, ShardRoundKind};
use foces_controlplane::Deployment;
use foces_net::{partition, PartitionSpec};

/// Aggregate outcome of the fan-out dimension over one schedule.
#[derive(Debug, Clone, Default)]
pub struct FanoutOutcome {
    /// Shard rounds fired (boundaries × non-empty shards).
    pub rounds: u64,
    /// Rounds scored via the journal-reconciled path.
    pub reconciled: u64,
    /// Rounds masked down to nothing (skipped, not fabricated).
    pub blind: u64,
    /// Rounds where at least one member stamped a generation newer than
    /// the shard FCM's — the stale-member race actually occurred.
    pub stale_rounds: u64,
    /// Oracle violations.
    pub violations: Vec<Violation>,
}

/// Replays every captured slot boundary through `shards` region shards.
///
/// `template` must be the pre-update deployment the run was cloned from
/// (its view at generation 0 defines the shard FCMs, exactly like a
/// stream driver that last rebuilt before the updates were staged).
///
/// # Errors
///
/// Propagates solver failures as [`SchedError::Foces`].
pub fn check_fanout(
    template: &Deployment,
    run: &ScheduleRun,
    shards: usize,
    threshold: f64,
) -> Result<FanoutOutcome, SchedError> {
    let fcm = Fcm::from_view(&template.view);
    let part = partition(
        template.dataplane.topology(),
        PartitionSpec::EdgeCut { k: shards },
    );
    let sharded = ShardedFcm::from_fcm(&fcm, &part);
    let detector = Detector::new(threshold, EquationSystem::default());
    let mut out = FanoutOutcome::default();

    for snap in &run.boundaries {
        for view in sharded.shard_views() {
            let stale = view.switches.iter().any(|s| snap.generations[s.0] > 0);
            // The updates are journaled at stage time (slot 0), so every
            // boundary is churned even before any commit lands.
            let churn = !run.touched_rules.is_empty() || stale;
            let sub_counters = view.sub_counters(&snap.counters);
            let sub_observed = vec![true; sub_counters.len()];
            let round = reconcile_shard_round(
                &view,
                &fcm,
                &detector,
                &sub_counters,
                &sub_observed,
                &run.touched_rules,
                churn,
            )?;
            out.rounds += 1;
            if stale {
                out.stale_rounds += 1;
            }
            match round.kind {
                ShardRoundKind::Reconciled => out.reconciled += 1,
                ShardRoundKind::Blind => out.blind += 1,
                ShardRoundKind::Degraded => out.violations.push(Violation::FanoutNotReconciled {
                    slot: snap.slot,
                    region: view.region,
                    kind: round.kind.label().to_string(),
                }),
            }
            if let Some(v) = &round.verdict {
                if v.anomalous {
                    out.violations.push(Violation::FanoutAnomalous {
                        slot: snap.slot,
                        region: view.region,
                        index: v.anomaly_index,
                    });
                }
            }
        }
    }
    Ok(out)
}
