//! Soundness oracles over executed schedules.
//!
//! * **Healthy soundness** — on a fabric with no anomaly, *every*
//!   schedule of commits against collection must reconcile: no epoch
//!   scores anomalous, no alarm is ever raised, the update epoch itself
//!   takes the journal-reconciled path, and the FCM follows the view.
//! * **Dropper completeness** — masking must absorb the *update*, not
//!   the attack: a persistent dropper activating at the update epoch on
//!   a switch outside every update's blast radius must raise the alarm
//!   within [`foces_runtime::RuntimeConfig::churn_raise_bound`] epochs,
//!   and the alarm must still stand at the end of the run.
//! * **Fan-out soundness** (see [`check_fanout`](crate::check_fanout)) — a shard round fired
//!   at any slot boundary, including with stale-generation members, must
//!   be scored reconciled or blind, never anomalous.

use crate::harness::{HarnessConfig, ScheduleRun};
use std::fmt;

/// One oracle violation, self-describing.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Violation {
    /// A healthy epoch's verdict crossed the threshold.
    HealthyAnomalous {
        /// The offending epoch.
        epoch: u64,
        /// Its detection-mode label.
        mode: String,
    },
    /// A healthy schedule raised the alarm.
    FalseAlarm {
        /// The epoch that raised.
        epoch: u64,
    },
    /// The update epoch did not flag churn + take the reconciled path.
    UpdateEpochNotReconciled {
        /// The mode it took instead.
        mode: String,
        /// Whether churn was at least flagged.
        churn: bool,
    },
    /// The FCM never followed the view (no rebuild happened).
    NoRebuild,
    /// The dropper was never alarmed on.
    DropperMissed,
    /// An alarm predates the dropper's activation — a false positive.
    AlarmBeforeDropper {
        /// The raising epoch.
        first: u64,
    },
    /// The alarm came later than the hysteresis + churn-suppression bound.
    AlarmPastBound {
        /// The raising epoch.
        first: u64,
        /// The bound it had to meet.
        bound: u64,
    },
    /// The dropper persists but the final state is not Alarmed.
    AlarmNotStanding {
        /// The final alarm state label.
        state: String,
    },
    /// A shard round at a slot boundary scored anomalous.
    FanoutAnomalous {
        /// The boundary's slot.
        slot: u8,
        /// The shard's region id.
        region: usize,
        /// The anomaly index it reported.
        index: f64,
    },
    /// A churned shard round was scored as if generations were pure.
    FanoutNotReconciled {
        /// The boundary's slot.
        slot: u8,
        /// The shard's region id.
        region: usize,
        /// The round kind it took instead.
        kind: String,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::HealthyAnomalous { epoch, mode } => {
                write!(f, "healthy epoch {epoch} scored anomalous ({mode})")
            }
            Violation::FalseAlarm { epoch } => write!(f, "false alarm at epoch {epoch}"),
            Violation::UpdateEpochNotReconciled { mode, churn } => write!(
                f,
                "update epoch not reconciled (mode {mode}, churn {churn})"
            ),
            Violation::NoRebuild => write!(f, "the FCM never followed the view"),
            Violation::DropperMissed => write!(f, "reconciliation swallowed the dropper"),
            Violation::AlarmBeforeDropper { first } => {
                write!(f, "alarm at epoch {first} predates the dropper")
            }
            Violation::AlarmPastBound { first, bound } => {
                write!(f, "alarm at epoch {first} outran the bound {bound}")
            }
            Violation::AlarmNotStanding { state } => {
                write!(f, "dropper persists but final state is {state}")
            }
            Violation::FanoutAnomalous {
                slot,
                region,
                index,
            } => write!(
                f,
                "shard {region} anomalous (index {index:.2}) at slot boundary {slot}"
            ),
            Violation::FanoutNotReconciled { slot, region, kind } => write!(
                f,
                "shard {region} round at slot boundary {slot} was {kind}, want reconciled/blind"
            ),
        }
    }
}

/// Checks the healthy-soundness oracle on a run without injected faults.
pub fn check_healthy(run: &ScheduleRun, cfg: &HarnessConfig) -> Vec<Violation> {
    let mut v = Vec::new();
    for e in &run.epochs {
        if e.anomalous {
            v.push(Violation::HealthyAnomalous {
                epoch: e.epoch,
                mode: e.mode.clone(),
            });
        }
        if e.alarm_raised {
            v.push(Violation::FalseAlarm { epoch: e.epoch });
        }
        if e.epoch == cfg.update_at && !(e.churn && e.reconciled) {
            v.push(Violation::UpdateEpochNotReconciled {
                mode: e.mode.clone(),
                churn: e.churn,
            });
        }
    }
    if run.fcm_rebuilds == 0 {
        v.push(Violation::NoRebuild);
    }
    v
}

/// Checks the dropper-completeness oracle on a run with a persistent
/// dropper planted at `cfg.update_at`.
pub fn check_dropper(run: &ScheduleRun, cfg: &HarnessConfig) -> Vec<Violation> {
    let bound = cfg.update_at + cfg.runtime.churn_raise_bound();
    let mut v = Vec::new();
    match run.first_raise {
        None => v.push(Violation::DropperMissed),
        Some(first) if first < cfg.update_at => {
            v.push(Violation::AlarmBeforeDropper { first });
        }
        Some(first) if first > bound => v.push(Violation::AlarmPastBound { first, bound }),
        Some(_) => {}
    }
    if run.final_state != "Alarmed" {
        v.push(Violation::AlarmNotStanding {
            state: run.final_state.clone(),
        });
    }
    v
}
