//! The schedule model: per-switch commit events, slot vectors, the FIFO
//! partial order, and DPOR-style equivalence-class enumeration.
//!
//! # Model
//!
//! N concurrent reroutes are **staged** (view + journal) at the start of
//! one collection window. Each staged update then has one independent
//! **commit event** per new-path switch — the moment that switch's
//! FlowMods land and its table acknowledges the staged generation. The
//! collection window's traffic is cut into `segments` equal pieces; a
//! schedule assigns every commit event a **slot** `0..=segments`, meaning
//! "this commit lands after that many traffic segments have run". All
//! commits land before the counters are read (slot `segments` = just
//! before collection): an OpenFlow barrier completes before the
//! generation-stamped two-phase read begins.
//!
//! Two constraints define the valid schedules:
//!
//! * **Per-switch FIFO.** One OpenFlow connection per switch delivers
//!   FlowMods in order, so two events on the *same* switch must take
//!   non-decreasing slots in stage order (and within a slot they commit
//!   in stage order). This is also what keeps the controller's view and
//!   the switch's table index-aligned.
//! * Events on *different* switches are unordered — that freedom is the
//!   space being model-checked.
//!
//! # Equivalence (Mazurkiewicz traces)
//!
//! Two schedules are equivalent iff every pair of *dependent* events is
//! ordered the same way. Commits on the same switch are dependent (FIFO
//! plus same table). A commit and a traffic segment are dependent (the
//! segment's counters change with the rule set). Commits on **different
//! switches with no traffic segment between them commute**: no packet
//! runs between the two table writes, so both orders yield bit-identical
//! counters. Hence a slot vector *is* a canonical trace representative,
//! and every linearization it represents beyond itself counts as pruned.

use foces_net::SwitchId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One per-switch commit point of one staged update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitEvent {
    /// Index of the staged update this commit belongs to.
    pub update: usize,
    /// The switch whose FlowMods land at this event.
    pub switch: SwitchId,
}

/// A canonical schedule: `slots[e]` is the number of traffic segments
/// that run before event `e` commits (`0..=segments`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Schedule {
    /// Per-event commit slots, indexed like [`ScheduleSpace::events`].
    pub slots: Vec<u8>,
    /// How many equal traffic segments the collection window is cut into.
    pub segments: u8,
}

impl Schedule {
    /// The degenerate schedule where every commit lands at the same
    /// global split point — the only schedules the pre-harness test
    /// suite explored.
    pub fn uniform(events: usize, slot: u8, segments: u8) -> Self {
        Schedule {
            slots: vec![slot; events],
            segments,
        }
    }

    /// `true` when all events share one slot (a global-split schedule).
    pub fn is_uniform(&self) -> bool {
        self.slots.windows(2).all(|w| w[0] == w[1])
    }

    /// Compact label, e.g. `"0,2,1/2"`: slots then `/segments`.
    pub fn label(&self) -> String {
        let slots: Vec<String> = self.slots.iter().map(u8::to_string).collect();
        format!("{}/{}", slots.join(","), self.segments)
    }
}

/// The set of valid schedules for a fixed event list.
#[derive(Debug, Clone)]
pub struct ScheduleSpace {
    /// All commit events in **stage order**: update-major, new-path order
    /// within an update. Stage order is the canonical intra-slot commit
    /// order and the reference order for the FIFO constraint.
    pub events: Vec<CommitEvent>,
    /// Traffic segments per collection window (slots run `0..=segments`).
    pub segments: u8,
}

/// What an exhaustive enumeration found.
#[derive(Debug, Clone)]
pub struct Enumeration {
    /// Every canonical schedule (one per Mazurkiewicz equivalence class).
    pub schedules: Vec<Schedule>,
    /// Number of canonical schedules explored (`schedules.len()`).
    pub explored: u64,
    /// Number of equivalent linearizations *not* explored: over all
    /// classes, linearizations minus the one representative.
    pub pruned: u128,
}

impl ScheduleSpace {
    /// Builds the space for `events` in stage order.
    ///
    /// # Panics
    ///
    /// Panics if `segments == 0` (a window with no traffic has nothing to
    /// interleave).
    pub fn new(events: Vec<CommitEvent>, segments: u8) -> Self {
        assert!(segments > 0, "need at least one traffic segment");
        ScheduleSpace { events, segments }
    }

    /// For each event, the index of the *previous* event on the same
    /// switch (stage order), if any — the FIFO predecessor whose slot
    /// bounds this event's slot from below.
    fn fifo_predecessor(&self) -> Vec<Option<usize>> {
        let mut pred = vec![None; self.events.len()];
        for (e, ev) in self.events.iter().enumerate() {
            pred[e] = self.events[..e].iter().rposition(|p| p.switch == ev.switch);
        }
        pred
    }

    /// Whether a slot vector satisfies the per-switch FIFO constraint.
    pub fn is_valid(&self, schedule: &Schedule) -> bool {
        if schedule.slots.len() != self.events.len() || schedule.segments != self.segments {
            return false;
        }
        if schedule.slots.iter().any(|&s| s > self.segments) {
            return false;
        }
        self.fifo_predecessor()
            .iter()
            .enumerate()
            .all(|(e, p)| p.is_none_or(|p| schedule.slots[p] <= schedule.slots[e]))
    }

    /// The number of distinct valid schedules (equivalence classes),
    /// without materializing them.
    pub fn class_count(&self) -> u128 {
        let pred = self.fifo_predecessor();
        let mut count = 0u128;
        let mut slots = vec![0u8; self.events.len()];
        self.count_rec(0, &pred, &mut slots, &mut count);
        count
    }

    fn count_rec(&self, e: usize, pred: &[Option<usize>], slots: &mut Vec<u8>, count: &mut u128) {
        if e == self.events.len() {
            *count += 1;
            return;
        }
        let lo = pred[e].map_or(0, |p| slots[p]);
        for s in lo..=self.segments {
            slots[e] = s;
            self.count_rec(e + 1, pred, slots, count);
        }
    }

    /// Exhaustively enumerates every equivalence class (canonical slot
    /// vectors, lexicographic order) and counts the pruned
    /// linearizations.
    pub fn enumerate(&self) -> Enumeration {
        let pred = self.fifo_predecessor();
        let mut schedules = Vec::new();
        let mut slots = vec![0u8; self.events.len()];
        self.enumerate_rec(0, &pred, &mut slots, &mut schedules);
        let pruned = schedules
            .iter()
            .map(|s| self.linearizations(s).saturating_sub(1))
            .sum();
        Enumeration {
            explored: schedules.len() as u64,
            pruned,
            schedules,
        }
    }

    fn enumerate_rec(
        &self,
        e: usize,
        pred: &[Option<usize>],
        slots: &mut Vec<u8>,
        out: &mut Vec<Schedule>,
    ) {
        if e == self.events.len() {
            out.push(Schedule {
                slots: slots.clone(),
                segments: self.segments,
            });
            return;
        }
        let lo = pred[e].map_or(0, |p| slots[p]);
        for s in lo..=self.segments {
            slots[e] = s;
            self.enumerate_rec(e + 1, pred, slots, out);
        }
    }

    /// How many interleavings (total orders of commits against each other
    /// and the traffic segments) the given canonical schedule represents.
    ///
    /// Events in different slots, and events relative to traffic
    /// segments, are already totally ordered by the slot vector. Within
    /// one slot, `m` events interleave in `m!` orders — except that
    /// same-switch events are FIFO-pinned, dividing by the product of
    /// per-switch multiplicities' factorials (multinomial of the slot's
    /// switch groups).
    pub fn linearizations(&self, schedule: &Schedule) -> u128 {
        let mut total = 1u128;
        for slot in 0..=self.segments {
            let in_slot: Vec<usize> = (0..self.events.len())
                .filter(|&e| schedule.slots[e] == slot)
                .collect();
            let mut orders = factorial(in_slot.len());
            let mut seen: Vec<(SwitchId, usize)> = Vec::new();
            for &e in &in_slot {
                let sw = self.events[e].switch;
                match seen.iter_mut().find(|(s, _)| *s == sw) {
                    Some((_, k)) => *k += 1,
                    None => seen.push((sw, 1)),
                }
            }
            for (_, k) in seen {
                orders /= factorial(k);
            }
            total = total.saturating_mul(orders);
        }
        total
    }

    /// Draws `count` valid schedules, deterministically from `seed` — the
    /// bounded CI mode. Per switch group the slots are drawn uniformly
    /// and sorted (sorting makes any draw FIFO-valid); draws are
    /// deduplicated, so fewer than `count` distinct schedules may return
    /// when the space is small.
    pub fn sample(&self, count: usize, seed: u64) -> Vec<Schedule> {
        let pred = self.fifo_predecessor();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out: Vec<Schedule> = Vec::with_capacity(count);
        // Bounded retry: a tiny space can't yield `count` distinct draws.
        let mut attempts = 0usize;
        while out.len() < count && attempts < count.saturating_mul(64) + 64 {
            attempts += 1;
            let mut slots = vec![0u8; self.events.len()];
            for s in &mut slots {
                *s = rng.gen_range(0..=self.segments);
            }
            // Repair FIFO violations by clamping each event to its
            // predecessor's slot — preserves determinism and validity.
            for e in 0..self.events.len() {
                if let Some(p) = pred[e] {
                    slots[e] = slots[e].max(slots[p]);
                }
            }
            let s = Schedule {
                slots,
                segments: self.segments,
            };
            if !out.contains(&s) {
                out.push(s);
            }
        }
        out
    }
}

fn factorial(n: usize) -> u128 {
    (1..=n as u128).product()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(update: usize, switch: usize) -> CommitEvent {
        CommitEvent {
            update,
            switch: SwitchId(switch),
        }
    }

    #[test]
    fn disjoint_switches_enumerate_the_full_grid() {
        // 2 events on distinct switches, 2 segments: 3^2 = 9 classes.
        let space = ScheduleSpace::new(vec![ev(0, 1), ev(1, 2)], 2);
        let e = space.enumerate();
        assert_eq!(e.explored, 9);
        assert_eq!(space.class_count(), 9);
        // The 3 same-slot classes each represent 2 linearizations.
        assert_eq!(e.pruned, 3);
    }

    #[test]
    fn same_switch_events_are_fifo_ordered() {
        // 2 events on the SAME switch: only non-decreasing slot pairs.
        let space = ScheduleSpace::new(vec![ev(0, 1), ev(1, 1)], 2);
        let e = space.enumerate();
        assert_eq!(e.explored, 6); // C(3+1,2) = 6 multisets
        for s in &e.schedules {
            assert!(s.slots[0] <= s.slots[1]);
        }
        // Same-switch same-slot pairs are FIFO-pinned: nothing pruned.
        assert_eq!(e.pruned, 0);
    }

    #[test]
    fn linearization_counts_are_multinomial() {
        // 3 events in one slot: two on s1 (pinned), one on s2.
        let space = ScheduleSpace::new(vec![ev(0, 1), ev(1, 1), ev(0, 2)], 1);
        let s = Schedule::uniform(3, 0, 1);
        assert_eq!(space.linearizations(&s), 3); // 3!/2! = 3
    }

    #[test]
    fn sampling_is_deterministic_and_valid() {
        let space = ScheduleSpace::new(vec![ev(0, 1), ev(0, 2), ev(1, 1), ev(1, 3)], 3);
        let a = space.sample(8, 42);
        let b = space.sample(8, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        for s in &a {
            assert!(space.is_valid(s), "sampled schedule {} invalid", s.label());
        }
        assert_ne!(space.sample(8, 43), a, "different seed, different draw");
    }

    #[test]
    fn uniform_schedules_are_valid_everywhere() {
        let space = ScheduleSpace::new(vec![ev(0, 1), ev(0, 2), ev(1, 2)], 4);
        for slot in 0..=4 {
            assert!(space.is_valid(&Schedule::uniform(3, slot, 4)));
        }
    }
}
