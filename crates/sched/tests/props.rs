//! Property suite for the schedule harness.
//!
//! * **No false alarms** — random update pairs × random valid schedules
//!   reconcile with zero false alarms (proptest's own shrinking walks
//!   the seed toward a minimal failing draw; the harness's
//!   `shrink_failing` then pins the minimal *schedule*).
//! * **Pruning soundness** — a canonical schedule's verdict trace (and
//!   the update epoch's exact counter vector) is identical under every
//!   FIFO-respecting linearization of its same-slot commits: what the
//!   enumerator prunes really is equivalent to what it keeps.

use foces_controlplane::testkit::plan_reroutes;
use foces_controlplane::{provision, uniform_flows, Deployment, FlowSpec, RuleGranularity};
use foces_net::generators::fattree;
use foces_sched::{check_healthy, events_for, run_schedule, HarnessConfig, ScheduleSpace};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::OnceLock;

/// FatTree(4) with every third all-pairs flow: rich enough for two
/// disjoint-or-overlapping reroutes, small enough for per-case service
/// builds.
fn testbed() -> &'static Deployment {
    static DEP: OnceLock<Deployment> = OnceLock::new();
    DEP.get_or_init(|| {
        let topo = fattree(4);
        let flows: Vec<FlowSpec> = uniform_flows(&topo, 240_000.0)
            .into_iter()
            .step_by(3)
            .collect();
        provision(topo, &flows, RuleGranularity::PerFlowPair).expect("provision fattree(4)")
    })
}

/// A FIFO-respecting permutation of the event indices, derived from
/// `seed`: a Fisher–Yates shuffle, then each switch's events are put
/// back in stage order at the (sorted) positions the shuffle gave them.
fn fifo_permutation(space: &ScheduleSpace, seed: u64) -> Vec<usize> {
    let n = space.events.len();
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    // Re-pin same-switch events to stage order without moving the
    // positions the shuffle assigned to that switch.
    let switches: Vec<_> = space.events.iter().map(|e| e.switch).collect();
    for &sw in &switches {
        let mut positions: Vec<usize> = (0..n).filter(|&p| switches[order[p]] == sw).collect();
        positions.sort_unstable();
        let mut in_stage_order: Vec<usize> = (0..n).filter(|&e| switches[e] == sw).collect();
        in_stage_order.sort_unstable();
        for (p, e) in positions.into_iter().zip(in_stage_order) {
            order[p] = e;
        }
    }
    order
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn random_update_pairs_and_schedules_reconcile_without_false_alarm(seed in 0u64..1024) {
        let dep = testbed();
        let mut plans = plan_reroutes(dep, 8);
        prop_assume!(plans.len() >= 2);
        // Rotate which pair of flows updates, seeded by the case.
        let n = plans.len();
        plans.rotate_left(seed as usize % n);
        plans.truncate(2);
        let events = events_for(&plans);
        let space = ScheduleSpace::new(events.clone(), 3);
        let cfg = HarnessConfig::default();
        for schedule in space.sample(1, seed) {
            let run = run_schedule(dep, &plans, &events, &schedule, &cfg, None, None)
                .expect("schedules execute");
            let violations = check_healthy(&run, &cfg);
            prop_assert!(
                violations.is_empty(),
                "schedule {} violated: {:?}",
                schedule.label(),
                violations
            );
        }
    }

    #[test]
    fn pruned_linearizations_match_their_canonical_representative(seed in 0u64..1024) {
        let dep = testbed();
        let plans = plan_reroutes(dep, 2);
        prop_assume!(plans.len() == 2);
        let events = events_for(&plans);
        let space = ScheduleSpace::new(events.clone(), 2);
        let schedule = space.sample(1, seed).remove(0);
        let cfg = HarnessConfig::default();
        let canonical = run_schedule(dep, &plans, &events, &schedule, &cfg, None, None)
            .expect("canonical run");
        let order = fifo_permutation(&space, seed.wrapping_mul(31).wrapping_add(7));
        let permuted = run_schedule(dep, &plans, &events, &schedule, &cfg, None, Some(&order))
            .expect("permuted run");
        // Bit-identical counters at the update epoch's end: same-slot
        // commits on distinct switches genuinely commute.
        prop_assert_eq!(&canonical.update_counters, &permuted.update_counters);
        // And the scored trace agrees epoch by epoch.
        for (a, b) in canonical.epochs.iter().zip(&permuted.epochs) {
            prop_assert_eq!(&a.mode, &b.mode, "epoch {}", a.epoch);
            prop_assert_eq!(a.anomalous, b.anomalous, "epoch {}", a.epoch);
            prop_assert_eq!(a.alarm_raised, b.alarm_raised, "epoch {}", a.epoch);
            prop_assert_eq!(a.churn, b.churn, "epoch {}", a.epoch);
        }
        prop_assert_eq!(canonical.final_state, permuted.final_state);
    }
}
