//! Shared fixtures for the Criterion benchmarks.

use foces_controlplane::{provision, uniform_flows, Deployment, RuleGranularity};
use foces_net::Topology;

/// Provisions the all-pairs workload on `topo` (1000 packets/flow/interval).
///
/// # Panics
///
/// Panics if the topology cannot be provisioned.
pub fn deployment(topo: Topology, granularity: RuleGranularity) -> Deployment {
    let n = topo.host_count() as f64;
    let flows = uniform_flows(&topo, n * (n - 1.0) * 1000.0);
    provision(topo, &flows, granularity).expect("bench topologies provision")
}

/// Replays all flows losslessly and returns the counter vector.
pub fn healthy_counters(dep: &mut Deployment) -> Vec<f64> {
    let mut loss = foces_dataplane::LossModel::none();
    dep.replay_traffic(&mut loss);
    dep.dataplane.collect_counters()
}
