//! Stage-cost probe for the incremental pipeline on FatTree(8).
//!
//! `#[ignore]`d by default; run with
//! `cargo test -p foces-bench --release --test probe -- --ignored --nocapture`
//! to print per-stage wall times (grouping, Gram, factorization, batched
//! patches, solve). Useful when tuning the warm path: the environment is
//! memory-bandwidth-bound, so patch costs track full-matrix passes, not
//! flop counts.

use foces::Fcm;
use foces_controlplane::{provision, uniform_flows, RuleGranularity};
use foces_linalg::FactorCache;
use foces_net::generators::fattree;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::Instant;

#[test]
#[ignore]
fn probe_stage_costs() {
    let topo = fattree(8);
    let n = topo.host_count() as f64;
    let mut flows = uniform_flows(&topo, n * (n - 1.0) * 1000.0);
    let mut rng = StdRng::seed_from_u64(7);
    flows.shuffle(&mut rng);
    flows.truncate(2000);
    let dep = provision(topo, &flows, RuleGranularity::PerDestination).unwrap();
    let fcm = Fcm::from_view(&dep.view);
    eprintln!("flows={} rules={}", fcm.flow_count(), fcm.rule_count());

    let t = Instant::now();
    let groups = fcm.column_groups();
    eprintln!(
        "column_groups: {:.1}ms, basis={}",
        t.elapsed().as_secs_f64() * 1e3,
        groups.basis.len()
    );

    let t = Instant::now();
    let h_basis = fcm.sparse().select_columns(&groups.basis);
    eprintln!("select_columns: {:.1}ms", t.elapsed().as_secs_f64() * 1e3);

    let t = Instant::now();
    let gram = h_basis.gram_dense().unwrap();
    eprintln!("gram_dense: {:.1}ms", t.elapsed().as_secs_f64() * 1e3);

    let t = Instant::now();
    let mut factor = FactorCache::factor_lean(gram).unwrap();
    eprintln!("factor: {:.1}ms", t.elapsed().as_secs_f64() * 1e3);

    let nb = factor.dim();
    let t = Instant::now();
    factor.remove(nb - 5);
    eprintln!("one remove: {:.1}ms", t.elapsed().as_secs_f64() * 1e3);

    let t = Instant::now();
    let cross = vec![0.0; factor.dim()];
    factor.append(&cross, 7.0).unwrap();
    eprintln!("one append: {:.1}ms", t.elapsed().as_secs_f64() * 1e3);

    let t = Instant::now();
    let positions: Vec<usize> = (0..20).map(|i| i * 80 + 3).collect();
    factor.remove_batch(&positions);
    eprintln!("remove_batch(20): {:.1}ms", t.elapsed().as_secs_f64() * 1e3);

    let t = Instant::now();
    let base = factor.dim();
    let crosses: Vec<Vec<f64>> = (0..20).map(|i| vec![0.0; base + i]).collect();
    let diags: Vec<f64> = (0..20).map(|i| 7.0 + i as f64).collect();
    factor.append_batch(&crosses, &diags).unwrap();
    eprintln!("append_batch(20): {:.1}ms", t.elapsed().as_secs_f64() * 1e3);

    let t = Instant::now();
    let rhs = vec![1.0; factor.dim()];
    let _ = factor.solve(&rhs).unwrap();
    eprintln!("solve: {:.1}ms", t.elapsed().as_secs_f64() * 1e3);
}
