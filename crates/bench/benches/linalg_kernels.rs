//! Kernel benchmarks for the linear-algebra substrate: Cholesky, QR, CGLS,
//! and the dense-vs-sparse Gram-assembly ablation (a DESIGN.md ablation:
//! assembling `HᵀH` from CSR rows is the reason large FCMs never densify).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use foces_linalg::{cgls, Cholesky, CsrMatrix, DenseMatrix, Qr};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

/// A synthetic FCM-shaped 0/1 matrix: `rows x cols`, ~`fill` ones per
/// column (a path length), plus an identity block for full rank.
fn fcm_like(rows: usize, cols: usize, fill: usize, seed: u64) -> DenseMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = DenseMatrix::zeros(rows, cols);
    for j in 0..cols {
        m.set(j % rows, j, 1.0);
        for _ in 0..fill {
            m.set(rng.gen_range(0..rows), j, 1.0);
        }
    }
    m
}

fn bench_cholesky(c: &mut Criterion) {
    let mut group = c.benchmark_group("cholesky_factor");
    for n in [64usize, 128, 256, 512] {
        let h = fcm_like(n * 3, n, 5, 42);
        let gram = h.gram();
        group.bench_with_input(BenchmarkId::from_parameter(n), &gram, |b, g| {
            b.iter(|| Cholesky::factor(black_box(g)).unwrap());
        });
    }
    group.finish();
}

fn bench_qr(c: &mut Criterion) {
    let mut group = c.benchmark_group("qr_factor");
    group.sample_size(20);
    for n in [64usize, 128, 256] {
        let h = fcm_like(n * 3, n, 5, 43);
        group.bench_with_input(BenchmarkId::from_parameter(n), &h, |b, m| {
            b.iter(|| Qr::factor(black_box(m)).unwrap());
        });
    }
    group.finish();
}

fn bench_cgls(c: &mut Criterion) {
    let mut group = c.benchmark_group("cgls_solve");
    for n in [128usize, 512, 1024] {
        let dense = fcm_like(n * 3, n, 5, 44);
        let sparse = CsrMatrix::from_dense(&dense);
        let x: Vec<f64> = (0..n).map(|i| (i % 7 + 1) as f64).collect();
        let y = sparse.matvec(&x).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(&sparse, &y),
            |b, (m, rhs)| {
                b.iter(|| cgls(black_box(m), black_box(rhs), 1e-10, 2000).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_gram_assembly(c: &mut Criterion) {
    // Ablation: dense column-dot Gram vs sparse per-row outer products.
    let mut group = c.benchmark_group("gram_assembly");
    for n in [128usize, 256, 512] {
        let dense = fcm_like(n * 3, n, 5, 45);
        let sparse = CsrMatrix::from_dense(&dense);
        group.bench_with_input(BenchmarkId::new("dense", n), &dense, |b, m| {
            b.iter(|| black_box(m).gram());
        });
        group.bench_with_input(BenchmarkId::new("sparse", n), &sparse, |b, m| {
            b.iter(|| black_box(m).gram_dense().unwrap());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_cholesky,
    bench_qr,
    bench_cgls,
    bench_gram_assembly
);
criterion_main!(benches);
