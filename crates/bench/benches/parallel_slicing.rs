//! Sequential vs pooled slice solving (the `foces-runtime` thread pool)
//! on FatTree(8) — the paper's largest scaling topology (Fig. 12). Each
//! measurement solves every per-switch slice of one detection round; the
//! pooled variants distribute slices over scoped worker threads and must
//! return verdicts bit-identical to the sequential path (asserted once
//! before timing).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use foces::{Detector, Fcm, SlicedFcm};
use foces_bench::{deployment, healthy_counters};
use foces_controlplane::RuleGranularity;
use foces_net::generators::fattree;
use foces_runtime::detect_parallel;
use std::hint::black_box;

fn bench_parallel_slicing(c: &mut Criterion) {
    let mut dep = deployment(fattree(8), RuleGranularity::PerFlowPair);
    let fcm = Fcm::from_view(&dep.view);
    let sliced = SlicedFcm::from_fcm(&fcm);
    let counters = healthy_counters(&mut dep);
    let detector = Detector::default();

    // The speedup is only meaningful if the answers agree exactly.
    let sequential = sliced.detect(&detector, &counters).unwrap();
    for workers in [2, 4, 8] {
        let pooled = detect_parallel(&sliced, &detector, &counters, workers).unwrap();
        assert_eq!(pooled, sequential, "{workers} workers diverged");
    }

    let mut group = c.benchmark_group("parallel_slicing_fattree8");
    group.sample_size(20);
    group.bench_with_input(BenchmarkId::new("sequential", 1), &counters, |b, y| {
        b.iter(|| sliced.detect(black_box(&detector), black_box(y)).unwrap());
    });
    for workers in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("pooled", workers), &counters, |b, y| {
            b.iter(|| {
                detect_parallel(
                    black_box(&sliced),
                    black_box(&detector),
                    black_box(y),
                    workers,
                )
                .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_slicing);
criterion_main!(benches);
