//! Static coverage analysis wall-clock on the golden planes.
//!
//! Hand-rolled harness (`harness = false`, no Criterion). The analyzer is
//! a pre-flight gate — it runs inside `RuntimeService::new` and on every
//! FCM rebuild — so its cost must stay far below an epoch. This bench
//! times [`analyze_coverage`] on FatTree(4) (full all-pairs mesh), the
//! 4-switch ring, and a deterministically sampled FatTree(8), plus the
//! sharded variant ([`analyze_cluster_coverage`], k=4) on the FatTree(8)
//! plane, and asserts the golden verdicts along the way: both fat-trees
//! clean and all-Localizable, the ring WARNing with certificates.
//! Results land in `BENCH_coverage.json` at the repository root. With
//! `--test` (the CI smoke mode) FatTree(8) is skipped and nothing is
//! written.

use foces::{
    analyze_cluster_coverage, analyze_coverage, CoverageConfig, CoverageReport, Fcm, LooClass,
    ShardedFcm,
};
use foces_controlplane::{provision, uniform_flows, RuleGranularity};
use foces_net::generators::{fattree, ring};
use foces_net::{partition, PartitionSpec, Topology};
use rand::seq::SliceRandom;
use rand::{rngs::StdRng, SeedableRng};
use std::fmt::Write as _;
use std::time::Instant;

struct Sample {
    name: &'static str,
    rules: usize,
    flows: usize,
    warnings: usize,
    localizable: usize,
    elapsed_ms: f64,
}

fn analyze(
    name: &'static str,
    topo: Topology,
    flow_cap: Option<usize>,
) -> (CoverageReport, Sample) {
    let n = topo.host_count() as f64;
    let mut flows = uniform_flows(&topo, n * (n - 1.0) * 1000.0);
    if let Some(cap) = flow_cap {
        let mut rng = StdRng::seed_from_u64(7);
        flows.shuffle(&mut rng);
        flows.truncate(cap);
    }
    let dep = provision(topo, &flows, RuleGranularity::PerFlowPair).expect("provision");
    let fcm = Fcm::from_view(&dep.view);
    let t = Instant::now();
    let report = analyze_coverage(&fcm, &CoverageConfig::default()).expect("analysis");
    let elapsed_ms = t.elapsed().as_secs_f64() * 1e3;
    eprintln!(
        "{name}: {} rules x {} flows, {} warnings, {:.1} ms",
        report.rule_count,
        report.flow_count,
        report.warn_count(),
        elapsed_ms
    );
    let sample = Sample {
        name,
        rules: report.rule_count,
        flows: report.flow_count,
        warnings: report.warn_count(),
        localizable: report.class_count(LooClass::Localizable),
        elapsed_ms,
    };
    (report, sample)
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let mut samples = Vec::new();

    let (ft4, s) = analyze("fattree4", fattree(4), None);
    assert!(ft4.is_clean(), "FatTree(4) golden: {}", ft4.summary());
    assert_eq!(
        ft4.class_count(LooClass::Localizable),
        ft4.switches.iter().filter(|s| s.rows > 0).count(),
        "every row-owning FatTree(4) switch is localizable"
    );
    samples.push(s);

    let (rng4, s) = analyze("ring4", ring(4), None);
    assert!(
        !rng4.is_clean(),
        "ring golden must WARN: {}",
        rng4.summary()
    );
    assert!(
        rng4.findings
            .iter()
            .any(|f| f.severity.is_warn() && f.certificate.is_some()),
        "ring WARNs carry absorption certificates"
    );
    samples.push(s);

    if !test_mode {
        let topo = fattree(8);
        let n = topo.host_count() as f64;
        let mut flows = uniform_flows(&topo, n * (n - 1.0) * 1000.0);
        let mut rng = StdRng::seed_from_u64(7);
        flows.shuffle(&mut rng);
        flows.truncate(1200);
        let dep = provision(topo, &flows, RuleGranularity::PerFlowPair).expect("provision");
        let fcm = Fcm::from_view(&dep.view);

        let t = Instant::now();
        let ft8 = analyze_coverage(&fcm, &CoverageConfig::default()).expect("analysis");
        let flat_ms = t.elapsed().as_secs_f64() * 1e3;
        assert!(ft8.is_clean(), "FatTree(8) golden: {}", ft8.summary());
        eprintln!("fattree8-sample1200 (flat): {flat_ms:.1} ms");
        samples.push(Sample {
            name: "fattree8_sample1200",
            rules: ft8.rule_count,
            flows: ft8.flow_count,
            warnings: ft8.warn_count(),
            localizable: ft8.class_count(LooClass::Localizable),
            elapsed_ms: flat_ms,
        });

        let part = partition(dep.view.topology(), PartitionSpec::EdgeCut { k: 4 });
        let sharded = ShardedFcm::from_fcm(&fcm, &part);
        let t = Instant::now();
        let clustered = analyze_cluster_coverage(&fcm, &sharded, &CoverageConfig::default())
            .expect("cluster analysis");
        let sharded_ms = t.elapsed().as_secs_f64() * 1e3;
        eprintln!(
            "fattree8-sample1200 (k=4 shards): {sharded_ms:.1} ms, {} shard(s) rank-deficient",
            clustered
                .shards
                .iter()
                .filter(|s| s.analyzed && !s.full_rank)
                .count()
        );
        samples.push(Sample {
            name: "fattree8_sample1200_k4",
            rules: clustered.rule_count,
            flows: clustered.flow_count,
            warnings: clustered.warn_count(),
            localizable: clustered.class_count(LooClass::Localizable),
            elapsed_ms: sharded_ms,
        });

        let mut json = String::from("{\"bench\":\"coverage\",\"samples\":[");
        for (i, s) in samples.iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            let _ = write!(
                json,
                "{{\"name\":\"{}\",\"rules\":{},\"flows\":{},\"warnings\":{},\
                 \"localizable\":{},\"elapsed_ms\":{:.3}}}",
                s.name, s.rules, s.flows, s.warnings, s.localizable, s.elapsed_ms
            );
        }
        json.push_str("]}\n");
        let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_coverage.json");
        std::fs::write(out, &json).expect("write BENCH_coverage.json");
        print!("{json}");
        eprintln!("wrote {out}");
    }
}
