//! One-detection-round benchmarks on the four paper topologies (Table I):
//! baseline Algorithm 1 (direct and paper-literal dense), sliced
//! Algorithm 2, and the sparse CGLS extension. These are the per-round
//! costs behind the paper's "minimal computation overhead" claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use foces::{Detector, EquationSystem, Fcm, SlicedFcm, SolverKind};
use foces_bench::{deployment, healthy_counters};
use foces_controlplane::RuleGranularity;
use foces_net::generators::{bcube, dcell, fattree, stanford};
use std::hint::black_box;

fn topologies() -> Vec<(&'static str, foces_net::Topology)> {
    vec![
        ("stanford", stanford()),
        ("fattree4", fattree(4)),
        ("bcube14", bcube(1, 4)),
        ("dcell14", dcell(1, 4)),
    ]
}

fn bench_detection(c: &mut Criterion) {
    let mut group = c.benchmark_group("detection_round");
    group.sample_size(20);
    for (name, topo) in topologies() {
        let mut dep = deployment(topo, RuleGranularity::PerFlowPair);
        let fcm = Fcm::from_view(&dep.view);
        let sliced = SlicedFcm::from_fcm(&fcm);
        let counters = healthy_counters(&mut dep);

        let direct = Detector::new(4.5, EquationSystem::new(SolverKind::DirectDense));
        group.bench_with_input(BenchmarkId::new("direct", name), &counters, |b, y| {
            b.iter(|| direct.detect(black_box(&fcm), black_box(y)).unwrap());
        });
        let naive = Detector::new(4.5, EquationSystem::new(SolverKind::DenseNaive));
        group.bench_with_input(BenchmarkId::new("paper_naive", name), &counters, |b, y| {
            b.iter(|| naive.detect(black_box(&fcm), black_box(y)).unwrap());
        });
        let cgls = Detector::new(
            4.5,
            EquationSystem::new(SolverKind::IterativeSparse {
                tol: 1e-10,
                max_iter: 5000,
            }),
        );
        group.bench_with_input(BenchmarkId::new("cgls", name), &counters, |b, y| {
            b.iter(|| cgls.detect(black_box(&fcm), black_box(y)).unwrap());
        });
        let default = Detector::default();
        group.bench_with_input(BenchmarkId::new("sliced", name), &counters, |b, y| {
            b.iter(|| sliced.detect(black_box(&default), black_box(y)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_detection);
criterion_main!(benches);
