//! Event-driven ingest vs the lockstep epoch sweep on FatTree(8) under
//! heterogeneous link delays, with one deliberately slow region.
//!
//! Hand-rolled harness (`harness = false`, no Criterion) over **simulated
//! time**: both sides run on the same [`IngestChannel`] link models (same
//! access specs, same shared regional uplinks, same slow-region penalty),
//! so the comparison isolates the *scheduling* difference.
//!
//! * **Lockstep epoch wall** — the classical round: the controller fans a
//!   stats request out to every switch at `t = 0` and waits for the
//!   slowest arrival. Concurrent replies genuinely contend on each
//!   region's shared uplink, and the slow region's extra propagation sits
//!   squarely on the critical path: nobody gets a verdict before the
//!   worst link delivers.
//! * **Stream TTFV / TTAV** — the event-driven pipeline: each shard's
//!   detection fires the moment *its* members are fresh, so
//!   time-to-first-verdict is the fastest region's completion and only
//!   time-to-all-verdicts stretches toward the slow region.
//!
//! The acceptance gate is asserted, not just recorded: over several
//! seeds the **median TTFV is strictly below the lockstep wall**, no run
//! raises an alarm on the healthy fabric, every run's final per-shard
//! verdicts match the epoch-path ground truth, and re-running a seed
//! reproduces its JSONL byte for byte. Results land in
//! `BENCH_ingest.json` at the repository root. With `--test` (the CI
//! smoke mode) it runs a scaled-down FatTree(4) configuration, keeps the
//! assertions, and writes nothing.

use foces_channel::{ControllerMsg, Delivery, FaultProfile, HonestAgent, Transport};
use foces_controlplane::{provision, uniform_flows, Deployment, RuleGranularity};
use foces_ingest::{IngestChannel, LinkSpec, StreamConfig, StreamDriver};
use foces_net::generators::fattree;
use foces_net::{partition, PartitionSpec};
use foces_runtime::EventLog;
use std::fmt::Write as _;

struct StreamSample {
    seed: u64,
    ttfv_ms: f64,
    ttav_ms: f64,
    shard_rounds: u64,
    warm_rounds: u64,
    polls: u64,
    congestion_drops: u64,
}

/// Per-run stream knobs shared by both sides of the comparison.
fn stream_config(k: usize, seed: u64, duration_ms: f64) -> StreamConfig {
    StreamConfig {
        duration_ms,
        regions: k,
        // The slow region: every member's access hop gains 20 ms of
        // one-way propagation — a congested WAN pod, an overloaded
        // management network, pick your poison.
        slow_region: Some(k - 1),
        slow_extra_ms: 20.0,
        profile: FaultProfile {
            latency_ms: 1.0,
            jitter_ms: 2.0,
            drop_prob: 0.0,
            reorder_prob: 0.0,
            offline: Vec::new(),
        },
        seed,
        ..StreamConfig::default()
    }
}

/// Builds the same channel the stream driver builds for `config` (same
/// seed, same specs, same slow-region overrides) — so the lockstep sweep
/// below pays exactly the link costs the stream pays.
fn channel_for(dep: &Deployment, config: &StreamConfig) -> IngestChannel {
    let part = partition(
        dep.view.topology(),
        PartitionSpec::EdgeCut { k: config.regions },
    );
    let members = part.regions().to_vec();
    let mut channel = IngestChannel::new(
        config.seed,
        config.profile.clone(),
        config.access.clone(),
        config.uplink.clone(),
        &members,
    );
    if let Some(r) = config.slow_region {
        if let Some(region) = members.get(r) {
            for &sw in region {
                channel.set_access(
                    sw,
                    LinkSpec {
                        propagation_ms: config.access.propagation_ms + config.slow_extra_ms,
                        ..config.access.clone()
                    },
                );
            }
        }
    }
    channel
}

/// The lockstep epoch wall in simulated milliseconds: fan one stats
/// request out to every switch at `t = 0` and wait for the slowest
/// arrival. Uplink contention accumulates across the sweep exactly as it
/// would for a controller that polls everyone at once.
fn lockstep_wall_ms(dep: &Deployment, config: &StreamConfig) -> f64 {
    let mut channel = channel_for(dep, config);
    let mut switches: Vec<_> = dep.view.topology().switches().collect();
    switches.sort_unstable();
    let mut wall: f64 = 0.0;
    for (i, &sw) in switches.iter().enumerate() {
        let agent = HonestAgent::new(sw);
        let td = channel
            .exchange_at(
                &dep.dataplane,
                &agent,
                &ControllerMsg::StatsRequest { xid: i as u32 + 1 },
                0.0,
            )
            .expect("wire protocol");
        assert!(
            matches!(td.delivery, Delivery::Delivered { .. }),
            "fault-free sweep must deliver (s{})",
            sw.0
        );
        wall = wall.max(td.at_ms);
    }
    wall
}

/// One healthy stream run; asserts the zero-false-alarm and
/// verdict-parity gates and returns its latency milestones.
fn run_stream(dep: Deployment, config: StreamConfig) -> (StreamSample, Vec<String>) {
    let seed = config.seed;
    let mut driver = StreamDriver::new(dep, config, vec![]);
    driver.install_log(EventLog::in_memory());
    let report = driver.run().expect("stream run");
    let m = report.metrics;
    assert_eq!(
        m.alarms_raised, 0,
        "false alarm on a healthy fabric (seed {seed}): {m:?}"
    );
    assert_eq!(m.anomalous_rounds, 0, "seed {seed}: {m:?}");
    assert!(
        report.verdict_parity(),
        "stream verdicts must match the epoch path (seed {seed}): {:?}",
        report.stream_verdicts
    );
    let sample = StreamSample {
        seed,
        ttfv_ms: m.ttfv_ms.expect("stream must reach a first verdict"),
        ttav_ms: m.ttav_ms.expect("every shard must fire"),
        shard_rounds: m.shard_rounds,
        warm_rounds: m.warm_rounds,
        polls: m.polls,
        congestion_drops: m.congestion_drops,
    };
    (sample, driver.log().lines().to_vec())
}

fn median(values: &mut [f64]) -> f64 {
    values.sort_by(|a, b| a.total_cmp(b));
    values[values.len() / 2]
}

/// Everything the JSON artifact reports about one topology comparison.
struct BenchSummary<'a> {
    topology: &'a str,
    flows: usize,
    rules: usize,
    k: usize,
    wall_ms: f64,
    median_ttfv: f64,
    median_ttav: f64,
    samples: &'a [StreamSample],
}

fn render_json(sum: &BenchSummary<'_>) -> String {
    let BenchSummary {
        topology,
        flows,
        rules,
        k,
        wall_ms,
        median_ttfv,
        median_ttav,
        samples,
    } = *sum;
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\n  \"benchmark\": \"ingest\",\n  \"topology\": \"{topology}\",\n  \
         \"flows\": {flows},\n  \"rules\": {rules},\n  \"regions\": {k},\n  \
         \"slow_region_extra_ms\": 20.0,\n  \
         \"lockstep_wall_ms\": {wall_ms:.3},\n  \
         \"median_ttfv_ms\": {median_ttfv:.3},\n  \
         \"median_ttav_ms\": {median_ttav:.3},\n  \
         \"ttfv_speedup_vs_lockstep\": {:.2},\n  \"runs\": [",
        wall_ms / median_ttfv.max(1e-12),
    );
    for (i, r) in samples.iter().enumerate() {
        let _ = write!(
            s,
            "{}\n    {{\"seed\": {}, \"ttfv_ms\": {:.3}, \"ttav_ms\": {:.3}, \
             \"shard_rounds\": {}, \"warm_rounds\": {}, \"polls\": {}, \
             \"congestion_drops\": {}}}",
            if i == 0 { "" } else { "," },
            r.seed,
            r.ttfv_ms,
            r.ttav_ms,
            r.shard_rounds,
            r.warm_rounds,
            r.polls,
            r.congestion_drops,
        );
    }
    s.push_str("\n  ]\n}\n");
    s
}

fn run_comparison(
    topo: foces_net::Topology,
    topology_name: &str,
    k: usize,
    duration_ms: f64,
    seeds: &[u64],
) -> (String, f64, f64) {
    let flows = uniform_flows(&topo, topo.host_count() as f64 * 1000.0);
    let dep = provision(topo, &flows, RuleGranularity::PerDestination).expect("provision");
    let flow_count = dep.flows.len();
    let rule_count = dep.view.rule_count();

    // The wall is seed-dependent only through jitter; take the median too.
    let mut walls: Vec<f64> = seeds
        .iter()
        .map(|&seed| {
            let mut d = dep.clone();
            d.dataplane.reset_counters();
            d.replay_traffic(&mut foces_dataplane::LossModel::none());
            lockstep_wall_ms(&d, &stream_config(k, seed, duration_ms))
        })
        .collect();
    let wall_ms = median(&mut walls);
    eprintln!(
        "{topology_name}: lockstep epoch wall {wall_ms:.2} ms (median of {} sweeps)",
        seeds.len()
    );

    let mut samples = Vec::new();
    for &seed in seeds {
        let config = stream_config(k, seed, duration_ms);
        let (sample, _log) = run_stream(dep.clone(), config);
        eprintln!(
            "  seed {seed}: ttfv {:.2} ms, ttav {:.2} ms, {} shard rounds ({} warm)",
            sample.ttfv_ms, sample.ttav_ms, sample.shard_rounds, sample.warm_rounds
        );
        samples.push(sample);
    }

    // Determinism gate: same seed, byte-identical JSONL.
    let config = stream_config(k, seeds[0], duration_ms);
    let (_, first) = run_stream(dep.clone(), config.clone());
    let (_, second) = run_stream(dep.clone(), config);
    assert_eq!(first, second, "same seed must reproduce the JSONL exactly");

    let mut ttfvs: Vec<f64> = samples.iter().map(|s| s.ttfv_ms).collect();
    let mut ttavs: Vec<f64> = samples.iter().map(|s| s.ttav_ms).collect();
    let median_ttfv = median(&mut ttfvs);
    let median_ttav = median(&mut ttavs);
    assert!(
        median_ttfv < wall_ms,
        "median TTFV ({median_ttfv:.2} ms) must beat the lockstep wall ({wall_ms:.2} ms)"
    );
    let json = render_json(&BenchSummary {
        topology: topology_name,
        flows: flow_count,
        rules: rule_count,
        k,
        wall_ms,
        median_ttfv,
        median_ttav,
        samples: &samples,
    });
    (json, median_ttfv, wall_ms)
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    if test_mode {
        // CI smoke: FatTree(4), 2 regions, short horizon, no file.
        let (_, ttfv, wall) = run_comparison(fattree(4), "fattree4", 2, 500.0, &[5, 6]);
        println!("ingest bench smoke: ok (ttfv {ttfv:.2} ms vs lockstep wall {wall:.2} ms)");
        return;
    }

    // Full run: the paper's largest topology, four regions, one slow.
    let (json, ttfv, wall) = run_comparison(fattree(8), "fattree8", 4, 1500.0, &[5, 6, 7, 8, 9]);
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ingest.json");
    std::fs::write(out, &json).expect("write BENCH_ingest.json");
    print!("{json}");
    eprintln!("wrote {out} (ttfv {ttfv:.2} ms vs lockstep wall {wall:.2} ms)");
}
