//! Sharded-cluster detection vs the sequential and slice-parallel
//! baselines on FatTree(8) with the **full all-pairs** flow set.
//!
//! Hand-rolled harness (`harness = false`, no Criterion). The sequential
//! baseline is the global system through a cold [`IncrementalSolver`] —
//! the same warm-capable direct factorization pipeline every shard worker
//! runs, so the comparison isolates what sharding buys. Two more
//! baselines are recorded for context: [`Detector::detect`] with the
//! default `Auto` solver (which takes the CGLS path at this scale and is
//! not factor-reusing) and [`detect_parallel`] (per-switch slicing).
//! Then for each shard count `k ∈ {1, 4, 16}` a [`ClusterService`]
//! drives several epochs over the same counters — epoch 0 is the cold
//! fan-out, later epochs must go warm on every shard. Sharding beats the
//! sequential direct solve even on one core: `k` Cholesky factors of
//! `n/k`-column systems cost ~`1/k²` of one `n`-column factor.
//! Per-shard solve times, pool statistics, and the speedups against the
//! baselines land in `BENCH_cluster.json` at the repository root. With
//! `--test` (the CI smoke mode) it runs a scaled-down FatTree(4)
//! configuration, keeps the assertions, and writes nothing.

use foces::{Detector, Fcm, IncrementalSolver, SlicedFcm};
use foces_cluster::{ClusterConfig, ClusterService};
use foces_controlplane::{provision, uniform_flows, Deployment, RuleGranularity};
use foces_dataplane::LossModel;
use foces_net::generators::fattree;
use foces_net::PartitionSpec;
use foces_runtime::detect_parallel;
use std::fmt::Write as _;
use std::time::Instant;

struct EpochSample {
    epoch: usize,
    wall_ms: f64,
    /// Slowest single shard (the critical path of a perfectly scheduled
    /// fan-out).
    max_shard_ms: f64,
    /// Sum over shards (the work a sequential scheduler would do).
    sum_shard_ms: f64,
    warm_shards: usize,
    shards: Vec<(usize, f64, String)>,
    steals: usize,
}

struct ClusterRun {
    k: usize,
    regions: usize,
    boundary_flows: usize,
    epochs: Vec<EpochSample>,
}

fn run_cluster(dep: &Deployment, counters: &[f64], k: usize, epochs: usize) -> ClusterRun {
    let fcm = Fcm::from_view(&dep.view);
    let config = ClusterConfig {
        spec: PartitionSpec::EdgeCut { k },
        ..ClusterConfig::default()
    };
    let mut svc =
        ClusterService::new(fcm, dep.view.topology(), config).expect("cluster construction");
    let regions = svc.partition().region_count();
    let boundary_flows = svc.sharded().boundary_flows().len();
    let mut samples = Vec::with_capacity(epochs);
    for epoch in 0..epochs {
        let t = Instant::now();
        let r = svc.run_epoch(counters).expect("cluster epoch");
        let wall_ms = t.elapsed().as_secs_f64() * 1e3;
        assert!(
            !r.anomalous,
            "benign counters flagged at k={k} epoch {epoch}"
        );
        assert!(
            r.shards.iter().all(|s| s.health.is_healthy()),
            "degraded shard in a fault-free bench at k={k}"
        );
        let warm_shards = r
            .shards
            .iter()
            .filter(|s| s.solve_path.is_some_and(|p| p.is_warm()))
            .count();
        if epoch > 0 {
            assert_eq!(
                warm_shards,
                r.shards.len(),
                "k={k} epoch {epoch}: every healthy shard must be warm after the first epoch"
            );
        }
        samples.push(EpochSample {
            epoch,
            wall_ms,
            max_shard_ms: r.shards.iter().map(|s| s.elapsed_ms).fold(0.0, f64::max),
            sum_shard_ms: r.shards.iter().map(|s| s.elapsed_ms).sum(),
            warm_shards,
            shards: r
                .shards
                .iter()
                .map(|s| {
                    let path = s
                        .solve_path
                        .map(|p| p.to_string())
                        .unwrap_or_else(|| "none".into());
                    (s.region, s.elapsed_ms, path)
                })
                .collect(),
            steals: r.pool.steals,
        });
    }
    ClusterRun {
        k,
        regions,
        boundary_flows,
        epochs: samples,
    }
}

fn render_json(
    topology: &str,
    fcm: &Fcm,
    sequential_ms: f64,
    auto_ms: f64,
    parallel_ms: f64,
    runs: &[ClusterRun],
) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\n  \"benchmark\": \"cluster\",\n  \"topology\": \"{topology}\",\n  \
         \"flows\": {},\n  \"rules\": {},\n  \"sequential_ms\": {sequential_ms:.3},\n  \
         \"sequential_auto_ms\": {auto_ms:.3},\n  \
         \"detect_parallel_ms\": {parallel_ms:.3},\n  \"runs\": [",
        fcm.flow_count(),
        fcm.rule_count(),
    );
    for (i, r) in runs.iter().enumerate() {
        let cold = &r.epochs[0];
        let warm_wall: f64 = r.epochs[1..].iter().map(|e| e.wall_ms).sum::<f64>()
            / (r.epochs.len() - 1).max(1) as f64;
        let _ = write!(
            s,
            "{}\n    {{\"k\": {}, \"regions\": {}, \"boundary_flows\": {}, \
             \"cold_wall_ms\": {:.3}, \"warm_wall_ms_mean\": {warm_wall:.3}, \
             \"speedup_vs_sequential\": {:.2}, \"speedup_vs_detect_parallel\": {:.2}, \
             \"epochs\": [",
            if i == 0 { "" } else { "," },
            r.k,
            r.regions,
            r.boundary_flows,
            cold.wall_ms,
            sequential_ms / cold.wall_ms.max(1e-12),
            parallel_ms / cold.wall_ms.max(1e-12),
        );
        for (j, e) in r.epochs.iter().enumerate() {
            let _ = write!(
                s,
                "{}\n      {{\"epoch\": {}, \"wall_ms\": {:.3}, \"max_shard_ms\": {:.3}, \
                 \"sum_shard_ms\": {:.3}, \"warm_shards\": {}, \"steals\": {}, \"shards\": [",
                if j == 0 { "" } else { "," },
                e.epoch,
                e.wall_ms,
                e.max_shard_ms,
                e.sum_shard_ms,
                e.warm_shards,
                e.steals,
            );
            for (m, (region, ms, path)) in e.shards.iter().enumerate() {
                let _ = write!(
                    s,
                    "{}{{\"region\": {region}, \"ms\": {ms:.3}, \"path\": \"{path}\"}}",
                    if m == 0 { "" } else { ", " },
                );
            }
            s.push_str("]}");
        }
        s.push_str("\n    ]}");
    }
    s.push_str("\n  ]\n}\n");
    s
}

fn benign_counters(dep: &mut Deployment) -> Vec<f64> {
    dep.dataplane.reset_counters();
    dep.replay_traffic(&mut LossModel::none());
    dep.dataplane.collect_counters()
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    if test_mode {
        // CI smoke: FatTree(4) all-pairs, k=2, assertions on, no file.
        let topo = fattree(4);
        let flows = uniform_flows(&topo, topo.host_count() as f64 * 1000.0);
        let mut dep = provision(topo, &flows, RuleGranularity::PerDestination).expect("provision");
        let counters = benign_counters(&mut dep);
        let r = run_cluster(&dep, &counters, 2, 3);
        assert!(r.epochs[1..]
            .iter()
            .all(|e| e.warm_shards == e.shards.len()));
        println!(
            "cluster bench smoke: ok ({} regions, {} boundary flows, {} epochs)",
            r.regions,
            r.boundary_flows,
            r.epochs.len()
        );
        return;
    }

    // Full run: the paper's largest topology with every host pair flowing.
    let topo = fattree(8);
    let flows = uniform_flows(&topo, topo.host_count() as f64 * 1000.0);
    let mut dep = provision(topo, &flows, RuleGranularity::PerDestination).expect("provision");
    let fcm = Fcm::from_view(&dep.view);
    let counters = benign_counters(&mut dep);
    eprintln!(
        "fattree8 all-pairs: {} flows x {} rules",
        fcm.flow_count(),
        fcm.rule_count()
    );

    let detector = Detector::default();
    // Like-for-like sequential baseline: the global system through a cold
    // direct factorization, exactly the pipeline each shard worker runs.
    let t = Instant::now();
    let mut cold_solver = IncrementalSolver::default();
    let (verdict, path) = detector
        .detect_warm(&fcm, &counters, &mut cold_solver)
        .expect("sequential solve");
    let sequential_ms = t.elapsed().as_secs_f64() * 1e3;
    assert!(!path.is_warm(), "fresh solver cannot be warm");
    assert!(!verdict.anomalous, "benign counters flagged sequentially");
    eprintln!("sequential (cold direct): {sequential_ms:.1} ms");

    // Context baseline: default Auto solver (CGLS at this scale; fast but
    // not factor-reusing, so it pays full price every epoch).
    let t = Instant::now();
    detector.detect(&fcm, &counters).expect("auto solve");
    let auto_ms = t.elapsed().as_secs_f64() * 1e3;
    eprintln!("sequential (auto/CGLS): {auto_ms:.1} ms");

    let sliced = SlicedFcm::from_fcm(&fcm);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let t = Instant::now();
    detect_parallel(&sliced, &detector, &counters, workers).expect("parallel solve");
    let parallel_ms = t.elapsed().as_secs_f64() * 1e3;
    eprintln!("detect_parallel({workers} workers): {parallel_ms:.1} ms");

    const EPOCHS: usize = 4;
    let mut runs = Vec::new();
    for k in [1usize, 4, 16] {
        let r = run_cluster(&dep, &counters, k, EPOCHS);
        eprintln!(
            "k={k}: cold {:.1} ms, warm mean {:.1} ms",
            r.epochs[0].wall_ms,
            r.epochs[1..].iter().map(|e| e.wall_ms).sum::<f64>() / (EPOCHS - 1) as f64
        );
        runs.push(r);
    }

    let k4 = runs.iter().find(|r| r.k == 4).expect("k=4 run");
    assert!(
        k4.epochs[0].wall_ms < sequential_ms,
        "k=4 cold fan-out ({:.1} ms) must beat the sequential solve ({sequential_ms:.1} ms)",
        k4.epochs[0].wall_ms
    );

    let json = render_json("fattree8", &fcm, sequential_ms, auto_ms, parallel_ms, &runs);
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cluster.json");
    std::fs::write(out, &json).expect("write BENCH_cluster.json");
    print!("{json}");
    eprintln!("wrote {out}");
}
