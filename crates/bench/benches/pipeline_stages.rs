//! Stage-by-stage costs of the FOCES pipeline (architecture Fig. 6):
//! provisioning (controller), ATPG logical-flow tracing (FCM Generator),
//! FCM assembly, slicing, one traffic replay (Statistics Collector stand-in)
//! — plus the header-space primitives everything rests on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use foces::{Fcm, SlicedFcm};
use foces_atpg::trace_flows;
use foces_bench::deployment;
use foces_controlplane::RuleGranularity;
use foces_dataplane::LossModel;
use foces_headerspace::Wildcard;
use foces_net::generators::{bcube, fattree, stanford};
use std::hint::black_box;

fn bench_stages(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(20);
    for (name, topo) in [
        ("stanford", stanford()),
        ("fattree4", fattree(4)),
        ("bcube14", bcube(1, 4)),
    ] {
        group.bench_with_input(BenchmarkId::new("provision", name), &topo, |b, t| {
            b.iter(|| deployment(black_box(t.clone()), RuleGranularity::PerFlowPair));
        });
        let dep = deployment(topo, RuleGranularity::PerFlowPair);
        group.bench_with_input(BenchmarkId::new("atpg_trace", name), &dep.view, |b, v| {
            b.iter(|| trace_flows(black_box(v)));
        });
        group.bench_with_input(BenchmarkId::new("fcm_build", name), &dep.view, |b, v| {
            b.iter(|| Fcm::from_view(black_box(v)));
        });
        let fcm = Fcm::from_view(&dep.view);
        group.bench_with_input(BenchmarkId::new("slice_build", name), &fcm, |b, f| {
            b.iter(|| SlicedFcm::from_fcm(black_box(f)));
        });
        group.bench_with_input(BenchmarkId::new("replay", name), &dep, |b, d| {
            b.iter(|| {
                let mut dp = d.dataplane.clone();
                let mut loss = LossModel::none();
                for f in &d.flows {
                    dp.inject(
                        f.src,
                        foces_dataplane::pair_header(f.src, f.dst),
                        f.rate,
                        &mut loss,
                    );
                }
                dp.collect_counters()
            });
        });
    }
    group.finish();
}

fn bench_headerspace(c: &mut Criterion) {
    let mut group = c.benchmark_group("headerspace");
    let a = Wildcard::from_str_bits("1010****_****0101_10******_*1*1*1*1").unwrap();
    let b = Wildcard::from_str_bits("10*0**11_********_1*0*****_*1*1**11").unwrap();
    group.bench_function("intersect_32", |bch| {
        bch.iter(|| black_box(&a).intersect(black_box(&b)));
    });
    group.bench_function("subset_32", |bch| {
        bch.iter(|| black_box(&a).is_subset_of(black_box(&b)));
    });
    group.bench_function("match_concrete_32", |bch| {
        bch.iter(|| black_box(&a).matches_concrete(black_box(0xA0F5_8055)));
    });
    let wide_a = Wildcard::any(256);
    let mut wide_b = Wildcard::any(256);
    for i in (0..256).step_by(3) {
        wide_b.set_bit(i, Some(i % 2 == 0));
    }
    group.bench_function("intersect_256", |bch| {
        bch.iter(|| black_box(&wide_a).intersect(black_box(&wide_b)));
    });
    group.finish();
}

criterion_group!(benches, bench_stages, bench_headerspace);
criterion_main!(benches);
