//! Byzantine redteam goldens on FatTree(8) with the full all-pairs flow
//! set (per-destination rules, the same configuration as the cluster
//! bench).
//!
//! Hand-rolled harness (`harness = false`, no Criterion). Three goldens,
//! all asserted:
//!
//! * **Localization**: a single naive counter-forging switch is
//!   localized with precision = recall = 1.0, and every leave-one-out
//!   cross-validation solve goes through [`FactorCache`] downdates —
//!   `loo_solves > 0` with `loo_downdates == 0` (a cold refactorization
//!   per candidate) fails the bench.
//! * **No paranoia**: 30 honest rolling-reroute epochs with the
//!   Byzantine layer armed produce zero quarantines and zero
//!   localizations.
//! * **Evasion cost**: the (strategy × magnitude) sweep — what fraction
//!   λ of the full lie each collusion strategy can inject before the
//!   detector catches it — lands in `BENCH_redteam.json` at the
//!   repository root.
//!
//! With `--test` (the CI smoke mode) it runs the scaled-down FatTree(4)
//! per-pair configuration, keeps the assertions, and writes nothing.
//!
//! [`FactorCache`]: foces_linalg::FactorCache

use foces_channel::FakeStrategy;
use foces_controlplane::{provision, uniform_flows, Deployment, RuleGranularity};
use foces_net::generators::fattree;
use foces_net::SwitchId;
use foces_runtime::{ByzantineConfig, FaultScenario, RuntimeConfig, ScenarioDriver};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::time::Instant;

const FAKE_AT: u64 = 2;

fn byzantine_config() -> RuntimeConfig {
    RuntimeConfig {
        byzantine: ByzantineConfig {
            enabled: true,
            ..ByzantineConfig::default()
        },
        ..RuntimeConfig::default()
    }
}

/// A perfect channel and no traffic loss: the goldens isolate the
/// Byzantine machinery.
fn quiet_scenario(epochs: u64) -> FaultScenario {
    FaultScenario {
        epochs,
        loss: 0.0,
        drop_prob: 0.0,
        latency_ms: 1.0,
        jitter_ms: 0.0,
        reorder_prob: 0.0,
        anomaly_window: None,
        seed: 3,
        ..FaultScenario::default()
    }
}

struct LiarOutcome {
    true_liars: Vec<SwitchId>,
    localized: Vec<SwitchId>,
    first_alarm: Option<u64>,
    loo_solves: u64,
    loo_downdates: u64,
    switch_quarantines: u64,
    unresolved: bool,
}

impl LiarOutcome {
    fn precision(&self) -> Option<f64> {
        if self.localized.is_empty() {
            return None;
        }
        let tp = self
            .localized
            .iter()
            .filter(|s| self.true_liars.contains(s))
            .count();
        Some(tp as f64 / self.localized.len() as f64)
    }

    fn recall(&self) -> f64 {
        let tp = self
            .localized
            .iter()
            .filter(|s| self.true_liars.contains(s))
            .count();
        tp as f64 / self.true_liars.len().max(1) as f64
    }
}

/// Drives one compromised run to completion, stepping manually so the
/// liar identities (only exposed while the fake window is open) are
/// captured.
fn liar_run(
    dep: Deployment,
    strategy: FakeStrategy,
    liars: usize,
    magnitude: f64,
    epochs: u64,
    confess_at: Option<u64>,
) -> LiarOutcome {
    let scenario = FaultScenario {
        liars,
        fake_strategy: strategy,
        fake_window: Some((FAKE_AT, confess_at.unwrap_or(epochs))),
        fake_magnitude: magnitude,
        liar_seed: 11,
        ..quiet_scenario(epochs)
    };
    let mut driver = ScenarioDriver::new(dep, scenario, byzantine_config());
    let mut true_liars = Vec::new();
    let mut localized = BTreeSet::new();
    let mut first_alarm = None;
    let verbose = std::env::var_os("REDTEAM_VERBOSE").is_some();
    for epoch in 0..epochs {
        let r = driver.step().expect("no round may fail outright");
        if !driver.liar_switches().is_empty() {
            true_liars = driver.liar_switches().to_vec();
        }
        if r.alarm_raised && epoch >= FAKE_AT && first_alarm.is_none() {
            first_alarm = Some(epoch);
        }
        if let Some(s) = r.localized_liar {
            localized.insert(s);
        }
        if verbose {
            eprintln!(
                "    epoch {epoch}: mode={:?} anomalous={} suspicion_max={:.3} \
                 implicated={:?} localized={:?} quarantined={:?} state={:?} unresolved={}",
                r.mode,
                r.anomalous(),
                r.suspicion_max,
                r.implicated,
                r.localized_liar,
                r.quarantined_switches,
                r.state,
                r.byz_unresolved,
            );
        }
    }
    let m = *driver.service().metrics();
    assert!(
        m.loo_solves == 0 || m.loo_downdates > 0,
        "{} leave-one-out solves spent no downdates: quarantine went \
         through cold refactorization",
        m.loo_solves
    );
    LiarOutcome {
        true_liars,
        localized: localized.into_iter().collect(),
        first_alarm,
        loo_solves: m.loo_solves,
        loo_downdates: m.loo_downdates,
        switch_quarantines: m.switch_quarantines,
        unresolved: driver.service().byzantine_unresolved(),
    }
}

/// Golden 1: the single naive liar, localized exactly.
fn golden_localization(dep: Deployment, epochs: u64) -> LiarOutcome {
    let o = liar_run(dep, FakeStrategy::Naive, 1, 1.0, epochs, Some(epochs - 5));
    assert_eq!(o.true_liars.len(), 1, "scenario must compromise one switch");
    assert_eq!(
        o.precision(),
        Some(1.0),
        "localized {:?} but the liar is {:?}",
        o.localized,
        o.true_liars
    );
    assert_eq!(o.recall(), 1.0, "the naive liar escaped localization");
    assert!(o.loo_solves > 0, "localization must run the LOO pass");
    assert!(
        o.loo_downdates > 0,
        "LOO must reuse the factor via downdates"
    );
    o
}

/// Golden 2: honest rolling reroutes, zero quarantines.
fn golden_honest_churn(dep: Deployment, epochs: u64) {
    let scenario = FaultScenario {
        churn_period: Some(3),
        churn_seed: 21,
        ..quiet_scenario(epochs)
    };
    let mut driver = ScenarioDriver::new(dep, scenario, byzantine_config());
    driver.run().expect("honest epochs never fail");
    assert!(
        driver.churn_events() > 0,
        "the schedule must actually churn"
    );
    let m = *driver.service().metrics();
    assert_eq!(m.alarms_raised, 0, "honest churn raised an alarm");
    assert_eq!(m.switch_quarantines, 0, "honest switch quarantined");
    assert_eq!(m.liars_localized, 0, "honest switch localized as a liar");
}

struct Cell {
    strategy: FakeStrategy,
    magnitude: f64,
    detected: bool,
    latency: Option<u64>,
    precision: Option<f64>,
    recall: f64,
}

/// The evasion-cost sweep: one liar per cell, magnitude λ varied per
/// strategy.
fn sweep(dep: &Deployment, epochs: u64, magnitudes: &[f64]) -> Vec<Cell> {
    let mut cells = Vec::new();
    for &strategy in FakeStrategy::ALL.iter() {
        for &magnitude in magnitudes {
            let t = Instant::now();
            let o = liar_run(dep.clone(), strategy, 1, magnitude, epochs, None);
            let detected = o.first_alarm.is_some();
            eprintln!(
                "  {strategy} λ={magnitude}: {} ({:.1}s, loo {} solves / {} downdates{})",
                if detected {
                    format!(
                        "DETECTED in {} epochs",
                        o.first_alarm.unwrap() - FAKE_AT + 1
                    )
                } else {
                    "evaded".to_string()
                },
                t.elapsed().as_secs_f64(),
                o.loo_solves,
                o.loo_downdates,
                if o.unresolved { ", unresolved" } else { "" },
            );
            cells.push(Cell {
                strategy,
                magnitude,
                detected,
                latency: o.first_alarm.map(|e| e - FAKE_AT + 1),
                precision: o.precision(),
                recall: o.recall(),
            });
        }
    }
    cells
}

fn render_json(scenario: &str, epochs: u64, cells: &[Cell]) -> String {
    let opt = |v: Option<f64>| v.map_or("null".to_string(), |x| format!("{x}"));
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\n  \"bench\": \"redteam\",\n  \"scenario\": \"{scenario}\",\n  \
         \"epochs\": {epochs},\n  \"fake_at\": {FAKE_AT},\n  \"cells\": ["
    );
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            s,
            "{}\n    {{\"strategy\": \"{}\", \"magnitude\": {}, \"detected\": {}, \
             \"latency_epochs\": {}, \"precision\": {}, \"recall\": {}}}",
            if i == 0 { "" } else { "," },
            c.strategy,
            c.magnitude,
            c.detected,
            c.latency.map_or("null".to_string(), |l| l.to_string()),
            opt(c.precision),
            c.recall,
        );
    }
    s.push_str("\n  ],\n  \"evasion\": [");
    let mut first = true;
    for &strategy in FakeStrategy::ALL.iter() {
        let of_strategy: Vec<&Cell> = cells.iter().filter(|c| c.strategy == strategy).collect();
        let min_detected = of_strategy
            .iter()
            .filter(|c| c.detected)
            .map(|c| c.magnitude)
            .fold(f64::INFINITY, f64::min);
        let max_undetected = of_strategy
            .iter()
            .filter(|c| !c.detected)
            .map(|c| c.magnitude)
            .fold(f64::NEG_INFINITY, f64::max);
        let _ = write!(
            s,
            "{}\n    {{\"strategy\": \"{strategy}\", \"min_detected_magnitude\": {}, \
             \"max_undetected_magnitude\": {}}}",
            if first { "" } else { "," },
            if min_detected.is_finite() {
                format!("{min_detected}")
            } else {
                "null".to_string()
            },
            if max_undetected.is_finite() {
                format!("{max_undetected}")
            } else {
                "null".to_string()
            },
        );
        first = false;
    }
    s.push_str("\n  ]\n}\n");
    s
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    if test_mode {
        // CI smoke: FatTree(4) per-pair, both goldens, no file.
        let topo = fattree(4);
        let flows = uniform_flows(&topo, 240_000.0);
        let dep = provision(topo, &flows, RuleGranularity::PerFlowPair).expect("provision");
        let o = golden_localization(dep.clone(), 14);
        golden_honest_churn(dep, 12);
        println!(
            "redteam bench smoke: ok (liar {:?} localized, alarm at {:?}, \
             loo {} solves / {} downdates)",
            o.true_liars, o.first_alarm, o.loo_solves, o.loo_downdates
        );
        return;
    }

    // Full run: the paper's largest topology. Liar localization needs
    // per-pair counter attribution (per-destination rows aggregate too
    // many flows for a single switch's removal to stay identifiable —
    // the LOO pass refuses with RankLost rather than certify), and the
    // LOO downdate cost grows with the column basis, so the flow set is
    // a seeded all-pairs sample at pair granularity — the same
    // configuration as the incremental pipeline's stage-cost probe.
    let topo = fattree(8);
    let n = topo.host_count() as f64;
    let mut flows = uniform_flows(&topo, n * (n - 1.0) * 1000.0);
    let mut rng = StdRng::seed_from_u64(7);
    flows.shuffle(&mut rng);
    flows.truncate(1200);
    let t = Instant::now();
    let dep = provision(topo, &flows, RuleGranularity::PerFlowPair).expect("provision");
    eprintln!(
        "fattree8 sampled all-pairs provisioned in {:.1}s ({} flows, per-pair)",
        t.elapsed().as_secs_f64(),
        dep.flows.len()
    );

    let t = Instant::now();
    let o = golden_localization(dep.clone(), 14);
    eprintln!(
        "golden 1 (localization): liar {:?} localized, alarm at epoch {:?}, \
         precision 1.0, recall 1.0, loo {} solves / {} downdates, {} quarantines ({:.1}s)",
        o.true_liars,
        o.first_alarm,
        o.loo_solves,
        o.loo_downdates,
        o.switch_quarantines,
        t.elapsed().as_secs_f64()
    );

    let t = Instant::now();
    golden_honest_churn(dep.clone(), 30);
    eprintln!(
        "golden 2 (honest churn): 30 rolling-reroute epochs, zero quarantines ({:.1}s)",
        t.elapsed().as_secs_f64()
    );

    eprintln!("evasion sweep:");
    let cells = sweep(&dep, 8, &[0.25, 0.5, 1.0]);
    // The naive full-magnitude forgery is the anchor of the curve: it
    // must be both detected and correctly localized at this scale.
    let anchor = cells
        .iter()
        .find(|c| c.strategy == FakeStrategy::Naive && c.magnitude == 1.0)
        .expect("sweep covers the naive full lie");
    assert!(anchor.detected, "the naive full lie evaded on fattree(8)");
    assert_eq!(anchor.precision, Some(1.0));
    assert_eq!(anchor.recall, 1.0);

    let json = render_json("fattree-8 per-pair sampled all-pairs", 12, &cells);
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_redteam.json");
    std::fs::write(out, &json).expect("write BENCH_redteam.json");
    eprintln!("wrote BENCH_redteam.json ({} cells)", cells.len());
}
