//! Scaling ablation (the Criterion companion to the Fig. 12 experiment
//! binary): detection time vs flow count on FatTree(8) with aggregated
//! rules, comparing the paper-literal dense pipeline, the structure-aware
//! direct solver, CGLS, and slicing. Also the rule-granularity ablation:
//! how aggregation changes the solve cost on a fixed topology.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use foces::{Detector, EquationSystem, Fcm, SlicedFcm, SolverKind};
use foces_controlplane::{provision, uniform_flows, RuleGranularity};
use foces_dataplane::LossModel;
use foces_net::generators::fattree;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::hint::black_box;

fn setup(flows_wanted: usize, granularity: RuleGranularity) -> (Fcm, SlicedFcm, Vec<f64>) {
    let topo = fattree(8);
    let mut flows = uniform_flows(&topo, 16256.0 * 1000.0);
    let mut rng = StdRng::seed_from_u64(7);
    flows.shuffle(&mut rng);
    flows.truncate(flows_wanted);
    let mut dep = provision(topo, &flows, granularity).expect("provision");
    let fcm = Fcm::from_view(&dep.view);
    let sliced = SlicedFcm::from_fcm(&fcm);
    let mut loss = LossModel::none();
    dep.replay_traffic(&mut loss);
    (fcm, sliced, dep.dataplane.collect_counters())
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_scaling");
    group.sample_size(10);
    for n in [250usize, 500, 1000, 2000] {
        let (fcm, sliced, counters) = setup(n, RuleGranularity::PerDestination);
        let naive = Detector::new(4.5, EquationSystem::new(SolverKind::DenseNaive));
        group.bench_with_input(BenchmarkId::new("paper_naive", n), &counters, |b, y| {
            b.iter(|| naive.detect(black_box(&fcm), black_box(y)).unwrap());
        });
        let direct = Detector::new(4.5, EquationSystem::new(SolverKind::DirectDense));
        group.bench_with_input(BenchmarkId::new("direct", n), &counters, |b, y| {
            b.iter(|| direct.detect(black_box(&fcm), black_box(y)).unwrap());
        });
        let cgls = Detector::new(
            4.5,
            EquationSystem::new(SolverKind::IterativeSparse {
                tol: 1e-10,
                max_iter: 5000,
            }),
        );
        group.bench_with_input(BenchmarkId::new("cgls", n), &counters, |b, y| {
            b.iter(|| cgls.detect(black_box(&fcm), black_box(y)).unwrap());
        });
        let default = Detector::default();
        group.bench_with_input(BenchmarkId::new("sliced", n), &counters, |b, y| {
            b.iter(|| sliced.detect(black_box(&default), black_box(y)).unwrap());
        });
    }
    group.finish();
}

fn bench_granularity_ablation(c: &mut Criterion) {
    // DESIGN.md ablation: rule aggregation vs per-flow rules at a fixed
    // flow count. Aggregation couples columns (denser Gram blocks, more
    // Cholesky fill); per-flow rules make the normal equations diagonal.
    let mut group = c.benchmark_group("granularity_ablation");
    group.sample_size(10);
    for (label, g) in [
        ("per_destination", RuleGranularity::PerDestination),
        ("per_flow_pair", RuleGranularity::PerFlowPair),
    ] {
        let (fcm, _, counters) = setup(1000, g);
        let direct = Detector::new(4.5, EquationSystem::new(SolverKind::DirectDense));
        group.bench_with_input(BenchmarkId::new("direct", label), &counters, |b, y| {
            b.iter(|| direct.detect(black_box(&fcm), black_box(y)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling, bench_granularity_ablation);
criterion_main!(benches);
