//! Cold vs. warm epoch solves on FatTree(8) under rolling churn.
//!
//! Hand-rolled harness (`harness = false`, no Criterion): each measured
//! epoch reroutes a small fraction of flows, rebuilds the FCM from the
//! view, replays fresh traffic, and then solves the same system twice —
//! once **cold** (a fresh [`IncrementalSolver`], i.e. a from-scratch
//! `HᵀH = LLᵀ` factorization) and once **warm** (the persistent solver
//! patching its cached factor with the churn's basis delta). Residuals
//! are cross-checked every epoch, so the benchmark is also an end-to-end
//! equivalence test on the paper's largest topology.
//!
//! Writes `BENCH_incremental.json` at the repository root. With `--test`
//! (the CI smoke mode) it runs a scaled-down configuration, keeps the
//! equivalence assertions, and writes nothing.

use foces::{Fcm, IncrementalSolver, SolvePath};
use foces_controlplane::{provision, uniform_flows, Deployment, RuleGranularity};
use foces_dataplane::LossModel;
use foces_net::generators::fattree;
use foces_net::SwitchId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::time::Instant;

struct EpochSample {
    epoch: usize,
    /// Reroutes that actually landed this epoch.
    churned_flows: usize,
    cold_ms: f64,
    warm_ms: f64,
    /// Display form of the warm solver's path ("warm(rank=k)" or a
    /// cold-fallback reason).
    path: String,
    warm_was_warm: bool,
}

struct RunResult {
    flows: usize,
    rules: usize,
    samples: Vec<EpochSample>,
}

fn provision_subset(topo: foces_net::Topology, flows_wanted: usize) -> Deployment {
    let n = topo.host_count() as f64;
    let mut flows = uniform_flows(&topo, n * (n - 1.0) * 1000.0);
    let mut rng = StdRng::seed_from_u64(7);
    flows.shuffle(&mut rng);
    flows.truncate(flows_wanted);
    provision(topo, &flows, RuleGranularity::PerDestination).expect("bench topology provisions")
}

/// Reroutes up to `k` random flows through random off-path waypoints.
/// Returns how many reroutes actually landed (a waypoint may admit no
/// simple path; those attempts are skipped).
fn churn(dep: &mut Deployment, rng: &mut StdRng, k: usize) -> usize {
    let mut landed = 0;
    for _ in 0..k * 8 {
        if landed == k {
            break;
        }
        let flow = rng.gen_range(0..dep.flows.len());
        let path = dep.expected_paths[flow].clone();
        let candidates: Vec<SwitchId> = dep
            .view
            .topology()
            .switches()
            .filter(|s| !path.contains(s))
            .collect();
        let Some(&w) = candidates.choose(rng) else {
            continue;
        };
        if dep.reroute_flow_via(flow, &[w]).is_ok() {
            landed += 1;
        }
    }
    landed
}

/// Runs `epochs` measured churn epochs against `dep`, returning per-epoch
/// cold/warm timings. Panics if the two solves ever disagree beyond
/// solver tolerance — the benchmark doubles as an equivalence check.
fn run(mut dep: Deployment, epochs: usize, churn_per_epoch: usize) -> RunResult {
    let mut rng = StdRng::seed_from_u64(42);
    let fcm0 = Fcm::from_view(&dep.view);
    let flows = fcm0.flow_count();
    let rules = fcm0.rule_count();

    // Epoch 0 (unmeasured): factor from scratch to warm the cache.
    dep.replay_traffic(&mut LossModel::none());
    let counters0 = fcm0.counters_from(&dep.dataplane);
    let mut warm = IncrementalSolver::default();
    warm.solve(&fcm0, &counters0).expect("warm-up solve");

    let mut samples = Vec::with_capacity(epochs);
    for epoch in 0..epochs {
        let churned_flows = churn(&mut dep, &mut rng, churn_per_epoch);
        let fcm = Fcm::from_view(&dep.view);
        dep.dataplane.reset_counters();
        dep.replay_traffic(&mut LossModel::none());
        let counters = fcm.counters_from(&dep.dataplane);

        let t = Instant::now();
        let mut cold_solver = IncrementalSolver::default();
        let (cold_out, cold_path) = cold_solver.solve(&fcm, &counters).expect("cold solve");
        let cold_ms = t.elapsed().as_secs_f64() * 1e3;
        assert!(
            !cold_path.is_warm(),
            "a fresh solver cannot be warm: {cold_path}"
        );

        let t = Instant::now();
        let (warm_out, path) = warm.solve(&fcm, &counters).expect("warm solve");
        let warm_ms = t.elapsed().as_secs_f64() * 1e3;

        let scale = counters.iter().fold(1.0_f64, |m, v| m.max(v.abs()));
        for (a, b) in warm_out.residual.iter().zip(&cold_out.residual) {
            assert!(
                (a - b).abs() <= 1e-6 * scale,
                "epoch {epoch}: warm residual {a} vs cold {b}"
            );
        }

        samples.push(EpochSample {
            epoch,
            churned_flows,
            cold_ms,
            warm_ms,
            path: path.to_string(),
            warm_was_warm: matches!(path, SolvePath::Warm { .. }),
        });
    }
    RunResult {
        flows,
        rules,
        samples,
    }
}

fn render_json(
    topology: &str,
    churn_per_epoch: usize,
    churn_fraction: f64,
    r: &RunResult,
) -> String {
    let cold_total: f64 = r.samples.iter().map(|s| s.cold_ms).sum();
    let warm_total: f64 = r.samples.iter().map(|s| s.warm_ms).sum();
    let n = r.samples.len().max(1) as f64;
    let speedup = cold_total / warm_total.max(1e-12);
    let warm_epochs = r.samples.iter().filter(|s| s.warm_was_warm).count();
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\n  \"benchmark\": \"incremental\",\n  \"topology\": \"{topology}\",\n  \
         \"flows\": {},\n  \"rules\": {},\n  \"epochs\": {},\n  \
         \"churn_flows_per_epoch\": {churn_per_epoch},\n  \"churn_fraction\": {churn_fraction:.4},\n  \
         \"cold_ms_mean\": {:.3},\n  \"warm_ms_mean\": {:.3},\n  \
         \"cold_ms_total\": {cold_total:.3},\n  \"warm_ms_total\": {warm_total:.3},\n  \
         \"speedup\": {speedup:.2},\n  \"warm_epochs\": {warm_epochs},\n  \"samples\": [",
        r.flows,
        r.rules,
        r.samples.len(),
        cold_total / n,
        warm_total / n,
    );
    for (i, e) in r.samples.iter().enumerate() {
        let _ = write!(
            s,
            "{}\n    {{\"epoch\": {}, \"churned_flows\": {}, \"cold_ms\": {:.3}, \
             \"warm_ms\": {:.3}, \"path\": \"{}\"}}",
            if i == 0 { "" } else { "," },
            e.epoch,
            e.churned_flows,
            e.cold_ms,
            e.warm_ms,
            e.path,
        );
    }
    s.push_str("\n  ]\n}\n");
    s
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    if test_mode {
        // CI smoke: a small FatTree(4), two churn epochs, assertions on.
        let dep = provision_subset(fattree(4), 120);
        let r = run(dep, 2, 2);
        assert!(
            r.samples.iter().all(|s| s.warm_was_warm),
            "smoke run must stay warm: {:?}",
            r.samples.iter().map(|s| s.path.clone()).collect::<Vec<_>>()
        );
        println!(
            "incremental bench smoke: ok ({} epochs warm)",
            r.samples.len()
        );
        return;
    }

    // Full run: the paper's largest topology, rolling ~0.5% flow churn per
    // epoch (well under the 5% regime the warm path is budgeted for).
    const FLOWS: usize = 4000;
    const EPOCHS: usize = 8;
    const CHURN: usize = 20;
    let dep = provision_subset(fattree(8), FLOWS);
    let r = run(dep, EPOCHS, CHURN);
    let json = render_json("fattree8", CHURN, CHURN as f64 / FLOWS as f64, &r);
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_incremental.json");
    std::fs::write(out, &json).expect("write BENCH_incremental.json");
    print!("{json}");
    eprintln!("wrote {out}");
}
