//! Property tests for the ingest determinism contract.
//!
//! The event queue is the spine of the whole stream: if pops were ever
//! out of time order, or equal-time ties broke differently between runs,
//! every downstream guarantee (byte-identical JSONL, reproducible
//! verdicts) would quietly rot. So the heap discipline is pinned with
//! arbitrary seeded insertion patterns, and the end-to-end contract —
//! identical seeds produce **byte-identical** event logs — is checked by
//! running whole streams twice.

use foces_channel::FaultProfile;
use foces_controlplane::{provision, uniform_flows, Deployment, RuleGranularity};
use foces_ingest::{CadenceConfig, EventQueue, SimTime, StreamAction, StreamConfig, StreamDriver};
use foces_net::generators::ring;
use foces_runtime::EventLog;
use proptest::prelude::*;

proptest! {
    /// Pop times are nondecreasing no matter the insertion order.
    #[test]
    fn pops_are_nondecreasing(times in proptest::collection::vec(0u64..50_000, 1..256)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.push(SimTime(*t), i);
        }
        let mut last = SimTime::ZERO;
        let mut popped = 0usize;
        while let Some((at, _)) = q.pop() {
            prop_assert!(at >= last, "pop at {at:?} after {last:?}");
            last = at;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
        prop_assert_eq!(q.processed(), times.len() as u64);
    }

    /// Among equal-time events, pops come out in push (FIFO) order — the
    /// tie-break is the sequence number, never heap internals.
    #[test]
    fn equal_time_ties_pop_fifo(
        times in proptest::collection::vec(0u64..8, 1..256),
    ) {
        // Coarse time grid (0..8) over up to 256 events forces heavy ties.
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.push(SimTime(*t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((at, idx)) = q.pop() {
            if let Some((prev_at, prev_idx)) = last {
                prop_assert!(at >= prev_at);
                if at == prev_at {
                    prop_assert!(
                        idx > prev_idx,
                        "tie at {at:?}: payload {idx} popped after {prev_idx}"
                    );
                }
            }
            last = Some((at, idx));
        }
    }

    /// Interleaving pops between pushes never reorders ties: events
    /// scheduled for the same instant still pop in push order even when
    /// the heap has been partially drained in between.
    #[test]
    fn interleaved_drains_keep_fifo(
        ops in proptest::collection::vec((0u64..8, any::<bool>()), 1..128),
    ) {
        let mut q = EventQueue::new();
        let mut next_payload = 0usize;
        let mut popped: Vec<(SimTime, usize)> = Vec::new();
        for (t, also_pop) in ops {
            q.push(SimTime(t), next_payload);
            next_payload += 1;
            if also_pop {
                if let Some(p) = q.pop() {
                    popped.push(p);
                }
            }
        }
        while let Some(p) = q.pop() {
            popped.push(p);
        }
        prop_assert_eq!(popped.len(), next_payload);
        // Within each drain segment times are nondecreasing and ties are
        // FIFO; across segments only the tie rule is globally checkable.
        for w in popped.windows(2) {
            if w[0].0 == w[1].0 {
                prop_assert!(w[1].1 > w[0].1, "tie broke against push order: {w:?}");
            }
        }
    }
}

fn deployment() -> Deployment {
    let topo = ring(4);
    let flows = uniform_flows(&topo, 12_000.0);
    provision(topo, &flows, RuleGranularity::PerFlowPair).unwrap()
}

/// Runs one short faulty stream and returns its JSONL lines.
fn jsonl_for(seed: u64) -> Vec<String> {
    let config = StreamConfig {
        duration_ms: 160.0,
        regions: 2,
        cadence: CadenceConfig {
            min_ms: 10.0,
            max_ms: 40.0,
            backoff: 1.5,
            quiet_threshold: 2,
        },
        profile: FaultProfile {
            latency_ms: 1.0,
            jitter_ms: 2.0,
            drop_prob: 0.05,
            reorder_prob: 0.05,
            offline: Vec::new(),
        },
        seed,
        ..StreamConfig::default()
    };
    let script = vec![(60.0, StreamAction::Churn)];
    let mut driver = StreamDriver::new(deployment(), config, script);
    driver.install_log(EventLog::in_memory());
    driver.run().unwrap();
    driver.log().lines().to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The end-to-end determinism contract: the same seed yields a
    /// byte-identical JSONL log across independent runs, for arbitrary
    /// seeds, even with jitter, drops, reordering, and mid-run churn.
    #[test]
    fn same_seed_streams_are_byte_identical(seed in any::<u64>()) {
        let first = jsonl_for(seed);
        let second = jsonl_for(seed);
        prop_assert!(!first.is_empty(), "stream must log rounds");
        prop_assert_eq!(first, second);
    }
}
