//! **foces-ingest** — event-driven continuous counter ingestion with
//! per-link channel models and shard-complete detection triggers.
//!
//! Everything below `foces-runtime` collects counters in *lockstep*: poll
//! every switch, wait for the slowest (or its deadline), then detect.
//! That couples time-to-first-verdict to the worst link in the whole
//! network and wastes polling budget on switches nothing is happening
//! near. This crate replaces the round with a discrete-event simulation
//! of the control network and a streaming detection pipeline:
//!
//! * [`event`] — [`SimTime`] (integer microseconds) and [`EventQueue`], a
//!   binary-heap event loop with deterministic FIFO tie-breaking: the
//!   backbone every other module schedules against.
//! * [`link`] — per-link channel models. [`LinkModel`] gives a link
//!   propagation delay, serialization bandwidth, and a *bounded*
//!   congestion queue, so concurrent replies on a region's shared uplink
//!   genuinely contend (and overflow genuinely drops).
//!   [`IngestChannel`] composes access hops + uplinks with the
//!   channel-level [`foces_channel::FaultModel`] vocabulary and serves
//!   [`foces_channel::Transport::exchange_at`] — timestamped delivery.
//! * [`cadence`] — [`PollCadence`], per-switch adaptive poll timers:
//!   quiet switches back off geometrically toward a ceiling, any churn,
//!   anomaly, or timeout snaps the interval back down.
//! * [`stream`] — [`StreamDriver`], the event loop itself. Counters
//!   arrive continuously and out of order, merge through generation-stamp
//!   reconciliation, and each shard's detection fires the moment *its*
//!   members are fresh ([`foces_cluster::ShardCompletion`]) on a
//!   per-shard warm [`foces::IncrementalSolver`] — time-to-first-verdict
//!   is the fastest shard's completion, not the slowest switch's reply.
//! * [`metrics`] — [`IngestMetrics`]: stream counters plus the TTFV/TTAV
//!   milestones, as flat JSON.
//!
//! Determinism is a contract: given the same seeds and knobs, two runs
//! produce byte-identical JSONL (pinned by the property tests in
//! `tests/queue_props.rs` and the integration suite).

pub mod cadence;
pub mod event;
pub mod link;
pub mod metrics;
pub mod stream;

pub use cadence::{CadenceConfig, PollCadence};
pub use event::{EventQueue, SimTime};
pub use link::{IngestChannel, LinkModel, LinkSpec};
pub use metrics::IngestMetrics;
pub use stream::{
    StreamAction, StreamConfig, StreamDriver, StreamError, StreamEvent, StreamReport,
};
