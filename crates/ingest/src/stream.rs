//! The event-driven stream driver: continuous ingestion with
//! shard-complete detection triggers.
//!
//! The lockstep runtime ([`foces_runtime::ScenarioDriver`]) runs the
//! paper's loop as poll-everyone-then-wait: every epoch blocks on the
//! slowest switch anywhere before a single verdict exists.
//! [`StreamDriver`] replaces the round with a simulated-time event loop
//! ([`crate::EventQueue`]): per-switch poll timers fire [`PollDue`]
//! events, replies travel through the per-link channel models
//! ([`crate::IngestChannel`]) and arrive *continuously and out of
//! order*, retries and timeouts are themselves scheduled events, and the
//! moment one shard's members are all fresh
//! ([`foces_cluster::ShardCompletion`]) that shard's detection fires —
//! while slower regions are still collecting. Time-to-first-verdict is
//! decoupled from the slowest link.
//!
//! Out-of-order arrivals are merged through the same generation-stamp
//! reconciliation the lockstep path uses: a reply stamped newer than the
//! FCM build, or a journal that moved since it, turns the shard's round
//! into a quarantined solve (journaled rules' rows, the flows through
//! them, and their closure rows all excluded) instead of a false alarm.
//! A [`Rebuild`] event scheduled `settle_ms` after each churn action
//! re-derives the FCM and shards, after which rounds return to warm
//! incremental solves.
//!
//! Everything is deterministic given the seeds: event times are integer
//! microseconds, ties pop FIFO, and all randomness flows through the
//! seeded fault model and scenario RNGs. Two runs with the same
//! configuration produce byte-identical JSONL.
//!
//! [`PollDue`]: StreamEvent::PollDue
//! [`Rebuild`]: StreamEvent::Rebuild

use crate::cadence::{CadenceConfig, PollCadence};
use crate::event::{EventQueue, SimTime};
use crate::link::{IngestChannel, LinkSpec};
use crate::metrics::IngestMetrics;
use foces::{
    analyze_cluster_coverage, cross_validate, k_resilient_verdict, AlarmState, BackendKind,
    CoverageConfig, CoverageReport, Detector, Fcm, FocesError, IncrementalSolver, RankBudget,
    ShardUnionVerdict, ShardedFcm, SuspicionTracker,
};
use foces_channel::{
    plan_collusion, ChannelError, CollusionInputs, ControllerMsg, Delivery, FakeStrategy,
    FaultProfile, ForgingAgent, HonestAgent, RuleFacts, SwitchAgent, SwitchMsg, Transport,
};
use foces_cluster::ShardCompletion;
use foces_controlplane::Deployment;
use foces_dataplane::{inject_random_anomaly, AnomalyKind, AppliedAnomaly, LossModel, RuleRef};
use foces_net::{partition, Partition, PartitionSpec, SwitchId};
use foces_runtime::metrics::{json_f64, json_str};
use foces_runtime::{AlarmMachine, ByzantineConfig, EventLog, HysteresisConfig};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// Everything that can go wrong inside a stream run.
#[derive(Debug)]
pub enum StreamError {
    /// A wire-level protocol violation from the channel layer.
    Channel(ChannelError),
    /// A solver error from a shard detection round.
    Solve(FocesError),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Channel(e) => write!(f, "stream channel error: {e}"),
            StreamError::Solve(e) => write!(f, "stream solve error: {e}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<ChannelError> for StreamError {
    fn from(e: ChannelError) -> Self {
        StreamError::Channel(e)
    }
}

impl From<FocesError> for StreamError {
    fn from(e: FocesError) -> Self {
        StreamError::Solve(e)
    }
}

/// A scripted control-plane/data-plane mutation, scheduled at an absolute
/// stream time.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamAction {
    /// Inject a random forwarding anomaly of the given kind (no-op if one
    /// is already active).
    Inject(AnomalyKind),
    /// Repair the active anomaly (no-op if none).
    Revert,
    /// One rolling-update step: reroute a random flow mid-window so the
    /// counters genuinely mix rule generations, then schedule a
    /// [`StreamEvent::Rebuild`] `settle_ms` later.
    Churn,
    /// Compromise `liars` switches: forging agents replace their honest
    /// ones and (for the evasion strategies) a real early-drop anomaly is
    /// planted at each liar for the forged counters to hide. No-op if
    /// liars are already active.
    Compromise {
        /// How many switches turn Byzantine.
        liars: usize,
        /// How the forged reports coordinate.
        strategy: FakeStrategy,
        /// Forgery interpolation λ ∈ [0, 1].
        magnitude: f64,
    },
    /// The liars confess: honest agents are restored and cover anomalies
    /// repaired (no-op if nobody is lying).
    Confess,
}

/// Tunables for one stream run.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamConfig {
    /// Simulated run length, ms.
    pub duration_ms: f64,
    /// Number of partition regions (edge-cut shards).
    pub regions: usize,
    /// Per-switch adaptive poll cadence.
    pub cadence: CadenceConfig,
    /// Per-attempt reply timeout, ms.
    pub attempt_timeout_ms: f64,
    /// Attempts per poll cycle before the cycle is abandoned.
    pub max_attempts: u32,
    /// Churn-to-rebuild settle delay, ms.
    pub settle_ms: f64,
    /// Alarm hysteresis configuration.
    pub hysteresis: HysteresisConfig,
    /// Default per-switch fault profile.
    pub profile: FaultProfile,
    /// Default per-switch access-hop spec.
    pub access: LinkSpec,
    /// Default per-region shared-uplink spec.
    pub uplink: LinkSpec,
    /// A region whose members get extra access propagation (the "slow
    /// region" of the benchmark scenario).
    pub slow_region: Option<usize>,
    /// Extra one-way access propagation for the slow region, ms.
    pub slow_extra_ms: f64,
    /// Seed for the channel fault model.
    pub seed: u64,
    /// Seed for churn flow/waypoint choices.
    pub churn_seed: u64,
    /// Seed for anomaly placement.
    pub anomaly_seed: u64,
    /// Seed for choosing which switches lie under
    /// [`StreamAction::Compromise`].
    pub liar_seed: u64,
    /// Byzantine-resilience layer (suspicion, liar localization,
    /// quarantine) — shared tunables with the lockstep runtime.
    pub byzantine: ByzantineConfig,
    /// Solve backend for the per-region warm solvers: dense factor cache,
    /// sparse Cholesky/PCGLS engine, or size-based auto selection.
    pub backend: BackendKind,
}

impl Default for StreamConfig {
    /// 2 s, 4 regions, default cadence/links, 40 ms attempt timeout,
    /// 5 attempts, 100 ms settle, no slow region.
    fn default() -> Self {
        StreamConfig {
            duration_ms: 2000.0,
            regions: 4,
            cadence: CadenceConfig::default(),
            attempt_timeout_ms: 40.0,
            max_attempts: 5,
            settle_ms: 100.0,
            hysteresis: HysteresisConfig::default(),
            profile: FaultProfile::default(),
            access: LinkSpec::default(),
            uplink: LinkSpec::default(),
            slow_region: None,
            slow_extra_ms: 20.0,
            seed: 0,
            churn_seed: 7,
            anomaly_seed: 4,
            liar_seed: 11,
            byzantine: ByzantineConfig::default(),
            backend: BackendKind::default(),
        }
    }
}

/// One event in the stream's simulated-time loop.
#[derive(Debug, Clone)]
pub enum StreamEvent {
    /// A switch's poll timer fired: start a poll cycle.
    PollDue(SwitchId),
    /// A reply delivered by the channel arrives at the controller.
    Arrival {
        /// The switch whose agent produced the reply.
        switch: SwitchId,
        /// The transaction id of the *request* this delivery answers.
        xid: u32,
        /// The reply itself (possibly a stale, reordered one).
        reply: SwitchMsg,
    },
    /// An attempt's reply deadline passed.
    Timeout {
        /// The polled switch.
        switch: SwitchId,
        /// The attempt's transaction id.
        xid: u32,
    },
    /// A scripted action (index into the script).
    Action(usize),
    /// Re-derive FCM + shards after churn settled.
    Rebuild,
}

/// Outcome of one stream run.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// Aggregate stream counters and latency milestones.
    pub metrics: IngestMetrics,
    /// Final alarm state.
    pub alarm_state: AlarmState,
    /// Ground-truth sharded verdict over the data plane's final counters.
    pub final_union: ShardUnionVerdict,
    /// Each region's *last* stream verdict (region, anomalous), ascending.
    pub stream_verdicts: Vec<(usize, bool)>,
}

impl StreamReport {
    /// Does every region's last stream verdict agree with the ground-truth
    /// union at end of run? (Meaningful when the run ends quiescent:
    /// mutations long settled and every shard has fired since.)
    pub fn verdict_parity(&self) -> bool {
        self.stream_verdicts.iter().all(|&(region, anomalous)| {
            self.final_union
                .per_shard
                .iter()
                .find(|(r, _)| *r == region)
                .is_some_and(|(_, v)| v.anomalous == anomalous)
        })
    }
}

#[derive(Debug, Clone, Copy)]
struct Outstanding {
    xid: u32,
    attempts: u32,
}

/// Drives one deployment through a scripted stream (see module docs).
pub struct StreamDriver {
    dep: Deployment,
    config: StreamConfig,
    script: Vec<(f64, StreamAction)>,
    partition: Partition,
    channel: IngestChannel,
    agents: HashMap<SwitchId, Box<dyn SwitchAgent>>,
    /// All switches, ascending — the deterministic iteration order.
    switches: Vec<SwitchId>,
    queue: EventQueue<StreamEvent>,
    detector: Detector,
    fcm: Fcm,
    sharded: ShardedFcm,
    fcm_generation: u64,
    /// Per-switch `(fcm_row, table_index)` scatter map.
    rows_of: HashMap<SwitchId, Vec<(usize, usize)>>,
    /// Latest accepted counter per FCM row (continuously overwritten).
    full: Vec<f64>,
    /// Rows whose counter has arrived at least once since the last
    /// rebuild. A shard can complete (all *members* fresh) while closure
    /// rows on neighbouring regions are still unsampled — those rows are
    /// masked out of the shard's solve, never fabricated as zeros.
    observed: Vec<bool>,
    /// Latest accepted generation stamp per switch.
    gen_of: HashMap<SwitchId, u64>,
    completion: ShardCompletion,
    solvers: HashMap<usize, IncrementalSolver>,
    cadence: HashMap<SwitchId, PollCadence>,
    outstanding: HashMap<SwitchId, Outstanding>,
    alarm: AlarmMachine,
    inject_rng: StdRng,
    churn_rng: StdRng,
    applied: Option<AppliedAnomaly>,
    next_xid: u32,
    metrics: IngestMetrics,
    log: EventLog,
    /// Regions that have fired at least once (for the TTAV milestone).
    fired: Vec<bool>,
    last_verdict: HashMap<usize, bool>,
    first_inject_at: Option<f64>,
    /// Residual-attribution scores per switch (Byzantine layer).
    suspicion: SuspicionTracker,
    /// Switches whose reports are excluded from every shard solve.
    quarantined: BTreeSet<SwitchId>,
    /// Consecutive non-anomalous scored rounds (drives re-probe liveness).
    quiet_rounds: u32,
    /// Alarm up but no single switch's removal explains the conflict.
    byz_unresolved: bool,
    /// Byzantine suspicion high-water mark from the previous scored round
    /// (drives the cadence suspicion trigger).
    last_suspicion: f64,
    /// Pre-flight coverage analysis of the stream's FCM + partition
    /// (refreshed on every rebuild; `None` only for an empty plane).
    coverage: Option<CoverageReport>,
    liar_rng: StdRng,
    liars: Vec<SwitchId>,
    forging: Vec<SwitchId>,
    fake_strategy: FakeStrategy,
    fake_magnitude: f64,
    cover_anomalies: Vec<AppliedAnomaly>,
    stale_snapshot: BTreeMap<(SwitchId, usize), f64>,
    original_tables: BTreeMap<SwitchId, Vec<foces_dataplane::Rule>>,
}

impl StreamDriver {
    /// Builds the driver: honest agents over an [`IngestChannel`] derived
    /// from `config`, shards from an edge-cut partition, steady traffic
    /// already replayed.
    pub fn new(
        mut dep: Deployment,
        config: StreamConfig,
        script: Vec<(f64, StreamAction)>,
    ) -> Self {
        let part = partition(
            dep.view.topology(),
            PartitionSpec::EdgeCut { k: config.regions },
        );
        let members = part.regions().to_vec();
        let mut channel = IngestChannel::new(
            config.seed,
            config.profile.clone(),
            config.access.clone(),
            config.uplink.clone(),
            &members,
        );
        if let Some(r) = config.slow_region {
            if let Some(region) = members.get(r) {
                for &sw in region {
                    channel.set_access(
                        sw,
                        LinkSpec {
                            propagation_ms: config.access.propagation_ms + config.slow_extra_ms,
                            ..config.access.clone()
                        },
                    );
                }
            }
        }
        let mut switches: Vec<SwitchId> = dep.view.topology().switches().collect();
        switches.sort_unstable();
        let agents = switches
            .iter()
            .map(|&s| (s, Box::new(HonestAgent::new(s)) as Box<dyn SwitchAgent>))
            .collect();
        let cadence = switches
            .iter()
            .map(|&s| (s, PollCadence::new(config.cadence.clone())))
            .collect();
        dep.dataplane.reset_counters();
        dep.replay_traffic(&mut LossModel::none());
        let fcm = Fcm::from_view(&dep.view);
        let sharded = ShardedFcm::from_fcm(&fcm, &part);
        let rows_of = Self::row_map(&fcm);
        let full = vec![0.0; fcm.rule_count()];
        let completion = ShardCompletion::new(members);
        let fcm_generation = dep.view.generation();
        let alarm = AlarmMachine::new(config.hysteresis);
        let inject_rng = StdRng::seed_from_u64(config.anomaly_seed);
        let churn_rng = StdRng::seed_from_u64(config.churn_seed);
        let fired = vec![false; sharded.shard_count()];
        let suspicion = SuspicionTracker::new(config.byzantine.suspicion);
        let liar_rng = StdRng::seed_from_u64(config.liar_seed);
        // Pre-flight: score detectability and localization coverage of the
        // plane this stream is about to watch, before any counters arrive.
        let coverage = analyze_cluster_coverage(&fcm, &sharded, &CoverageConfig::default()).ok();
        let mut metrics = IngestMetrics::default();
        if let Some(cov) = &coverage {
            metrics.coverage_warnings = cov.warn_count() as u64;
        }
        StreamDriver {
            dep,
            config,
            script,
            partition: part,
            channel,
            agents,
            switches,
            queue: EventQueue::new(),
            detector: Detector::default(),
            fcm,
            sharded,
            fcm_generation,
            rows_of,
            observed: vec![false; full.len()],
            full,
            gen_of: HashMap::new(),
            completion,
            solvers: HashMap::new(),
            cadence,
            outstanding: HashMap::new(),
            alarm,
            inject_rng,
            churn_rng,
            applied: None,
            next_xid: 1,
            metrics,
            log: EventLog::in_memory(),
            fired,
            last_verdict: HashMap::new(),
            first_inject_at: None,
            suspicion,
            last_suspicion: 0.0,
            coverage,
            quarantined: BTreeSet::new(),
            quiet_rounds: 0,
            byz_unresolved: false,
            liar_rng,
            liars: Vec::new(),
            forging: Vec::new(),
            fake_strategy: FakeStrategy::Naive,
            fake_magnitude: 1.0,
            cover_anomalies: Vec::new(),
            stale_snapshot: BTreeMap::new(),
            original_tables: BTreeMap::new(),
        }
    }

    fn row_map(fcm: &Fcm) -> HashMap<SwitchId, Vec<(usize, usize)>> {
        let mut m: HashMap<SwitchId, Vec<(usize, usize)>> = HashMap::new();
        for (row, r) in fcm.rules().iter().enumerate() {
            m.entry(r.switch).or_default().push((row, r.index));
        }
        m
    }

    /// Replaces the (in-memory) event log, e.g. with a file-backed one.
    pub fn install_log(&mut self, log: EventLog) {
        self.log = log;
    }

    /// The JSONL event log.
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// The stream metrics so far.
    pub fn metrics(&self) -> &IngestMetrics {
        &self.metrics
    }

    /// The deployment under test.
    pub fn deployment(&self) -> &Deployment {
        &self.dep
    }

    /// The Byzantine suspicion tracker (empty while the layer is off).
    pub fn suspicion(&self) -> &SuspicionTracker {
        &self.suspicion
    }

    /// The latest pre-flight coverage analysis (`None` only for an empty
    /// plane). Refreshed whenever a rebuild re-derives the FCM.
    pub fn coverage(&self) -> Option<&CoverageReport> {
        self.coverage.as_ref()
    }

    /// Switches currently under counter quarantine, ascending.
    pub fn quarantined_switches(&self) -> Vec<SwitchId> {
        self.quarantined.iter().copied().collect()
    }

    /// Whether the stream is in the unresolved-Byzantine state: the alarm
    /// is up but leave-one-out found no single switch whose removal makes
    /// the system consistent. The CLI exits 2 when a run ends here.
    pub fn byzantine_unresolved(&self) -> bool {
        self.byz_unresolved
    }

    /// The switches currently lying (empty when everyone is honest).
    pub fn liar_switches(&self) -> &[SwitchId] {
        &self.liars
    }

    /// Runs the stream to `duration_ms` and reports.
    ///
    /// # Errors
    ///
    /// [`StreamError`] on wire protocol violations or solver failures.
    pub fn run(&mut self) -> Result<StreamReport, StreamError> {
        let end = SimTime::from_ms(self.config.duration_ms);
        for i in 0..self.switches.len() {
            let sw = self.switches[i];
            self.queue.push(SimTime::ZERO, StreamEvent::PollDue(sw));
        }
        for (i, (at_ms, _)) in self.script.iter().enumerate() {
            self.queue
                .push(SimTime::from_ms(*at_ms), StreamEvent::Action(i));
        }
        let mut last = SimTime::ZERO;
        while let Some(t) = self.queue.peek_time() {
            if t > end {
                break;
            }
            let (now, event) = self.queue.pop().expect("peeked");
            last = now;
            self.metrics.events += 1;
            match event {
                StreamEvent::PollDue(sw) => self.on_poll_due(sw, now)?,
                StreamEvent::Arrival { switch, xid, reply } => {
                    self.on_arrival(switch, xid, reply, now)?
                }
                StreamEvent::Timeout { switch, xid } => self.on_timeout(switch, xid, now)?,
                StreamEvent::Action(i) => self.on_action(i, now),
                StreamEvent::Rebuild => self.on_rebuild(now),
            }
        }
        self.metrics.end_ms = last.as_ms();
        self.metrics.congestion_drops = self.channel.congestion_drops();
        let counters = self.fcm.counters_from(&self.dep.dataplane);
        let final_union = self.sharded.detect(&self.detector, &counters)?;
        let mut stream_verdicts: Vec<(usize, bool)> =
            self.last_verdict.iter().map(|(&r, &a)| (r, a)).collect();
        stream_verdicts.sort_unstable();
        Ok(StreamReport {
            metrics: self.metrics,
            alarm_state: self.alarm.state(),
            final_union,
            stream_verdicts,
        })
    }

    fn on_poll_due(&mut self, switch: SwitchId, now: SimTime) -> Result<(), StreamError> {
        if self.outstanding.contains_key(&switch) {
            // A cycle is still in flight (timer raced a slow reply): the
            // cycle's own completion reschedules, nothing to do.
            return Ok(());
        }
        self.metrics.polls += 1;
        self.outstanding.insert(
            switch,
            Outstanding {
                xid: 0,
                attempts: 0,
            },
        );
        self.dispatch(switch, now)
    }

    /// Sends one stats request attempt and schedules its arrival/timeout.
    fn dispatch(&mut self, switch: SwitchId, now: SimTime) -> Result<(), StreamError> {
        let xid = self.next_xid;
        self.next_xid = self.next_xid.wrapping_add(1).max(1);
        let o = self.outstanding.get_mut(&switch).expect("cycle open");
        o.xid = xid;
        o.attempts += 1;
        self.metrics.attempts += 1;
        if o.attempts > 1 {
            self.metrics.retries += 1;
        }
        let agent = self.agents.get(&switch).expect("agent per switch");
        let td = self.channel.exchange_at(
            &self.dep.dataplane,
            agent.as_ref(),
            &ControllerMsg::StatsRequest { xid },
            now.as_ms(),
        )?;
        match td.delivery {
            Delivery::Delivered { reply, .. } => {
                self.queue.push(
                    SimTime::from_ms(td.at_ms),
                    StreamEvent::Arrival { switch, xid, reply },
                );
                self.queue.push(
                    now.after_ms(self.config.attempt_timeout_ms),
                    StreamEvent::Timeout { switch, xid },
                );
            }
            Delivery::Dropped => {
                self.metrics.drops += 1;
                self.queue.push(
                    now.after_ms(self.config.attempt_timeout_ms),
                    StreamEvent::Timeout { switch, xid },
                );
            }
            Delivery::Offline => {
                self.metrics.offline_polls += 1;
                self.outstanding.remove(&switch);
                let c = self.cadence.get_mut(&switch).expect("cadence per switch");
                c.on_activity();
                let interval = c.interval_ms();
                self.queue
                    .push(now.after_ms(interval), StreamEvent::PollDue(switch));
            }
        }
        Ok(())
    }

    fn on_timeout(&mut self, switch: SwitchId, xid: u32, now: SimTime) -> Result<(), StreamError> {
        let Some(o) = self.outstanding.get(&switch).copied() else {
            return Ok(()); // cycle already resolved
        };
        if o.xid != xid {
            return Ok(()); // a newer attempt superseded this one
        }
        self.metrics.timeouts += 1;
        if o.attempts >= self.config.max_attempts {
            self.metrics.unresponsive += 1;
            self.outstanding.remove(&switch);
            let c = self.cadence.get_mut(&switch).expect("cadence per switch");
            c.on_activity(); // an unreachable switch is exactly activity
            let interval = c.interval_ms();
            self.queue
                .push(now.after_ms(interval), StreamEvent::PollDue(switch));
            Ok(())
        } else {
            self.dispatch(switch, now)
        }
    }

    fn on_arrival(
        &mut self,
        switch: SwitchId,
        xid: u32,
        reply: SwitchMsg,
        now: SimTime,
    ) -> Result<(), StreamError> {
        let Some(o) = self.outstanding.get(&switch).copied() else {
            self.metrics.stale_replies += 1; // late reply, cycle over
            return Ok(());
        };
        let accepted = match reply {
            SwitchMsg::StatsReply {
                xid: rxid,
                generation,
                counters,
            } if rxid == xid && o.xid == xid => Some((generation, counters)),
            _ => None,
        };
        let Some((generation, counters)) = accepted else {
            // A reordered (stale-xid) reply, or one for a superseded
            // attempt: discard; the pending timeout drives the retry.
            self.metrics.stale_replies += 1;
            return Ok(());
        };
        self.outstanding.remove(&switch);
        self.metrics.samples += 1;
        if generation > self.fcm_generation {
            self.metrics.stale_generation_replies += 1;
        }
        self.gen_of.insert(switch, generation);
        if let Some(rows) = self.rows_of.get(&switch) {
            for &(row, idx) in rows {
                if let Some(&v) = counters.get(idx) {
                    self.full[row] = v;
                    self.observed[row] = true;
                }
            }
        }
        if let Some(region) = self.completion.record(switch) {
            self.fire_shard(region, now)?;
            self.completion.reset(region);
        }
        let c = self.cadence.get_mut(&switch).expect("cadence per switch");
        let interval = c.interval_ms();
        self.queue
            .push(now.after_ms(interval), StreamEvent::PollDue(switch));
        Ok(())
    }

    /// One shard detection round, fired on the completion edge.
    fn fire_shard(&mut self, region: usize, now: SimTime) -> Result<(), FocesError> {
        let views = self.sharded.shard_views();
        let Some(vi) = views.iter().position(|v| v.region == region) else {
            return Ok(()); // empty shard: nothing to solve
        };
        let view = views[vi];
        let touched = self.dep.view.touched_rules_since(self.fcm_generation);
        let stale: Vec<SwitchId> = view
            .switches
            .iter()
            .copied()
            .filter(|s| self.gen_of.get(s).is_some_and(|&g| g > self.fcm_generation))
            .collect();
        let churn = !touched.is_empty() || !stale.is_empty();
        let sub_counters = view.sub_counters(&self.full);
        // A shard completes when its *members* are fresh, but its sub-FCM
        // also carries closure rows on neighbouring regions' switches; any
        // of those not sampled yet are masked out (a sound projection),
        // never solved as fabricated zeros.
        let byz = self.config.byzantine;
        let mut sub_observed: Vec<bool> =
            view.parent_rows.iter().map(|&i| self.observed[i]).collect();
        // Quarantined switches' reports are withheld from every solve:
        // clearing their observed bits routes the round through the
        // row-masked path, sound on the remaining equations.
        if byz.enabled && !self.quarantined.is_empty() {
            for (i, r) in view.sub_fcm.rules().iter().enumerate() {
                if self.quarantined.contains(&r.switch) {
                    sub_observed[i] = false;
                }
            }
        }
        let complete = sub_observed.iter().all(|&o| o);
        self.metrics.shard_rounds += 1;
        let (kind, verdict, scored_rules) = if churn || !complete {
            // Per-shard reconciliation, the PR-2 quarantine pattern on the
            // shard's sub-system — shared with the `foces-sched`
            // conformance harness so the checked round shape IS the
            // deployed one.
            let round = foces_cluster::reconcile_shard_round(
                &view,
                &self.fcm,
                &self.detector,
                &sub_counters,
                &sub_observed,
                &touched,
                churn,
            )?;
            match round.kind {
                foces_cluster::ShardRoundKind::Blind => self.metrics.blind_rounds += 1,
                foces_cluster::ShardRoundKind::Reconciled => self.metrics.reconciled_rounds += 1,
                foces_cluster::ShardRoundKind::Degraded => self.metrics.degraded_rounds += 1,
            }
            (round.kind.label(), round.verdict, round.scored_rules)
        } else {
            let backend = self.config.backend;
            let solver = self
                .solvers
                .entry(region)
                .or_insert_with(|| IncrementalSolver::with_backend(RankBudget::default(), backend));
            let rules: Vec<RuleRef> = view.sub_fcm.rules().to_vec();
            let (v, path) = self
                .detector
                .detect_warm(view.sub_fcm, &sub_counters, solver)?;
            if path.is_warm() {
                self.metrics.warm_rounds += 1;
                ("warm", Some(v), rules)
            } else {
                self.metrics.cold_rounds += 1;
                ("cold", Some(v), rules)
            }
        };
        let now_ms = now.as_ms();
        if self.metrics.ttfv_ms.is_none() {
            self.metrics.ttfv_ms = Some(now_ms);
        }
        if !self.fired[vi] {
            self.fired[vi] = true;
            if self.fired.iter().all(|&f| f) && self.metrics.ttav_ms.is_none() {
                self.metrics.ttav_ms = Some(now_ms);
            }
        }
        let mut anomalous = false;
        let mut ai = 0.0;
        let mut transition = None;
        if let Some(v) = &verdict {
            anomalous = v.anomalous;
            ai = v.anomaly_index;
            if anomalous {
                self.metrics.anomalous_rounds += 1;
            }
            let t = self.alarm.observe(anomalous, churn);
            if t.raised {
                self.metrics.alarms_raised += 1;
                if self.metrics.alarm_latency_ms.is_none() {
                    if let Some(at) = self.first_inject_at {
                        self.metrics.alarm_latency_ms = Some(now_ms - at);
                    }
                }
            }
            if t.cleared {
                self.metrics.alarms_cleared += 1;
            }
            if t.suppressed {
                self.metrics.suppressed_raises += 1;
            }
            transition = Some(t);
            self.last_verdict.insert(region, anomalous);
        }
        // -- Byzantine resilience (opt-in), on the shard's sub-system ----
        let mut localized: Option<SwitchId> = None;
        if byz.enabled {
            let scorable = !scored_rules.is_empty();
            if scorable {
                if let Some(v) = &verdict {
                    if scored_rules.len() == v.solve.residual.len() {
                        self.suspicion
                            .observe(&scored_rules, &v.solve.residual, anomalous);
                        self.metrics.suspicion_rounds += 1;
                    }
                }
            }
            let in_shard: BTreeSet<SwitchId> =
                view.sub_fcm.rules().iter().map(|r| r.switch).collect();
            // While the alarm is up, cross-validate the top suspects with
            // rows in this shard by leaving each one's equations out
            // (factor downdates, no cold refactorization). Exactly one
            // consistent removal = the liar.
            if scorable && anomalous && self.alarm.state() == AlarmState::Alarmed {
                let candidates: Vec<SwitchId> = self
                    .suspicion
                    .ranked()
                    .into_iter()
                    .filter(|(s, _)| in_shard.contains(s))
                    .take(byz.max_candidates)
                    .map(|(s, _)| s)
                    .collect();
                if !candidates.is_empty() {
                    let threshold = self.detector.threshold();
                    let report = if sub_observed.iter().all(|&o| o) {
                        cross_validate(view.sub_fcm, &sub_counters, threshold, &candidates)?
                    } else {
                        let masked = view.sub_fcm.mask_rows(&sub_observed);
                        let sub = masked.project(&sub_counters);
                        cross_validate(masked.fcm(), &sub, threshold, &candidates)?
                    };
                    self.metrics.loo_solves += report.outcomes.len() as u64;
                    self.metrics.loo_downdates += report.downdates as u64;
                    if let Some(liar) = report.localized {
                        localized = Some(liar);
                        self.quarantined.insert(liar);
                        self.suspicion.clear(liar);
                        self.metrics.liars_localized += 1;
                        self.metrics.switch_quarantines += 1;
                        self.byz_unresolved = false;
                    } else if report.base_anomalous {
                        // No single removal explains the conflict: a real
                        // forwarding anomaly (possibly covered for), not a
                        // pure counter-fake.
                        if !self.byz_unresolved {
                            self.metrics.unresolved_byzantine += 1;
                        }
                        self.byz_unresolved = true;
                    }
                }
            }
            // On the raise round, probe whether the verdict survives
            // silencing the top suspects (k-resilience).
            if scorable && transition.is_some_and(|t| t.raised) && byz.resilience_k > 0 {
                let ranked: Vec<SwitchId> = self
                    .suspicion
                    .ranked()
                    .into_iter()
                    .filter(|(s, _)| in_shard.contains(s))
                    .map(|(s, _)| s)
                    .collect();
                if !ranked.is_empty() {
                    let rep = k_resilient_verdict(
                        &self.detector,
                        view.sub_fcm,
                        &sub_counters,
                        &sub_observed,
                        &ranked,
                        byz.resilience_k,
                    )?;
                    self.metrics.resilience_probes += 1;
                    if rep.flips_at.is_some() {
                        self.metrics.resilience_flips += 1;
                    }
                }
            }
            // Liveness: after a quiet streak, tentatively re-admit one
            // quarantined switch's rows (in a shard that carries them) and
            // release it if the system stays consistent.
            if !self.quarantined.is_empty() && verdict.is_some() {
                if anomalous {
                    self.quiet_rounds = 0;
                } else {
                    self.quiet_rounds += 1;
                }
                if self.quiet_rounds >= byz.reprobe_after {
                    let candidate = self
                        .quarantined
                        .iter()
                        .copied()
                        .find(|s| in_shard.contains(s));
                    if let Some(candidate) = candidate {
                        self.quiet_rounds = 0;
                        let mut probe_obs = sub_observed.clone();
                        for (i, r) in view.sub_fcm.rules().iter().enumerate() {
                            if r.switch == candidate {
                                probe_obs[i] = self.observed[view.parent_rows[i]];
                            }
                        }
                        let masked = view.sub_fcm.mask_rows(&probe_obs);
                        match self.detector.detect_masked(&masked, &sub_counters) {
                            Ok(v) if !v.anomalous => {
                                self.quarantined.remove(&candidate);
                                self.suspicion.clear(candidate);
                                self.metrics.quarantine_releases += 1;
                            }
                            Ok(_) => {} // still lying: stay quarantined
                            Err(FocesError::EmptyFcm) => {}
                            Err(e) => return Err(e),
                        }
                    }
                }
            }
            if transition.is_some_and(|t| t.cleared) {
                self.byz_unresolved = false;
            }
        }
        // Cadence: trouble anywhere in the shard tightens every member;
        // a clean quiet round lets them all drift toward the ceiling.
        // Rising suspicion — an anomalous round while the alarm machine is
        // still past Normal, or a Byzantine suspicion jump — goes further
        // and halves the timers below the floor, so even a fixed cadence
        // accumulates its hysteresis quorum at a tightened poll rate
        // instead of paying one full interval per quorum round.
        let s_max = self.suspicion.max_score();
        let suspicious = (anomalous && self.alarm.state() != AlarmState::Normal)
            || s_max > self.last_suspicion + 1e-9;
        self.last_suspicion = s_max;
        let active = churn || anomalous;
        for sw in view.switches {
            let c = self.cadence.get_mut(sw).expect("cadence per switch");
            if suspicious {
                c.on_suspicion();
            } else if active {
                c.on_activity();
            } else {
                c.on_quiet();
            }
        }
        let state = match self.alarm.state() {
            AlarmState::Normal => "Normal",
            AlarmState::Suspected => "Suspected",
            AlarmState::Alarmed => "Alarmed",
        };
        let line = format!(
            "{{\"mode\":\"stream\",\"t_ms\":{},\"region\":{},\"round\":{},\"kind\":{},\"anomalous\":{},\"ai\":{},\"stale\":{},\"alarm\":{},\"raised\":{},\"cleared\":{},\"suspicion_max\":{},\"liars\":{},\"localized\":{},\"byz_unresolved\":{}}}",
            json_f64(now_ms),
            region,
            self.completion.rounds(region),
            json_str(kind),
            anomalous,
            json_f64(ai),
            stale.len(),
            json_str(state),
            transition.is_some_and(|t| t.raised),
            transition.is_some_and(|t| t.cleared),
            json_f64(self.suspicion.max_score()),
            self.quarantined.len(),
            localized.map_or_else(|| "null".to_string(), |s| s.0.to_string()),
            self.byz_unresolved,
        );
        self.log.record(line);
        Ok(())
    }

    fn on_action(&mut self, index: usize, now: SimTime) {
        let action = self.script[index].1.clone();
        let now_ms = now.as_ms();
        match action {
            StreamAction::Inject(kind) => {
                if self.applied.is_none() {
                    self.applied = inject_random_anomaly(
                        &mut self.dep.dataplane,
                        kind,
                        &mut self.inject_rng,
                        &[],
                    );
                    if self.applied.is_some() {
                        if self.first_inject_at.is_none() {
                            self.first_inject_at = Some(now_ms);
                        }
                        self.refresh_traffic();
                        self.log.record(format!(
                            "{{\"mode\":\"stream\",\"t_ms\":{},\"event\":\"inject\"}}",
                            json_f64(now_ms)
                        ));
                    }
                }
            }
            StreamAction::Revert => {
                if let Some(a) = self.applied.take() {
                    a.revert(&mut self.dep.dataplane)
                        .expect("injected rule cannot vanish");
                    self.refresh_traffic();
                    self.log.record(format!(
                        "{{\"mode\":\"stream\",\"t_ms\":{},\"event\":\"revert\"}}",
                        json_f64(now_ms)
                    ));
                }
            }
            StreamAction::Churn => {
                // Mid-window rolling update: half the window's volume runs
                // under the old rules, the reroute lands, half under the
                // new — subsequent samples genuinely mix generations until
                // the scheduled rebuild settles.
                self.dep.dataplane.reset_counters();
                let mut loss = LossModel::none();
                self.dep.replay_traffic_scaled(&mut loss, 0.5);
                self.apply_churn();
                self.dep.replay_traffic_scaled(&mut loss, 0.5);
                self.queue
                    .push(now.after_ms(self.config.settle_ms), StreamEvent::Rebuild);
                self.log.record(format!(
                    "{{\"mode\":\"stream\",\"t_ms\":{},\"event\":\"churn\"}}",
                    json_f64(now_ms)
                ));
            }
            StreamAction::Compromise {
                liars,
                strategy,
                magnitude,
            } => {
                if self.liars.is_empty() && liars > 0 {
                    self.fake_strategy = strategy;
                    self.fake_magnitude = magnitude;
                    self.compromise_switches(liars);
                    self.log.record(format!(
                        "{{\"mode\":\"stream\",\"t_ms\":{},\"event\":\"compromise\",\"liars\":{},\"strategy\":{}}}",
                        json_f64(now_ms),
                        self.liars.len(),
                        json_str(&strategy.to_string()),
                    ));
                }
            }
            StreamAction::Confess => {
                if !self.liars.is_empty() {
                    self.confess();
                    self.log.record(format!(
                        "{{\"mode\":\"stream\",\"t_ms\":{},\"event\":\"confess\"}}",
                        json_f64(now_ms)
                    ));
                }
            }
        }
    }

    /// Picks the liars, snapshots their (still-honest) tables, and — for
    /// the evasion strategies — plants the real early-drop anomaly each
    /// liar will lie to conceal. Under [`FakeStrategy::CoverUp`] the
    /// liar's switch neighbors join the collusion.
    fn compromise_switches(&mut self, count: usize) {
        let mut pool = self.switches.clone();
        pool.shuffle(&mut self.liar_rng);
        pool.truncate(count);
        pool.sort_unstable();
        self.liars = pool;

        let mut forging = self.liars.clone();
        if self.fake_strategy == FakeStrategy::CoverUp {
            for &liar in &self.liars.clone() {
                for adj in self.dep.view.topology().adj(foces_net::Node::Switch(liar)) {
                    if let foces_net::Node::Switch(n) = adj.neighbor {
                        forging.push(n);
                    }
                }
            }
            forging.sort_unstable();
            forging.dedup();
        }
        // Table snapshots must predate the cover anomalies: a stealthy
        // liar answers dumps with the rules the controller installed.
        for &s in &forging {
            let table: Vec<foces_dataplane::Rule> = self
                .dep
                .dataplane
                .table(s)
                .iter()
                .map(|(_, r)| r.clone())
                .collect();
            self.original_tables.insert(s, table);
        }
        self.forging = forging;

        if !self.fake_strategy.is_fabrication() {
            // Evasion: each liar really misbehaves (drops a flow early)
            // and the forged counters exist to hide it.
            let all = self.switches.clone();
            for &liar in &self.liars.clone() {
                let exclude_rest: Vec<SwitchId> =
                    all.iter().copied().filter(|&s| s != liar).collect();
                if let Some(a) = inject_random_anomaly(
                    &mut self.dep.dataplane,
                    AnomalyKind::EarlyDrop,
                    &mut self.liar_rng,
                    &exclude_rest,
                ) {
                    self.cover_anomalies.push(a);
                }
            }
        }
        // Re-registers the window's counters under the (possibly now
        // anomalous) forwarding state and installs the forgeries.
        self.refresh_traffic();
    }

    /// The liars confess: honest agents come back, cover anomalies are
    /// repaired, and all adversarial state is dropped.
    fn confess(&mut self) {
        for &s in &self.forging {
            self.agents
                .insert(s, Box::new(HonestAgent::new(s)) as Box<dyn SwitchAgent>);
        }
        for a in self.cover_anomalies.drain(..) {
            a.revert(&mut self.dep.dataplane)
                .expect("covered rule cannot vanish");
        }
        self.liars.clear();
        self.forging.clear();
        self.stale_snapshot.clear();
        self.original_tables.clear();
        self.refresh_traffic();
    }

    /// Plans the coordinated forgery from the live registers and installs
    /// it into fresh forging agents. Re-run whenever the registers change
    /// (every [`StreamDriver::refresh_traffic`]) so the lie tracks the
    /// truth it distorts.
    fn install_forgeries(&mut self) {
        if self.stale_snapshot.is_empty() {
            // First forging window: the honest registers become the stale
            // snapshot a replay liar keeps reporting as traffic drifts.
            for &s in &self.forging {
                for i in 0..self.dep.dataplane.table(s).len() {
                    self.stale_snapshot
                        .insert((s, i), self.dep.dataplane.true_counter(s, i));
                }
            }
        }
        // The adversary's model of the controller's expectation: nominal
        // (loss-free) flow volumes pushed through the intended routing.
        let mut rate_of: BTreeMap<(foces_net::HostId, foces_net::HostId), f64> = BTreeMap::new();
        for f in &self.dep.flows {
            *rate_of.entry((f.src, f.dst)).or_insert(0.0) += f.rate;
        }
        let mut expected: BTreeMap<(SwitchId, usize), f64> = BTreeMap::new();
        let mut affected: BTreeMap<(SwitchId, usize), bool> = BTreeMap::new();
        let cover_rules: Vec<_> = self.cover_anomalies.iter().map(|a| a.rule).collect();
        for flow in self.fcm.flows() {
            let rate = rate_of
                .get(&(flow.ingress, flow.egress))
                .copied()
                .unwrap_or(0.0);
            let on_covered_path = flow.rules.iter().any(|r| cover_rules.contains(r));
            for r in &flow.rules {
                *expected.entry((r.switch, r.index)).or_insert(0.0) += rate;
                if on_covered_path {
                    affected.insert((r.switch, r.index), true);
                }
            }
        }
        let mut inputs = CollusionInputs::default();
        for &s in &self.forging {
            let facts: Vec<RuleFacts> = (0..self.dep.dataplane.table(s).len())
                .map(|i| {
                    let truth = self.dep.dataplane.true_counter(s, i);
                    RuleFacts {
                        index: i,
                        truth,
                        expected: expected.get(&(s, i)).copied().unwrap_or(0.0),
                        stale: self.stale_snapshot.get(&(s, i)).copied().unwrap_or(truth),
                        // With no cover anomaly (fabrication) every rule is
                        // fair game; with one, only its flows' rows are.
                        affected: if cover_rules.is_empty() {
                            true
                        } else {
                            affected.get(&(s, i)).copied().unwrap_or(false)
                        },
                    }
                })
                .collect();
            inputs.rules_by_switch.insert(s, facts);
        }
        let plan = plan_collusion(self.fake_strategy, self.fake_magnitude, &inputs);
        for &s in &self.forging {
            let table = self.original_tables.get(&s).cloned().unwrap_or_default();
            let mut agent = ForgingAgent::new(s, table);
            plan.forge_into(&mut agent);
            self.agents
                .insert(s, Box::new(agent) as Box<dyn SwitchAgent>);
        }
    }

    /// One controller update (same policy as the lockstep harness):
    /// reroute a random flow through a random off-path waypoint, falling
    /// back to a granularity refinement.
    fn apply_churn(&mut self) {
        let flow = self.churn_rng.gen_range(0..self.dep.flows.len());
        let path = self.dep.expected_paths[flow].clone();
        let candidates: Vec<SwitchId> = self
            .dep
            .view
            .topology()
            .switches()
            .filter(|s| !path.contains(s))
            .collect();
        let rerouted = candidates
            .choose(&mut self.churn_rng)
            .copied()
            .and_then(|w| self.dep.reroute_flow_via(flow, &[w]).ok());
        if rerouted.is_none() {
            let _ = self.dep.refine_flow(flow);
        }
    }

    fn on_rebuild(&mut self, now: SimTime) {
        if self.dep.view.generation() <= self.fcm_generation {
            return; // stale rebuild event: a newer one already ran
        }
        self.refresh_traffic();
        self.fcm = Fcm::from_view(&self.dep.view);
        self.sharded = ShardedFcm::from_fcm(&self.fcm, &self.partition);
        self.rows_of = Self::row_map(&self.fcm);
        self.full = vec![0.0; self.fcm.rule_count()];
        self.observed = vec![false; self.fcm.rule_count()];
        self.gen_of.clear();
        for r in 0..self.completion.shard_count() {
            self.completion.reset(r);
        }
        self.solvers.clear();
        self.fired = vec![false; self.sharded.shard_count()];
        self.fcm_generation = self.dep.view.generation();
        self.metrics.fcm_rebuilds += 1;
        for i in 0..self.switches.len() {
            let sw = self.switches[i];
            self.cadence
                .get_mut(&sw)
                .expect("cadence per switch")
                .on_activity();
        }
        self.log.record(format!(
            "{{\"mode\":\"stream\",\"t_ms\":{},\"event\":\"rebuild\",\"generation\":{}}}",
            json_f64(now.as_ms()),
            self.fcm_generation
        ));
        // The plane moved: re-score coverage against the rebuilt FCM and
        // shards, and surface any WARN findings right after the rebuild
        // line so the log explains *why* the stream may now be blind.
        self.coverage =
            analyze_cluster_coverage(&self.fcm, &self.sharded, &CoverageConfig::default()).ok();
        if let Some(cov) = &self.coverage {
            self.metrics.coverage_warnings = cov.warn_count() as u64;
            for f in cov.findings.iter().filter(|f| f.severity.is_warn()) {
                self.log.record(f.to_json());
            }
        }
    }

    /// Resets counters and replays the steady traffic under the current
    /// rules (the stream's measurement-window abstraction: counters always
    /// hold one window's volume for the *current* forwarding state).
    fn refresh_traffic(&mut self) {
        self.dep.dataplane.reset_counters();
        self.dep.replay_traffic(&mut LossModel::none());
        if !self.liars.is_empty() {
            // The registers moved: re-plan the forgery against them so the
            // lie keeps tracking the truth it distorts.
            self.install_forgeries();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foces_controlplane::{provision, uniform_flows, RuleGranularity};
    use foces_net::generators::ring;

    fn deployment() -> Deployment {
        let topo = ring(4);
        let flows = uniform_flows(&topo, 12_000.0);
        provision(topo, &flows, RuleGranularity::PerFlowPair).unwrap()
    }

    fn quiet_config() -> StreamConfig {
        StreamConfig {
            duration_ms: 300.0,
            regions: 2,
            cadence: CadenceConfig {
                min_ms: 10.0,
                max_ms: 80.0,
                backoff: 1.5,
                quiet_threshold: 3,
            },
            ..StreamConfig::default()
        }
    }

    #[test]
    fn quiet_stream_fires_warm_rounds_and_never_alarms() {
        let mut d = StreamDriver::new(deployment(), quiet_config(), vec![]);
        let r = d.run().unwrap();
        assert!(r.metrics.shard_rounds > 4, "{:?}", r.metrics);
        assert!(r.metrics.warm_rounds > 0, "steady state must go warm");
        assert_eq!(r.metrics.anomalous_rounds, 0);
        assert_eq!(r.metrics.alarms_raised, 0);
        assert_eq!(r.alarm_state, AlarmState::Normal);
        assert!(r.metrics.ttfv_ms.is_some());
        assert!(r.metrics.ttav_ms.is_some());
        assert!(r.metrics.ttfv_ms.unwrap() <= r.metrics.ttav_ms.unwrap());
        assert!(r.verdict_parity(), "quiescent end must match ground truth");
    }

    #[test]
    fn adaptive_cadence_backs_off_a_quiet_network() {
        let mut adaptive = StreamDriver::new(deployment(), quiet_config(), vec![]);
        let ra = adaptive.run().unwrap();
        let mut fixed_cfg = quiet_config();
        fixed_cfg.cadence = CadenceConfig::fixed(10.0);
        let mut fixed = StreamDriver::new(deployment(), fixed_cfg, vec![]);
        let rf = fixed.run().unwrap();
        assert!(
            ra.metrics.polls < rf.metrics.polls,
            "adaptive ({}) must poll less than fixed ({}) on a quiet network",
            ra.metrics.polls,
            rf.metrics.polls
        );
    }

    #[test]
    fn same_seed_byte_identical_jsonl() {
        let run = || {
            let script = vec![
                (60.0, StreamAction::Churn),
                (180.0, StreamAction::Inject(AnomalyKind::PathDeviation)),
                (260.0, StreamAction::Revert),
            ];
            let mut cfg = quiet_config();
            cfg.duration_ms = 320.0;
            cfg.profile.jitter_ms = 2.0;
            cfg.profile.drop_prob = 0.05;
            let mut d = StreamDriver::new(deployment(), cfg, script);
            d.run().unwrap();
            d.log().lines().to_vec()
        };
        let a = run();
        assert!(!a.is_empty());
        assert_eq!(a, run(), "seeded stream must be byte-identical");
    }

    #[test]
    fn churn_reconciles_without_false_alarms_then_rebuilds() {
        let script = vec![(50.0, StreamAction::Churn)];
        let mut cfg = quiet_config();
        cfg.settle_ms = 60.0;
        let mut d = StreamDriver::new(deployment(), cfg, script);
        let r = d.run().unwrap();
        assert!(
            r.metrics.reconciled_rounds > 0,
            "rounds between churn and rebuild must reconcile: {:?}",
            r.metrics
        );
        assert_eq!(r.metrics.fcm_rebuilds, 1);
        assert!(
            r.metrics.stale_generation_replies > 0,
            "stamps must expose the mid-window update"
        );
        assert_eq!(r.metrics.alarms_raised, 0, "churn is not an anomaly");
        assert_eq!(r.alarm_state, AlarmState::Normal);
    }

    #[test]
    fn injected_anomaly_raises_then_revert_clears() {
        let script = vec![
            (40.0, StreamAction::Inject(AnomalyKind::PathDeviation)),
            (180.0, StreamAction::Revert),
        ];
        let mut cfg = quiet_config();
        cfg.duration_ms = 400.0;
        let mut d = StreamDriver::new(deployment(), cfg, script);
        let r = d.run().unwrap();
        assert!(r.metrics.anomalous_rounds > 0, "{:?}", r.metrics);
        assert_eq!(r.metrics.alarms_raised, 1, "{:?}", r.metrics);
        assert_eq!(r.metrics.alarms_cleared, 1, "{:?}", r.metrics);
        assert_eq!(r.alarm_state, AlarmState::Normal);
        let lat = r.metrics.alarm_latency_ms.expect("alarm after inject");
        assert!(lat > 0.0);
        assert!(
            r.verdict_parity(),
            "post-revert verdicts match ground truth"
        );
    }

    #[test]
    fn stream_liar_is_localized_quarantined_then_released() {
        let topo = foces_net::generators::fattree(4);
        let flows = uniform_flows(&topo, 240_000.0);
        let dep = provision(topo, &flows, RuleGranularity::PerFlowPair).unwrap();
        let script = vec![
            (
                40.0,
                StreamAction::Compromise {
                    liars: 1,
                    strategy: foces_channel::FakeStrategy::Naive,
                    magnitude: 1.0,
                },
            ),
            (260.0, StreamAction::Confess),
        ];
        let mut cfg = quiet_config();
        cfg.duration_ms = 500.0;
        cfg.byzantine.enabled = true;
        let mut d = StreamDriver::new(dep, cfg, script);
        let r = d.run().unwrap();
        assert_eq!(r.metrics.liars_localized, 1, "{:?}", r.metrics);
        assert_eq!(
            r.metrics.switch_quarantines, 1,
            "no honest switch quarantined"
        );
        assert!(r.metrics.loo_solves > 0);
        assert!(
            r.metrics.loo_downdates > 0,
            "leave-one-out went through downdates"
        );
        assert_eq!(
            r.metrics.quarantine_releases, 1,
            "the confessed switch is re-admitted"
        );
        assert_eq!(
            r.metrics.unresolved_byzantine, 0,
            "a pure fabrication localizes"
        );
        assert!(d.quarantined_switches().is_empty());
        assert!(!d.byzantine_unresolved());
        assert_eq!(r.alarm_state, AlarmState::Normal);
        let localized = d
            .log()
            .lines()
            .iter()
            .any(|l| l.contains("\"localized\":") && !l.contains("\"localized\":null"));
        assert!(localized, "the JSONL must name the localized liar");
    }

    #[test]
    fn honest_stream_with_byzantine_enabled_stays_clean() {
        let script = vec![(60.0, StreamAction::Churn)];
        let mut cfg = quiet_config();
        cfg.byzantine.enabled = true;
        let mut d = StreamDriver::new(deployment(), cfg, script);
        let r = d.run().unwrap();
        assert_eq!(r.metrics.switch_quarantines, 0);
        assert_eq!(r.metrics.liars_localized, 0);
        assert_eq!(r.metrics.unresolved_byzantine, 0);
        assert_eq!(r.metrics.alarms_raised, 0);
        assert!(
            r.metrics.suspicion_rounds > 0,
            "scored rounds must feed the tracker"
        );
        assert_eq!(
            d.suspicion().max_score(),
            0.0,
            "honest rounds never add suspicion"
        );
        assert!(d.quarantined_switches().is_empty());
    }

    #[test]
    fn preflight_coverage_scores_the_plane_before_any_counters() {
        let d = StreamDriver::new(deployment(), quiet_config(), vec![]);
        let cov = d.coverage().expect("non-empty plane analyzes");
        assert_eq!(cov.shards.len(), 2, "one entry per region");
        assert!(
            cov.warn_count() > 0,
            "the ring concentrates rows: {}",
            cov.summary()
        );
        assert_eq!(
            d.metrics().coverage_warnings,
            cov.warn_count() as u64,
            "metric mirrors the report"
        );
    }

    #[test]
    fn rebuild_reanalyzes_coverage_and_logs_warns() {
        let script = vec![(50.0, StreamAction::Churn)];
        let mut cfg = quiet_config();
        cfg.settle_ms = 60.0;
        let mut d = StreamDriver::new(deployment(), cfg, script);
        let r = d.run().unwrap();
        assert_eq!(r.metrics.fcm_rebuilds, 1);
        assert!(
            r.metrics.coverage_warnings > 0,
            "rebuild refreshes the metric: {:?}",
            r.metrics
        );
        let warn_lines = d
            .log()
            .lines()
            .iter()
            .filter(|l| l.contains("\"event\":\"coverage-finding\""))
            .count();
        assert_eq!(
            warn_lines, r.metrics.coverage_warnings as usize,
            "rebuild surfaces each WARN in the JSONL"
        );
    }

    #[test]
    fn fixed_cadence_stream_raises_within_the_hysteresis_bound() {
        // With `raise_k = 2` and a fixed 40 ms cadence, a stream that only
        // ever polls at the fixed interval pays a full 40 ms per quorum
        // round: first anomalous verdict up to ~40 ms after injection, then
        // another ~40 ms before the raise — the alarm starves behind the
        // hysteresis window. The suspicion snap halves the shard's timers
        // after the first anomalous round, so the raise lands within the
        // `raise_k × interval` bound instead of past it.
        let script = vec![
            (40.0, StreamAction::Inject(AnomalyKind::PathDeviation)),
            (240.0, StreamAction::Revert),
        ];
        let mut cfg = quiet_config();
        cfg.duration_ms = 400.0;
        cfg.cadence = CadenceConfig::fixed(40.0);
        let mut d = StreamDriver::new(deployment(), cfg, script);
        let r = d.run().unwrap();
        assert_eq!(r.metrics.alarms_raised, 1, "{:?}", r.metrics);
        let lat = r.metrics.alarm_latency_ms.expect("alarm after inject");
        let bound = 2.0 * 40.0;
        assert!(
            lat <= bound,
            "suspicion snap must beat the fixed-cadence starvation: \
             latency {lat} ms > bound {bound} ms"
        );
        assert_eq!(r.alarm_state, AlarmState::Normal, "revert clears");
    }

    #[test]
    fn slow_region_delays_only_its_own_shard() {
        let mut cfg = quiet_config();
        cfg.slow_region = Some(1);
        cfg.slow_extra_ms = 25.0;
        let mut d = StreamDriver::new(deployment(), cfg, vec![]);
        let r = d.run().unwrap();
        // The fast shard's first verdict must not wait for the slow one.
        let ttfv = r.metrics.ttfv_ms.unwrap();
        let ttav = r.metrics.ttav_ms.unwrap();
        assert!(
            ttav - ttfv >= 20.0,
            "slow region should lag: ttfv={ttfv} ttav={ttav}"
        );
        assert_eq!(r.metrics.alarms_raised, 0);
    }
}
